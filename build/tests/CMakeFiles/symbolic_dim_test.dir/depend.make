# Empty dependencies file for symbolic_dim_test.
# This may be replaced when dependencies are built.
