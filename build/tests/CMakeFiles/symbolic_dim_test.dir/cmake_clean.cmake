file(REMOVE_RECURSE
  "CMakeFiles/symbolic_dim_test.dir/symbolic_dim_test.cpp.o"
  "CMakeFiles/symbolic_dim_test.dir/symbolic_dim_test.cpp.o.d"
  "symbolic_dim_test"
  "symbolic_dim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_dim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
