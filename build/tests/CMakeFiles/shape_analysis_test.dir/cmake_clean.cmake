file(REMOVE_RECURSE
  "CMakeFiles/shape_analysis_test.dir/shape_analysis_test.cpp.o"
  "CMakeFiles/shape_analysis_test.dir/shape_analysis_test.cpp.o.d"
  "shape_analysis_test"
  "shape_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
