# Empty compiler generated dependencies file for cuda_graph_test.
# This may be replaced when dependencies are built.
