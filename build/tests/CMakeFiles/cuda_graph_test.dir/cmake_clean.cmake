file(REMOVE_RECURSE
  "CMakeFiles/cuda_graph_test.dir/cuda_graph_test.cpp.o"
  "CMakeFiles/cuda_graph_test.dir/cuda_graph_test.cpp.o.d"
  "cuda_graph_test"
  "cuda_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuda_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
