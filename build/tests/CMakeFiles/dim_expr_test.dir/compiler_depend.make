# Empty compiler generated dependencies file for dim_expr_test.
# This may be replaced when dependencies are built.
