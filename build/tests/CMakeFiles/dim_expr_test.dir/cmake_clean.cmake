file(REMOVE_RECURSE
  "CMakeFiles/dim_expr_test.dir/dim_expr_test.cpp.o"
  "CMakeFiles/dim_expr_test.dir/dim_expr_test.cpp.o.d"
  "dim_expr_test"
  "dim_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dim_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
