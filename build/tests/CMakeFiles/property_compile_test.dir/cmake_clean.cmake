file(REMOVE_RECURSE
  "CMakeFiles/property_compile_test.dir/property_compile_test.cpp.o"
  "CMakeFiles/property_compile_test.dir/property_compile_test.cpp.o.d"
  "property_compile_test"
  "property_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
