# Empty dependencies file for property_compile_test.
# This may be replaced when dependencies are built.
