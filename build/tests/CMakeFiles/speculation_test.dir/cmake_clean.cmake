file(REMOVE_RECURSE
  "CMakeFiles/speculation_test.dir/speculation_test.cpp.o"
  "CMakeFiles/speculation_test.dir/speculation_test.cpp.o.d"
  "speculation_test"
  "speculation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
