# Empty dependencies file for disc_opt.
# This may be replaced when dependencies are built.
