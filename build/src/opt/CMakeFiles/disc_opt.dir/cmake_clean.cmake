file(REMOVE_RECURSE
  "CMakeFiles/disc_opt.dir/canonicalize.cc.o"
  "CMakeFiles/disc_opt.dir/canonicalize.cc.o.d"
  "CMakeFiles/disc_opt.dir/constant_fold.cc.o"
  "CMakeFiles/disc_opt.dir/constant_fold.cc.o.d"
  "CMakeFiles/disc_opt.dir/cse.cc.o"
  "CMakeFiles/disc_opt.dir/cse.cc.o.d"
  "CMakeFiles/disc_opt.dir/dce.cc.o"
  "CMakeFiles/disc_opt.dir/dce.cc.o.d"
  "CMakeFiles/disc_opt.dir/layout_simplify.cc.o"
  "CMakeFiles/disc_opt.dir/layout_simplify.cc.o.d"
  "CMakeFiles/disc_opt.dir/pass.cc.o"
  "CMakeFiles/disc_opt.dir/pass.cc.o.d"
  "CMakeFiles/disc_opt.dir/shape_simplify.cc.o"
  "CMakeFiles/disc_opt.dir/shape_simplify.cc.o.d"
  "libdisc_opt.a"
  "libdisc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
