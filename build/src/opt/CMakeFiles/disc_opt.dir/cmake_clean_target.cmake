file(REMOVE_RECURSE
  "libdisc_opt.a"
)
