
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/canonicalize.cc" "src/opt/CMakeFiles/disc_opt.dir/canonicalize.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/canonicalize.cc.o.d"
  "/root/repo/src/opt/constant_fold.cc" "src/opt/CMakeFiles/disc_opt.dir/constant_fold.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/constant_fold.cc.o.d"
  "/root/repo/src/opt/cse.cc" "src/opt/CMakeFiles/disc_opt.dir/cse.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/cse.cc.o.d"
  "/root/repo/src/opt/dce.cc" "src/opt/CMakeFiles/disc_opt.dir/dce.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/dce.cc.o.d"
  "/root/repo/src/opt/layout_simplify.cc" "src/opt/CMakeFiles/disc_opt.dir/layout_simplify.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/layout_simplify.cc.o.d"
  "/root/repo/src/opt/pass.cc" "src/opt/CMakeFiles/disc_opt.dir/pass.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/pass.cc.o.d"
  "/root/repo/src/opt/shape_simplify.cc" "src/opt/CMakeFiles/disc_opt.dir/shape_simplify.cc.o" "gcc" "src/opt/CMakeFiles/disc_opt.dir/shape_simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/disc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/disc_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/disc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
