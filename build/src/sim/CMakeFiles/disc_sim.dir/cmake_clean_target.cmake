file(REMOVE_RECURSE
  "libdisc_sim.a"
)
