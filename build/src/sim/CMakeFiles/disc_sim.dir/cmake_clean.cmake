file(REMOVE_RECURSE
  "CMakeFiles/disc_sim.dir/device.cc.o"
  "CMakeFiles/disc_sim.dir/device.cc.o.d"
  "libdisc_sim.a"
  "libdisc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
