# Empty compiler generated dependencies file for disc_sim.
# This may be replaced when dependencies are built.
