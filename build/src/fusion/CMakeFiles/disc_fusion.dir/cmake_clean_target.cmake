file(REMOVE_RECURSE
  "libdisc_fusion.a"
)
