file(REMOVE_RECURSE
  "CMakeFiles/disc_fusion.dir/fusion.cc.o"
  "CMakeFiles/disc_fusion.dir/fusion.cc.o.d"
  "libdisc_fusion.a"
  "libdisc_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
