# Empty compiler generated dependencies file for disc_fusion.
# This may be replaced when dependencies are built.
