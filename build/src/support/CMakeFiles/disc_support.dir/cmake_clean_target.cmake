file(REMOVE_RECURSE
  "libdisc_support.a"
)
