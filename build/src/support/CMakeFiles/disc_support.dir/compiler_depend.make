# Empty compiler generated dependencies file for disc_support.
# This may be replaced when dependencies are built.
