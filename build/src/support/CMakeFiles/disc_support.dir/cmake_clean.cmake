file(REMOVE_RECURSE
  "CMakeFiles/disc_support.dir/logging.cc.o"
  "CMakeFiles/disc_support.dir/logging.cc.o.d"
  "CMakeFiles/disc_support.dir/status.cc.o"
  "CMakeFiles/disc_support.dir/status.cc.o.d"
  "CMakeFiles/disc_support.dir/string_util.cc.o"
  "CMakeFiles/disc_support.dir/string_util.cc.o.d"
  "libdisc_support.a"
  "libdisc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
