file(REMOVE_RECURSE
  "CMakeFiles/disc_baselines.dir/baselines.cc.o"
  "CMakeFiles/disc_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/disc_baselines.dir/dynamic_engine.cc.o"
  "CMakeFiles/disc_baselines.dir/dynamic_engine.cc.o.d"
  "CMakeFiles/disc_baselines.dir/engine.cc.o"
  "CMakeFiles/disc_baselines.dir/engine.cc.o.d"
  "CMakeFiles/disc_baselines.dir/interpreter_engine.cc.o"
  "CMakeFiles/disc_baselines.dir/interpreter_engine.cc.o.d"
  "CMakeFiles/disc_baselines.dir/static_engine.cc.o"
  "CMakeFiles/disc_baselines.dir/static_engine.cc.o.d"
  "libdisc_baselines.a"
  "libdisc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
