file(REMOVE_RECURSE
  "libdisc_baselines.a"
)
