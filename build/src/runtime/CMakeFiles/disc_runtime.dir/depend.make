# Empty dependencies file for disc_runtime.
# This may be replaced when dependencies are built.
