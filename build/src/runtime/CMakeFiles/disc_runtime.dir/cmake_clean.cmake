file(REMOVE_RECURSE
  "CMakeFiles/disc_runtime.dir/allocator.cc.o"
  "CMakeFiles/disc_runtime.dir/allocator.cc.o.d"
  "CMakeFiles/disc_runtime.dir/buffer_plan.cc.o"
  "CMakeFiles/disc_runtime.dir/buffer_plan.cc.o.d"
  "CMakeFiles/disc_runtime.dir/executable.cc.o"
  "CMakeFiles/disc_runtime.dir/executable.cc.o.d"
  "libdisc_runtime.a"
  "libdisc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
