file(REMOVE_RECURSE
  "libdisc_runtime.a"
)
