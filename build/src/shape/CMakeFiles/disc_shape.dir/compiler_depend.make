# Empty compiler generated dependencies file for disc_shape.
# This may be replaced when dependencies are built.
