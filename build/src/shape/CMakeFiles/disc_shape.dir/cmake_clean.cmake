file(REMOVE_RECURSE
  "CMakeFiles/disc_shape.dir/dim_expr.cc.o"
  "CMakeFiles/disc_shape.dir/dim_expr.cc.o.d"
  "CMakeFiles/disc_shape.dir/shape_analysis.cc.o"
  "CMakeFiles/disc_shape.dir/shape_analysis.cc.o.d"
  "CMakeFiles/disc_shape.dir/symbolic_dim.cc.o"
  "CMakeFiles/disc_shape.dir/symbolic_dim.cc.o.d"
  "libdisc_shape.a"
  "libdisc_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
