file(REMOVE_RECURSE
  "libdisc_shape.a"
)
