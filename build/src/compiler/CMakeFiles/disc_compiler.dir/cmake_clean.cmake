file(REMOVE_RECURSE
  "CMakeFiles/disc_compiler.dir/compiler.cc.o"
  "CMakeFiles/disc_compiler.dir/compiler.cc.o.d"
  "libdisc_compiler.a"
  "libdisc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
