file(REMOVE_RECURSE
  "libdisc_compiler.a"
)
