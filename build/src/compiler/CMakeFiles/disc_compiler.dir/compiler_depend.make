# Empty compiler generated dependencies file for disc_compiler.
# This may be replaced when dependencies are built.
