file(REMOVE_RECURSE
  "CMakeFiles/disc_kernel.dir/execute.cc.o"
  "CMakeFiles/disc_kernel.dir/execute.cc.o.d"
  "CMakeFiles/disc_kernel.dir/guard.cc.o"
  "CMakeFiles/disc_kernel.dir/guard.cc.o.d"
  "CMakeFiles/disc_kernel.dir/kernel.cc.o"
  "CMakeFiles/disc_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/disc_kernel.dir/library.cc.o"
  "CMakeFiles/disc_kernel.dir/library.cc.o.d"
  "CMakeFiles/disc_kernel.dir/specialize.cc.o"
  "CMakeFiles/disc_kernel.dir/specialize.cc.o.d"
  "libdisc_kernel.a"
  "libdisc_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
