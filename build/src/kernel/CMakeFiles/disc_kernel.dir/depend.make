# Empty dependencies file for disc_kernel.
# This may be replaced when dependencies are built.
