file(REMOVE_RECURSE
  "libdisc_kernel.a"
)
