
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/execute.cc" "src/kernel/CMakeFiles/disc_kernel.dir/execute.cc.o" "gcc" "src/kernel/CMakeFiles/disc_kernel.dir/execute.cc.o.d"
  "/root/repo/src/kernel/guard.cc" "src/kernel/CMakeFiles/disc_kernel.dir/guard.cc.o" "gcc" "src/kernel/CMakeFiles/disc_kernel.dir/guard.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/disc_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/disc_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/library.cc" "src/kernel/CMakeFiles/disc_kernel.dir/library.cc.o" "gcc" "src/kernel/CMakeFiles/disc_kernel.dir/library.cc.o.d"
  "/root/repo/src/kernel/specialize.cc" "src/kernel/CMakeFiles/disc_kernel.dir/specialize.cc.o" "gcc" "src/kernel/CMakeFiles/disc_kernel.dir/specialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fusion/CMakeFiles/disc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/disc_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/disc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/disc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
