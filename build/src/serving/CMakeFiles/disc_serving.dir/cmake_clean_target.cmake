file(REMOVE_RECURSE
  "libdisc_serving.a"
)
