file(REMOVE_RECURSE
  "CMakeFiles/disc_serving.dir/serving.cc.o"
  "CMakeFiles/disc_serving.dir/serving.cc.o.d"
  "libdisc_serving.a"
  "libdisc_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
