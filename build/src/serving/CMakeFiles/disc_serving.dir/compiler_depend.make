# Empty compiler generated dependencies file for disc_serving.
# This may be replaced when dependencies are built.
