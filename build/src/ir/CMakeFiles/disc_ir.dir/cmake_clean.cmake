file(REMOVE_RECURSE
  "CMakeFiles/disc_ir.dir/attribute.cc.o"
  "CMakeFiles/disc_ir.dir/attribute.cc.o.d"
  "CMakeFiles/disc_ir.dir/builder.cc.o"
  "CMakeFiles/disc_ir.dir/builder.cc.o.d"
  "CMakeFiles/disc_ir.dir/dtype.cc.o"
  "CMakeFiles/disc_ir.dir/dtype.cc.o.d"
  "CMakeFiles/disc_ir.dir/eval.cc.o"
  "CMakeFiles/disc_ir.dir/eval.cc.o.d"
  "CMakeFiles/disc_ir.dir/graph.cc.o"
  "CMakeFiles/disc_ir.dir/graph.cc.o.d"
  "CMakeFiles/disc_ir.dir/op_kind.cc.o"
  "CMakeFiles/disc_ir.dir/op_kind.cc.o.d"
  "CMakeFiles/disc_ir.dir/parser.cc.o"
  "CMakeFiles/disc_ir.dir/parser.cc.o.d"
  "CMakeFiles/disc_ir.dir/tensor.cc.o"
  "CMakeFiles/disc_ir.dir/tensor.cc.o.d"
  "CMakeFiles/disc_ir.dir/type_inference.cc.o"
  "CMakeFiles/disc_ir.dir/type_inference.cc.o.d"
  "CMakeFiles/disc_ir.dir/verifier.cc.o"
  "CMakeFiles/disc_ir.dir/verifier.cc.o.d"
  "libdisc_ir.a"
  "libdisc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
