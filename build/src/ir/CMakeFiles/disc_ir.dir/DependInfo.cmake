
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/attribute.cc" "src/ir/CMakeFiles/disc_ir.dir/attribute.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/attribute.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/ir/CMakeFiles/disc_ir.dir/builder.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/builder.cc.o.d"
  "/root/repo/src/ir/dtype.cc" "src/ir/CMakeFiles/disc_ir.dir/dtype.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/dtype.cc.o.d"
  "/root/repo/src/ir/eval.cc" "src/ir/CMakeFiles/disc_ir.dir/eval.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/eval.cc.o.d"
  "/root/repo/src/ir/graph.cc" "src/ir/CMakeFiles/disc_ir.dir/graph.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/graph.cc.o.d"
  "/root/repo/src/ir/op_kind.cc" "src/ir/CMakeFiles/disc_ir.dir/op_kind.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/op_kind.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/ir/CMakeFiles/disc_ir.dir/parser.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/parser.cc.o.d"
  "/root/repo/src/ir/tensor.cc" "src/ir/CMakeFiles/disc_ir.dir/tensor.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/tensor.cc.o.d"
  "/root/repo/src/ir/type_inference.cc" "src/ir/CMakeFiles/disc_ir.dir/type_inference.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/type_inference.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/disc_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/disc_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/disc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
