# Empty dependencies file for disc_ir.
# This may be replaced when dependencies are built.
