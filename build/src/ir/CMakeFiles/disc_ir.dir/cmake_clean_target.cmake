file(REMOVE_RECURSE
  "libdisc_ir.a"
)
