# Empty dependencies file for disc_models.
# This may be replaced when dependencies are built.
