file(REMOVE_RECURSE
  "CMakeFiles/disc_models.dir/models.cc.o"
  "CMakeFiles/disc_models.dir/models.cc.o.d"
  "libdisc_models.a"
  "libdisc_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
