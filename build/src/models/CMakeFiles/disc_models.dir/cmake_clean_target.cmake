file(REMOVE_RECURSE
  "libdisc_models.a"
)
