file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_t4.dir/bench_e2e_t4.cpp.o"
  "CMakeFiles/bench_e2e_t4.dir/bench_e2e_t4.cpp.o.d"
  "bench_e2e_t4"
  "bench_e2e_t4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_t4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
