# Empty compiler generated dependencies file for bench_e2e_t4.
# This may be replaced when dependencies are built.
