# Empty compiler generated dependencies file for bench_serving_batch.
# This may be replaced when dependencies are built.
