file(REMOVE_RECURSE
  "CMakeFiles/bench_serving_batch.dir/bench_serving_batch.cpp.o"
  "CMakeFiles/bench_serving_batch.dir/bench_serving_batch.cpp.o.d"
  "bench_serving_batch"
  "bench_serving_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
