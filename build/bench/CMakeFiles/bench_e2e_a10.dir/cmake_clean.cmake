file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_a10.dir/bench_e2e_a10.cpp.o"
  "CMakeFiles/bench_e2e_a10.dir/bench_e2e_a10.cpp.o.d"
  "bench_e2e_a10"
  "bench_e2e_a10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_a10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
