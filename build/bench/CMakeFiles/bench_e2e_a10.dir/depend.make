# Empty dependencies file for bench_e2e_a10.
# This may be replaced when dependencies are built.
