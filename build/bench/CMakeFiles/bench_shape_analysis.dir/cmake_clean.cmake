file(REMOVE_RECURSE
  "CMakeFiles/bench_shape_analysis.dir/bench_shape_analysis.cpp.o"
  "CMakeFiles/bench_shape_analysis.dir/bench_shape_analysis.cpp.o.d"
  "bench_shape_analysis"
  "bench_shape_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shape_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
