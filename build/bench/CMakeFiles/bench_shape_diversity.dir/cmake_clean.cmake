file(REMOVE_RECURSE
  "CMakeFiles/bench_shape_diversity.dir/bench_shape_diversity.cpp.o"
  "CMakeFiles/bench_shape_diversity.dir/bench_shape_diversity.cpp.o.d"
  "bench_shape_diversity"
  "bench_shape_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shape_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
