# Empty dependencies file for bench_shape_diversity.
# This may be replaced when dependencies are built.
