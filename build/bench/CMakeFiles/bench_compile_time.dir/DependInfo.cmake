
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_compile_time.cpp" "bench/CMakeFiles/bench_compile_time.dir/bench_compile_time.cpp.o" "gcc" "bench/CMakeFiles/bench_compile_time.dir/bench_compile_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/disc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/disc_models.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/disc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/disc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/disc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/disc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/disc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/disc_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/disc_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/disc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/disc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
