# Empty dependencies file for bench_serving_trace.
# This may be replaced when dependencies are built.
