file(REMOVE_RECURSE
  "CMakeFiles/bench_serving_trace.dir/bench_serving_trace.cpp.o"
  "CMakeFiles/bench_serving_trace.dir/bench_serving_trace.cpp.o.d"
  "bench_serving_trace"
  "bench_serving_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
