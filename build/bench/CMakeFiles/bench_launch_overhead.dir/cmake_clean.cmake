file(REMOVE_RECURSE
  "CMakeFiles/bench_launch_overhead.dir/bench_launch_overhead.cpp.o"
  "CMakeFiles/bench_launch_overhead.dir/bench_launch_overhead.cpp.o.d"
  "bench_launch_overhead"
  "bench_launch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_launch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
