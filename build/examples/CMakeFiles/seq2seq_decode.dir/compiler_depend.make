# Empty compiler generated dependencies file for seq2seq_decode.
# This may be replaced when dependencies are built.
