file(REMOVE_RECURSE
  "CMakeFiles/seq2seq_decode.dir/seq2seq_decode.cpp.o"
  "CMakeFiles/seq2seq_decode.dir/seq2seq_decode.cpp.o.d"
  "seq2seq_decode"
  "seq2seq_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq2seq_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
