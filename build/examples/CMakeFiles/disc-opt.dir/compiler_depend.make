# Empty compiler generated dependencies file for disc-opt.
# This may be replaced when dependencies are built.
