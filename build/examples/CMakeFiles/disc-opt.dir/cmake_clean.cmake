file(REMOVE_RECURSE
  "CMakeFiles/disc-opt.dir/disc_opt.cpp.o"
  "CMakeFiles/disc-opt.dir/disc_opt.cpp.o.d"
  "disc-opt"
  "disc-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
