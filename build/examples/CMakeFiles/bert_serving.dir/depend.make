# Empty dependencies file for bert_serving.
# This may be replaced when dependencies are built.
