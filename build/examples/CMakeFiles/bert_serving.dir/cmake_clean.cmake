file(REMOVE_RECURSE
  "CMakeFiles/bert_serving.dir/bert_serving.cpp.o"
  "CMakeFiles/bert_serving.dir/bert_serving.cpp.o.d"
  "bert_serving"
  "bert_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
