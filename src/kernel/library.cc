#include "kernel/library.h"

#include "support/math_util.h"

namespace disc {

Result<LibraryCallStats> ComputeLibraryStats(const Node& node,
                                             const ShapeAnalysis& analysis,
                                             const SymbolBindings& bindings) {
  LibraryCallStats stats;
  auto dims_of = [&](const Value* v) {
    return analysis.EvaluateShape(v, bindings);
  };
  for (const Value* operand : node.operands()) {
    DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims, dims_of(operand));
    stats.bytes_read += Product(dims) * DTypeSize(operand->dtype());
  }
  for (const Value* out : node.outputs()) {
    DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims, dims_of(out));
    stats.bytes_written += Product(dims) * DTypeSize(out->dtype());
  }

  switch (node.kind()) {
    case OpKind::kMatMul: {
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> a, dims_of(node.operand(0)));
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> out,
                            dims_of(node.output(0)));
      bool ta = node.GetIntAttr("transpose_a", 0) != 0;
      int64_t k = a[a.size() - (ta ? 2 : 1)];
      // out = [batch..., m, n]; flops = 2 * batch * m * n * k.
      stats.flops = 2 * Product(out) * k;
      return stats;
    }
    case OpKind::kConv2D: {
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> filter,
                            dims_of(node.operand(1)));
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> out,
                            dims_of(node.output(0)));
      // flops = 2 * (N*OH*OW*OC) * (KH*KW*C).
      stats.flops = 2 * Product(out) * filter[0] * filter[1] * filter[2];
      return stats;
    }
    default:
      return Status::InvalidArgument(std::string(OpName(node.kind())) +
                                     " is not a library op");
  }
}

}  // namespace disc
