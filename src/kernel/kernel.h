// Fused kernels: the unit of code generation and launch.
//
// A FusedKernel is compiled from one FusionGroup. It carries
//   * the group's symbolic shapes (extents and launch dims stay DimExprs
//     until the runtime binds them — "codegen supporting arbitrary shapes"),
//   * several specialization variants with runtime guards
//     (see specialize.cc), and
//   * a CPU execution path used for correctness: a per-element expression
//     evaluator over the fused subgraph. Reduction results are memoized per
//     row during execution — the in-memory analog of the shared-memory
//     staging a kStitch kernel performs on a real GPU.
//
// Performance is measured by the device model (disc::sim) from the
// KernelStats this class computes per (bindings, variant): global-memory
// traffic touches only group inputs/outputs (fusion's raison d'être),
// arithmetic is counted per member op, and the launch geometry follows the
// variant's schedule.
#ifndef DISC_KERNEL_KERNEL_H_
#define DISC_KERNEL_KERNEL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "fusion/fusion.h"
#include "ir/tensor.h"
#include "kernel/guard.h"
#include "shape/shape_analysis.h"

namespace disc {

/// How a reduction-bearing kernel maps rows to hardware.
enum class ReduceSchedule : uint8_t {
  kNone,         // no reduction in this kernel
  kWarpPerRow,   // short rows: one warp per row, warp shuffle reduce
  kBlockPerRow,  // long rows: one thread block per row, shared-mem tree
};

const char* ReduceScheduleName(ReduceSchedule schedule);

/// One compiled specialization of a kernel.
struct KernelVariant {
  std::string name;
  /// Runtime admission condition (empty = unconditional). Compile-time
  /// provable properties produce no predicates — they are baked in.
  Guard guard;
  /// SIMD lanes per thread (1 or 4). 4 requires the innermost extent to be
  /// divisible by 4 (guarded or proven).
  int vector_width = 1;
  /// True when per-element broadcast/index arithmetic was eliminated
  /// because all member shapes are provably identical.
  bool broadcast_free = false;
  /// Speculative exact-shape variant: compiled for one concrete binding of
  /// every symbol this kernel touches (from likely-value feedback). Gets
  /// static-codegen quality; admitted only when the equality guard holds.
  bool exact_shape = false;
  ReduceSchedule schedule = ReduceSchedule::kNone;

  std::string ToString() const;
};

/// Resource footprint of one launch, consumed by the device model.
struct KernelStats {
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t flops = 0;
  /// Address/index arithmetic per element (reduced by specialization).
  int64_t index_ops = 0;
  int64_t num_blocks = 0;
  int64_t threads_per_block = 0;
  int64_t shared_mem_bytes = 0;

  int64_t total_bytes() const { return bytes_read + bytes_written; }
};

/// Options controlling variant generation.
struct SpecializeOptions {
  bool enable_specialization = true;  // false = only the generic variant
  bool enable_vectorization = true;
  bool enable_broadcast_elimination = true;
  bool enable_reduce_schedules = true;
  /// Emit exact-shape speculative variants for symbols with likely values
  /// (runtime feedback / user hints recorded in the SymbolicDimManager).
  bool enable_shape_speculation = true;
  /// At most this many speculative variants per kernel.
  int max_speculative_variants = 2;
  int vector_width = 4;
  /// Rows at most this long get the warp-per-row schedule.
  int64_t warp_row_threshold = 1024;
  /// Warp-per-row needs at least this many rows to fill the device;
  /// fewer rows fall back to block-per-row for occupancy.
  int64_t warp_min_rows = 1024;
};

/// \brief A fused kernel compiled from one FusionGroup. The group's Nodes
/// and Values must outlive the kernel (the compiler owns the graph).
class FusedKernel {
 public:
  FusedKernel(FusionGroup group, const ShapeAnalysis* analysis,
              const SpecializeOptions& options);

  const FusionGroup& group() const { return group_; }
  FusionKind kind() const { return group_.kind; }
  const std::string& name() const { return name_; }
  const std::vector<KernelVariant>& variants() const { return variants_; }

  /// \brief Picks the first variant whose guard admits the bindings. The
  /// generic variant is last and unconditional, so this always succeeds.
  Result<const KernelVariant*> SelectVariant(
      const SymbolBindings& bindings) const;

  /// \brief Index form of SelectVariant: the guard outcome as a recordable
  /// decision. A launch plan stores this index so cache-hit runs replay
  /// the dispatch without re-evaluating any guard.
  Result<int> SelectVariantIndex(const SymbolBindings& bindings) const;

  /// \brief Executes the kernel on the CPU: reads group inputs from `env`,
  /// inserts the group outputs. Variant choice never changes numerics.
  Status Execute(const SymbolBindings& bindings,
                 std::unordered_map<const Value*, Tensor>* env) const;

  /// \brief Resource footprint under concrete bindings for one variant.
  Result<KernelStats> ComputeStats(const SymbolBindings& bindings,
                                   const KernelVariant& variant) const;

  /// \brief The variant list this kernel WOULD have been compiled with
  /// under `options` — the counterfactual the regret audit compares the
  /// compiled selection against. Does not mutate this kernel; the returned
  /// variants are valid inputs to ComputeStats.
  std::vector<KernelVariant> VariantsUnder(
      const SpecializeOptions& options) const;

  /// \brief Row length (product of reduced trailing dims) for reduce-
  /// bearing kernels; invalid DimExpr for pure loop kernels.
  const DimExpr& row_extent() const { return row_extent_; }
  /// \brief Row count (reduce-input elements / row_extent); invalid for
  /// pure loop kernels.
  const DimExpr& row_count() const { return row_count_; }
  /// \brief Element count of the root output (the launch domain).
  const DimExpr& root_elements() const { return root_elements_; }

  /// Compile-time taint flags, set by the `kernel.miscompile` /
  /// `kernel.guard.mispredict` failpoints when the compiler emits this
  /// kernel. They model a *persistently* wrong artifact — the same
  /// executable is wrong at every run, which is what differential
  /// validation and quarantine must catch — as opposed to transient
  /// per-run faults (those are the runtime.* failpoints).
  void set_miscompiled(bool v) { miscompiled_ = v; }
  bool miscompiled() const { return miscompiled_; }
  void set_guard_mispredict(bool v) { guard_mispredict_ = v; }
  bool guard_mispredict() const { return guard_mispredict_; }

  std::string ToString() const;

 private:
  friend void BuildVariants(FusedKernel* kernel,
                            const SpecializeOptions& options);

  FusionGroup group_;
  const ShapeAnalysis* analysis_;
  std::string name_;
  std::vector<KernelVariant> variants_;
  DimExpr row_extent_;     // valid iff the group contains a reduction
  DimExpr row_count_;      // valid iff the group contains a reduction
  DimExpr root_elements_;  // symbolic launch domain size
  bool miscompiled_ = false;       // injected: perturbs one output element
  bool guard_mispredict_ = false;  // injected: always dispatches variant 0
};

/// \brief Per-element arithmetic cost of an op (relative to one FMA).
int64_t OpFlopCost(OpKind kind);

}  // namespace disc

#endif  // DISC_KERNEL_KERNEL_H_
