// Compile-time specialization: builds the variant list of a FusedKernel.
//
// Properties provable from the symbolic constraint store are baked in with
// no runtime cost (e.g. "hidden dim 768 is divisible by 4" or "all member
// shapes are equal"); properties that depend on runtime dims become guarded
// variants dispatched per launch. The generic variant is always last and
// unconditional, so any shape executes.
#include <algorithm>

#include "kernel/kernel.h"

namespace disc {

void BuildVariants(FusedKernel* kernel, const SpecializeOptions& options) {
  const SymbolicDimManager& m = kernel->analysis_->manager();
  const FusionGroup& group = kernel->group_;
  std::vector<KernelVariant>& variants = kernel->variants_;
  variants.clear();

  const bool has_reduce = kernel->row_extent_.valid();

  // --- broadcast elimination (a property, applied to every variant) -------
  bool broadcast_free = false;
  if (options.enable_specialization && options.enable_broadcast_elimination) {
    broadcast_free = true;
    const SymShape& root_shape =
        kernel->analysis_->GetShape(group.root->output(0));
    DimExpr root_numel = m.Canonicalize(SymShapeNumElements(root_shape));
    auto covers_root_space = [&](const Value* v) {
      const SymShape& s = kernel->analysis_->GetShape(v);
      DimExpr n = m.Canonicalize(SymShapeNumElements(s));
      return n.Equals(root_numel) || m.IsSameNumElements(s, root_shape);
    };
    for (const Node* node : group.nodes) {
      if (IsReduction(node->kind())) {
        broadcast_free = false;  // two index spaces by construction
        break;
      }
      if (node->op_class() == OpClass::kInjective &&
          node->kind() != OpKind::kReshape) {
        broadcast_free = false;  // real index remapping
        break;
      }
      if (!covers_root_space(node->output(0))) {
        broadcast_free = false;
        break;
      }
      for (const Value* operand : node->operands()) {
        DimExpr n = m.Canonicalize(
            SymShapeNumElements(kernel->analysis_->GetShape(operand)));
        if (!n.IsConstValue(1) && !covers_root_space(operand)) {
          broadcast_free = false;
          break;
        }
      }
      if (!broadcast_free) break;
    }
  }

  // --- speculative exact-shape variants (runtime feedback) -----------------
  // If every symbol this kernel's launch domain depends on carries likely
  // values, emit fully static variants for the hottest combinations; each
  // is admitted by an equality guard and costed like static codegen.
  if (options.enable_specialization && options.enable_shape_speculation) {
    DimExpr domain = m.Canonicalize(kernel->root_elements_);
    std::vector<SymbolId> symbols = domain.CollectSymbols();
    if (has_reduce) {
      for (SymbolId s :
           m.Canonicalize(kernel->row_extent_).CollectSymbols()) {
        if (std::find(symbols.begin(), symbols.end(), s) == symbols.end()) {
          symbols.push_back(s);
        }
      }
    }
    if (!symbols.empty()) {
      // Combination k uses each symbol's k-th most recent likely value.
      for (int k = 0; k < options.max_speculative_variants; ++k) {
        SymbolBindings speculation;
        bool complete = true;
        for (SymbolId s : symbols) {
          const auto& likely = m.GetLikelyValues(s);
          if (static_cast<int>(likely.size()) <= k) {
            complete = false;
            break;
          }
          speculation[m.Find(s)] = likely[likely.size() - 1 - k];
        }
        if (!complete) break;
        KernelVariant exact;
        exact.exact_shape = true;
        exact.broadcast_free = true;  // indexing fully resolved statically
        auto domain_value = domain.Evaluate(speculation);
        if (!domain_value.ok()) break;
        exact.vector_width =
            (*domain_value % options.vector_width == 0) ? options.vector_width
                                                        : 1;
        exact.name = "exact_" + std::to_string(*domain_value);
        if (has_reduce) {
          auto row = m.Canonicalize(kernel->row_extent_).Evaluate(speculation);
          auto rows = m.Canonicalize(kernel->row_count_).Evaluate(speculation);
          if (!row.ok() || !rows.ok()) break;
          exact.schedule = (*row <= options.warp_row_threshold &&
                            *rows >= options.warp_min_rows)
                               ? ReduceSchedule::kWarpPerRow
                               : ReduceSchedule::kBlockPerRow;
        }
        for (SymbolId s : symbols) {
          exact.guard.predicates.push_back(
              {DimPredicate::Kind::kEqual, DimExpr::Symbol(m.Find(s)),
               speculation.at(m.Find(s))});
        }
        variants.push_back(std::move(exact));
      }
    }
  }

  if (!has_reduce) {
    // --- vectorized loop variant ------------------------------------------
    if (options.enable_specialization && options.enable_vectorization &&
        options.vector_width > 1) {
      KernelVariant vec;
      vec.name = "vec" + std::to_string(options.vector_width);
      vec.vector_width = options.vector_width;
      vec.broadcast_free = broadcast_free;
      if (!m.IsDivisibleBy(kernel->root_elements_, options.vector_width)) {
        // Not provable at compile time: admit at runtime when divisible.
        vec.guard.predicates.push_back(
            {DimPredicate::Kind::kDivisibleBy, kernel->root_elements_,
             options.vector_width});
      }
      variants.push_back(std::move(vec));
    }
    KernelVariant generic;
    generic.name = "generic";
    generic.broadcast_free = broadcast_free;
    variants.push_back(std::move(generic));
    return;
  }

  // --- reduce-bearing kernels ---------------------------------------------
  if (options.enable_specialization && options.enable_reduce_schedules) {
    KernelVariant warp;
    warp.name = "warp_per_row";
    warp.schedule = ReduceSchedule::kWarpPerRow;
    warp.broadcast_free = broadcast_free;
    auto row_ub = m.UpperBound(kernel->row_extent_);
    if (!row_ub.has_value() || *row_ub > options.warp_row_threshold) {
      warp.guard.predicates.push_back({DimPredicate::Kind::kLessEqual,
                                       kernel->row_extent_,
                                       options.warp_row_threshold});
    }
    // Few rows cannot fill the device a-warp-at-a-time; insist on enough
    // parallelism before taking the warp schedule.
    if (!kernel->row_count_.IsConst() ||
        kernel->row_count_.const_value() < options.warp_min_rows) {
      warp.guard.predicates.push_back({DimPredicate::Kind::kGreaterEqual,
                                       kernel->row_count_,
                                       options.warp_min_rows});
    }
    variants.push_back(std::move(warp));
  }
  KernelVariant block;
  block.name = "block_per_row";
  block.schedule = ReduceSchedule::kBlockPerRow;
  block.broadcast_free = broadcast_free;
  variants.push_back(std::move(block));
}

}  // namespace disc
