#include "kernel/kernel.h"

#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {

const char* ReduceScheduleName(ReduceSchedule schedule) {
  switch (schedule) {
    case ReduceSchedule::kNone:
      return "none";
    case ReduceSchedule::kWarpPerRow:
      return "warp_per_row";
    case ReduceSchedule::kBlockPerRow:
      return "block_per_row";
  }
  return "?";
}

std::string KernelVariant::ToString() const {
  std::ostringstream out;
  out << name;
  out << " [vec=" << vector_width;
  if (broadcast_free) out << ", bcast-free";
  if (exact_shape) out << ", exact-shape";
  if (schedule != ReduceSchedule::kNone) {
    out << ", " << ReduceScheduleName(schedule);
  }
  out << "] guard: " << guard.ToString();
  return out.str();
}

int64_t OpFlopCost(OpKind kind) {
  switch (kind) {
    case OpKind::kExp:
    case OpKind::kLog:
    case OpKind::kSqrt:
    case OpKind::kRsqrt:
    case OpKind::kTanh:
    case OpKind::kErf:
    case OpKind::kSigmoid:
    case OpKind::kPow:
      return 8;  // SFU-heavy transcendental
    case OpKind::kDiv:
    case OpKind::kReciprocal:
      return 4;
    case OpKind::kTranspose:
    case OpKind::kReshape:
    case OpKind::kBroadcastTo:
    case OpKind::kConcat:
    case OpKind::kSlice:
    case OpKind::kPad:
    case OpKind::kGather:
    case OpKind::kShapeOf:
    case OpKind::kDim:
    case OpKind::kConstant:
      return 0;  // pure data movement / host
    default:
      return 1;
  }
}

// Declared in specialize.cc.
void BuildVariants(FusedKernel* kernel, const SpecializeOptions& options);

FusedKernel::FusedKernel(FusionGroup group, const ShapeAnalysis* analysis,
                         const SpecializeOptions& options)
    : group_(std::move(group)), analysis_(analysis) {
  name_ = StrFormat("%s_fusion_%d", FusionKindName(group_.kind), group_.id);
  DISC_CHECK(group_.root != nullptr);
  root_elements_ = analysis_->manager().Canonicalize(
      SymShapeNumElements(analysis_->GetShape(group_.root->output(0))));
  // Row extent from the first reduction member, if any.
  for (const Node* node : group_.nodes) {
    if (!IsReduction(node->kind())) continue;
    const SymShape& in = analysis_->GetShape(node->operand(0));
    const auto& dims = node->GetIntListAttr("dims");
    std::vector<DimExpr> factors;
    for (int64_t d : dims) factors.push_back(in[d]);
    row_extent_ =
        analysis_->manager().Canonicalize(DimExpr::Mul(std::move(factors)));
    row_count_ = analysis_->manager().Canonicalize(
        DimExpr::FloorDiv(SymShapeNumElements(in), row_extent_));
    break;
  }
  BuildVariants(this, options);
}

std::vector<KernelVariant> FusedKernel::VariantsUnder(
    const SpecializeOptions& options) const {
  // Re-run variant generation on a scratch kernel over the same group and
  // analysis. Cheap (no codegen, just guard construction) and guarantees
  // the counterfactual uses exactly the compile-time preference order.
  FusedKernel scratch(group_, analysis_, options);
  return std::move(scratch.variants_);
}

Result<const KernelVariant*> FusedKernel::SelectVariant(
    const SymbolBindings& bindings) const {
  DISC_ASSIGN_OR_RETURN(int index, SelectVariantIndex(bindings));
  return &variants_[index];
}

Result<int> FusedKernel::SelectVariantIndex(
    const SymbolBindings& bindings) const {
  if (guard_mispredict_ && variants_.size() > 1) {
    // Injected guard miscompile: dispatch the first (most specialized)
    // variant without consulting its guard. At bindings the guard would
    // reject, this is exactly the wrong-variant bug the admission gate's
    // per-probe guard re-evaluation must catch.
    return 0;
  }
  for (size_t i = 0; i < variants_.size(); ++i) {
    DISC_ASSIGN_OR_RETURN(bool admitted,
                          variants_[i].guard.Evaluate(bindings));
    if (admitted) return static_cast<int>(i);
  }
  return Status::Internal("no variant admitted (missing generic fallback?)");
}

Result<KernelStats> FusedKernel::ComputeStats(
    const SymbolBindings& bindings, const KernelVariant& variant) const {
  KernelStats stats;
  auto numel_of = [&](const Value* v) -> Result<int64_t> {
    DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims,
                          analysis_->EvaluateShape(v, bindings));
    return Product(dims);
  };

  for (const Value* input : group_.inputs) {
    DISC_ASSIGN_OR_RETURN(int64_t n, numel_of(input));
    stats.bytes_read += n * DTypeSize(input->dtype());
  }
  for (const Value* output : group_.outputs) {
    DISC_ASSIGN_OR_RETURN(int64_t n, numel_of(output));
    stats.bytes_written += n * DTypeSize(output->dtype());
  }
  for (const Node* node : group_.nodes) {
    int64_t cost = OpFlopCost(node->kind());
    int64_t domain;
    if (IsReduction(node->kind())) {
      DISC_ASSIGN_OR_RETURN(domain, numel_of(node->operand(0)));
      cost = std::max<int64_t>(cost, 1);
    } else {
      DISC_ASSIGN_OR_RETURN(domain, numel_of(node->output(0)));
    }
    stats.flops += domain * cost;
    // Index arithmetic: eliminated by the broadcast-free specialization,
    // otherwise proportional to rank per element.
    if (!variant.broadcast_free) {
      stats.index_ops += domain * std::max<int64_t>(
                                      1, node->output(0)->rank());
    } else {
      stats.index_ops += domain;
    }
  }

  DISC_ASSIGN_OR_RETURN(int64_t root_elems,
                        root_elements_.Evaluate(bindings));
  int64_t row = 0;
  int64_t rows = 0;
  if (row_extent_.valid()) {
    DISC_ASSIGN_OR_RETURN(row, row_extent_.Evaluate(bindings));
    // Rows are counted over the reduce input space.
    for (const Node* node : group_.nodes) {
      if (IsReduction(node->kind())) {
        DISC_ASSIGN_OR_RETURN(int64_t full, numel_of(node->operand(0)));
        rows = row > 0 ? full / row : 0;
        break;
      }
    }
  }

  switch (variant.schedule) {
    case ReduceSchedule::kNone: {
      int64_t elems = CeilDiv(root_elems, variant.vector_width);
      stats.threads_per_block = 256;
      stats.num_blocks = std::max<int64_t>(1, CeilDiv(elems, 256));
      break;
    }
    case ReduceSchedule::kWarpPerRow: {
      stats.threads_per_block = 256;  // 8 warps per block
      stats.num_blocks = std::max<int64_t>(1, CeilDiv(rows, 8));
      break;
    }
    case ReduceSchedule::kBlockPerRow: {
      stats.threads_per_block =
          std::min<int64_t>(1024, std::max<int64_t>(32, RoundUp(row, 32)));
      stats.num_blocks = std::max<int64_t>(1, rows);
      break;
    }
  }
  if (kind() == FusionKind::kStitch) {
    // Each stitched stage stages one f32 row in shared memory; charge two
    // staging buffers (ping-pong).
    stats.shared_mem_bytes = row * 4 * 2;
  }
  return stats;
}

std::string FusedKernel::ToString() const {
  std::ostringstream out;
  out << name_ << " (" << FusionKindName(kind()) << ", " << group_.size()
      << " ops, domain=" << root_elements_.ToString();
  if (row_extent_.valid()) out << ", row=" << row_extent_.ToString();
  out << ")\n";
  for (const KernelVariant& variant : variants_) {
    out << "  variant " << variant.ToString() << "\n";
  }
  return out.str();
}

}  // namespace disc
