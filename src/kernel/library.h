// Library-backed kernels (the cuBLAS/cuDNN analog).
//
// MatMul and Conv2D are not code-generated — like the paper's system, the
// compiler schedules them as calls into a tuned vendor library and fuses
// the memory-bound operators around them. Execution reuses the reference
// evaluator; this header supplies the resource footprint the device model
// charges for the call.
#ifndef DISC_KERNEL_LIBRARY_H_
#define DISC_KERNEL_LIBRARY_H_

#include "ir/graph.h"
#include "shape/shape_analysis.h"
#include "support/status.h"

namespace disc {

struct LibraryCallStats {
  int64_t flops = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
};

/// \brief True for ops dispatched to the vendor library.
inline bool IsLibraryOp(OpKind kind) {
  return GetOpInfo(kind).op_class == OpClass::kLibrary;
}

/// \brief Footprint of a library call under concrete bindings.
Result<LibraryCallStats> ComputeLibraryStats(const Node& node,
                                             const ShapeAnalysis& analysis,
                                             const SymbolBindings& bindings);

}  // namespace disc

#endif  // DISC_KERNEL_LIBRARY_H_
