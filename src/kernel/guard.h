// Runtime guard predicates for specialized kernel variants.
//
// This is the "compile-time and runtime combined" half of the paper's code
// generation: at compile time the specializer emits several variants of a
// kernel, each protected by a guard over *symbolic* dim expressions; at
// runtime the dispatcher evaluates the guards against the solved symbol
// bindings (cheap host-side integer math) and launches the first variant
// whose guard holds.
#ifndef DISC_KERNEL_GUARD_H_
#define DISC_KERNEL_GUARD_H_

#include <string>
#include <vector>

#include "shape/dim_expr.h"
#include "shape/shape_analysis.h"

namespace disc {

/// One atomic condition over a dim expression.
struct DimPredicate {
  enum class Kind {
    kDivisibleBy,   // expr % operand == 0
    kLessEqual,     // expr <= operand
    kGreaterEqual,  // expr >= operand
    kEqual,         // expr == operand
  };
  Kind kind;
  DimExpr expr;
  int64_t operand;

  Result<bool> Evaluate(const SymbolBindings& bindings) const;
  std::string ToString() const;
};

/// Conjunction of predicates; empty == always true.
struct Guard {
  std::vector<DimPredicate> predicates;

  bool always_true() const { return predicates.empty(); }
  /// \brief True iff every predicate holds under the bindings.
  Result<bool> Evaluate(const SymbolBindings& bindings) const;
  std::string ToString() const;
};

}  // namespace disc

#endif  // DISC_KERNEL_GUARD_H_
