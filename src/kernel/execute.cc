// CPU execution of fused kernels: a recursive per-element evaluator over
// the fused subgraph.
//
// For every output element the evaluator walks the expression DAG back to
// the group inputs, applying each injective op's index pullback (transpose
// permutes, reshape passes the linear index through, broadcast clamps
// size-1 dims, slice/pad/concat/gather remap) and each elementwise op's
// scalar function. Reduction members are evaluated once per output cell and
// memoized — the same reuse a GPU kStitch kernel gets from staging rows in
// shared memory.
#include <unordered_set>

#include "ir/eval.h"
#include "kernel/kernel.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {
namespace {

std::vector<int64_t> FlatToMulti(int64_t flat,
                                 const std::vector<int64_t>& dims) {
  std::vector<int64_t> idx(dims.size());
  for (int64_t i = static_cast<int64_t>(dims.size()) - 1; i >= 0; --i) {
    idx[i] = flat % dims[i];
    flat /= dims[i];
  }
  return idx;
}

int64_t MultiToFlat(const std::vector<int64_t>& idx,
                    const std::vector<int64_t>& dims) {
  int64_t flat = 0;
  for (size_t i = 0; i < dims.size(); ++i) flat = flat * dims[i] + idx[i];
  return flat;
}

class GroupEvaluator {
 public:
  GroupEvaluator(const FusionGroup& group, const ShapeAnalysis* analysis,
                 const SymbolBindings& bindings,
                 std::unordered_map<const Value*, Tensor>* env)
      : group_(group), analysis_(analysis), bindings_(bindings), env_(env) {
    for (const Node* node : group_.nodes) inside_.insert(node);
  }

  Status Run() {
    for (const Value* output : group_.outputs) {
      const std::vector<int64_t>& dims = DimsOf(output);
      Tensor result(output->dtype(), dims);
      int64_t n = result.num_elements();
      for (int64_t i = 0; i < n; ++i) {
        DISC_ASSIGN_OR_RETURN(double v, ElementAt(output, i));
        result.SetElementFromDouble(i, v);
      }
      env_->emplace(output, std::move(result));
    }
    return Status::OK();
  }

 private:
  // Concrete dims of a value under the current bindings. Binding
  // completeness was validated when the runtime solved the symbols, so a
  // failure here is a compiler bug.
  const std::vector<int64_t>& DimsOf(const Value* v) {
    auto it = dims_cache_.find(v);
    if (it == dims_cache_.end()) {
      auto dims = analysis_->EvaluateShape(v, bindings_);
      DISC_CHECK(dims.ok()) << "shape evaluation failed for %" << v->id()
                            << ": " << dims.status().ToString();
      it = dims_cache_.emplace(v, std::move(dims).value()).first;
    }
    return it->second;
  }

  Result<double> ElementAt(const Value* v, int64_t flat) {
    // Group inputs (and pre-materialized values) come from the environment.
    if (auto it = env_->find(v); it != env_->end()) {
      return it->second.ElementAsDouble(flat);
    }
    const Node* node = v->producer();
    DISC_CHECK(node != nullptr && inside_.count(node))
        << "value %" << v->id() << " not reachable inside the fused group";

    switch (node->kind()) {
      case OpKind::kIota: {
        const std::vector<int64_t>& dims = DimsOf(v);
        auto idx = FlatToMulti(flat, dims);
        return static_cast<double>(idx[node->GetIntAttr("axis", 0)]);
      }
      case OpKind::kTranspose: {
        const std::vector<int64_t>& out_dims = DimsOf(v);
        const std::vector<int64_t>& in_dims = DimsOf(node->operand(0));
        const auto& perm = node->GetIntListAttr("perm");
        auto out_idx = FlatToMulti(flat, out_dims);
        std::vector<int64_t> in_idx(in_dims.size());
        for (size_t i = 0; i < perm.size(); ++i) {
          in_idx[perm[i]] = out_idx[i];
        }
        return ElementAt(node->operand(0), MultiToFlat(in_idx, in_dims));
      }
      case OpKind::kReshape:
        return ElementAt(node->operand(0), flat);  // linear passthrough
      case OpKind::kBroadcastTo: {
        const std::vector<int64_t>& out_dims = DimsOf(v);
        const std::vector<int64_t>& in_dims = DimsOf(node->operand(0));
        auto out_idx = FlatToMulti(flat, out_dims);
        int64_t offset = static_cast<int64_t>(out_dims.size()) -
                         static_cast<int64_t>(in_dims.size());
        std::vector<int64_t> in_idx(in_dims.size());
        for (size_t i = 0; i < in_dims.size(); ++i) {
          in_idx[i] = in_dims[i] == 1 ? 0 : out_idx[offset + i];
        }
        return ElementAt(node->operand(0), MultiToFlat(in_idx, in_dims));
      }
      case OpKind::kSlice: {
        const std::vector<int64_t>& out_dims = DimsOf(v);
        const std::vector<int64_t>& in_dims = DimsOf(node->operand(0));
        const auto& starts = node->GetIntListAttr("starts");
        const auto& steps = node->GetIntListAttr("steps");
        auto out_idx = FlatToMulti(flat, out_dims);
        std::vector<int64_t> in_idx(in_dims.size());
        for (size_t i = 0; i < in_dims.size(); ++i) {
          in_idx[i] = starts[i] + out_idx[i] * steps[i];
        }
        return ElementAt(node->operand(0), MultiToFlat(in_idx, in_dims));
      }
      case OpKind::kPad: {
        const std::vector<int64_t>& out_dims = DimsOf(v);
        const std::vector<int64_t>& in_dims = DimsOf(node->operand(0));
        const auto& low = node->GetIntListAttr("pads_low");
        auto out_idx = FlatToMulti(flat, out_dims);
        std::vector<int64_t> in_idx(in_dims.size());
        for (size_t i = 0; i < in_dims.size(); ++i) {
          in_idx[i] = out_idx[i] - low[i];
          if (in_idx[i] < 0 || in_idx[i] >= in_dims[i]) {
            return node->GetFloatAttr("pad_value", 0.0);
          }
        }
        return ElementAt(node->operand(0), MultiToFlat(in_idx, in_dims));
      }
      case OpKind::kConcat: {
        const std::vector<int64_t>& out_dims = DimsOf(v);
        int64_t axis = node->GetIntAttr("axis", 0);
        auto out_idx = FlatToMulti(flat, out_dims);
        int64_t pos = out_idx[axis];
        for (const Value* part : node->operands()) {
          const std::vector<int64_t>& part_dims = DimsOf(part);
          if (pos < part_dims[axis]) {
            auto in_idx = out_idx;
            in_idx[axis] = pos;
            return ElementAt(part, MultiToFlat(in_idx, part_dims));
          }
          pos -= part_dims[axis];
        }
        return Status::Internal("concat index out of range");
      }
      case OpKind::kGather: {
        const std::vector<int64_t>& out_dims = DimsOf(v);
        const std::vector<int64_t>& data_dims = DimsOf(node->operand(0));
        const std::vector<int64_t>& index_dims = DimsOf(node->operand(1));
        int64_t axis = node->GetIntAttr("axis", 0);
        auto out_idx = FlatToMulti(flat, out_dims);
        std::vector<int64_t> gather_idx(
            out_idx.begin() + axis,
            out_idx.begin() + axis + index_dims.size());
        DISC_ASSIGN_OR_RETURN(
            double picked,
            ElementAt(node->operand(1), MultiToFlat(gather_idx, index_dims)));
        int64_t row = static_cast<int64_t>(picked);
        if (row < 0 || row >= data_dims[axis]) {
          return Status::InvalidArgument("gather index out of bounds");
        }
        std::vector<int64_t> data_idx(data_dims.size());
        for (int64_t i = 0; i < axis; ++i) data_idx[i] = out_idx[i];
        data_idx[axis] = row;
        for (size_t i = axis + 1; i < data_dims.size(); ++i) {
          data_idx[i] = out_idx[index_dims.size() + i - 1];
        }
        return ElementAt(node->operand(0), MultiToFlat(data_idx, data_dims));
      }

      case OpKind::kReduceSum:
      case OpKind::kReduceMax:
      case OpKind::kReduceMin:
      case OpKind::kReduceMean:
        return ReduceAt(node, flat);

      case OpKind::kSelect: {
        DISC_ASSIGN_OR_RETURN(double pred, OperandAt(node, 0, v, flat));
        return OperandAt(node, pred != 0.0 ? 1 : 2, v, flat);
      }

      default:
        break;
    }
    // Elementwise unary/binary with implicit broadcast.
    const OpInfo& info = GetOpInfo(node->kind());
    DISC_CHECK(info.op_class == OpClass::kElementwise)
        << "unsupported op inside fused group: " << info.name;
    if (node->num_operands() == 1) {
      DISC_ASSIGN_OR_RETURN(double x, OperandAt(node, 0, v, flat));
      return ApplyUnaryScalar(node->kind(), x);
    }
    DISC_ASSIGN_OR_RETURN(double a, OperandAt(node, 0, v, flat));
    DISC_ASSIGN_OR_RETURN(double b, OperandAt(node, 1, v, flat));
    return ApplyBinaryScalar(node->kind(), a, b,
                             node->operand(0)->dtype());
  }

  // Value of operand `i` of an elementwise node at the node's output index
  // `flat`, applying numpy broadcast alignment.
  Result<double> OperandAt(const Node* node, int operand_index,
                           const Value* out, int64_t flat) {
    const Value* operand = node->operand(operand_index);
    const std::vector<int64_t>& out_dims = DimsOf(out);
    const std::vector<int64_t>& in_dims = DimsOf(operand);
    if (in_dims == out_dims) return ElementAt(operand, flat);
    auto out_idx = FlatToMulti(flat, out_dims);
    int64_t offset = static_cast<int64_t>(out_dims.size()) -
                     static_cast<int64_t>(in_dims.size());
    std::vector<int64_t> in_idx(in_dims.size());
    for (size_t i = 0; i < in_dims.size(); ++i) {
      in_idx[i] = in_dims[i] == 1 ? 0 : out_idx[offset + i];
    }
    return ElementAt(operand, MultiToFlat(in_idx, in_dims));
  }

  // Reduction value at output cell `flat`, memoized ("shared memory").
  Result<double> ReduceAt(const Node* node, int64_t flat) {
    auto& memo = reduce_memo_[node];
    if (auto it = memo.find(flat); it != memo.end()) return it->second;

    const Value* in = node->operand(0);
    const std::vector<int64_t>& in_dims = DimsOf(in);
    const std::vector<int64_t>& out_dims = DimsOf(node->output(0));
    const auto& rdims = node->GetIntListAttr("dims");
    bool keep = node->GetIntAttr("keep_dims", 0) != 0;
    std::vector<bool> reduced(in_dims.size(), false);
    for (int64_t d : rdims) reduced[d] = true;

    // Fixed (non-reduced) coordinates from the output index.
    auto out_idx = FlatToMulti(flat, out_dims);
    std::vector<int64_t> base(in_dims.size(), 0);
    size_t out_pos = 0;
    for (size_t i = 0; i < in_dims.size(); ++i) {
      if (reduced[i]) {
        if (keep) ++out_pos;  // output holds a 1 there
      } else {
        base[i] = out_idx[out_pos++];
      }
    }
    // Iterate the reduced subspace.
    std::vector<int64_t> reduce_dims_sizes;
    std::vector<size_t> reduce_positions;
    for (size_t i = 0; i < in_dims.size(); ++i) {
      if (reduced[i]) {
        reduce_dims_sizes.push_back(in_dims[i]);
        reduce_positions.push_back(i);
      }
    }
    int64_t count = Product(reduce_dims_sizes);
    double acc;
    switch (node->kind()) {
      case OpKind::kReduceMax:
        acc = -std::numeric_limits<double>::infinity();
        break;
      case OpKind::kReduceMin:
        acc = std::numeric_limits<double>::infinity();
        break;
      default:
        acc = 0.0;
    }
    std::vector<int64_t> ridx(reduce_dims_sizes.size(), 0);
    for (int64_t step = 0; step < count; ++step) {
      auto idx = base;
      for (size_t i = 0; i < reduce_positions.size(); ++i) {
        idx[reduce_positions[i]] = ridx[i];
      }
      DISC_ASSIGN_OR_RETURN(double v,
                            ElementAt(in, MultiToFlat(idx, in_dims)));
      switch (node->kind()) {
        case OpKind::kReduceMax:
          acc = std::max(acc, v);
          break;
        case OpKind::kReduceMin:
          acc = std::min(acc, v);
          break;
        default:
          acc += v;
      }
      // Advance ridx.
      for (int64_t i = static_cast<int64_t>(ridx.size()) - 1; i >= 0; --i) {
        if (++ridx[i] < reduce_dims_sizes[i]) break;
        ridx[i] = 0;
      }
    }
    if (node->kind() == OpKind::kReduceMean && count > 0) {
      acc /= static_cast<double>(count);
    }
    memo[flat] = acc;
    return acc;
  }

  const FusionGroup& group_;
  const ShapeAnalysis* analysis_;
  const SymbolBindings& bindings_;
  std::unordered_map<const Value*, Tensor>* env_;
  std::unordered_set<const Node*> inside_;
  std::unordered_map<const Value*, std::vector<int64_t>> dims_cache_;
  std::unordered_map<const Node*, std::unordered_map<int64_t, double>>
      reduce_memo_;
};

}  // namespace

Status FusedKernel::Execute(
    const SymbolBindings& bindings,
    std::unordered_map<const Value*, Tensor>* env) const {
  GroupEvaluator evaluator(group_, analysis_, bindings, env);
  DISC_RETURN_IF_ERROR(evaluator.Run());
  if (miscompiled_) {
    // Injected miscompile: perturb one element of the first group output.
    // Deterministic (same wrong answer every run) so differential
    // validation can prove exactly which artifact is bad.
    for (const Value* output : group_.outputs) {
      auto it = env->find(output);
      if (it == env->end() || it->second.num_elements() == 0) continue;
      it->second.SetElementFromDouble(0,
                                      it->second.ElementAsDouble(0) + 1.0);
      break;
    }
  }
  return Status::OK();
}

}  // namespace disc
