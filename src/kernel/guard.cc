#include "kernel/guard.h"

#include "support/failpoint.h"
#include "support/string_util.h"

namespace disc {

Result<bool> DimPredicate::Evaluate(const SymbolBindings& bindings) const {
  DISC_ASSIGN_OR_RETURN(int64_t v, expr.Evaluate(bindings));
  switch (kind) {
    case Kind::kDivisibleBy:
      return operand != 0 && v % operand == 0;
    case Kind::kLessEqual:
      return v <= operand;
    case Kind::kGreaterEqual:
      return v >= operand;
    case Kind::kEqual:
      return v == operand;
  }
  return Status::Internal("bad predicate kind");
}

std::string DimPredicate::ToString() const {
  switch (kind) {
    case Kind::kDivisibleBy:
      return StrFormat("%s %% %lld == 0", expr.ToString().c_str(),
                       static_cast<long long>(operand));
    case Kind::kLessEqual:
      return StrFormat("%s <= %lld", expr.ToString().c_str(),
                       static_cast<long long>(operand));
    case Kind::kGreaterEqual:
      return StrFormat("%s >= %lld", expr.ToString().c_str(),
                       static_cast<long long>(operand));
    case Kind::kEqual:
      return StrFormat("%s == %lld", expr.ToString().c_str(),
                       static_cast<long long>(operand));
  }
  return "?";
}

Result<bool> Guard::Evaluate(const SymbolBindings& bindings) const {
  // Fault seam: guard evaluation is the runtime's admission check for
  // specialized variants; an injected failure here models a corrupted
  // binding table and must surface as a failed Run, not a wrong variant.
  DISC_INJECT_FAILPOINT("kernel.guard");
  for (const DimPredicate& p : predicates) {
    DISC_ASSIGN_OR_RETURN(bool ok, p.Evaluate(bindings));
    if (!ok) return false;
  }
  return true;
}

std::string Guard::ToString() const {
  if (predicates.empty()) return "true";
  return JoinMapped(predicates, " && ",
                    [](const DimPredicate& p) { return p.ToString(); });
}

}  // namespace disc
