#include "decode/decode_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "support/artifact_dump.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

const char* DecodePolicyName(DecodePolicy policy) {
  switch (policy) {
    case DecodePolicy::kContinuous:
      return "continuous";
    case DecodePolicy::kWholeRequest:
      return "whole-request";
  }
  return "?";
}

namespace {

/// Mutable per-sequence replay state. Preemption is modeled as swap-out:
/// the KV blocks recycle but the sequence's progress survives, so resume
/// re-grants blocks for the full kv length (no recompute on the timing
/// path; the numeric replay in decode_replay.cc rebuilds caches for real).
struct SeqState {
  DecodeRequest req;
  int64_t generated = 0;
  /// Whole-request batching: done generating but still holding its padded
  /// row and KV blocks until the whole batch drains.
  bool frozen = false;
  double first_join_us = -1.0;
  /// While mid-flight but out of the batch (preempted): when it left.
  double out_since_us = 0.0;
  /// Last token completion (join time before the first token) — TBT gaps
  /// measure from here, so a preemption gap shows up as client stutter.
  double last_token_us = 0.0;
  PhaseLedger ledger;
  int64_t retries = 0;
  int64_t preempt_count = 0;
  bool degraded = false;

  /// KV entries the next step attends to (prompt + generated so far).
  int64_t kv_len() const { return req.prompt_len + generated; }
  /// Final cache length after the last decode step.
  int64_t total_len() const { return req.prompt_len + req.decode_len; }
};

std::vector<double> SortedCopy(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

Result<DecodeStats> SimulateDecode(Engine* engine,
                                   const DecodeShapeFn& shape_fn,
                                   const std::vector<DecodeRequest>& requests,
                                   const DecodeOptions& options,
                                   const DeviceSpec& device) {
  if (engine == nullptr) {
    return Status::InvalidArgument("SimulateDecode: null engine");
  }
  if (options.max_batch <= 0) {
    return Status::InvalidArgument("SimulateDecode: max_batch must be > 0");
  }
  for (const DecodeRequest& r : requests) {
    if (r.prompt_len <= 0 || r.decode_len <= 0) {
      return Status::InvalidArgument(StrFormat(
          "SimulateDecode: request %lld needs prompt_len > 0 and "
          "decode_len > 0",
          static_cast<long long>(r.id)));
    }
  }
  const bool continuous = options.policy == DecodePolicy::kContinuous;

  // Sequence table in (arrival, id) order — the same total order
  // FormBatches uses, so decode replays are permutation-independent too.
  std::vector<SeqState> seqs;
  seqs.reserve(requests.size());
  for (const DecodeRequest& r : requests) {
    SeqState s;
    s.req = r;
    if (s.req.trace_id == 0) s.req.trace_id = RequestContext::MintTraceId();
    seqs.push_back(std::move(s));
  }
  std::stable_sort(seqs.begin(), seqs.end(),
                   [](const SeqState& a, const SeqState& b) {
                     if (a.req.arrival_us != b.req.arrival_us) {
                       return a.req.arrival_us < b.req.arrival_us;
                     }
                     return a.req.id < b.req.id;
                   });

  KvCachePool pool(options.kv);
  DecodeStats stats;
  stats.policy = DecodePolicyName(options.policy);
  ServingStats& sv = stats.serving;
  sv.submitted = static_cast<int64_t>(seqs.size());

  const int64_t hits_before = engine->stats().launch_plan_hits;
  const int64_t misses_before = engine->stats().launch_plan_misses;
  TraceSession& trace = TraceSession::Global();
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* launch_counter = registry.GetCounter("runtime.kernel.launches");
  Counter* memory_bound_counter =
      registry.GetCounter("runtime.kernel.memory_bound");
  const int64_t launches_before = launch_counter->value();
  const int64_t memory_bound_before = memory_bound_counter->value();
  Histogram* occupancy_hist = registry.GetHistogram(
      "decode.step_occupancy", {1, 2, 4, 8, 16, 32, 64});
  Histogram* tbt_hist = registry.GetHistogram("decode.tbt_us");
  Histogram* waste_hist = registry.GetHistogram(
      "decode.step_pad_waste_pct", {0, 5, 10, 20, 30, 40, 50, 75, 100});
  CountMetric("decode.requests", sv.submitted);

  double clock_us = 0.0;
  size_t arrival_cursor = 0;
  std::vector<size_t> running;  // indices into seqs, oldest join first
  std::deque<size_t> wait_queue;
  std::vector<double> latencies;
  std::vector<double> tbt_gaps;
  int64_t total_real_tokens = 0;
  int64_t total_padded_tokens = 0;

  const int64_t block_tokens = options.kv.block_tokens;
  auto pad_batch = [&](int64_t b) {
    return options.pad_pow2 ? NextPowerOfTwo(b) : b;
  };
  // KV padded to the block quantum: signatures repeat every block_tokens
  // steps of growth, so the launch-plan cache amortizes across steps.
  auto pad_kv = [&](int64_t t) {
    return options.pad_pow2 ? NextPowerOfTwo(t) : RoundUp(t, block_tokens);
  };

  auto live_count = [&]() {
    int64_t n = 0;
    for (size_t idx : running) {
      if (!seqs[idx].frozen) ++n;
    }
    return n;
  };
  auto max_live_kv = [&]() {
    int64_t t = 1;
    for (size_t idx : running) {
      if (!seqs[idx].frozen) t = std::max(t, seqs[idx].kv_len());
    }
    return t;
  };

  auto fail_seq = [&](size_t idx, const Status& error) {
    ++sv.failed;
    const std::string code = StatusCodeToString(error.code());
    ++sv.error_counts[code];
    CountMetric("serving.errors." + code);
    pool.Release(static_cast<int64_t>(idx));
  };

  // Preempt: recycle the victim's blocks, requeue it at the FRONT of the
  // wait queue (resume priority — it already consumed device time, and
  // finishing it releases blocks fastest). `backoff_so_far_us` is retry
  // backoff the victim sat through in the current step before being
  // evicted; it goes to the ledger now because the victim will not be in
  // the batch when the step's timing lands.
  auto preempt = [&](size_t victim, double now_us, double backoff_so_far_us) {
    SeqState& s = seqs[victim];
    pool.Release(static_cast<int64_t>(victim));
    running.erase(std::find(running.begin(), running.end(), victim));
    wait_queue.push_front(victim);
    s.out_since_us = now_us;
    s.ledger.backoff_us += backoff_so_far_us;
    ++s.preempt_count;
    ++sv.preemptions;
    CountMetric("decode.preemptions");
    if (trace.enabled()) {
      trace.AddCompleteEvent(
          "preempt", "decode.step", now_us, /*dur_us=*/-1.0,
          TraceSession::kSimPid, /*tid=*/0,
          {{"seq", std::to_string(s.req.id)},
           {"generated", std::to_string(s.generated)},
           {"kv_blocks_freed", std::to_string(pool.stats().block_recycles)}});
    }
  };

  // Lowest-progress victim (fewest generated tokens; ties go to the later
  // arrival, so older work survives). Never the frozen — they hold no
  // growth and already completed.
  auto pick_victim = [&]() -> size_t {
    size_t victim = running.front();
    for (size_t idx : running) {
      const SeqState& s = seqs[idx];
      const SeqState& v = seqs[victim];
      if (s.frozen) continue;
      if (seqs[victim].frozen || s.generated < v.generated ||
          (s.generated == v.generated &&
           s.req.arrival_us > v.req.arrival_us)) {
        victim = idx;
      }
    }
    return victim;
  };

  // Admission gate: KV blocks first (the pool IS the capacity), then the
  // engine's symbolic activation peak for the would-be step shape plus all
  // committed KV bytes against the memory budget — the PR 6
  // PredictPeakBytes admission extended with the cache footprint.
  auto can_admit = [&](const SeqState& s) {
    // Continuous: blocks for the current cache plus the entry this step
    // appends (so a fresh join never immediately preempts someone in the
    // growth phase). Whole-request: the full eventual footprint up front —
    // the classic over-reservation continuous batching exists to avoid.
    const int64_t reserve_tokens =
        continuous ? s.kv_len() + 1 : s.total_len();
    const int64_t blocks = pool.BlocksFor(reserve_tokens);
    if (!pool.CanReserve(blocks)) return false;
    if (options.memory_limit_bytes > 0) {
      const int64_t b = pad_batch(static_cast<int64_t>(running.size()) + 1);
      const int64_t t = pad_kv(std::max(max_live_kv(), s.kv_len()));
      Result<int64_t> predicted =
          engine->PredictPeakBytes(shape_fn(b, t));
      const int64_t kv_bytes =
          pool.committed_bytes() + blocks * pool.block_bytes();
      // A failed or absent activation prediction (0) gates on the KV
      // footprint alone — the pool's committed bytes are always known.
      const int64_t activations =
          predicted.ok() ? std::max<int64_t>(*predicted, 0) : 0;
      if (activations + kv_bytes > options.memory_limit_bytes) {
        return false;
      }
    }
    return true;
  };

  auto admit = [&](size_t idx) {
    SeqState& s = seqs[idx];
    const int64_t reserve_tokens =
        continuous ? s.kv_len() + 1 : s.total_len();
    Status st = pool.Reserve(static_cast<int64_t>(idx), reserve_tokens);
    DISC_CHECK(st.ok()) << st.ToString();
    running.push_back(idx);
    ++sv.decode_joins;
    CountMetric("decode.joins");
    if (s.first_join_us < 0) {
      s.first_join_us = clock_us;
      s.ledger.queue_us = clock_us - s.req.arrival_us;
      s.last_token_us = clock_us;
    } else {
      s.ledger.decode_wait_us += clock_us - s.out_since_us;
      ++sv.resumes;
      CountMetric("decode.resumes");
    }
  };

  int64_t step_index = 0;
  while (arrival_cursor < seqs.size() || !wait_queue.empty() ||
         !running.empty()) {
    // Idle: jump the clock to the next arrival.
    if (running.empty() && wait_queue.empty()) {
      clock_us = std::max(clock_us, seqs[arrival_cursor].req.arrival_us);
    }
    while (arrival_cursor < seqs.size() &&
           seqs[arrival_cursor].req.arrival_us <= clock_us) {
      wait_queue.push_back(arrival_cursor);
      ++arrival_cursor;
    }

    // Backlog shedding — never-joined requests only, newest first.
    // Preempted sequences are mid-flight and always keep their place
    // (shedding them would break "preempted-and-resumed still completes").
    if (options.max_queue_depth > 0 &&
        static_cast<int64_t>(wait_queue.size()) > options.max_queue_depth) {
      for (auto it = wait_queue.end();
           it != wait_queue.begin() &&
           static_cast<int64_t>(wait_queue.size()) > options.max_queue_depth;) {
        --it;
        if (seqs[*it].first_join_us >= 0) continue;
        ++sv.shed;
        CountMetric("serving.shed");
        it = wait_queue.erase(it);
      }
    }

    // Join. Continuous: any step boundary with a free slot. Whole-request:
    // only into an empty device — membership is fixed until the batch
    // drains (the baseline's defining restriction).
    const bool may_admit = continuous || running.empty();
    int64_t step_joins = 0;
    while (may_admit &&
           static_cast<int64_t>(running.size()) < options.max_batch &&
           !wait_queue.empty()) {
      const size_t idx = wait_queue.front();
      if (!can_admit(seqs[idx])) {
        if (!running.empty()) break;
        // Livelock guard: nothing is running, so nothing will ever free
        // capacity for this sequence — it can never run.
        wait_queue.pop_front();
        fail_seq(idx, Status::ResourceExhausted(
                          "sequence cannot fit even on an empty device"));
        continue;
      }
      wait_queue.pop_front();
      admit(idx);
      ++step_joins;
    }
    if (running.empty()) continue;

    // Growth: every live sequence gets room for the KV entry this step
    // appends. Whole-request reserved its full footprint at join, so this
    // is the continuous path's per-block lazy acquisition; exhaustion is
    // answered by the decode rung of the degradation ladder — preempt the
    // lowest-progress sequence — instead of failing the batch.
    int64_t step_preempts = 0;
    if (continuous) {
      for (size_t pos = 0; pos < running.size();) {
        const size_t idx = running[pos];
        Status st =
            pool.Grow(static_cast<int64_t>(idx), seqs[idx].kv_len() + 1);
        if (st.ok()) {
          ++pos;
          continue;
        }
        if (running.size() == 1) {
          // No one left to evict: the sequence itself cannot continue.
          running.erase(running.begin() + static_cast<int64_t>(pos));
          fail_seq(idx, st);
          break;
        }
        const size_t victim = pick_victim();
        const size_t victim_pos = static_cast<size_t>(
            std::find(running.begin(), running.end(), victim) -
            running.begin());
        preempt(victim, clock_us, /*backoff_so_far_us=*/0.0);
        ++step_preempts;
        if (victim_pos < pos) --pos;
        // Retry the same sequence's growth against the freed blocks.
      }
      if (running.empty()) continue;
    }

    // Ragged step batch: occupancy is whoever survived join/growth, KV
    // pads to the block quantum (or pow2 grid) of the longest live
    // sequence. Frozen whole-request rows pad the batch but attend
    // nothing.
    int64_t occupancy = live_count();
    if (occupancy == 0) {
      // Whole-request batch fully drained via a failure path; recycle.
      for (size_t idx : running) pool.Release(static_cast<int64_t>(idx));
      running.clear();
      continue;
    }
    int64_t padded_batch = pad_batch(static_cast<int64_t>(running.size()));
    int64_t padded_kv = pad_kv(max_live_kv());
    auto shapes = shape_fn(padded_batch, padded_kv);
    std::string signature =
        StrFormat("%lldx%lld", static_cast<long long>(padded_batch),
                  static_cast<long long>(padded_kv));

    // Attribute the step's downstream spans (Executable::Run, compile
    // jobs) to the oldest live member.
    uint64_t step_trace_id = 0;
    for (size_t idx : running) {
      if (!seqs[idx].frozen) {
        step_trace_id = seqs[idx].req.trace_id;
        break;
      }
    }
    RequestContext step_context(step_trace_id);
    RequestContextScope context_scope(&step_context);

    // Launch with the decode ladder: retryable non-memory errors back off
    // and retry (PR 4 semantics); ResourceExhausted sheds load *within*
    // the batch — preempt the lowest-progress sequence, shrink the
    // signature, relaunch immediately (pressure relief, not a transient).
    const double first_start = clock_us;
    double start = first_start;
    const int64_t fallback_before = engine->stats().fallback_queries;
    Result<EngineTiming> attempt_result = EngineTiming{};
    int64_t step_retries = 0;
    for (int64_t attempt = 0;;) {
      engine->SetSimulatedTimeUs(start);
      attempt_result = engine->Query(shapes, device);
      if (attempt_result.ok()) break;
      const Status& error = attempt_result.status();
      if (continuous && error.code() == StatusCode::kResourceExhausted &&
          live_count() > 1) {
        preempt(pick_victim(), start, start - first_start);
        ++step_preempts;
        occupancy = live_count();
        padded_batch = pad_batch(static_cast<int64_t>(running.size()));
        padded_kv = pad_kv(max_live_kv());
        shapes = shape_fn(padded_batch, padded_kv);
        signature =
            StrFormat("%lldx%lld", static_cast<long long>(padded_batch),
                      static_cast<long long>(padded_kv));
        continue;  // bounded: each preemption shrinks the batch
      }
      if (!error.IsRetryable() || attempt >= options.max_retries) break;
      ++sv.retries;
      ++step_retries;
      CountMetric("serving.retries");
      start += options.retry_backoff_us * std::pow(2.0, attempt);
      ++attempt;
    }

    if (!attempt_result.ok()) {
      // Step dead after the ladder: every live member fails; frozen
      // members already completed and just lose their held blocks.
      const Status error = attempt_result.status();
      for (size_t idx : running) {
        SeqState& s = seqs[idx];
        if (s.frozen) {
          pool.Release(static_cast<int64_t>(idx));
        } else {
          fail_seq(idx, error);
        }
      }
      running.clear();
      clock_us = std::max(clock_us, start);
      if (trace.enabled()) {
        trace.AddCompleteEvent(
            "step-failed", "decode.step", start, /*dur_us=*/-1.0,
            TraceSession::kSimPid, /*tid=*/0,
            {{"shape", signature}, {"error", error.ToString()}});
      }
      continue;
    }

    const EngineTiming timing = *attempt_result;
    const double done = start + timing.total_us;
    const double backoff_us = start - first_start;
    clock_us = done;
    const bool step_degraded =
        engine->stats().fallback_queries > fallback_before;
    if (step_degraded) {
      sv.degraded += occupancy;
      CountMetric("serving.degraded", occupancy);
    }

    // Waste accounting: real = KV entries actually attended; padded = the
    // launch's full B x T cache footprint (block/pow2 rounding plus frozen
    // whole-request rows).
    int64_t step_real = 0;
    for (size_t idx : running) {
      if (!seqs[idx].frozen) step_real += seqs[idx].kv_len();
    }
    const int64_t step_padded = padded_batch * padded_kv;
    total_real_tokens += step_real;
    total_padded_tokens += step_padded;
    occupancy_hist->Observe(static_cast<double>(occupancy));
    waste_hist->Observe(
        step_padded > 0
            ? 100.0 * (1.0 - static_cast<double>(step_real) /
                                 static_cast<double>(step_padded))
            : 0.0);

    int64_t step_retires = 0;
    std::vector<size_t> still_running;
    still_running.reserve(running.size());
    for (size_t idx : running) {
      SeqState& s = seqs[idx];
      if (s.frozen) {
        still_running.push_back(idx);
        continue;
      }
      s.ledger.backoff_us += backoff_us;
      s.ledger.compile_stall_us += timing.compile_us;
      s.ledger.host_plan_us += timing.host_us;
      s.ledger.alloc_us += timing.alloc_us;
      s.ledger.device_us += timing.device_us;
      s.retries += step_retries;
      s.degraded = s.degraded || step_degraded;
      tbt_gaps.push_back(done - s.last_token_us);
      tbt_hist->Observe(done - s.last_token_us);
      s.last_token_us = done;
      ++s.generated;
      ++sv.generated_tokens;
      if (s.generated < s.req.decode_len) {
        still_running.push_back(idx);
        continue;
      }
      // Sequence complete: record the causal ledger (sums exactly to e2e
      // by the engine timing invariant plus the scheduler's geometry —
      // steps run back-to-back, out-of-batch time is decode_wait).
      const double e2e = done - s.req.arrival_us;
      latencies.push_back(e2e);
      CompletedRequest record;
      record.trace_id = s.req.trace_id;
      record.request_id = s.req.id;
      record.signature = signature;
      record.arrival_us = s.req.arrival_us;
      record.e2e_us = e2e;
      record.ledger = s.ledger;
      record.degraded = s.degraded;
      record.retries = s.retries;
      const double ledger_total = record.ledger.TotalUs();
      DISC_CHECK(std::abs(ledger_total - e2e) <= 1e-6 * std::max(1.0, e2e))
          << StrFormat(
                 "decode sequence %lld ledger drifted: phases sum to %.6f, "
                 "e2e is %.6f (%s)",
                 static_cast<long long>(s.req.id), ledger_total, e2e,
                 record.ledger.ToString().c_str());
      sv.completed_requests.push_back(std::move(record));
      ++sv.completed;
      if (continuous) {
        pool.Release(static_cast<int64_t>(idx));
        ++sv.decode_retires;
        ++step_retires;
        CountMetric("decode.retires");
      } else {
        s.frozen = true;
        still_running.push_back(idx);
      }
    }
    running.swap(still_running);

    // Whole-request: the batch leaves the device only when every member
    // is done; blocks recycle all at once.
    if (!continuous && !running.empty()) {
      bool all_frozen = true;
      for (size_t idx : running) {
        if (!seqs[idx].frozen) {
          all_frozen = false;
          break;
        }
      }
      if (all_frozen) {
        for (size_t idx : running) {
          pool.Release(static_cast<int64_t>(idx));
          ++sv.decode_retires;
          ++step_retires;
          CountMetric("decode.retires");
        }
        running.clear();
      }
    }

    DecodeStepRecord rec;
    rec.step = step_index++;
    rec.start_us = start;
    rec.dur_us = timing.total_us;
    rec.occupancy = occupancy;
    rec.padded_batch = padded_batch;
    rec.padded_kv = padded_kv;
    rec.joins = step_joins;
    rec.retires = step_retires;
    rec.preemptions = step_preempts;
    rec.real_tokens = step_real;
    rec.padded_tokens = step_padded;
    rec.kv_blocks_in_use = pool.used_blocks();
    rec.signature = signature;
    stats.timeline.push_back(rec);
    ++sv.decode_steps;
    CountMetric("decode.steps");
    if (trace.enabled()) {
      trace.AddCompleteEvent(
          "step", "decode.step", start, timing.total_us,
          TraceSession::kSimPid, /*tid=*/0,
          {{"shape", signature},
           {"occupancy", std::to_string(occupancy)},
           {"joins", std::to_string(step_joins)},
           {"retires", std::to_string(step_retires)},
           {"preemptions", std::to_string(step_preempts)},
           {"kv_blocks", std::to_string(pool.used_blocks())}});
    }
  }

  const std::vector<double> sorted_lat = SortedCopy(latencies);
  sv.p50_us = Percentile(sorted_lat, 50);
  sv.p95_us = Percentile(sorted_lat, 95);
  sv.p99_us = Percentile(sorted_lat, 99);
  double total_lat = 0.0;
  for (double l : sorted_lat) total_lat += l;
  sv.mean_us = sorted_lat.empty()
                   ? 0.0
                   : total_lat / static_cast<double>(sorted_lat.size());
  sv.throughput_qps =
      clock_us > 0
          ? static_cast<double>(sv.completed) / clock_us * 1e6
          : 0.0;
  sv.tokens_per_sec =
      clock_us > 0
          ? static_cast<double>(sv.generated_tokens) / clock_us * 1e6
          : 0.0;
  const std::vector<double> sorted_tbt = SortedCopy(tbt_gaps);
  sv.p50_tbt_us = Percentile(sorted_tbt, 50);
  sv.p99_tbt_us = Percentile(sorted_tbt, 99);
  sv.step_padding_waste =
      total_padded_tokens > 0
          ? 1.0 - static_cast<double>(total_real_tokens) /
                      static_cast<double>(total_padded_tokens)
          : 0.0;
  sv.padded_token_fraction = sv.step_padding_waste;
  sv.batches = sv.decode_steps;
  const int64_t hits = engine->stats().launch_plan_hits - hits_before;
  const int64_t misses = engine->stats().launch_plan_misses - misses_before;
  sv.plan_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  sv.kernel_launches = launch_counter->value() - launches_before;
  sv.memory_bound_launches =
      memory_bound_counter->value() - memory_bound_before;
  sv.kv_high_water_blocks = pool.stats().high_water_blocks;
  sv.kv_block_recycles = pool.stats().block_recycles;
  stats.kv_capacity_blocks = pool.options().capacity_blocks;
  stats.kv_block_bytes = pool.block_bytes();
  stats.kv_arena_bytes = pool.arena_bytes();
  stats.kv_growth_formula = pool.growth_formula();

  // Every block granted over the replay must be back in the free list:
  // zero leaked blocks is the pool-side half of the accounting invariant.
  DISC_CHECK_EQ(pool.used_blocks(), 0) << "KV blocks leaked by the replay";
  DISC_CHECK_EQ(sv.completed + sv.shed + sv.deadline_missed + sv.failed,
                sv.submitted)
      << "decode accounting drifted";
  return stats;
}

JsonValue DecodeStats::TimelineJson() const {
  JsonValue::Object root;
  root["schema"] = JsonValue("disc.decode.timeline.v1");
  root["policy"] = JsonValue(policy);

  JsonValue::Object summary;
  summary["submitted"] = JsonValue(serving.submitted);
  summary["completed"] = JsonValue(serving.completed);
  summary["shed"] = JsonValue(serving.shed);
  summary["failed"] = JsonValue(serving.failed);
  summary["steps"] = JsonValue(serving.decode_steps);
  summary["joins"] = JsonValue(serving.decode_joins);
  summary["retires"] = JsonValue(serving.decode_retires);
  summary["preemptions"] = JsonValue(serving.preemptions);
  summary["resumes"] = JsonValue(serving.resumes);
  summary["generated_tokens"] = JsonValue(serving.generated_tokens);
  summary["tokens_per_sec"] = JsonValue(serving.tokens_per_sec);
  summary["p50_tbt_us"] = JsonValue(serving.p50_tbt_us);
  summary["p99_tbt_us"] = JsonValue(serving.p99_tbt_us);
  summary["step_padding_waste"] = JsonValue(serving.step_padding_waste);
  summary["plan_hit_rate"] = JsonValue(serving.plan_hit_rate);
  root["summary"] = JsonValue(std::move(summary));

  JsonValue::Object kv;
  kv["capacity_blocks"] = JsonValue(kv_capacity_blocks);
  kv["block_bytes"] = JsonValue(kv_block_bytes);
  kv["arena_bytes"] = JsonValue(kv_arena_bytes);
  kv["growth_formula"] = JsonValue(kv_growth_formula);
  kv["high_water_blocks"] = JsonValue(serving.kv_high_water_blocks);
  kv["block_recycles"] = JsonValue(serving.kv_block_recycles);
  root["kv_pool"] = JsonValue(std::move(kv));

  JsonValue::Array steps;
  steps.reserve(timeline.size());
  for (const DecodeStepRecord& r : timeline) {
    JsonValue::Object step;
    step["step"] = JsonValue(r.step);
    step["start_us"] = JsonValue(r.start_us);
    step["dur_us"] = JsonValue(r.dur_us);
    step["occupancy"] = JsonValue(r.occupancy);
    step["padded_batch"] = JsonValue(r.padded_batch);
    step["padded_kv"] = JsonValue(r.padded_kv);
    step["joins"] = JsonValue(r.joins);
    step["retires"] = JsonValue(r.retires);
    step["preemptions"] = JsonValue(r.preemptions);
    step["real_tokens"] = JsonValue(r.real_tokens);
    step["padded_tokens"] = JsonValue(r.padded_tokens);
    step["kv_blocks_in_use"] = JsonValue(r.kv_blocks_in_use);
    step["signature"] = JsonValue(r.signature);
    steps.push_back(JsonValue(std::move(step)));
  }
  root["steps"] = JsonValue(std::move(steps));
  return JsonValue(std::move(root));
}

Status DecodeStats::WriteTimelineJson(const std::string& path) const {
  return WriteStringToFile(path, TimelineJson().SerializePretty());
}

std::vector<DecodeRequest> SyntheticDecodeStream(int64_t count,
                                                 double mean_gap_us,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<DecodeRequest> requests;
  requests.reserve(static_cast<size_t>(count));
  double clock = 0.0;
  // Prompt lengths: Zipf-ish over common context sizes.
  const std::vector<int64_t> prompts = {16, 8, 32, 24, 64, 48};
  std::vector<double> prompt_weights(prompts.size());
  for (size_t i = 0; i < prompt_weights.size(); ++i) {
    prompt_weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  // Decode lengths: short chat turns dominate, heavy tail of long
  // generations — the mix where per-step rescheduling pays (a whole-
  // request batch is hostage to its longest member).
  const std::vector<int64_t> decodes = {8, 12, 6, 20, 32, 64, 128};
  const std::vector<double> decode_weights = {4.0, 3.5, 3.0, 2.0,
                                              1.0, 0.5, 0.25};
  for (int64_t i = 0; i < count; ++i) {
    double u = std::max(1e-6, 1.0 - static_cast<double>(rng.Uniform()));
    clock += -mean_gap_us * std::log(u);
    DecodeRequest r;
    r.id = i;
    r.arrival_us = clock;
    r.prompt_len = prompts[rng.Categorical(prompt_weights)];
    r.decode_len = decodes[rng.Categorical(decode_weights)];
    requests.push_back(r);
  }
  return requests;
}

namespace {

/// Required numeric field of a timeline-dump object; the error names the
/// path so a truncated or hand-edited dump fails with a usable message.
Result<double> TimelineNumber(const JsonValue& obj, const char* section,
                              const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument(
        StrFormat("decode timeline: missing numeric field %s.%s", section,
                  key));
  }
  return v->as_number();
}

Result<int64_t> TimelineInt(const JsonValue& obj, const char* section,
                            const char* key) {
  DISC_ASSIGN_OR_RETURN(double v, TimelineNumber(obj, section, key));
  return static_cast<int64_t>(v);
}

Result<std::string> TimelineString(const JsonValue& obj, const char* section,
                                   const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(
        StrFormat("decode timeline: missing string field %s.%s", section,
                  key));
  }
  return v->as_string();
}

}  // namespace

Result<std::string> FormatDecodeTimelineJson(const std::string& json_text) {
  DISC_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json_text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("decode timeline: not a JSON object");
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "disc.decode.timeline.v1") {
    return Status::InvalidArgument(
        "decode timeline: expected schema disc.decode.timeline.v1");
  }
  DISC_ASSIGN_OR_RETURN(std::string policy,
                        TimelineString(doc, "$", "policy"));
  const JsonValue* summary = doc.Find("summary");
  const JsonValue* kv = doc.Find("kv_pool");
  const JsonValue* steps = doc.Find("steps");
  if (summary == nullptr || !summary->is_object() || kv == nullptr ||
      !kv->is_object() || steps == nullptr || !steps->is_array()) {
    return Status::InvalidArgument(
        "decode timeline: wants summary + kv_pool objects and a steps "
        "array");
  }

  std::string out;
  out += StrFormat("== decode step timeline (policy=%s) ==\n",
                   policy.c_str());
  {
    DISC_ASSIGN_OR_RETURN(int64_t submitted,
                          TimelineInt(*summary, "summary", "submitted"));
    DISC_ASSIGN_OR_RETURN(int64_t completed,
                          TimelineInt(*summary, "summary", "completed"));
    DISC_ASSIGN_OR_RETURN(int64_t shed,
                          TimelineInt(*summary, "summary", "shed"));
    DISC_ASSIGN_OR_RETURN(int64_t failed,
                          TimelineInt(*summary, "summary", "failed"));
    DISC_ASSIGN_OR_RETURN(int64_t n_steps,
                          TimelineInt(*summary, "summary", "steps"));
    DISC_ASSIGN_OR_RETURN(int64_t joins,
                          TimelineInt(*summary, "summary", "joins"));
    DISC_ASSIGN_OR_RETURN(int64_t retires,
                          TimelineInt(*summary, "summary", "retires"));
    DISC_ASSIGN_OR_RETURN(int64_t preemptions,
                          TimelineInt(*summary, "summary", "preemptions"));
    DISC_ASSIGN_OR_RETURN(int64_t resumes,
                          TimelineInt(*summary, "summary", "resumes"));
    DISC_ASSIGN_OR_RETURN(int64_t tokens,
                          TimelineInt(*summary, "summary",
                                      "generated_tokens"));
    DISC_ASSIGN_OR_RETURN(double tps, TimelineNumber(*summary, "summary",
                                                     "tokens_per_sec"));
    DISC_ASSIGN_OR_RETURN(double p50, TimelineNumber(*summary, "summary",
                                                     "p50_tbt_us"));
    DISC_ASSIGN_OR_RETURN(double p99, TimelineNumber(*summary, "summary",
                                                     "p99_tbt_us"));
    DISC_ASSIGN_OR_RETURN(double waste,
                          TimelineNumber(*summary, "summary",
                                         "step_padding_waste"));
    DISC_ASSIGN_OR_RETURN(double plan_hit,
                          TimelineNumber(*summary, "summary",
                                         "plan_hit_rate"));
    out += StrFormat(
        "requests: submitted=%lld completed=%lld shed=%lld failed=%lld\n",
        static_cast<long long>(submitted), static_cast<long long>(completed),
        static_cast<long long>(shed), static_cast<long long>(failed));
    out += StrFormat(
        "steps: %lld  joins=%lld retires=%lld preemptions=%lld "
        "resumes=%lld\n",
        static_cast<long long>(n_steps), static_cast<long long>(joins),
        static_cast<long long>(retires), static_cast<long long>(preemptions),
        static_cast<long long>(resumes));
    out += StrFormat(
        "tokens: %lld generated  %.1f tok/s  tbt p50=%.1fus p99=%.1fus  "
        "padding waste=%.1f%%  plan hits=%.1f%%\n",
        static_cast<long long>(tokens), tps, p50, p99, 100.0 * waste,
        100.0 * plan_hit);
  }
  int64_t high_water = 0;
  {
    DISC_ASSIGN_OR_RETURN(int64_t capacity,
                          TimelineInt(*kv, "kv_pool", "capacity_blocks"));
    DISC_ASSIGN_OR_RETURN(int64_t block_bytes,
                          TimelineInt(*kv, "kv_pool", "block_bytes"));
    DISC_ASSIGN_OR_RETURN(int64_t arena_bytes,
                          TimelineInt(*kv, "kv_pool", "arena_bytes"));
    DISC_ASSIGN_OR_RETURN(std::string growth,
                          TimelineString(*kv, "kv_pool", "growth_formula"));
    DISC_ASSIGN_OR_RETURN(high_water,
                          TimelineInt(*kv, "kv_pool", "high_water_blocks"));
    DISC_ASSIGN_OR_RETURN(int64_t recycles,
                          TimelineInt(*kv, "kv_pool", "block_recycles"));
    out += StrFormat(
        "kv pool: %lld blocks x %lld B (arena %lld B)  growth=%s  "
        "high-water=%lld  recycles=%lld\n",
        static_cast<long long>(capacity), static_cast<long long>(block_bytes),
        static_cast<long long>(arena_bytes), growth.c_str(),
        static_cast<long long>(high_water),
        static_cast<long long>(recycles));
  }

  // Per-step table. The occupancy bar draws live rows as '#' inside the
  // padded launch batch ('.'), so pow2/bucket padding is visible at a
  // glance; event-free runs on the same signature collapse to one line.
  const JsonValue::Array& rows = steps->as_array();
  out += StrFormat("  %5s %10s %-9s %4s %-*s %6s  %s\n", "step", "t_us",
                   "sig", "occ", 34, "batch(live=#/pad=.)", "kv-blk",
                   "events");
  bool high_water_flagged = false;
  size_t i = 0;
  while (i < rows.size()) {
    const JsonValue& row = rows[i];
    if (!row.is_object()) {
      return Status::InvalidArgument("decode timeline: step row is not an "
                                     "object");
    }
    DISC_ASSIGN_OR_RETURN(int64_t step, TimelineInt(row, "steps", "step"));
    DISC_ASSIGN_OR_RETURN(double start, TimelineNumber(row, "steps",
                                                       "start_us"));
    DISC_ASSIGN_OR_RETURN(int64_t occ, TimelineInt(row, "steps",
                                                   "occupancy"));
    DISC_ASSIGN_OR_RETURN(int64_t padded_batch,
                          TimelineInt(row, "steps", "padded_batch"));
    DISC_ASSIGN_OR_RETURN(int64_t joins, TimelineInt(row, "steps", "joins"));
    DISC_ASSIGN_OR_RETURN(int64_t retires,
                          TimelineInt(row, "steps", "retires"));
    DISC_ASSIGN_OR_RETURN(int64_t preempts,
                          TimelineInt(row, "steps", "preemptions"));
    DISC_ASSIGN_OR_RETURN(int64_t blocks,
                          TimelineInt(row, "steps", "kv_blocks_in_use"));
    DISC_ASSIGN_OR_RETURN(std::string sig,
                          TimelineString(row, "steps", "signature"));

    const bool quiet = joins == 0 && retires == 0 && preempts == 0;
    if (quiet && (high_water_flagged || blocks != high_water)) {
      // Look ahead: collapse a run of event-free same-signature steps.
      size_t j = i + 1;
      while (j < rows.size()) {
        const JsonValue& next = rows[j];
        if (!next.is_object()) break;
        auto nj = TimelineInt(next, "steps", "joins");
        auto nr = TimelineInt(next, "steps", "retires");
        auto np = TimelineInt(next, "steps", "preemptions");
        auto nb = TimelineInt(next, "steps", "kv_blocks_in_use");
        auto ns = TimelineString(next, "steps", "signature");
        if (!nj.ok() || !nr.ok() || !np.ok() || !nb.ok() || !ns.ok()) break;
        if (*nj != 0 || *nr != 0 || *np != 0 || *ns != sig) break;
        if (!high_water_flagged && *nb == high_water) break;
        ++j;
      }
      if (j - i > 3) {
        out += StrFormat("  %5s   ... %lld quiet steps (sig=%s, occ=%lld, "
                         "blk=%lld) ...\n",
                         "", static_cast<long long>(j - i), sig.c_str(),
                         static_cast<long long>(occ),
                         static_cast<long long>(blocks));
        i = j;
        continue;
      }
    }

    std::string bar;
    const int64_t bar_width = std::min<int64_t>(padded_batch, 32);
    const int64_t live_width =
        padded_batch > 0 ? std::min<int64_t>(
                               bar_width, (occ * bar_width + padded_batch - 1) /
                                              padded_batch)
                         : 0;
    bar.append(static_cast<size_t>(live_width), '#');
    bar.append(static_cast<size_t>(bar_width - live_width), '.');

    std::string events;
    if (joins > 0) {
      events += StrFormat("+%lld join ", static_cast<long long>(joins));
    }
    if (retires > 0) {
      events += StrFormat("-%lld retire ", static_cast<long long>(retires));
    }
    if (preempts > 0) {
      events += StrFormat("!%lld preempt ",
                          static_cast<long long>(preempts));
    }
    if (!high_water_flagged && blocks == high_water) {
      events += "<-- kv high-water";
      high_water_flagged = true;
    }
    out += StrFormat("  %5lld %10.1f %-9s %4lld %-*s %6lld  %s\n",
                     static_cast<long long>(step), start, sig.c_str(),
                     static_cast<long long>(occ), 34, bar.c_str(),
                     static_cast<long long>(blocks), events.c_str());
    ++i;
  }
  return out;
}

}  // namespace disc
