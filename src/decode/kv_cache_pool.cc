#include "decode/kv_cache_pool.h"

#include <algorithm>

#include "runtime/memory_plan.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {

KvCachePool::KvCachePool(const KvCachePoolOptions& options)
    : options_(options) {
  DISC_CHECK_GT(options_.capacity_blocks, 0);
  DISC_CHECK_GT(options_.block_tokens, 0);
  DISC_CHECK_GT(options_.bytes_per_token, 0);

  // Lay the block arena out through the symbolic planner: capacity_blocks
  // pinned (never recycled by the *planner* — recycling is this pool's
  // job) items of one block's raw bytes. The planner aligns every slot to
  // kArenaAlignment and returns the peak-bytes formula, which is constant
  // here — the dynamism lives in how many blocks a sequence holds, not in
  // the block geometry.
  std::vector<ArenaItem> items(static_cast<size_t>(options_.capacity_blocks));
  const int64_t raw_block_bytes =
      options_.block_tokens * options_.bytes_per_token;
  for (size_t i = 0; i < items.size(); ++i) {
    items[i].bytes = DimExpr::Const(raw_block_bytes);
    items[i].def_step = 0;
    items[i].last_use_step = 0;
    items[i].pinned = true;
    items[i].value_id = static_cast<int>(i);
  }
  ArenaLayout layout = PlanArenaItems(items, symbols_);
  DISC_CHECK_EQ(static_cast<int64_t>(layout.slots.size()),
                options_.capacity_blocks);
  Result<int64_t> block_bytes = layout.slots[0].bytes.Evaluate({});
  DISC_CHECK(block_bytes.ok());
  block_bytes_ = *block_bytes;
  Result<int64_t> arena_bytes = layout.peak_bytes.Evaluate({});
  DISC_CHECK(arena_bytes.ok());
  arena_bytes_ = *arena_bytes;

  // Symbolic per-sequence growth: bytes(T) = ceildiv(T, block_tokens) *
  // block_bytes. Admission evaluates it at a sequence's eventual length.
  tokens_symbol_ = symbols_.NewSymbol("kv_tokens");
  growth_bytes_ = DimExpr::Mul(
      DimExpr::CeilDiv(DimExpr::Symbol(tokens_symbol_),
                       DimExpr::Const(options_.block_tokens)),
      DimExpr::Const(block_bytes_));
  growth_formula_ = growth_bytes_.ToString();

  free_list_.reserve(static_cast<size_t>(options_.capacity_blocks));
  // LIFO free list seeded in descending id order so the first grant hands
  // out block 0 — deterministic block ids for timeline dumps and tests.
  for (int64_t id = options_.capacity_blocks - 1; id >= 0; --id) {
    free_list_.push_back(id);
  }
}

int64_t KvCachePool::BlocksFor(int64_t tokens) const {
  return CeilDiv(std::max<int64_t>(tokens, 1), options_.block_tokens);
}

int64_t KvCachePool::SequencePeakBytes(int64_t total_tokens) const {
  Result<int64_t> bytes = growth_bytes_.Evaluate(
      {{tokens_symbol_, std::max<int64_t>(total_tokens, 1)}});
  DISC_CHECK(bytes.ok());
  return *bytes;
}

void KvCachePool::GrantBlocks(std::vector<int64_t>* blocks, int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    blocks->push_back(free_list_.back());
    free_list_.pop_back();
  }
  used_blocks_ += count;
  stats_.block_grants += count;
  stats_.high_water_blocks = std::max(stats_.high_water_blocks, used_blocks_);
}

Status KvCachePool::Reserve(int64_t seq_id, int64_t tokens) {
  if (blocks_of_seq_.count(seq_id) > 0) {
    return Status::InvalidArgument(
        StrFormat("sequence %lld already holds KV blocks",
                  static_cast<long long>(seq_id)));
  }
  const int64_t needed = BlocksFor(tokens);
  if (needed > free_blocks()) {
    ++stats_.failed_grants;
    return Status::ResourceExhausted(StrFormat(
        "KV pool: %lld blocks needed, %lld free",
        static_cast<long long>(needed),
        static_cast<long long>(free_blocks())));
  }
  GrantBlocks(&blocks_of_seq_[seq_id], needed);
  return Status::OK();
}

Status KvCachePool::Grow(int64_t seq_id, int64_t tokens) {
  auto it = blocks_of_seq_.find(seq_id);
  if (it == blocks_of_seq_.end()) {
    return Status::InvalidArgument(
        StrFormat("sequence %lld holds no KV blocks",
                  static_cast<long long>(seq_id)));
  }
  const int64_t needed =
      BlocksFor(tokens) - static_cast<int64_t>(it->second.size());
  if (needed <= 0) return Status::OK();
  if (needed > free_blocks()) {
    ++stats_.failed_grants;
    return Status::ResourceExhausted(StrFormat(
        "KV pool: %lld more blocks needed, %lld free",
        static_cast<long long>(needed),
        static_cast<long long>(free_blocks())));
  }
  GrantBlocks(&it->second, needed);
  return Status::OK();
}

void KvCachePool::Release(int64_t seq_id) {
  auto it = blocks_of_seq_.find(seq_id);
  if (it == blocks_of_seq_.end()) return;
  const int64_t count = static_cast<int64_t>(it->second.size());
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    free_list_.push_back(*rit);
  }
  used_blocks_ -= count;
  stats_.block_recycles += count;
  blocks_of_seq_.erase(it);
}

int64_t KvCachePool::blocks_of(int64_t seq_id) const {
  auto it = blocks_of_seq_.find(seq_id);
  return it == blocks_of_seq_.end()
             ? 0
             : static_cast<int64_t>(it->second.size());
}

}  // namespace disc
