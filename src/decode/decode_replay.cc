#include "decode/decode_replay.h"

#include <algorithm>
#include <cstring>

#include "ir/eval.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/rng.h"
#include "support/string_util.h"

namespace disc {

namespace {

/// Copies row `row` of a [B, R, H] tensor into a flat H-float vector.
std::vector<float> ExtractRow(const Tensor& t, int64_t batch, int64_t row) {
  const int64_t rows = t.dims()[1];
  const int64_t h = t.dims()[2];
  DISC_CHECK_LT(row, rows);
  std::vector<float> out(static_cast<size_t>(h));
  const float* src = t.f32_data() + (batch * rows + row) * h;
  std::copy(src, src + h, out.begin());
  return out;
}

/// Copies batch row `batch` of a [B, 1, V] tensor into a [1, 1, V] tensor.
Tensor ExtractProbRow(const Tensor& t, int64_t batch) {
  const int64_t v = t.dims()[2];
  Tensor out(DType::kF32, {1, 1, v});
  const float* src = t.f32_data() + batch * v;
  std::copy(src, src + v, out.f32_data());
  return out;
}

}  // namespace

BatchedDecodeSession::BatchedDecodeSession(
    const ModelConfig& config, std::vector<ReplaySequence> sequences)
    : config_(config),
      batch_model_(BuildGptStepBatch(config)),
      single_model_(BuildGptStep(config)) {
  seqs_.reserve(sequences.size());
  for (const ReplaySequence& spec : sequences) {
    DISC_CHECK_GT(spec.prompt_len, 0);
    DISC_CHECK_GT(spec.decode_len, 0);
    SeqReplayState s;
    s.spec = spec;
    s.consumed = spec.prompt_len;  // prefill happens lazily via rebuild
    s.cache_dropped = true;
    seqs_.push_back(std::move(s));
  }
}

Tensor BatchedDecodeSession::TokenAt(const SeqReplayState& s,
                                     int64_t t) const {
  // One Rng per (seed, step): recompute after preemption must see the
  // exact bits a sequential draw would have produced, so each token is a
  // pure function of its position, not of how many times we asked.
  Rng rng(s.spec.seed * 1000003 + static_cast<uint64_t>(t));
  Tensor token(DType::kF32, {1, 1, config_.hidden});
  for (int64_t i = 0; i < token.num_elements(); ++i) {
    token.f32_data()[i] = rng.Normal();
  }
  return token;
}

Status BatchedDecodeSession::RebuildCache(SeqReplayState* s) {
  s->k_rows.clear();
  s->v_rows.clear();
  // Prefill-style recompute through the single-sequence graph: entry t is
  // token_t @ Wk — bit-identical however it was first produced, because
  // the projection of row b depends only on token row b in both graphs.
  for (int64_t t = 0; t < s->consumed; ++t) {
    const int64_t len = static_cast<int64_t>(s->k_rows.size());
    Tensor k_cache(DType::kF32, {1, len, config_.hidden});
    Tensor v_cache(DType::kF32, {1, len, config_.hidden});
    for (int64_t r = 0; r < len; ++r) {
      std::copy(s->k_rows[r].begin(), s->k_rows[r].end(),
                k_cache.f32_data() + r * config_.hidden);
      std::copy(s->v_rows[r].begin(), s->v_rows[r].end(),
                v_cache.f32_data() + r * config_.hidden);
    }
    Result<std::vector<Tensor>> outs = EvaluateGraph(
        *single_model_.graph, {TokenAt(*s, t), k_cache, v_cache});
    if (!outs.ok()) return outs.status();
    s->k_rows.push_back(ExtractRow((*outs)[1], 0, len));
    s->v_rows.push_back(ExtractRow((*outs)[2], 0, len));
  }
  s->cache_dropped = false;
  return Status::OK();
}

Status BatchedDecodeSession::Step(const std::vector<int64_t>& active,
                                  int64_t block_tokens) {
  if (active.empty()) {
    return Status::InvalidArgument("Step: empty active set");
  }
  for (size_t i = 0; i < active.size(); ++i) {
    const int64_t seq = active[i];
    if (seq < 0 || seq >= static_cast<int64_t>(seqs_.size())) {
      return Status::InvalidArgument("Step: bad sequence index");
    }
    if (done(seq)) {
      return Status::InvalidArgument(StrFormat(
          "Step: sequence %lld already done", static_cast<long long>(seq)));
    }
    for (size_t j = i + 1; j < active.size(); ++j) {
      if (active[j] == seq) {
        return Status::InvalidArgument("Step: duplicate sequence index");
      }
    }
    SeqReplayState& s = seqs_[static_cast<size_t>(seq)];
    if (s.cache_dropped) {
      Status st = RebuildCache(&s);
      if (!st.ok()) return st;
    }
  }

  const int64_t b = static_cast<int64_t>(active.size());
  const int64_t h = config_.hidden;
  int64_t max_kv = 1;
  for (int64_t seq : active) {
    max_kv = std::max(
        max_kv,
        static_cast<int64_t>(seqs_[static_cast<size_t>(seq)].k_rows.size()));
  }
  const int64_t t_pad =
      block_tokens > 1 ? RoundUp(max_kv, block_tokens) : max_kv;

  // Assemble the ragged padded batch: live cache rows first, zero rows
  // beyond each sequence's length, mask 1.0 exactly over the live rows.
  // Zero-filled padding matters: 0.0-probability x 0.0-value products are
  // exactly +0.0, keeping padded columns bitwise inert in the context
  // matmul (a -0.0 would still be absorbed, but +0.0 needs no argument).
  Tensor token(DType::kF32, {b, 1, h});
  Tensor k_cache(DType::kF32, {b, t_pad, h});
  Tensor v_cache(DType::kF32, {b, t_pad, h});
  Tensor mask(DType::kF32, {b, t_pad});
  for (int64_t row = 0; row < b; ++row) {
    SeqReplayState& s = seqs_[static_cast<size_t>(active[row])];
    const Tensor tok = TokenAt(s, s.consumed);
    std::copy(tok.f32_data(), tok.f32_data() + h,
              token.f32_data() + row * h);
    const int64_t len = static_cast<int64_t>(s.k_rows.size());
    for (int64_t r = 0; r < len; ++r) {
      std::copy(s.k_rows[r].begin(), s.k_rows[r].end(),
                k_cache.f32_data() + (row * t_pad + r) * h);
      std::copy(s.v_rows[r].begin(), s.v_rows[r].end(),
                v_cache.f32_data() + (row * t_pad + r) * h);
    }
    for (int64_t r = 0; r < len; ++r) {
      mask.f32_data()[row * t_pad + r] = 1.0f;
    }
  }

  Result<std::vector<Tensor>> outs = EvaluateGraph(
      *batch_model_.graph, {token, k_cache, v_cache, mask});
  if (!outs.ok()) return outs.status();
  const Tensor& probs = (*outs)[0];   // [B, 1, 96]
  const Tensor& k_next = (*outs)[1];  // [B, T_pad+1, H]; new entry at T_pad
  const Tensor& v_next = (*outs)[2];

  for (int64_t row = 0; row < b; ++row) {
    SeqReplayState& s = seqs_[static_cast<size_t>(active[row])];
    s.k_rows.push_back(ExtractRow(k_next, row, t_pad));
    s.v_rows.push_back(ExtractRow(v_next, row, t_pad));
    s.captured.push_back(ExtractProbRow(probs, row));
    ++s.consumed;
  }
  return Status::OK();
}

void BatchedDecodeSession::Preempt(int64_t seq) {
  DISC_CHECK_GE(seq, 0);
  DISC_CHECK_LT(seq, static_cast<int64_t>(seqs_.size()));
  SeqReplayState& s = seqs_[static_cast<size_t>(seq)];
  s.k_rows.clear();
  s.v_rows.clear();
  s.cache_dropped = true;
}

bool BatchedDecodeSession::done(int64_t seq) const {
  const SeqReplayState& s = seqs_[static_cast<size_t>(seq)];
  return s.consumed >= s.spec.prompt_len + s.spec.decode_len;
}

const std::vector<Tensor>& BatchedDecodeSession::probs(int64_t seq) const {
  return seqs_[static_cast<size_t>(seq)].captured;
}

Result<std::vector<Tensor>> ReplaySingleSequence(const ModelConfig& config,
                                                 const ReplaySequence& seq) {
  // The reference runs the whole life of the sequence — prefill included —
  // through BuildGptStep with exact (unpadded) cache lengths.
  Model single = BuildGptStep(config);
  const int64_t h = config.hidden;
  std::vector<std::vector<float>> k_rows;
  std::vector<std::vector<float>> v_rows;
  std::vector<Tensor> decode_probs;
  const int64_t total = seq.prompt_len + seq.decode_len;
  for (int64_t t = 0; t < total; ++t) {
    const int64_t len = static_cast<int64_t>(k_rows.size());
    Tensor k_cache(DType::kF32, {1, len, h});
    Tensor v_cache(DType::kF32, {1, len, h});
    for (int64_t r = 0; r < len; ++r) {
      std::copy(k_rows[r].begin(), k_rows[r].end(),
                k_cache.f32_data() + r * h);
      std::copy(v_rows[r].begin(), v_rows[r].end(),
                v_cache.f32_data() + r * h);
    }
    // Token streams are a pure function of (seed, t); mirror the session's
    // derivation exactly.
    Rng rng(seq.seed * 1000003 + static_cast<uint64_t>(t));
    Tensor token(DType::kF32, {1, 1, h});
    for (int64_t i = 0; i < token.num_elements(); ++i) {
      token.f32_data()[i] = rng.Normal();
    }
    Result<std::vector<Tensor>> outs =
        EvaluateGraph(*single.graph, {token, k_cache, v_cache});
    if (!outs.ok()) return outs.status();
    k_rows.push_back(ExtractRow((*outs)[1], 0, len));
    v_rows.push_back(ExtractRow((*outs)[2], 0, len));
    if (t >= seq.prompt_len) decode_probs.push_back((*outs)[0].Clone());
  }
  return decode_probs;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (a.dtype() != b.dtype() || a.dims() != b.dims()) return false;
  if (a.dtype() == DType::kF32) {
    return std::memcmp(a.f32_data(), b.f32_data(),
                       static_cast<size_t>(a.byte_size())) == 0;
  }
  return std::memcmp(a.i64_data(), b.i64_data(),
                     static_cast<size_t>(a.num_elements()) *
                         sizeof(int64_t)) == 0;
}

DecodeShapeFn GptStepBatchShapeFn(int64_t hidden) {
  return [hidden](int64_t batch, int64_t kv_len) {
    return std::vector<std::vector<int64_t>>{{batch, 1, hidden},
                                             {batch, kv_len, hidden},
                                             {batch, kv_len, hidden},
                                             {batch, kv_len}};
  };
}

}  // namespace disc
