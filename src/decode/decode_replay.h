// Numeric replay harness proving the decode subsystem's correctness
// invariant: a ragged, padded, continuously-batched decode step produces
// BIT-IDENTICAL per-sequence outputs to running each sequence alone,
// unbatched and unpadded — including across preempt/resume, where the
// KV cache is dropped and rebuilt from the token stream.
//
// Why bit-identity is attainable (and not just close): BuildGptStepBatch
// masks padded cache columns to -1e9 before the softmax; after the
// numerically-stable max-shift, exp(-1e9 - max) underflows to exactly
// +0.0, so padded positions carry probability +0.0. The reference
// evaluator accumulates matmuls and reductions in double, in a fixed
// index order, and adding +0.0 (or +0.0 * 0.0 from a zero-filled padded
// V row) to a partial sum is a bitwise no-op — so each live row's math
// is the same sequence of operations, on the same values, in the same
// order as the unbatched run. Padding is *inert*, not merely small.
// BuildGptStep and BuildGptStepBatch draw weights in the same order from
// the same seed, so the single-sequence reference runs a genuinely
// different graph (one fused score matmul, no mask) over shared weights —
// the comparison is cross-graph, not a tautology.
#ifndef DISC_DECODE_DECODE_REPLAY_H_
#define DISC_DECODE_DECODE_REPLAY_H_

#include <cstdint>
#include <vector>

#include "decode/decode_scheduler.h"
#include "ir/tensor.h"
#include "models/models.h"
#include "support/status.h"

namespace disc {

/// One sequence of the numeric replay: `seed` deterministically derives
/// its token-embedding stream (prompt_len prefill tokens, then decode_len
/// decode tokens).
struct ReplaySequence {
  int64_t prompt_len = 1;
  int64_t decode_len = 1;
  uint64_t seed = 1;
};

/// \brief Stateful batched decode session over BuildGptStepBatch.
/// Sequences keep growing KV caches; Step() runs one ragged padded batch;
/// Preempt() drops a cache, which is transparently rebuilt (prefill-style
/// recompute from the token stream) the next time the sequence steps.
class BatchedDecodeSession {
 public:
  BatchedDecodeSession(const ModelConfig& config,
                       std::vector<ReplaySequence> sequences);

  /// \brief Runs one batched decode step for `active` (indices into the
  /// sequence set, each with decode tokens remaining; duplicates are an
  /// error). The KV dimension pads to RoundUp(max live kv, block_tokens)
  /// (block_tokens <= 1 means exact, no padding). Captures each active
  /// sequence's next-token probability row.
  Status Step(const std::vector<int64_t>& active, int64_t block_tokens);

  /// \brief Drops the sequence's KV cache (the scheduler's preemption).
  /// Progress and captured outputs survive; the cache rebuilds on resume.
  void Preempt(int64_t seq);

  /// \brief True when the sequence has produced all decode_len tokens.
  bool done(int64_t seq) const;

  /// \brief Captured probability rows ([1,1,96] each), one per completed
  /// decode step of `seq`, in step order.
  const std::vector<Tensor>& probs(int64_t seq) const;

 private:
  struct SeqReplayState {
    ReplaySequence spec;
    /// Token embeddings consumed so far == KV rows logically owned.
    int64_t consumed = 0;
    bool cache_dropped = false;
    /// KV cache rows (each `hidden` floats); empty after Preempt until
    /// the rebuild on the next Step.
    std::vector<std::vector<float>> k_rows;
    std::vector<std::vector<float>> v_rows;
    std::vector<Tensor> captured;
  };

  /// Token embedding for step `t` of sequence `seq` ([1,1,H]); pure
  /// function of (seed, t) so preemption recompute sees identical inputs.
  Tensor TokenAt(const SeqReplayState& s, int64_t t) const;
  /// Replays tokens [from, s->consumed) through the single-sequence graph
  /// to (re)build cache rows — prefill at start, recompute after preempt.
  Status RebuildCache(SeqReplayState* s);

  ModelConfig config_;
  Model batch_model_;
  Model single_model_;
  std::vector<SeqReplayState> seqs_;
};

/// \brief Reference: the sequence alone through BuildGptStep (B=1, exact
/// lengths, no mask). Returns the decode-phase probability rows ([1,1,96]
/// per decode step) — what BatchedDecodeSession must match bitwise.
Result<std::vector<Tensor>> ReplaySingleSequence(const ModelConfig& config,
                                                 const ReplaySequence& seq);

/// \brief Exact bitwise equality (dims, dtype, and every element's bit
/// pattern — 0.0 vs -0.0 and NaN payloads included).
bool BitIdentical(const Tensor& a, const Tensor& b);

/// \brief The DecodeShapeFn for BuildGptStepBatch:
/// (B, T) -> {{B,1,H},{B,T,H},{B,T,H},{B,T}}.
DecodeShapeFn GptStepBatchShapeFn(int64_t hidden);

}  // namespace disc

#endif  // DISC_DECODE_DECODE_REPLAY_H_
