// Iteration-level (continuous) batching for autoregressive decode — the
// workload where dynamic-shape compilation beats pad-to-bucket static
// compilation hardest (ROADMAP item 2; Relax and Nimble both motivate the
// cross-iteration dynamic-shape pattern).
//
// Request-level serving (src/serving/) batches whole requests: a batch's
// membership is fixed at launch and every member pads to the batch
// maximum for its entire lifetime. For decode that is catastrophic —
// sequence lengths change EVERY iteration, short sequences finish early
// but their slots keep burning device time, and new arrivals wait for the
// whole batch to drain. The DecodeScheduler instead reschedules at every
// simulated-clock step:
//   * retire  — sequences that produced their last token leave the batch
//               and their KV blocks recycle immediately;
//   * join    — arrived (or preempted-and-requeued) sequences enter the
//               running batch whenever a slot and KV blocks are free,
//               gated by the engine's symbolic activation-peak formula
//               plus the KV pool's committed bytes (PredictPeakBytes-
//               style admission, PR 6);
//   * step    — the survivors form one ragged batch: occupancy B and the
//               step's padded KV length T (rounded to the KV pool's block
//               quantum, so step shape-signatures repeat and the PR 1
//               launch-plan cache / PR 5 hot-swap slots stay warm);
//   * preempt — under memory pressure (KV pool exhausted, or the engine
//               reports ResourceExhausted) the LOWEST-PROGRESS sequences
//               are preempted: blocks released, sequence requeued — the
//               decode-aware rung of the PR 4 degradation ladder,
//               replacing whole-request shed. A preempted sequence
//               resumes later and still completes, so the serving
//               accounting invariant is unchanged.
//
// Every completed sequence carries the PR 7 phase ledger with the new
// `decode_wait` phase (time mid-flight but out of the running batch);
// the ledger still sums exactly to the end-to-end latency, DISC_CHECKed
// per request. The per-step timeline (occupancy, joins/retires/
// preemptions, KV high-water) is dumped as decode_timeline.json for
// `disc_explain --decode` / `trace_inspect --decode`.
#ifndef DISC_DECODE_DECODE_SCHEDULER_H_
#define DISC_DECODE_DECODE_SCHEDULER_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/engine.h"
#include "decode/kv_cache_pool.h"
#include "serving/serving.h"
#include "support/json.h"
#include "support/status.h"

namespace disc {

/// One decode request: the sequence arrives with `prompt_len` KV entries
/// already computed (prefill happens upstream) and wants `decode_len`
/// generated tokens.
struct DecodeRequest {
  int64_t id = 0;
  double arrival_us = 0.0;
  int64_t prompt_len = 1;
  int64_t decode_len = 1;
  /// Causal-trace id (0 = minted by SimulateDecode at submit).
  uint64_t trace_id = 0;
};

enum class DecodePolicy {
  /// Iteration-level batching: join/retire/preempt every step.
  kContinuous,
  /// Request-level batching: membership fixed at launch, finished
  /// sequences hold their padded slots (and KV blocks) until the whole
  /// batch drains — the baseline continuous batching is measured against.
  kWholeRequest,
};

const char* DecodePolicyName(DecodePolicy policy);

struct DecodeOptions {
  DecodePolicy policy = DecodePolicy::kContinuous;
  int64_t max_batch = 8;
  KvCachePoolOptions kv;
  /// Memory-aware admission: a candidate joins only when the engine's
  /// predicted activation peak for the would-be step shape plus the KV
  /// pool's committed bytes (including the candidate's grant) fits.
  /// 0 = admit on KV blocks alone.
  int64_t memory_limit_bytes = 0;
  /// Shed arrived-but-unadmitted requests beyond this backlog depth
  /// (newest first, so the oldest keep their place). 0 = never shed.
  int64_t max_queue_depth = 0;
  /// Engine-failure retry ladder (retryable, non-memory errors), same
  /// semantics as BatcherOptions.
  int64_t max_retries = 2;
  double retry_backoff_us = 500.0;
  /// Pad step signatures to powers of two (batch and KV length) instead
  /// of the KV block quantum — the static bucketed engine's grid.
  bool pad_pow2 = false;
};

/// One row of the step timeline (the decode_timeline.json dump).
struct DecodeStepRecord {
  int64_t step = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  int64_t occupancy = 0;     // live sequences in the step batch
  int64_t padded_batch = 0;  // launch B (== occupancy unless pow2-padded)
  int64_t padded_kv = 0;     // launch T
  int64_t joins = 0;
  int64_t retires = 0;
  int64_t preemptions = 0;
  int64_t real_tokens = 0;    // sum over live sequences of attended length
  int64_t padded_tokens = 0;  // padded_batch * padded_kv
  int64_t kv_blocks_in_use = 0;
  std::string signature;  // canonical "BxT" launch signature
};

/// SimulateDecode's result: the serving-compatible stats (accounting
/// invariant, latency percentiles, plan-hit rate, per-request ledgers,
/// plus the decode extensions: tokens/sec, p99 time-between-tokens,
/// per-step padding waste, preemptions) and the per-step timeline.
struct DecodeStats {
  ServingStats serving;
  std::vector<DecodeStepRecord> timeline;
  /// DecodePolicyName of the policy that produced this replay.
  std::string policy;
  /// KV pool summary at end of replay.
  int64_t kv_capacity_blocks = 0;
  int64_t kv_block_bytes = 0;
  int64_t kv_arena_bytes = 0;
  std::string kv_growth_formula;

  std::string ToString() const { return serving.ToString(); }
  /// Deterministic decode_timeline.json document: a summary object plus
  /// the per-step records.
  JsonValue TimelineJson() const;
  Status WriteTimelineJson(const std::string& path) const;
};

/// Maps a step's (padded batch, padded kv length) to the step model's
/// input shapes — e.g. for BuildGptStepBatch:
///   {{B,1,H},{B,T,H},{B,T,H},{B,T}}.
using DecodeShapeFn =
    std::function<std::vector<std::vector<int64_t>>(int64_t batch,
                                                    int64_t kv_len)>;

/// \brief Replays the decode request stream through `engine` (already
/// Prepared on the step model) on one simulated device. Individual
/// engine failures degrade the replay (retry ladder, preemption under
/// memory pressure, whole-batch failure only after retries exhaust);
/// an error return means the simulation itself is broken. The serving
/// accounting invariant — submitted == completed + shed + failed, with
/// preempted-and-resumed sequences counted once as completed — is
/// DISC_CHECKed before returning.
Result<DecodeStats> SimulateDecode(Engine* engine,
                                   const DecodeShapeFn& shape_fn,
                                   const std::vector<DecodeRequest>& requests,
                                   const DecodeOptions& options,
                                   const DeviceSpec& device);

/// \brief Poisson-ish arrivals with a realistic decode-trace length mix:
/// short chat turns dominate, a heavy tail of long generations (the
/// distribution continuous batching exploits hardest).
std::vector<DecodeRequest> SyntheticDecodeStream(int64_t count,
                                                 double mean_gap_us,
                                                 uint64_t seed);

/// \brief Parses a decode_timeline.json dump (schema
/// disc.decode.timeline.v1) and renders the human-readable step timeline
/// that `disc_explain --decode` and `trace_inspect --decode` print: the
/// summary and KV-pool lines plus a per-step table — occupancy bar inside
/// the padded launch batch, launch signature, join/retire/preempt events,
/// KV blocks in use (high-water step flagged) — with long quiet runs
/// elided. InvalidArgument on malformed or wrong-schema documents.
Result<std::string> FormatDecodeTimelineJson(const std::string& json_text);

}  // namespace disc

#endif  // DISC_DECODE_DECODE_SCHEDULER_H_
