// Block-granular KV-cache pool for continuous-batching decode.
//
// Autoregressive decode grows one KV entry per sequence per iteration; a
// naive per-sequence contiguous buffer either reallocates every step
// (allocator churn in the hottest loop) or over-reserves max_len for every
// sequence (capacity collapse). The pool takes the paged middle ground:
//   * KV space is carved into fixed blocks of `block_tokens` tokens;
//   * a sequence holds ceil(kv_len / block_tokens) blocks and acquires its
//     next block only when growth crosses a block boundary;
//   * retire/preempt returns blocks to a free list — recycling, never
//     freeing, so the steady-state decode loop performs ZERO allocator
//     calls (the "zero mid-step allocator churn" invariant the decode
//     scheduler's plan-hit fast path relies on).
//
// The pool's backing store is planned, not ad-hoc: the block arena layout
// (slot offsets, aligned sizes, the peak-bytes formula) comes from the
// PR 6 symbolic arena planner (`PlanArenaItems` over `capacity_blocks`
// pinned block-sized items), so one construction-time allocation of
// exactly `arena_bytes()` backs every block, offsets are kArenaAlignment-
// aligned, and the symbolic per-sequence growth formula
//   bytes(T) = ceildiv(T, block_tokens) * block_bytes
// is carried as a DimExpr — `SequencePeakBytes(total_tokens)` evaluates it
// so admission can price a sequence's *eventual* footprint (prompt +
// decode budget) before letting it join, the same PredictPeakBytes-style
// gate serving uses for activations.
#ifndef DISC_DECODE_KV_CACHE_POOL_H_
#define DISC_DECODE_KV_CACHE_POOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "shape/dim_expr.h"
#include "shape/symbolic_dim.h"
#include "support/status.h"

namespace disc {

struct KvCachePoolOptions {
  /// Total pool capacity in blocks; the arena holds exactly this many.
  int64_t capacity_blocks = 128;
  /// Tokens per block. Also the decode scheduler's step-signature quantum:
  /// padded kv lengths are rounded to block boundaries, so launch-plan
  /// signatures repeat every `block_tokens` steps.
  int64_t block_tokens = 16;
  /// Device bytes per cached token per sequence (K + V rows), e.g.
  /// 2 * hidden * sizeof(float) for a single-layer f32 cache.
  int64_t bytes_per_token = 512;
};

struct KvCachePoolStats {
  /// Blocks handed out over the pool's lifetime (including re-grants after
  /// preemption) and blocks returned by Release.
  int64_t block_grants = 0;
  int64_t block_recycles = 0;
  /// Grow/Reserve requests denied because the free list was empty — each
  /// one is a memory-pressure event the scheduler answers with preemption.
  int64_t failed_grants = 0;
  /// Peak simultaneous block occupancy.
  int64_t high_water_blocks = 0;
};

class KvCachePool {
 public:
  explicit KvCachePool(const KvCachePoolOptions& options);

  /// \brief Blocks required to cover `tokens` KV entries (>= 1 token).
  int64_t BlocksFor(int64_t tokens) const;

  /// \brief True when `blocks` more blocks could be granted right now.
  bool CanReserve(int64_t blocks) const { return blocks <= free_blocks(); }

  /// \brief Grants the blocks covering `tokens` entries to a sequence that
  /// holds none (join or resume). ResourceExhausted when the free list
  /// cannot cover it; InvalidArgument if the sequence already holds blocks.
  Status Reserve(int64_t seq_id, int64_t tokens);

  /// \brief Ensures the sequence's blocks cover `tokens` entries, granting
  /// at most the missing blocks. ResourceExhausted (and a failed_grants
  /// bump) when the pool is out of blocks — the caller's cue to preempt.
  Status Grow(int64_t seq_id, int64_t tokens);

  /// \brief Returns all of the sequence's blocks to the free list
  /// (retire or preempt). No-op for an unknown sequence.
  void Release(int64_t seq_id);

  int64_t used_blocks() const { return used_blocks_; }
  int64_t free_blocks() const {
    return options_.capacity_blocks - used_blocks_;
  }
  /// Blocks currently held by one sequence (0 when unknown).
  int64_t blocks_of(int64_t seq_id) const;

  /// Device bytes currently committed (used blocks x block bytes).
  int64_t committed_bytes() const { return used_blocks_ * block_bytes_; }
  /// The single construction-time backing allocation: the planner's
  /// peak-bytes formula evaluated (== capacity_blocks x aligned block).
  int64_t arena_bytes() const { return arena_bytes_; }
  int64_t block_bytes() const { return block_bytes_; }
  /// Canonical rendering of the symbolic per-sequence growth formula
  /// bytes(T); printed by the decode timeline dump.
  const std::string& growth_formula() const { return growth_formula_; }

  /// \brief Evaluates the symbolic growth formula at T = `total_tokens`:
  /// the footprint a sequence will peak at after decoding to that length.
  int64_t SequencePeakBytes(int64_t total_tokens) const;

  const KvCachePoolOptions& options() const { return options_; }
  const KvCachePoolStats& stats() const { return stats_; }

 private:
  // Grants `count` blocks to `blocks` (the free list is LIFO: most
  // recently recycled block first, deterministic).
  void GrantBlocks(std::vector<int64_t>* blocks, int64_t count);

  KvCachePoolOptions options_;
  int64_t block_bytes_ = 0;   // aligned to kArenaAlignment by the planner
  int64_t arena_bytes_ = 0;
  int64_t used_blocks_ = 0;
  std::string growth_formula_;
  SymbolicDimManager symbols_;
  SymbolId tokens_symbol_ = -1;
  DimExpr growth_bytes_;  // bytes(T), T = tokens_symbol_
  std::vector<int64_t> free_list_;  // block ids, LIFO
  std::unordered_map<int64_t, std::vector<int64_t>> blocks_of_seq_;
  KvCachePoolStats stats_;
};

}  // namespace disc

#endif  // DISC_DECODE_KV_CACHE_POOL_H_
