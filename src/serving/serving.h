// Serving simulation: dynamic batching over a single simulated GPU.
//
// Production inference (the paper's deployment context) doesn't see one
// query at a time — a batcher groups concurrent requests. Batching forces
// padding *within* a batch (all sequences in one launch share S), and the
// padding policy is where shape flexibility pays off:
//   * kBatchMax   — pad only to the longest request in the batch; needs a
//                   compiler that accepts ANY (B, S) — i.e. DISC;
//   * kBucketPow2 — pad (B, S) up to powers of two; what static engines
//                   with a bucket grid must do;
//   * kNone       — no batching: every request runs alone (eager-style).
// The simulator advances a single-device clock: batches execute serially,
// requests accumulate queueing + execution latency; reported percentiles
// include both.
#ifndef DISC_SERVING_SERVING_H_
#define DISC_SERVING_SERVING_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/engine.h"
#include "support/status.h"

namespace disc {

/// One inference request.
struct Request {
  int64_t id = 0;
  int64_t seq_len = 1;
  double arrival_us = 0.0;
};

enum class PadPolicy {
  kNone,       // no batching, one request per launch
  kBatchMax,   // pad to the batch's longest sequence
  kBucketPow2, // pad batch and sequence to powers of two
};

const char* PadPolicyName(PadPolicy policy);

struct BatcherOptions {
  int64_t max_batch = 8;
  /// A batch launches when full or when its oldest request has waited this
  /// long.
  double max_wait_us = 2000.0;
  PadPolicy pad = PadPolicy::kBatchMax;
};

/// One formed batch: the requests plus the padded launch shape.
struct Batch {
  std::vector<Request> requests;
  int64_t padded_batch = 0;
  int64_t padded_seq = 0;
  double ready_us = 0.0;  // when the batch could start (arrivals + wait)
};

/// \brief Groups requests (assumed sorted by arrival) into batches under
/// the policy. Pure function — exposed for testing.
std::vector<Batch> FormBatches(const std::vector<Request>& requests,
                               const BatcherOptions& options);

struct ServingStats {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double throughput_qps = 0.0;     // completed requests / simulated second
  double padded_token_fraction = 0.0;  // padding waste across all batches
  int64_t batches = 0;
  /// Launch-plan cache hit rate over this simulation's queries (delta of
  /// the engine's counters, so earlier traffic on the engine is excluded).
  /// Under kBatchMax the padded shapes repeat heavily, so a plan-caching
  /// engine serves most batches on the fast path.
  double plan_hit_rate = 0.0;

  std::string ToString() const;
};

/// Maps a padded (batch, seq) to the engine's input shapes.
using ShapeFn =
    std::function<std::vector<std::vector<int64_t>>(int64_t batch, int64_t seq)>;

/// \brief Replays the request stream through `engine` on one device.
/// `engine` must already be Prepared.
Result<ServingStats> SimulateServing(Engine* engine, const ShapeFn& shape_fn,
                                     const std::vector<Request>& requests,
                                     const BatcherOptions& options,
                                     const DeviceSpec& device);

/// \brief Poisson-ish request stream with Zipf-ish sequence lengths.
std::vector<Request> SyntheticRequestStream(int64_t count, double mean_gap_us,
                                            uint64_t seed);

}  // namespace disc

#endif  // DISC_SERVING_SERVING_H_
