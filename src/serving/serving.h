// Serving simulation: dynamic batching over a single simulated GPU.
//
// Production inference (the paper's deployment context) doesn't see one
// query at a time — a batcher groups concurrent requests. Batching forces
// padding *within* a batch (all sequences in one launch share S), and the
// padding policy is where shape flexibility pays off:
//   * kBatchMax   — pad only to the longest request in the batch; needs a
//                   compiler that accepts ANY (B, S) — i.e. DISC;
//   * kBucketPow2 — pad (B, S) up to powers of two; what static engines
//                   with a bucket grid must do;
//   * kNone       — no batching: every request runs alone (eager-style).
// The simulator advances a single-device clock: batches execute serially,
// requests accumulate queueing + execution latency; reported percentiles
// include both.
//
// The simulator degrades instead of dying. A query failure is not the end
// of the replay: retryable errors (Status::IsRetryable — unavailable,
// resource-exhausted) are retried with exponential backoff on the
// simulated clock, batches arriving to an over-deep queue are shed,
// requests whose deadline passed before launch are dropped pre-execution,
// and only a non-retryable exhaustion of retries marks a batch failed.
// Every request is accounted for exactly once:
//   submitted == completed + shed + deadline_missed + failed.
#ifndef DISC_SERVING_SERVING_H_
#define DISC_SERVING_SERVING_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baselines/engine.h"
#include "support/blame.h"
#include "support/status.h"

namespace disc {

/// One inference request.
struct Request {
  int64_t id = 0;
  int64_t seq_len = 1;
  double arrival_us = 0.0;
  /// Absolute simulated-time deadline; 0 = none. A request whose deadline
  /// has already passed when its batch launches is dropped pre-execution
  /// and counted in ServingStats::deadline_missed. A request that launches
  /// in time but completes late still counts completed — the simulator
  /// models a server that cannot recall work already on the device.
  double deadline_us = 0.0;
  /// Causal-trace id, minted by SimulateServing at submit (0 = unminted).
  /// Carried through batch formation into engine-query and compile-service
  /// spans, and printed by every retained flight record / histogram
  /// exemplar, so a tail sample links back to its full span tree.
  uint64_t trace_id = 0;
};

enum class PadPolicy {
  kNone,       // no batching, one request per launch
  kBatchMax,   // pad to the batch's longest sequence
  kBucketPow2, // pad batch and sequence to powers of two
};

const char* PadPolicyName(PadPolicy policy);

struct BatcherOptions {
  int64_t max_batch = 8;
  /// A batch launches when full or when its oldest request has waited this
  /// long.
  double max_wait_us = 2000.0;
  PadPolicy pad = PadPolicy::kBatchMax;
  /// Retries per batch on a retryable Query error (IsRetryable). The
  /// first retry waits `retry_backoff_us` of simulated time, doubling on
  /// each subsequent attempt.
  int64_t max_retries = 2;
  double retry_backoff_us = 500.0;
  /// Shed (drop) a whole batch when the queue depth at its launch time —
  /// arrived but not yet accounted requests — exceeds this bound.
  /// 0 = never shed.
  int64_t max_queue_depth = 0;
  /// Memory-aware admission: before launching a batch, ask the engine for
  /// its predicted peak footprint (Engine::PredictPeakBytes — the symbolic
  /// peak formula evaluated for the batch's padded shape) and shed the
  /// batch when the prediction exceeds this budget, instead of discovering
  /// ResourceExhausted mid-run. 0 = admit unconditionally. Engines without
  /// a prediction (PredictPeakBytes == 0) always admit.
  int64_t memory_limit_bytes = 0;
};

/// One formed batch: the requests plus the padded launch shape.
struct Batch {
  std::vector<Request> requests;
  int64_t padded_batch = 0;
  int64_t padded_seq = 0;
  double ready_us = 0.0;  // when the batch could start (arrivals + wait)
};

/// \brief Groups requests into batches under the policy. Arrivals are
/// sorted internally by (arrival, effective deadline, id) — a total order,
/// so equal-arrival/equal-deadline requests batch identically for every
/// input permutation (decode traces replay byte-stable). Callers need not
/// pre-sort. Pure function — exposed for testing.
std::vector<Batch> FormBatches(const std::vector<Request>& requests,
                               const BatcherOptions& options);

struct ServingStats {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double throughput_qps = 0.0;     // completed requests / simulated second
  double padded_token_fraction = 0.0;  // padding waste across all batches
  int64_t batches = 0;
  /// Launch-plan cache hit rate over this simulation's queries (delta of
  /// the engine's counters, so earlier traffic on the engine is excluded).
  /// Under kBatchMax the padded shapes repeat heavily, so a plan-caching
  /// engine serves most batches on the fast path.
  double plan_hit_rate = 0.0;

  // Request accounting. Invariant (asserted by the chaos harness):
  //   submitted == completed + shed + deadline_missed + failed.
  int64_t submitted = 0;
  int64_t completed = 0;
  /// Dropped by load shedding (queue depth exceeded max_queue_depth, or
  /// predicted footprint exceeded memory_limit_bytes). Memory sheds are
  /// included here — `memory_shed` below is the informational sub-count —
  /// so the accounting invariant needs no extra term.
  int64_t shed = 0;
  /// Of `shed`: requests dropped by memory-aware admission (predicted
  /// peak footprint over BatcherOptions::memory_limit_bytes).
  int64_t memory_shed = 0;
  /// Dropped pre-execution because the deadline passed before launch.
  int64_t deadline_missed = 0;
  /// Batch query failed after exhausting retries (non-retryable or out of
  /// attempts); counts each request of the failed batch.
  int64_t failed = 0;
  /// Retry attempts across all batches (not requests).
  int64_t retries = 0;
  /// Requests served on a degraded path (the engine's fallback leg),
  /// attributed per batch via the delta of EngineStats::fallback_queries.
  int64_t degraded = 0;
  /// Generated-kernel launches this stream caused (delta of the runtime's
  /// mirrored `runtime.kernel.launches` counter — interpreter-degraded
  /// batches contribute nothing), and how many of all device launches
  /// (library calls included) the device model judged memory-bound. Both 0
  /// for engines that never reach the compiled runtime.
  int64_t kernel_launches = 0;
  int64_t memory_bound_launches = 0;
  /// Failed requests per StatusCode name (e.g. "Unavailable" -> 12).
  std::map<std::string, int64_t> error_counts;
  // Decode-serving extensions (filled by SimulateDecode in src/decode/;
  // all zero for request-level serving, so request-level output and every
  // committed baseline are unchanged).
  /// Generated tokens per simulated second across the whole replay — the
  /// decode-serving throughput headline.
  double tokens_per_sec = 0.0;
  int64_t generated_tokens = 0;
  /// Time-between-tokens percentiles: gaps between consecutive token
  /// completions of one sequence (the inter-token stutter a streaming
  /// client sees), pooled across sequences. Includes join->first-token.
  double p50_tbt_us = 0.0;
  double p99_tbt_us = 0.0;
  /// Fraction of per-step padded KV tokens that were padding (ragged
  /// lengths padded to the step signature, plus held slots of finished
  /// sequences under whole-request batching).
  double step_padding_waste = 0.0;
  int64_t decode_steps = 0;
  /// Sequences joined into / retired from the running batch mid-replay.
  int64_t decode_joins = 0;
  int64_t decode_retires = 0;
  /// Degradation-ladder actions specific to decode: sequences preempted
  /// (KV blocks released, requeued) under memory pressure, and resumed
  /// after preemption. A preempted-and-resumed sequence still completes,
  /// so the accounting invariant above is unchanged.
  int64_t preemptions = 0;
  int64_t resumes = 0;
  /// KV-cache pool occupancy high-water (blocks) and blocks recycled on
  /// sequence retire/preempt.
  int64_t kv_high_water_blocks = 0;
  int64_t kv_block_recycles = 0;

  /// Per-completed-request causal record: trace id, shape signature, and a
  /// PhaseLedger decomposing the end-to-end latency into batch_form /
  /// queue / backoff / decode_wait / compile_stall / host_plan / alloc /
  /// device. DISC_CHECKed inside SimulateServing to sum to e2e exactly;
  /// feed to TailBlameAggregator for p99 blame attribution.
  std::vector<CompletedRequest> completed_requests;

  std::string ToString() const;
};

/// Maps a padded (batch, seq) to the engine's input shapes.
using ShapeFn =
    std::function<std::vector<std::vector<int64_t>>(int64_t batch, int64_t seq)>;

/// \brief Replays the request stream through `engine` on one device.
/// `engine` must already be Prepared. Announces the simulated clock to the
/// engine (Engine::SetSimulatedTimeUs) before every attempt so time-based
/// engine state (circuit breakers) advances deterministically. Individual
/// query failures degrade the replay (see header comment) rather than
/// failing it; an error return means the simulation itself is broken.
Result<ServingStats> SimulateServing(Engine* engine, const ShapeFn& shape_fn,
                                     const std::vector<Request>& requests,
                                     const BatcherOptions& options,
                                     const DeviceSpec& device);

/// \brief Poisson-ish request stream with Zipf-ish sequence lengths.
std::vector<Request> SyntheticRequestStream(int64_t count, double mean_gap_us,
                                            uint64_t seed);

}  // namespace disc

#endif  // DISC_SERVING_SERVING_H_
