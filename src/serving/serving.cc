#include "serving/serving.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/flight_recorder.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

const char* PadPolicyName(PadPolicy policy) {
  switch (policy) {
    case PadPolicy::kNone:
      return "none";
    case PadPolicy::kBatchMax:
      return "batch-max";
    case PadPolicy::kBucketPow2:
      return "bucket-pow2";
  }
  return "?";
}

std::string ServingStats::ToString() const {
  std::string s = StrFormat(
      "p50=%.0fus p95=%.0fus p99=%.0fus mean=%.0fus qps=%.0f "
      "pad_waste=%.0f%% batches=%lld plan_hits=%.0f%%",
      p50_us, p95_us, p99_us, mean_us, throughput_qps,
      padded_token_fraction * 100, static_cast<long long>(batches),
      plan_hit_rate * 100);
  s += StrFormat(" ok=%lld/%lld", static_cast<long long>(completed),
                 static_cast<long long>(submitted));
  if (shed > 0) s += StrFormat(" shed=%lld", static_cast<long long>(shed));
  if (memory_shed > 0) {
    s += StrFormat(" memory_shed=%lld", static_cast<long long>(memory_shed));
  }
  if (deadline_missed > 0) {
    s += StrFormat(" deadline_missed=%lld",
                   static_cast<long long>(deadline_missed));
  }
  if (failed > 0) s += StrFormat(" failed=%lld", static_cast<long long>(failed));
  if (retries > 0) {
    s += StrFormat(" retries=%lld", static_cast<long long>(retries));
  }
  if (degraded > 0) {
    s += StrFormat(" degraded=%lld", static_cast<long long>(degraded));
  }
  if (kernel_launches > 0) {
    s += StrFormat(" kernel_launches=%lld memory_bound=%lld",
                   static_cast<long long>(kernel_launches),
                   static_cast<long long>(memory_bound_launches));
  }
  for (const auto& [code, count] : error_counts) {
    s += StrFormat(" err[%s]=%lld", code.c_str(),
                   static_cast<long long>(count));
  }
  if (decode_steps > 0) {
    s += StrFormat(
        "\n  decode: steps=%lld tokens=%lld tok/s=%.0f p50_tbt=%.1fus "
        "p99_tbt=%.1fus step_pad_waste=%.1f%% joins=%lld retires=%lld "
        "preemptions=%lld resumes=%lld kv_high_water_blocks=%lld "
        "kv_recycles=%lld",
        static_cast<long long>(decode_steps),
        static_cast<long long>(generated_tokens), tokens_per_sec, p50_tbt_us,
        p99_tbt_us, step_padding_waste * 100,
        static_cast<long long>(decode_joins),
        static_cast<long long>(decode_retires),
        static_cast<long long>(preemptions), static_cast<long long>(resumes),
        static_cast<long long>(kv_high_water_blocks),
        static_cast<long long>(kv_block_recycles));
  }
  return s;
}

namespace {

std::vector<Request> SortedByArrival(const std::vector<Request>& requests) {
  std::vector<Request> sorted = requests;
  // Total order: arrival, then deadline, then id. Sorting by arrival alone
  // left equal-arrival requests in caller order, so the same logical
  // stream batched differently depending on input permutation — decode
  // traces replayed through FormBatches were not byte-stable. The
  // deadline tie-break keeps tighter-deadline requests ahead inside the
  // tie; the id tie-break makes the order a permutation-independent total
  // order (stable_sort then only breaks exact duplicates by caller order).
  auto effective_deadline = [](const Request& r) {
    return r.deadline_us > 0.0 ? r.deadline_us
                               : std::numeric_limits<double>::infinity();
  };
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const Request& a, const Request& b) {
                     if (a.arrival_us != b.arrival_us) {
                       return a.arrival_us < b.arrival_us;
                     }
                     const double da = effective_deadline(a);
                     const double db = effective_deadline(b);
                     if (da != db) return da < db;
                     return a.id < b.id;
                   });
  return sorted;
}

}  // namespace

std::vector<Batch> FormBatches(const std::vector<Request>& requests,
                               const BatcherOptions& options) {
  std::vector<Batch> batches;
  if (requests.empty()) return batches;
  const std::vector<Request> sorted = SortedByArrival(requests);

  if (options.pad == PadPolicy::kNone) {
    for (const Request& r : sorted) {
      Batch batch;
      batch.requests = {r};
      batch.padded_batch = 1;
      batch.padded_seq = r.seq_len;
      batch.ready_us = r.arrival_us;
      batches.push_back(std::move(batch));
    }
    return batches;
  }

  Batch current;
  auto flush = [&]() {
    if (current.requests.empty()) return;
    int64_t batch_size = static_cast<int64_t>(current.requests.size());
    int64_t max_seq = 0;
    double last_arrival = 0.0;
    for (const Request& r : current.requests) {
      max_seq = std::max(max_seq, r.seq_len);
      last_arrival = std::max(last_arrival, r.arrival_us);
    }
    if (options.pad == PadPolicy::kBucketPow2) {
      current.padded_batch = NextPowerOfTwo(batch_size);
      current.padded_seq = NextPowerOfTwo(max_seq);
    } else {
      current.padded_batch = batch_size;
      current.padded_seq = max_seq;
    }
    // The batch is ready when its last member arrived, or when the oldest
    // member's wait budget expires — whichever is earlier — but never
    // before the last member it actually contains arrived.
    current.ready_us = last_arrival;
    batches.push_back(std::move(current));
    current = Batch();
  };

  for (const Request& r : sorted) {
    if (!current.requests.empty()) {
      double oldest = current.requests.front().arrival_us;
      // Close the batch if adding r would exceed the oldest member's wait.
      // Strict '>': a request arriving exactly at the wait bound still
      // joins the batch (tested in serving_test).
      if (r.arrival_us - oldest > options.max_wait_us) flush();
    }
    current.requests.push_back(r);
    if (static_cast<int64_t>(current.requests.size()) >= options.max_batch) {
      flush();
    }
  }
  flush();
  return batches;
}

Result<ServingStats> SimulateServing(Engine* engine, const ShapeFn& shape_fn,
                                     const std::vector<Request>& requests,
                                     const BatcherOptions& options,
                                     const DeviceSpec& device) {
  std::vector<Request> sorted = SortedByArrival(requests);
  // Mint the causal-trace id at submit (callers may pre-assign for tests;
  // 0 means "mint here"). FormBatches copies the minted requests into the
  // batches, so the id rides along through batch formation.
  for (Request& r : sorted) {
    if (r.trace_id == 0) r.trace_id = RequestContext::MintTraceId();
  }
  std::vector<Batch> batches = FormBatches(sorted, options);
  ServingStats stats;
  stats.batches = static_cast<int64_t>(batches.size());
  stats.submitted = static_cast<int64_t>(sorted.size());
  const int64_t hits_before = engine->stats().launch_plan_hits;
  const int64_t misses_before = engine->stats().launch_plan_misses;
  TraceSession& trace = TraceSession::Global();
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Kernel-observatory attribution: the runtime mirrors its per-run launch
  // counters into the registry, so the delta across this simulation is
  // exactly the launches this request stream caused (interpreter-degraded
  // batches contribute nothing — they never reach ExecutePlan).
  Counter* launch_counter = registry.GetCounter("runtime.kernel.launches");
  Counter* memory_bound_counter =
      registry.GetCounter("runtime.kernel.memory_bound");
  const int64_t launches_before = launch_counter->value();
  const int64_t memory_bound_before = memory_bound_counter->value();
  Histogram* queue_wait_hist = registry.GetHistogram("serving.queue_wait_us");
  Histogram* queue_depth_hist = registry.GetHistogram(
      "serving.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128});
  Histogram* batch_size_hist = registry.GetHistogram(
      "serving.batch_size", {1, 2, 4, 8, 16, 32, 64});
  Histogram* pad_waste_hist = registry.GetHistogram(
      "serving.padding_waste_pct", {0, 5, 10, 20, 30, 40, 50, 75, 100});
  // End-to-end per-request latency; exemplars carry the trace ids the
  // flight recorder retained evidence for (see Histogram::Observe).
  Histogram* latency_hist = registry.GetHistogram("serving.request_latency_us");
  FlightRecorder& recorder = FlightRecorder::Global();
  CountMetric("serving.requests", stats.submitted);
  CountMetric("serving.batches", stats.batches);

  double clock_us = 0.0;
  int64_t real_tokens = 0;
  int64_t padded_tokens = 0;
  // Queue depth at batch launch = arrived - accounted. Requests are sorted
  // by arrival and batches launch in order, so both counts are running
  // cursors over the simulated clock.
  size_t arrived_cursor = 0;
  std::vector<double> latencies;
  auto accounted = [&stats]() {
    return stats.completed + stats.shed + stats.deadline_missed + stats.failed;
  };
  for (const Batch& batch : batches) {
    const int64_t n = static_cast<int64_t>(batch.requests.size());
    // first_start is the launch attempt before any retry backoff; the
    // retry loop advances `start` past it, and the gap is the ledger's
    // backoff phase.
    const double first_start = std::max(clock_us, batch.ready_us);
    double start = first_start;

    while (arrived_cursor < sorted.size() &&
           sorted[arrived_cursor].arrival_us <= start) {
      ++arrived_cursor;
    }
    const int64_t depth = static_cast<int64_t>(arrived_cursor) - accounted();
    queue_depth_hist->Observe(static_cast<double>(depth));

    // Load shedding: an over-deep queue means the device has fallen behind
    // (e.g. every batch is paying a degraded-path stall); dropping whole
    // batches bounds the latency of the requests that remain.
    if (options.max_queue_depth > 0 && depth > options.max_queue_depth) {
      stats.shed += n;
      CountMetric("serving.shed", n);
      if (trace.enabled()) {
        trace.AddCompleteEvent(
            "shed", "serving.batch", start, /*dur_us=*/-1.0,
            TraceSession::kSimPid, /*tid=*/0,
            {{"requests", std::to_string(n)},
             {"queue_depth", std::to_string(depth)}});
      }
      continue;
    }

    // Deadline admission check: requests already past their deadline at
    // launch are dropped before the device is committed to them.
    std::vector<const Request*> live;
    live.reserve(batch.requests.size());
    for (const Request& r : batch.requests) {
      if (r.deadline_us > 0.0 && r.deadline_us < start) {
        ++stats.deadline_missed;
        CountMetric("serving.deadline_missed");
      } else {
        live.push_back(&r);
      }
    }
    if (live.empty()) continue;

    // Activate a request context for the batch's oldest live request so
    // the synchronous call chain below — PredictPeakBytes, engine Query,
    // Executable::Run spans, compile-service Submit — can attribute its
    // work to a concrete trace id (CurrentTraceId()).
    RequestContext batch_context(live.front()->trace_id);
    RequestContextScope context_scope(&batch_context);

    const auto shapes = shape_fn(batch.padded_batch, batch.padded_seq);
    const std::string signature =
        StrFormat("%lldx%lld", static_cast<long long>(batch.padded_batch),
                  static_cast<long long>(batch.padded_seq));

    // Memory-aware admission: evaluate the engine's symbolic peak formula
    // for the batch's padded shape and shed the batch when it would not
    // fit, instead of committing the device and failing mid-run. A failed
    // prediction admits — the run-time limit check is still in place.
    if (options.memory_limit_bytes > 0) {
      Result<int64_t> predicted = engine->PredictPeakBytes(shapes);
      if (predicted.ok() && *predicted > options.memory_limit_bytes) {
        const int64_t live_n = static_cast<int64_t>(live.size());
        stats.shed += live_n;
        stats.memory_shed += live_n;
        CountMetric("serving.shed", live_n);
        CountMetric("serving.memory_shed", live_n);
        if (trace.enabled()) {
          trace.AddCompleteEvent(
              "memory-shed", "serving.batch", start, /*dur_us=*/-1.0,
              TraceSession::kSimPid, /*tid=*/0,
              {{"requests", std::to_string(live_n)},
               {"predicted_peak_bytes", std::to_string(*predicted)},
               {"memory_limit_bytes",
                std::to_string(options.memory_limit_bytes)}});
        }
        continue;
      }
    }

    // Execute with retry-with-backoff on retryable errors. The backoff
    // advances the simulated clock, so breaker cooldowns can elapse
    // between attempts.
    const int64_t fallback_before = engine->stats().fallback_queries;
    Result<EngineTiming> attempt_result = EngineTiming{};
    int64_t batch_retries = 0;
    for (int64_t attempt = 0;; ++attempt) {
      engine->SetSimulatedTimeUs(start);
      attempt_result = engine->Query(shapes, device);
      if (attempt_result.ok()) break;
      const Status& error = attempt_result.status();
      if (!error.IsRetryable() || attempt >= options.max_retries) break;
      ++stats.retries;
      ++batch_retries;
      CountMetric("serving.retries");
      start += options.retry_backoff_us * std::pow(2.0, attempt);
    }
    if (!attempt_result.ok()) {
      const int64_t live_n = static_cast<int64_t>(live.size());
      stats.failed += live_n;
      const std::string code =
          StatusCodeToString(attempt_result.status().code());
      stats.error_counts[code] += live_n;
      CountMetric("serving.errors." + code, live_n);
      clock_us = std::max(clock_us, start);
      if (trace.enabled()) {
        trace.AddCompleteEvent(
            "batch-failed", "serving.batch", start, /*dur_us=*/-1.0,
            TraceSession::kSimPid, /*tid=*/0,
            {{"requests", std::to_string(live_n)},
             {"error", attempt_result.status().ToString()}});
      }
      continue;
    }
    const EngineTiming timing = *attempt_result;
    double done = start + timing.total_us;
    clock_us = done;
    const bool batch_degraded =
        engine->stats().fallback_queries > fallback_before;
    if (batch_degraded) {
      stats.degraded += static_cast<int64_t>(live.size());
      CountMetric("serving.degraded", static_cast<int64_t>(live.size()));
    }

    batch_size_hist->Observe(static_cast<double>(live.size()));

    const double backoff_us = start - first_start;
    int64_t batch_real_tokens = 0;
    for (const Request* r : live) {
      const double e2e = done - r->arrival_us;
      latencies.push_back(e2e);
      real_tokens += r->seq_len;
      batch_real_tokens += r->seq_len;
      queue_wait_hist->Observe(start - r->arrival_us);
      latency_hist->Observe(e2e, r->trace_id);

      // Itemized causal decomposition of this request's latency. The
      // serving segments (batch_form / queue / backoff) are geometry of
      // the simulated timeline; the execution segments come from the
      // engine's component timings — so the DISC_CHECK below also pins
      // the engine invariant total == device + host + compile + alloc.
      CompletedRequest record;
      record.trace_id = r->trace_id;
      record.request_id = r->id;
      record.signature = signature;
      record.arrival_us = r->arrival_us;
      record.e2e_us = e2e;
      record.degraded = batch_degraded;
      record.retries = batch_retries;
      record.ledger.batch_form_us = batch.ready_us - r->arrival_us;
      record.ledger.queue_us = first_start - batch.ready_us;
      record.ledger.backoff_us = backoff_us;
      record.ledger.compile_stall_us = timing.compile_us;
      record.ledger.host_plan_us = timing.host_us;
      record.ledger.alloc_us = timing.alloc_us;
      record.ledger.device_us = timing.device_us;
      const double ledger_total = record.ledger.TotalUs();
      DISC_CHECK(std::abs(ledger_total - e2e) <= 1e-6 * std::max(1.0, e2e))
          << StrFormat("request %lld ledger drifted: phases sum to %.6f, "
                       "e2e is %.6f (%s)",
                       static_cast<long long>(r->id), ledger_total, e2e,
                       record.ledger.ToString().c_str());
      stats.completed_requests.push_back(std::move(record));
    }
    stats.completed += static_cast<int64_t>(live.size());

    if (recorder.enabled() && !live.empty()) {
      // One lock + one signature lookup per batch; annotation strings are
      // only built if the recorder actually retains an outlier.
      const size_t first_new = stats.completed_requests.size() - live.size();
      recorder.ObserveBatch(
          signature, done, &stats.completed_requests[first_new], live.size(),
          [&]() -> std::vector<std::pair<std::string, std::string>> {
            return {{"shape", signature},
                    {"policy", PadPolicyName(options.pad)},
                    {"retries", std::to_string(batch_retries)},
                    {"degraded", batch_degraded ? "1" : "0"},
                    {"compile_stall_us", StrFormat("%.1f", timing.compile_us)}};
          });
    }
    const int64_t batch_padded_tokens = batch.padded_batch * batch.padded_seq;
    padded_tokens += batch_padded_tokens;
    const double batch_waste_pct =
        batch_padded_tokens > 0
            ? 100.0 * (1.0 - static_cast<double>(batch_real_tokens) /
                                 static_cast<double>(batch_padded_tokens))
            : 0.0;
    pad_waste_hist->Observe(batch_waste_pct);

    if (trace.enabled()) {
      // Simulated-clock timeline (pid kSimPid): the batch execution span,
      // and per request a span from arrival to completion split into
      // batch-formation wait, device-queue wait, and execution.
      trace.AddCompleteEvent(
          "batch", "serving.batch", start, timing.total_us,
          TraceSession::kSimPid, /*tid=*/0,
          {{"shape", signature},
           {"requests", std::to_string(live.size())},
           {"pad_waste_pct", StrFormat("%.0f", batch_waste_pct)},
           {"policy", PadPolicyName(options.pad)}});
      for (const Request* r : live) {
        // One row (tid) per in-flight slot keeps overlapping requests
        // readable; rows cycle, the id arg disambiguates.
        const int tid = 1 + static_cast<int>(r->id % 16);
        std::vector<TraceArg> args = {
            {"id", std::to_string(r->id)},
            {"trace_id", std::to_string(r->trace_id)},
            {"seq_len", std::to_string(r->seq_len)}};
        trace.AddCompleteEvent("request", "serving.request", r->arrival_us,
                               done - r->arrival_us, TraceSession::kSimPid,
                               tid, std::move(args));
        if (batch.ready_us > r->arrival_us) {
          trace.AddCompleteEvent("batch-form", "serving.request",
                                 r->arrival_us,
                                 batch.ready_us - r->arrival_us,
                                 TraceSession::kSimPid, tid);
        }
        if (first_start > batch.ready_us) {
          trace.AddCompleteEvent("queue", "serving.request", batch.ready_us,
                                 first_start - batch.ready_us,
                                 TraceSession::kSimPid, tid);
        }
        if (start > first_start) {
          trace.AddCompleteEvent("backoff", "serving.request", first_start,
                                 start - first_start, TraceSession::kSimPid,
                                 tid);
        }
        trace.AddCompleteEvent("execute", "serving.request", start,
                               timing.total_us, TraceSession::kSimPid, tid);
      }
    }
  }

  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    double idx = p / 100.0 * static_cast<double>(latencies.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, latencies.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return latencies[lo] * (1 - frac) + latencies[hi] * frac;
  };
  stats.p50_us = pct(50);
  stats.p95_us = pct(95);
  stats.p99_us = pct(99);
  double total = 0;
  for (double l : latencies) total += l;
  stats.mean_us =
      latencies.empty() ? 0.0 : total / static_cast<double>(latencies.size());
  stats.throughput_qps =
      clock_us > 0 ? static_cast<double>(stats.completed) / clock_us * 1e6
                   : 0.0;
  stats.padded_token_fraction =
      padded_tokens > 0
          ? 1.0 - static_cast<double>(real_tokens) /
                      static_cast<double>(padded_tokens)
          : 0.0;
  const int64_t hits = engine->stats().launch_plan_hits - hits_before;
  const int64_t misses = engine->stats().launch_plan_misses - misses_before;
  stats.plan_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  stats.kernel_launches = launch_counter->value() - launches_before;
  stats.memory_bound_launches =
      memory_bound_counter->value() - memory_bound_before;
  DISC_CHECK_EQ(accounted(), stats.submitted)
      << "serving accounting drifted";
  return stats;
}

std::vector<Request> SyntheticRequestStream(int64_t count, double mean_gap_us,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  double clock = 0.0;
  const std::vector<int64_t> lengths = {64, 32, 96, 17, 128, 48, 80, 24};
  std::vector<double> weights(lengths.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  for (int64_t i = 0; i < count; ++i) {
    // Exponential-ish gap via inverse transform on a uniform sample.
    double u = std::max(1e-6, 1.0 - rng.Uniform());
    clock += -mean_gap_us * std::log(u);
    Request r;
    r.id = i;
    r.seq_len = lengths[rng.Categorical(weights)];
    r.arrival_us = clock;
    requests.push_back(r);
  }
  return requests;
}

}  // namespace disc
