#include "serving/serving.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

const char* PadPolicyName(PadPolicy policy) {
  switch (policy) {
    case PadPolicy::kNone:
      return "none";
    case PadPolicy::kBatchMax:
      return "batch-max";
    case PadPolicy::kBucketPow2:
      return "bucket-pow2";
  }
  return "?";
}

std::string ServingStats::ToString() const {
  return StrFormat(
      "p50=%.0fus p95=%.0fus p99=%.0fus mean=%.0fus qps=%.0f "
      "pad_waste=%.0f%% batches=%lld plan_hits=%.0f%%",
      p50_us, p95_us, p99_us, mean_us, throughput_qps,
      padded_token_fraction * 100, static_cast<long long>(batches),
      plan_hit_rate * 100);
}

std::vector<Batch> FormBatches(const std::vector<Request>& requests,
                               const BatcherOptions& options) {
  std::vector<Batch> batches;
  if (requests.empty()) return batches;

  if (options.pad == PadPolicy::kNone) {
    for (const Request& r : requests) {
      Batch batch;
      batch.requests = {r};
      batch.padded_batch = 1;
      batch.padded_seq = r.seq_len;
      batch.ready_us = r.arrival_us;
      batches.push_back(std::move(batch));
    }
    return batches;
  }

  Batch current;
  auto flush = [&]() {
    if (current.requests.empty()) return;
    int64_t batch_size = static_cast<int64_t>(current.requests.size());
    int64_t max_seq = 0;
    double last_arrival = 0.0;
    for (const Request& r : current.requests) {
      max_seq = std::max(max_seq, r.seq_len);
      last_arrival = std::max(last_arrival, r.arrival_us);
    }
    if (options.pad == PadPolicy::kBucketPow2) {
      current.padded_batch = NextPowerOfTwo(batch_size);
      current.padded_seq = NextPowerOfTwo(max_seq);
    } else {
      current.padded_batch = batch_size;
      current.padded_seq = max_seq;
    }
    // The batch is ready when its last member arrived, or when the oldest
    // member's wait budget expires — whichever is earlier — but never
    // before the last member it actually contains arrived.
    current.ready_us = last_arrival;
    batches.push_back(std::move(current));
    current = Batch();
  };

  for (const Request& r : requests) {
    if (!current.requests.empty()) {
      double oldest = current.requests.front().arrival_us;
      // Close the batch if adding r would exceed the oldest member's wait.
      if (r.arrival_us - oldest > options.max_wait_us) flush();
    }
    current.requests.push_back(r);
    if (static_cast<int64_t>(current.requests.size()) >= options.max_batch) {
      flush();
    }
  }
  flush();
  return batches;
}

Result<ServingStats> SimulateServing(Engine* engine, const ShapeFn& shape_fn,
                                     const std::vector<Request>& requests,
                                     const BatcherOptions& options,
                                     const DeviceSpec& device) {
  std::vector<Batch> batches = FormBatches(requests, options);
  ServingStats stats;
  stats.batches = static_cast<int64_t>(batches.size());
  const int64_t hits_before = engine->stats().launch_plan_hits;
  const int64_t misses_before = engine->stats().launch_plan_misses;
  TraceSession& trace = TraceSession::Global();
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* queue_wait_hist = registry.GetHistogram("serving.queue_wait_us");
  Histogram* queue_depth_hist = registry.GetHistogram(
      "serving.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128});
  Histogram* batch_size_hist = registry.GetHistogram(
      "serving.batch_size", {1, 2, 4, 8, 16, 32, 64});
  Histogram* pad_waste_hist = registry.GetHistogram(
      "serving.padding_waste_pct", {0, 5, 10, 20, 30, 40, 50, 75, 100});
  CountMetric("serving.requests", static_cast<int64_t>(requests.size()));
  CountMetric("serving.batches", stats.batches);

  double clock_us = 0.0;
  int64_t real_tokens = 0;
  int64_t padded_tokens = 0;
  // Queue depth at batch launch = arrived - completed. Requests are sorted
  // by arrival and batches finish in order, so both counts are running
  // cursors over the simulated clock.
  size_t arrived_cursor = 0;
  int64_t completed = 0;
  std::vector<double> latencies;
  for (const Batch& batch : batches) {
    DISC_ASSIGN_OR_RETURN(
        EngineTiming timing,
        engine->Query(shape_fn(batch.padded_batch, batch.padded_seq),
                      device));
    double start = std::max(clock_us, batch.ready_us);
    double done = start + timing.total_us;
    clock_us = done;

    while (arrived_cursor < requests.size() &&
           requests[arrived_cursor].arrival_us <= start) {
      ++arrived_cursor;
    }
    queue_depth_hist->Observe(
        static_cast<double>(static_cast<int64_t>(arrived_cursor) - completed));
    batch_size_hist->Observe(static_cast<double>(batch.requests.size()));

    int64_t batch_real_tokens = 0;
    for (const Request& r : batch.requests) {
      latencies.push_back(done - r.arrival_us);
      real_tokens += r.seq_len;
      batch_real_tokens += r.seq_len;
      queue_wait_hist->Observe(start - r.arrival_us);
    }
    completed += static_cast<int64_t>(batch.requests.size());
    const int64_t batch_padded_tokens = batch.padded_batch * batch.padded_seq;
    padded_tokens += batch_padded_tokens;
    const double batch_waste_pct =
        batch_padded_tokens > 0
            ? 100.0 * (1.0 - static_cast<double>(batch_real_tokens) /
                                 static_cast<double>(batch_padded_tokens))
            : 0.0;
    pad_waste_hist->Observe(batch_waste_pct);

    if (trace.enabled()) {
      // Simulated-clock timeline (pid kSimPid): the batch execution span,
      // and per request a span from arrival to completion split into
      // batch-formation wait, device-queue wait, and execution.
      trace.AddCompleteEvent(
          "batch", "serving.batch", start, timing.total_us,
          TraceSession::kSimPid, /*tid=*/0,
          {{"shape", StrFormat("%lldx%lld",
                               static_cast<long long>(batch.padded_batch),
                               static_cast<long long>(batch.padded_seq))},
           {"requests", std::to_string(batch.requests.size())},
           {"pad_waste_pct", StrFormat("%.0f", batch_waste_pct)},
           {"policy", PadPolicyName(options.pad)}});
      for (const Request& r : batch.requests) {
        // One row (tid) per in-flight slot keeps overlapping requests
        // readable; rows cycle, the id arg disambiguates.
        const int tid = 1 + static_cast<int>(r.id % 16);
        std::vector<TraceArg> args = {
            {"id", std::to_string(r.id)},
            {"seq_len", std::to_string(r.seq_len)}};
        trace.AddCompleteEvent("request", "serving.request", r.arrival_us,
                               done - r.arrival_us, TraceSession::kSimPid,
                               tid, std::move(args));
        if (batch.ready_us > r.arrival_us) {
          trace.AddCompleteEvent("batch-form", "serving.request",
                                 r.arrival_us, batch.ready_us - r.arrival_us,
                                 TraceSession::kSimPid, tid);
        }
        if (start > batch.ready_us) {
          trace.AddCompleteEvent("queue", "serving.request", batch.ready_us,
                                 start - batch.ready_us,
                                 TraceSession::kSimPid, tid);
        }
        trace.AddCompleteEvent("execute", "serving.request", start,
                               timing.total_us, TraceSession::kSimPid, tid);
      }
    }
  }

  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    double idx = p / 100.0 * static_cast<double>(latencies.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, latencies.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return latencies[lo] * (1 - frac) + latencies[hi] * frac;
  };
  stats.p50_us = pct(50);
  stats.p95_us = pct(95);
  stats.p99_us = pct(99);
  double total = 0;
  for (double l : latencies) total += l;
  stats.mean_us =
      latencies.empty() ? 0.0 : total / static_cast<double>(latencies.size());
  stats.throughput_qps =
      clock_us > 0 ? static_cast<double>(requests.size()) / clock_us * 1e6
                   : 0.0;
  stats.padded_token_fraction =
      padded_tokens > 0
          ? 1.0 - static_cast<double>(real_tokens) /
                      static_cast<double>(padded_tokens)
          : 0.0;
  const int64_t hits = engine->stats().launch_plan_hits - hits_before;
  const int64_t misses = engine->stats().launch_plan_misses - misses_before;
  stats.plan_hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  return stats;
}

std::vector<Request> SyntheticRequestStream(int64_t count, double mean_gap_us,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<Request> requests;
  double clock = 0.0;
  const std::vector<int64_t> lengths = {64, 32, 96, 17, 128, 48, 80, 24};
  std::vector<double> weights(lengths.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  for (int64_t i = 0; i < count; ++i) {
    // Exponential-ish gap via inverse transform on a uniform sample.
    double u = std::max(1e-6, 1.0 - rng.Uniform());
    clock += -mean_gap_us * std::log(u);
    Request r;
    r.id = i;
    r.seq_len = lengths[rng.Categorical(weights)];
    r.arrival_us = clock;
    requests.push_back(r);
  }
  return requests;
}

}  // namespace disc
