#include "models/models.h"

#include "ir/builder.h"
#include "support/logging.h"
#include "support/rng.h"

namespace disc {
namespace {

// Seeded random weight constant.
Value* Weight(GraphBuilder* b, Rng* rng, std::vector<int64_t> dims,
              float stddev = 0.1f) {
  Tensor t(DType::kF32, std::move(dims));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.f32_data()[i] = rng->Normal(0.0f, stddev);
  }
  return b->Constant(std::move(t));
}

// Default input generator: random normal f32 everywhere.
std::vector<Tensor> RandomF32Inputs(const ShapeSet& shapes, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (const auto& dims : shapes) {
    Tensor t(DType::kF32, dims);
    for (int64_t i = 0; i < t.num_elements(); ++i) {
      t.f32_data()[i] = rng.Normal();
    }
    inputs.push_back(std::move(t));
  }
  return inputs;
}

// Zipf-ish sampler over a candidate list: a few hot values, a long tail.
int64_t SampleDim(Rng* rng, const std::vector<int64_t>& candidates) {
  std::vector<double> weights(candidates.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  return candidates[rng->Categorical(weights)];
}

// One transformer encoder layer on h: [B, S, H].
Value* EncoderLayer(GraphBuilder* b, Rng* rng, Value* h,
                    const ModelConfig& config) {
  int64_t hidden = config.hidden;
  int64_t heads = config.heads;
  int64_t head_dim = hidden / heads;
  DISC_CHECK_EQ(heads * head_dim, hidden);

  Value* ln_scale = Weight(b, rng, {hidden}, 1.0f);
  Value* ln_bias = Weight(b, rng, {hidden});
  Value* x = b->LayerNorm(h, ln_scale, ln_bias);

  auto project = [&](Value* in) {
    Value* w = Weight(b, rng, {hidden, hidden});
    Value* proj = b->MatMul(in, w);  // [B, S, H]
    // [B, S, nh, hd] -> [B, nh, S, hd]
    Value* shaped = b->ReshapeDynamic(
        proj, b->Concat({b->Reshape(b->Dim(proj, 0), {1}),
                         b->Reshape(b->Dim(proj, 1), {1}),
                         b->Constant(Tensor::I64({2}, {heads, head_dim}))},
                        0));
    return b->Transpose(shaped, {0, 2, 1, 3});
  };
  Value* q = project(x);
  Value* k = project(x);
  Value* v = project(x);

  Value* scores = b->MatMul(q, k, false, /*transpose_b=*/true);
  Value* scaled = b->Mul(
      scores, b->ScalarF32(1.0f / std::sqrt(static_cast<float>(head_dim))));
  Value* probs = b->Softmax(scaled);
  Value* ctx = b->MatMul(probs, v);  // [B, nh, S, hd]
  Value* merged = b->Transpose(ctx, {0, 2, 1, 3});
  Value* flat = b->ReshapeDynamic(
      merged, b->Concat({b->Reshape(b->Dim(merged, 0), {1}),
                         b->Reshape(b->Dim(merged, 1), {1}),
                         b->Constant(Tensor::I64({1}, {hidden}))},
                        0));
  Value* attn_out = b->MatMul(flat, Weight(b, rng, {hidden, hidden}));
  Value* h1 = b->Add(h, attn_out);  // residual

  Value* ln2 = b->LayerNorm(h1, Weight(b, rng, {hidden}, 1.0f),
                            Weight(b, rng, {hidden}));
  Value* ffn1 = b->Gelu(b->Add(b->MatMul(ln2, Weight(b, rng, {hidden, config.ffn})),
                               Weight(b, rng, {config.ffn})));
  Value* ffn2 = b->Add(b->MatMul(ffn1, Weight(b, rng, {config.ffn, hidden})),
                       Weight(b, rng, {hidden}));
  return b->Add(h1, ffn2);
}

}  // namespace

Model BuildMlp(const ModelConfig& config) {
  Model model;
  model.name = "mlp";
  model.graph = std::make_unique<Graph>("mlp");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);

  Value* x = b.Input("x", DType::kF32, {kDynamicDim, config.hidden});
  Value* h1 = b.Relu(b.Add(b.MatMul(x, Weight(&b, &rng, {config.hidden, config.ffn})),
                           Weight(&b, &rng, {config.ffn})));
  Value* h2 = b.Add(b.MatMul(h1, Weight(&b, &rng, {config.ffn, 10})),
                    Weight(&b, &rng, {10}));
  b.Output({b.Softmax(h2)});

  model.input_dim_labels = {{"B", ""}};
  model.small_shapes = {{3, config.hidden}};
  Rng trace_rng(config.seed + 1);
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t batch = SampleDim(&trace_rng, {8, 1, 4, 16, 3, 32, 5, 64, 7, 24});
    model.trace.push_back({{batch, config.hidden}});
  }
  model.make_inputs = RandomF32Inputs;
  return model;
}

Model BuildBert(const ModelConfig& config) {
  Model model;
  model.name = "bert";
  model.graph = std::make_unique<Graph>("bert");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);

  Value* h = b.Input("embeddings", DType::kF32,
                     {kDynamicDim, kDynamicDim, config.hidden});
  for (int64_t layer = 0; layer < config.layers; ++layer) {
    h = EncoderLayer(&b, &rng, h, config);
  }
  // Pooler: first-token slice + tanh projection.
  Value* ln = b.LayerNorm(h, Weight(&b, &rng, {config.hidden}, 1.0f),
                          Weight(&b, &rng, {config.hidden}));
  b.Output({ln});

  model.input_dim_labels = {{"B", "S", ""}};
  model.small_shapes = {{2, 5, config.hidden}};
  Rng trace_rng(config.seed + 2);
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t batch = SampleDim(&trace_rng, {1, 2, 4, 8});
    int64_t seq = SampleDim(&trace_rng,
                            {64, 32, 128, 48, 96, 24, 112, 80, 17, 57});
    model.trace.push_back({{batch, seq, config.hidden}});
  }
  model.make_inputs = RandomF32Inputs;
  return model;
}

Model BuildSeq2SeqStep(const ModelConfig& config) {
  Model model;
  model.name = "seq2seq-step";
  model.graph = std::make_unique<Graph>("seq2seq_step");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);
  int64_t hidden = config.hidden;

  // One decode step: query for the next token attends over the KV cache.
  Value* q_in = b.Input("query", DType::kF32, {kDynamicDim, 1, hidden});
  Value* k_cache = b.Input("k_cache", DType::kF32,
                           {kDynamicDim, kDynamicDim, hidden});
  Value* v_cache = b.Input("v_cache", DType::kF32,
                           {kDynamicDim, kDynamicDim, hidden});

  Value* q = b.MatMul(q_in, Weight(&b, &rng, {hidden, hidden}));
  Value* scores =
      b.MatMul(q, k_cache, false, /*transpose_b=*/true);  // [B,1,T]
  Value* probs = b.Softmax(b.Mul(
      scores, b.ScalarF32(1.0f / std::sqrt(static_cast<float>(hidden)))));
  Value* ctx = b.MatMul(probs, v_cache);  // [B,1,H]
  Value* h1 = b.Add(q_in, b.MatMul(ctx, Weight(&b, &rng, {hidden, hidden})));
  Value* ln = b.LayerNorm(h1, Weight(&b, &rng, {hidden}, 1.0f),
                          Weight(&b, &rng, {hidden}));
  Value* ffn = b.Add(
      b.MatMul(b.Gelu(b.MatMul(ln, Weight(&b, &rng, {hidden, config.ffn}))),
               Weight(&b, &rng, {config.ffn, hidden})),
      h1);
  // Vocabulary logits for the next token.
  Value* logits = b.MatMul(ffn, Weight(&b, &rng, {hidden, 128}));
  b.Output({b.Softmax(logits)});

  model.input_dim_labels = {{"B", "", ""}, {"B", "T", ""}, {"B", "T", ""}};
  model.small_shapes = {{2, 1, hidden}, {2, 3, hidden}, {2, 3, hidden}};
  // The trace walks a decode loop: T grows 1..L, repeated for a few
  // sequences — the worst case for compile-per-shape systems.
  Rng trace_rng(config.seed + 3);
  int64_t t = 1;
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t batch = 1 + (i / 32) % 2;
    model.trace.push_back(
        {{batch, 1, hidden}, {batch, t, hidden}, {batch, t, hidden}});
    t = (t % 32) + 1;
  }
  model.make_inputs = RandomF32Inputs;
  return model;
}

Model BuildCrnn(const ModelConfig& config) {
  Model model;
  model.name = "crnn";
  model.graph = std::make_unique<Graph>("crnn");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);

  // OCR-style: height fixed at 32, width dynamic.
  Value* image = b.Input("image", DType::kF32, {1, 32, kDynamicDim, 1});
  Value* c1 = b.Relu(b.Conv2D(image, Weight(&b, &rng, {3, 3, 1, 16}),
                              {2, 2}, {1, 1}));  // [1,16,W/2,16]
  Value* c2 = b.Relu(b.Conv2D(c1, Weight(&b, &rng, {3, 3, 16, 32}),
                              {2, 2}, {1, 1}));  // [1,8,W/4,32]
  // Column features: [1,8,W',32] -> [W', 8*32].
  Value* seq = b.Transpose(c2, {0, 2, 1, 3});  // [1, W', 8, 32]
  Value* w_dim = b.Reshape(b.Dim(seq, 1), {1});
  Value* feat_shape =
      b.Concat({w_dim, b.Constant(Tensor::I64({1}, {8 * 32}))}, 0);
  Value* feats = b.ReshapeDynamic(seq, feat_shape);  // [W', 256]
  // Per-column classifier (stand-in for the RNN head: same GEMM shape).
  Value* fc = b.Relu(b.Add(b.MatMul(feats, Weight(&b, &rng, {8 * 32, config.hidden})),
                           Weight(&b, &rng, {config.hidden})));
  Value* logits = b.MatMul(fc, Weight(&b, &rng, {config.hidden, 37}));
  b.Output({b.Softmax(logits)});

  model.input_dim_labels = {{"", "", "W", ""}};
  model.small_shapes = {{1, 32, 16, 1}};
  Rng trace_rng(config.seed + 4);
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t width = SampleDim(&trace_rng,
                              {100, 80, 128, 64, 160, 48, 200, 96, 72, 144});
    model.trace.push_back({{1, 32, width, 1}});
  }
  model.make_inputs = RandomF32Inputs;
  return model;
}

Model BuildFastSpeech2(const ModelConfig& config) {
  Model model;
  model.name = "fastspeech2";
  model.graph = std::make_unique<Graph>("fastspeech2");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);
  int64_t hidden = config.hidden;

  // Phoneme encodings [1, P, H] and the length-regulator expansion map
  // [E] (frame -> phoneme index), computed by the text frontend.
  Value* phonemes = b.Input("phonemes", DType::kF32,
                            {1, kDynamicDim, hidden});
  Value* expand_ids = b.Input("expand_ids", DType::kI64, {kDynamicDim});

  Value* enc = EncoderLayer(&b, &rng, phonemes, config);
  // Length regulator: repeat phoneme states per predicted duration —
  // a gather with a data-dependent output length.
  Value* enc_flat = b.ReshapeDynamic(
      enc, b.Concat({b.Reshape(b.Dim(enc, 1), {1}),
                     b.Constant(Tensor::I64({1}, {hidden}))},
                    0));  // [P, H]
  Value* frames = b.Gather(enc_flat, expand_ids, 0);  // [E, H]
  Value* frames3 = b.ReshapeDynamic(
      frames, b.Concat({b.Constant(Tensor::I64({1}, {1})),
                        b.Reshape(b.Dim(frames, 0), {1}),
                        b.Constant(Tensor::I64({1}, {hidden}))},
                       0));  // [1, E, H]
  Value* dec = EncoderLayer(&b, &rng, frames3, config);
  // Mel projection.
  Value* mel = b.MatMul(dec, Weight(&b, &rng, {hidden, 80}));
  b.Output({mel});

  model.input_dim_labels = {{"", "P", ""}, {"E"}};
  model.small_shapes = {{1, 4, hidden}, {9}};
  Rng trace_rng(config.seed + 5);
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t phoneme_count = SampleDim(&trace_rng, {24, 16, 32, 12, 48, 20});
    int64_t expansion = phoneme_count * trace_rng.UniformInt(4, 7);
    model.trace.push_back({{1, phoneme_count, hidden}, {expansion}});
  }
  model.make_inputs = [](const ShapeSet& shapes, uint64_t seed) {
    Rng rng(seed);
    std::vector<Tensor> inputs;
    Tensor ph(DType::kF32, shapes[0]);
    for (int64_t i = 0; i < ph.num_elements(); ++i) {
      ph.f32_data()[i] = rng.Normal();
    }
    inputs.push_back(std::move(ph));
    int64_t phoneme_count = shapes[0][1];
    Tensor ids(DType::kI64, shapes[1]);
    for (int64_t i = 0; i < ids.num_elements(); ++i) {
      // Monotone expansion map, like real durations.
      ids.i64_data()[i] =
          std::min<int64_t>(phoneme_count - 1,
                            i * phoneme_count / std::max<int64_t>(
                                                    1, ids.num_elements()));
    }
    inputs.push_back(std::move(ids));
    return inputs;
  };
  return model;
}

Model BuildDlrm(const ModelConfig& config) {
  Model model;
  model.name = "dlrm";
  model.graph = std::make_unique<Graph>("dlrm");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);
  const int64_t kTables = 8;
  const int64_t kRows = 512;
  const int64_t kEmb = 32;

  Value* dense = b.Input("dense", DType::kF32, {kDynamicDim, 13});
  Value* ids = b.Input("ids", DType::kI64, {kDynamicDim, kTables});

  Value* bottom = b.Relu(b.Add(b.MatMul(dense, Weight(&b, &rng, {13, kEmb})),
                               Weight(&b, &rng, {kEmb})));
  std::vector<Value*> features = {bottom};
  for (int64_t t = 0; t < kTables; ++t) {
    Value* table = Weight(&b, &rng, {kRows, kEmb}, 0.05f);
    Value* col = b.Slice(ids, {0, t}, {-1, t + 1}, {1, 1});  // [B,1]
    Value* flat_ids = b.ReshapeDynamic(
        col, b.Reshape(b.Dim(col, 0), {1}));  // [B]
    features.push_back(b.Gather(table, flat_ids, 0));  // [B, kEmb]
  }
  Value* concat = b.Concat(features, 1);  // [B, kEmb*(kTables+1)]
  Value* top1 = b.Relu(
      b.Add(b.MatMul(concat, Weight(&b, &rng, {kEmb * (kTables + 1), 64})),
            Weight(&b, &rng, {64})));
  Value* logit = b.Add(b.MatMul(top1, Weight(&b, &rng, {64, 1})),
                       Weight(&b, &rng, {1}));
  b.Output({b.Sigmoid(logit)});

  model.input_dim_labels = {{"B", ""}, {"B", ""}};
  model.small_shapes = {{4, 13}, {4, kTables}};
  Rng trace_rng(config.seed + 6);
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t batch = SampleDim(&trace_rng,
                              {128, 64, 256, 32, 512, 96, 48, 192, 160, 27});
    model.trace.push_back({{batch, 13}, {batch, kTables}});
  }
  model.make_inputs = [kRows](const ShapeSet& shapes, uint64_t seed) {
    Rng rng(seed);
    std::vector<Tensor> inputs;
    Tensor dense(DType::kF32, shapes[0]);
    for (int64_t i = 0; i < dense.num_elements(); ++i) {
      dense.f32_data()[i] = rng.Normal();
    }
    inputs.push_back(std::move(dense));
    Tensor ids(DType::kI64, shapes[1]);
    for (int64_t i = 0; i < ids.num_elements(); ++i) {
      ids.i64_data()[i] = rng.UniformInt(0, kRows - 1);
    }
    inputs.push_back(std::move(ids));
    return inputs;
  };
  return model;
}

Model BuildBertWithMask(const ModelConfig& config) {
  Model model;
  model.name = "bert-masked";
  model.graph = std::make_unique<Graph>("bert_masked");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);
  int64_t hidden = config.hidden;
  int64_t heads = config.heads;
  int64_t head_dim = hidden / heads;

  Value* h = b.Input("embeddings", DType::kF32,
                     {kDynamicDim, kDynamicDim, hidden});
  // 1 = attend, 0 = padding.
  Value* mask = b.Input("mask", DType::kF32, {kDynamicDim, kDynamicDim});

  // One attention layer with explicit masking.
  Value* x = b.LayerNorm(h, Weight(&b, &rng, {hidden}, 1.0f),
                         Weight(&b, &rng, {hidden}));
  auto project = [&](Value* in) {
    Value* proj = b.MatMul(in, Weight(&b, &rng, {hidden, hidden}));
    Value* shaped = b.ReshapeDynamic(
        proj, b.Concat({b.Reshape(b.Dim(proj, 0), {1}),
                        b.Reshape(b.Dim(proj, 1), {1}),
                        b.Constant(Tensor::I64({2}, {heads, head_dim}))},
                       0));
    return b.Transpose(shaped, {0, 2, 1, 3});
  };
  Value* q = project(x);
  Value* k = project(x);
  Value* v = project(x);
  Value* scores = b.Mul(
      b.MatMul(q, k, false, true),
      b.ScalarF32(1.0f / std::sqrt(static_cast<float>(head_dim))));
  // mask [B, S] -> [B, 1, 1, S]; masked keys get a large negative logit.
  Value* mask4 = b.ReshapeDynamic(
      mask, b.Concat({b.Reshape(b.Dim(mask, 0), {1}),
                      b.Constant(Tensor::I64({2}, {1, 1})),
                      b.Reshape(b.Dim(mask, 1), {1})},
                     0));
  Value* keep = b.Greater(mask4, b.ScalarF32(0.5f));
  Value* masked =
      b.Select(keep, scores, b.BroadcastToDynamic(
                                 b.ScalarF32(-1e9f), b.ShapeOf(scores)));
  Value* probs = b.Softmax(masked);
  Value* ctx = b.Transpose(b.MatMul(probs, v), {0, 2, 1, 3});
  Value* flat = b.ReshapeDynamic(
      ctx, b.Concat({b.Reshape(b.Dim(ctx, 0), {1}),
                     b.Reshape(b.Dim(ctx, 1), {1}),
                     b.Constant(Tensor::I64({1}, {hidden}))},
                    0));
  Value* out = b.Add(h, b.MatMul(flat, Weight(&b, &rng, {hidden, hidden})));
  b.Output({out});

  model.input_dim_labels = {{"B", "S", ""}, {"B", "S"}};
  model.small_shapes = {{2, 5, hidden}, {2, 5}};
  Rng trace_rng(config.seed + 7);
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t batch = SampleDim(&trace_rng, {2, 1, 4});
    int64_t seq = SampleDim(&trace_rng, {48, 32, 64, 24});
    model.trace.push_back({{batch, seq, hidden}, {batch, seq}});
  }
  model.make_inputs = [](const ShapeSet& shapes, uint64_t seed) {
    Rng rng(seed);
    std::vector<Tensor> inputs;
    Tensor emb(DType::kF32, shapes[0]);
    for (int64_t i = 0; i < emb.num_elements(); ++i) {
      emb.f32_data()[i] = rng.Normal();
    }
    inputs.push_back(std::move(emb));
    // Mask: a random suffix of each sequence is padding.
    Tensor mask(DType::kF32, shapes[1]);
    int64_t batch = shapes[1][0];
    int64_t seq = shapes[1][1];
    for (int64_t r = 0; r < batch; ++r) {
      int64_t valid = rng.UniformInt(1, seq);
      for (int64_t c = 0; c < seq; ++c) {
        mask.f32_data()[r * seq + c] = c < valid ? 1.0f : 0.0f;
      }
    }
    inputs.push_back(std::move(mask));
    return inputs;
  };
  return model;
}

Model BuildGptStep(const ModelConfig& config) {
  Model model;
  model.name = "gpt-step";
  model.graph = std::make_unique<Graph>("gpt_step");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);
  int64_t hidden = config.hidden;

  Value* token = b.Input("token", DType::kF32, {1, 1, hidden});
  Value* k_cache = b.Input("k_cache", DType::kF32, {1, kDynamicDim, hidden});
  Value* v_cache = b.Input("v_cache", DType::kF32, {1, kDynamicDim, hidden});

  // New K/V for this token, appended to the caches: the outputs' second
  // dim is symbolically T+1.
  Value* k_new = b.MatMul(token, Weight(&b, &rng, {hidden, hidden}));
  Value* v_new = b.MatMul(token, Weight(&b, &rng, {hidden, hidden}));
  Value* k_next = b.Concat({k_cache, k_new}, 1);  // [1, T+1, H]
  Value* v_next = b.Concat({v_cache, v_new}, 1);

  Value* q = b.MatMul(token, Weight(&b, &rng, {hidden, hidden}));
  Value* scores = b.Mul(
      b.MatMul(q, k_next, false, true),
      b.ScalarF32(1.0f / std::sqrt(static_cast<float>(hidden))));
  Value* probs = b.Softmax(scores);          // [1, 1, T+1]
  Value* ctx = b.MatMul(probs, v_next);      // [1, 1, H]
  Value* h1 = b.Add(token, b.MatMul(ctx, Weight(&b, &rng, {hidden, hidden})));
  Value* ln = b.LayerNorm(h1, Weight(&b, &rng, {hidden}, 1.0f),
                          Weight(&b, &rng, {hidden}));
  Value* logits = b.MatMul(ln, Weight(&b, &rng, {hidden, 96}));
  b.Output({b.Softmax(logits), k_next, v_next});

  model.input_dim_labels = {{"", "", ""}, {"", "T", ""}, {"", "T", ""}};
  model.small_shapes = {{1, 1, hidden}, {1, 3, hidden}, {1, 3, hidden}};
  for (int64_t i = 0; i < config.trace_length; ++i) {
    int64_t t = 1 + i % 48;
    model.trace.push_back(
        {{1, 1, hidden}, {1, t, hidden}, {1, t, hidden}});
  }
  model.make_inputs = RandomF32Inputs;
  return model;
}

Model BuildGptStepBatch(const ModelConfig& config) {
  Model model;
  model.name = "gpt-step-batch";
  model.graph = std::make_unique<Graph>("gpt_step_batch");
  GraphBuilder b(model.graph.get());
  Rng rng(config.seed);
  int64_t hidden = config.hidden;

  Value* token = b.Input("token", DType::kF32, {kDynamicDim, 1, hidden});
  Value* k_cache =
      b.Input("k_cache", DType::kF32, {kDynamicDim, kDynamicDim, hidden});
  Value* v_cache =
      b.Input("v_cache", DType::kF32, {kDynamicDim, kDynamicDim, hidden});
  // 1.0 for valid cache positions, 0.0 for ragged padding. The new token's
  // own K/V is always attended (scored separately below), so the mask
  // covers exactly the T cache columns.
  Value* mask = b.Input("kv_mask", DType::kF32, {kDynamicDim, kDynamicDim});

  // Weight draw order matches BuildGptStep (Wk, Wv, Wq, Wo, ln scale/bias,
  // Wl) so both models share weights for the same config.seed.
  Value* k_new = b.MatMul(token, Weight(&b, &rng, {hidden, hidden}));
  Value* v_new = b.MatMul(token, Weight(&b, &rng, {hidden, hidden}));
  Value* k_next = b.Concat({k_cache, k_new}, 1);  // [B, T+1, H]
  Value* v_next = b.Concat({v_cache, v_new}, 1);

  Value* q = b.MatMul(token, Weight(&b, &rng, {hidden, hidden}));
  Value* scale =
      b.ScalarF32(1.0f / std::sqrt(static_cast<float>(hidden)));
  // Cache keys and the appended key are scored separately so the mask can
  // silence padded cache rows without touching the new token: a masked
  // logit of -1e9 underflows to exp(...) == +0.0 after the softmax shift,
  // and a 0.0 attention weight contributes exactly nothing to the context
  // matmul — row-wise bit-identical to the unpadded single-sequence step.
  Value* s_cache = b.Mul(b.MatMul(q, k_cache, false, true), scale);  // [B,1,T]
  Value* s_new = b.Mul(b.MatMul(q, k_new, false, true), scale);      // [B,1,1]
  Value* mask3 = b.ReshapeDynamic(
      mask, b.Concat({b.Reshape(b.Dim(mask, 0), {1}),
                      b.Constant(Tensor::I64({1}, {1})),
                      b.Reshape(b.Dim(mask, 1), {1})},
                     0));
  Value* keep = b.Greater(mask3, b.ScalarF32(0.5f));
  Value* masked = b.Select(
      keep, s_cache,
      b.BroadcastToDynamic(b.ScalarF32(-1e9f), b.ShapeOf(s_cache)));
  Value* scores = b.Concat({masked, s_new}, 2);  // [B, 1, T+1]
  Value* probs = b.Softmax(scores);
  Value* ctx = b.MatMul(probs, v_next);  // [B, 1, H]
  Value* h1 = b.Add(token, b.MatMul(ctx, Weight(&b, &rng, {hidden, hidden})));
  Value* ln = b.LayerNorm(h1, Weight(&b, &rng, {hidden}, 1.0f),
                          Weight(&b, &rng, {hidden}));
  Value* logits = b.MatMul(ln, Weight(&b, &rng, {hidden, 96}));
  b.Output({b.Softmax(logits), k_next, v_next});

  model.input_dim_labels = {
      {"B", "", ""}, {"B", "T", ""}, {"B", "T", ""}, {"B", "T"}};
  model.small_shapes = {
      {2, 1, hidden}, {2, 3, hidden}, {2, 3, hidden}, {2, 3}};
  for (int64_t i = 0; i < config.trace_length; ++i) {
    // A continuous-batching step trace: occupancy wanders, kv length is
    // block-quantized (multiples of 16) the way the decode scheduler pads.
    int64_t batch = 1 + (i * 5 % 7);
    int64_t t = 16 * (1 + i % 6);
    model.trace.push_back(
        {{batch, 1, hidden}, {batch, t, hidden}, {batch, t, hidden},
         {batch, t}});
  }
  model.make_inputs = [](const ShapeSet& shapes, uint64_t seed) {
    std::vector<Tensor> inputs = RandomF32Inputs(
        {shapes[0], shapes[1], shapes[2]}, seed);
    // Full-valid mask: random data needs every cache row live.
    Tensor mask(DType::kF32, shapes[3]);
    for (int64_t i = 0; i < mask.num_elements(); ++i) {
      mask.f32_data()[i] = 1.0f;
    }
    inputs.push_back(std::move(mask));
    return inputs;
  };
  return model;
}

std::vector<Model> BuildModelSuite(const ModelConfig& config) {
  std::vector<Model> suite;
  suite.push_back(BuildBert(config));
  suite.push_back(BuildSeq2SeqStep(config));
  suite.push_back(BuildCrnn(config));
  suite.push_back(BuildFastSpeech2(config));
  suite.push_back(BuildDlrm(config));
  suite.push_back(BuildMlp(config));
  return suite;
}

}  // namespace disc
