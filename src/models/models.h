// The evaluation model suite.
//
// Six models mirroring the paper's workload mix — transformer encoders
// (BERT-style), autoregressive decoding (seq2seq step), convolutional
// recognition with variable image width (CRNN-style), TTS with a length
// regulator (FastSpeech2-style), sparse recommendation (DLRM-style) and a
// plain MLP — each with the dynamism axis that makes it hard for
// static-shape compilers:
//
//   | model        | dynamic dims              | stress                       |
//   |--------------|---------------------------|------------------------------|
//   | bert         | batch, seq-len            | fusion across LN/softmax     |
//   | seq2seq-step | batch, kv-len (grows 1/q) | tiny kernels, launch-bound   |
//   | crnn         | image width               | conv shape propagation       |
//   | fastspeech2  | phonemes, expanded frames | data-dependent output length |
//   | dlrm         | batch                     | gathers + small GEMMs        |
//   | mlp          | batch                     | the quickstart               |
//
// Weights are seeded random constants baked into the graph (inference
// setting). Each model carries a shape *trace*: the per-query input shapes
// a serving workload would see, used by every benchmark.
#ifndef DISC_MODELS_MODELS_H_
#define DISC_MODELS_MODELS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "ir/tensor.h"

namespace disc {

/// One set of concrete input shapes (parallel to graph inputs).
using ShapeSet = std::vector<std::vector<int64_t>>;

struct Model {
  std::string name;
  std::unique_ptr<Graph> graph;
  /// Dim labels for ShapeAnalysis (shared dynamic dims across inputs).
  std::vector<std::vector<std::string>> input_dim_labels;
  /// The serving trace: per-query input shapes.
  std::vector<ShapeSet> trace;
  /// A small shape set for data-mode correctness tests.
  ShapeSet small_shapes;
  /// Builds valid concrete inputs (random data; integer inputs in range)
  /// for a given shape set.
  std::function<std::vector<Tensor>(const ShapeSet&, uint64_t seed)>
      make_inputs;
};

/// Scaled-down sizes keep the single-core simulation fast while preserving
/// each model's op mix and dynamism (see DESIGN.md §2).
struct ModelConfig {
  int64_t hidden = 64;
  int64_t heads = 4;
  int64_t ffn = 128;
  int64_t layers = 2;
  int64_t trace_length = 64;
  uint64_t seed = 7;
};

Model BuildMlp(const ModelConfig& config = {});
Model BuildBert(const ModelConfig& config = {});
Model BuildSeq2SeqStep(const ModelConfig& config = {});
Model BuildCrnn(const ModelConfig& config = {});
Model BuildFastSpeech2(const ModelConfig& config = {});
Model BuildDlrm(const ModelConfig& config = {});

// Additional builders (not part of the 6-model headline suite):

/// BERT encoder with an attention mask input ([B, S] of 0/1): masked
/// positions get -inf-like logits via select before the softmax —
/// exercises predicate tensors and broadcasts inside stitch kernels.
Model BuildBertWithMask(const ModelConfig& config = {});

/// GPT-style decode step with concat-based KV-cache update: the step
/// *returns* the grown caches (k' = concat(k, k_new)), so output dims are
/// symbolic T+1 expressions — the canonical autoregressive shape pattern.
Model BuildGptStep(const ModelConfig& config = {});

/// Ragged-batch GPT decode step for continuous batching: batch dim B is
/// dynamic (sequences join/retire every iteration) and a kv_mask input
/// ([B, T] of 0/1) makes padded cache rows inert — masked key logits get
/// -1e9, which underflows to an exact 0 probability after softmax, so a
/// padded batched step is **bit-identical** per row to an unpadded
/// single-sequence step (the decode subsystem's correctness invariant).
/// Same weights (draw order and seed) as BuildGptStep, so a B=1 exact-
/// length replay of this graph reproduces BuildGptStep bitwise. Inputs:
/// token [B,1,H], k_cache [B,T,H], v_cache [B,T,H], kv_mask [B,T];
/// outputs: next-token probs [B,1,96], k_next and v_next [B,T+1,H] (the
/// appended entry lands at row position T).
Model BuildGptStepBatch(const ModelConfig& config = {});

/// \brief The full 6-model suite with traces (experiments T1/T2/T3/F5/F6).
std::vector<Model> BuildModelSuite(const ModelConfig& config = {});

}  // namespace disc

#endif  // DISC_MODELS_MODELS_H_
