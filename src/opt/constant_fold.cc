#include "ir/eval.h"
#include "opt/pass.h"
#include "support/logging.h"

namespace disc {
namespace {

class ConstantFoldPass : public Pass {
 public:
  const char* name() const override { return "constant_fold"; }

  Result<bool> Run(Graph* graph, const PassContext& ctx) override {
    bool changed = false;
    for (Node* node : graph->TopologicalOrder()) {
      if (node->kind() == OpKind::kConstant) continue;
      if (node->outputs().size() != 1) continue;
      // All operands must be constants.
      std::vector<Tensor> operand_values;
      bool all_const = true;
      for (Value* operand : node->operands()) {
        Node* producer = operand->producer();
        if (producer == nullptr || producer->kind() != OpKind::kConstant) {
          all_const = false;
          break;
        }
        operand_values.push_back(producer->GetTensorAttr("value"));
      }
      // Creation ops with no operands (iota with static dims) fold too.
      if (node->num_operands() == 0 && node->kind() != OpKind::kIota) {
        all_const = false;
      }
      if (!all_const) continue;
      // Don't materialize huge tensors (e.g. a folded broadcast).
      if (node->output(0)->type().IsFullyStatic() &&
          node->output(0)->type().NumElements() > ctx.max_fold_elements) {
        continue;
      }
      auto result = EvaluateNode(*node, operand_values);
      if (!result.ok()) continue;  // leave runtime errors to runtime
      Node* folded =
          graph->CreateNode(OpKind::kConstant, {},
                            {{"value", std::move((*result)[0])}},
                            {node->output(0)->type()});
      graph->ReplaceAllUsesWith(node->output(0), folded->output(0));
      changed = true;
    }
    if (changed) graph->RemoveDeadNodes();
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}

}  // namespace disc
