#include "opt/pass.h"

#include "support/logging.h"

namespace disc {
namespace {

// Returns the scalar value if `v` is a rank-0 or single-element constant.
std::optional<double> ScalarConstant(const Value* v) {
  const Node* producer = v->producer();
  if (producer == nullptr || producer->kind() != OpKind::kConstant) {
    return std::nullopt;
  }
  const Tensor& t = producer->GetTensorAttr("value");
  if (t.num_elements() != 1) return std::nullopt;
  return t.ElementAsDouble(0);
}

// `replacement` may only replace `out` if the static types agree (a scalar
// identity must not change the shape, which broadcast could).
bool TypesMatch(const Value* out, const Value* replacement) {
  return out->type() == replacement->type();
}

class CanonicalizePass : public Pass {
 public:
  const char* name() const override { return "canonicalize"; }

  Result<bool> Run(Graph* graph, const PassContext& ctx) override {
    (void)ctx;
    bool changed = false;
    // Snapshot; rewrites only replace uses, never invalidate other nodes.
    for (Node* node : graph->TopologicalOrder()) {
      Value* replacement = TryRewrite(graph, node);
      if (replacement != nullptr && replacement != node->output(0)) {
        graph->ReplaceAllUsesWith(node->output(0), replacement);
        changed = true;
      }
    }
    if (changed) graph->RemoveDeadNodes();
    return changed;
  }

 private:
  // (op(x, c1), c2) -> op(x, c1 ⊕ c2) for commutative/associative scalar
  // chains of the same op (kAdd or kMul), with the constant on either side.
  static Value* TryFoldScalarChain(Graph* graph, Node* node) {
    OpKind kind = node->kind();
    auto split = [&](Node* n, Value** tensor_side,
                     double* scalar) -> bool {
      if (auto c = ScalarConstant(n->operand(1))) {
        *tensor_side = n->operand(0);
        *scalar = *c;
        return true;
      }
      if (auto c = ScalarConstant(n->operand(0))) {
        *tensor_side = n->operand(1);
        *scalar = *c;
        return true;
      }
      return false;
    };
    Value* outer_tensor = nullptr;
    double outer_scalar = 0;
    if (!split(node, &outer_tensor, &outer_scalar)) return nullptr;
    Node* inner = outer_tensor->producer();
    if (inner == nullptr || inner->kind() != kind) return nullptr;
    // The inner value must have no other users (else we duplicate work).
    if (outer_tensor->users().size() != 1) return nullptr;
    Value* inner_tensor = nullptr;
    double inner_scalar = 0;
    if (!split(inner, &inner_tensor, &inner_scalar)) return nullptr;
    if (inner_tensor->dtype() != DType::kF32) return nullptr;
    double combined = kind == OpKind::kMul ? outer_scalar * inner_scalar
                                           : outer_scalar + inner_scalar;
    Node* constant = graph->CreateNode(
        OpKind::kConstant, {},
        {{"value", Tensor::ScalarF32(static_cast<float>(combined))}},
        {TensorType(DType::kF32, {})});
    Node* folded = graph->CreateNode(
        kind, {inner_tensor, constant->output(0)}, {},
        {node->output(0)->type()});
    return folded->output(0);
  }

  // Returns the value the node's output should be replaced with, or null.
  Value* TryRewrite(Graph* graph, Node* node) {
    Value* out = node->output(0);
    switch (node->kind()) {
      case OpKind::kAdd:
      case OpKind::kSub: {
        Value* x = node->operand(0);
        Value* y = node->operand(1);
        if (auto c = ScalarConstant(y); c == 0.0 && TypesMatch(out, x)) {
          return x;
        }
        if (node->kind() == OpKind::kAdd) {
          if (auto c = ScalarConstant(x); c == 0.0 && TypesMatch(out, y)) {
            return y;
          }
          // (x + c1) + c2 -> x + (c1+c2).
          return TryFoldScalarChain(graph, node);
        }
        return nullptr;
      }
      case OpKind::kMul: {
        Value* x = node->operand(0);
        Value* y = node->operand(1);
        if (auto c = ScalarConstant(y); c == 1.0 && TypesMatch(out, x)) {
          return x;
        }
        if (auto c = ScalarConstant(x); c == 1.0 && TypesMatch(out, y)) {
          return y;
        }
        // (x * c1) * c2 -> x * (c1*c2): collapse scalar coefficient chains.
        return TryFoldScalarChain(graph, node);
      }
      case OpKind::kDiv: {
        Value* x = node->operand(0);
        if (auto c = ScalarConstant(node->operand(1));
            c == 1.0 && TypesMatch(out, x)) {
          return x;
        }
        return nullptr;
      }
      case OpKind::kPow: {
        Value* x = node->operand(0);
        if (auto c = ScalarConstant(node->operand(1));
            c == 1.0 && TypesMatch(out, x)) {
          return x;
        }
        return nullptr;
      }
      case OpKind::kNeg: {
        // neg(neg(x)) -> x
        Node* producer = node->operand(0)->producer();
        if (producer != nullptr && producer->kind() == OpKind::kNeg) {
          return producer->operand(0);
        }
        return nullptr;
      }
      case OpKind::kCast: {
        Value* x = node->operand(0);
        if (node->GetDTypeAttr("to") == x->dtype()) return x;
        return nullptr;
      }
      case OpKind::kTranspose: {
        const auto& perm = node->GetIntListAttr("perm");
        bool identity = true;
        for (size_t i = 0; i < perm.size(); ++i) {
          if (perm[i] != static_cast<int64_t>(i)) identity = false;
        }
        if (identity) return node->operand(0);
        // transpose(transpose(x, p1), p2) -> transpose(x, p1 ∘ p2)
        Node* producer = node->operand(0)->producer();
        if (producer != nullptr && producer->kind() == OpKind::kTranspose) {
          const auto& inner = producer->GetIntListAttr("perm");
          std::vector<int64_t> composed(perm.size());
          for (size_t i = 0; i < perm.size(); ++i) {
            composed[i] = inner[perm[i]];
          }
          Node* merged = graph->CreateNode(
              OpKind::kTranspose, {producer->operand(0)},
              {{"perm", composed}}, {out->type()});
          return merged->output(0);
        }
        return nullptr;
      }
      case OpKind::kReshape: {
        Value* x = node->operand(0);
        // Static no-op reshape.
        if (x->type().IsFullyStatic() && out->type() == x->type()) return x;
        // reshape(reshape(x)) -> reshape(x) when the outer target is static.
        Node* producer = x->producer();
        if (producer != nullptr && producer->kind() == OpKind::kReshape &&
            node->HasAttr("new_shape") && node->num_operands() == 1) {
          Node* merged = graph->CreateNode(
              OpKind::kReshape, {producer->operand(0)},
              {{"new_shape", node->GetIntListAttr("new_shape")}},
              {out->type()});
          return merged->output(0);
        }
        return nullptr;
      }
      case OpKind::kBroadcastTo: {
        Value* x = node->operand(0);
        if (x->type().IsFullyStatic() && out->type() == x->type()) return x;
        return nullptr;
      }
      case OpKind::kConcat: {
        if (node->num_operands() == 1) return node->operand(0);
        return nullptr;
      }
      case OpKind::kSlice: {
        const auto& starts = node->GetIntListAttr("starts");
        const auto& ends = node->GetIntListAttr("ends");
        const auto& steps = node->GetIntListAttr("steps");
        for (size_t i = 0; i < starts.size(); ++i) {
          if (starts[i] != 0 || ends[i] != -1 || steps[i] != 1) {
            return nullptr;
          }
        }
        return node->operand(0);
      }
      case OpKind::kPad: {
        const auto& low = node->GetIntListAttr("pads_low");
        const auto& high = node->GetIntListAttr("pads_high");
        for (size_t i = 0; i < low.size(); ++i) {
          if (low[i] != 0 || high[i] != 0) return nullptr;
        }
        return node->operand(0);
      }
      case OpKind::kSelect: {
        if (auto c = ScalarConstant(node->operand(0))) {
          Value* chosen = *c != 0.0 ? node->operand(1) : node->operand(2);
          if (TypesMatch(out, chosen)) return chosen;
        }
        return nullptr;
      }
      default:
        return nullptr;
    }
  }
};

}  // namespace

std::unique_ptr<Pass> CreateCanonicalizePass() {
  return std::make_unique<CanonicalizePass>();
}

}  // namespace disc
