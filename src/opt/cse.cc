#include <unordered_map>

#include "opt/pass.h"
#include "support/string_util.h"

namespace disc {
namespace {

// Structural signature of a node: kind + operand ids + attrs rendering.
// Constants hash by value contents (via Attribute::ToString of the tensor,
// which includes a truncated rendering — so large equal-prefix constants
// are additionally compared field-by-field before merging).
std::string Signature(const Node* node) {
  std::string sig = OpName(node->kind());
  sig += '(';
  sig += JoinMapped(node->operands(), ",", [](const Value* v) {
    return std::to_string(v->id());
  });
  sig += ')';
  for (const auto& [key, value] : node->attrs()) {
    sig += key;
    sig += '=';
    sig += value.ToString();
    sig += ';';
  }
  return sig;
}

bool AttrsEqual(const Node* a, const Node* b) {
  if (a->attrs().size() != b->attrs().size()) return false;
  auto it_a = a->attrs().begin();
  auto it_b = b->attrs().begin();
  for (; it_a != a->attrs().end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first || !(it_a->second == it_b->second)) {
      return false;
    }
  }
  return true;
}

class CsePass : public Pass {
 public:
  const char* name() const override { return "cse"; }

  Result<bool> Run(Graph* graph, const PassContext& ctx) override {
    (void)ctx;
    bool changed = false;
    std::unordered_map<std::string, std::vector<Node*>> seen;
    for (Node* node : graph->TopologicalOrder()) {
      if (node->outputs().size() != 1) continue;
      std::string sig = Signature(node);
      auto& candidates = seen[sig];
      Node* match = nullptr;
      for (Node* candidate : candidates) {
        if (candidate->kind() == node->kind() &&
            candidate->operands() == node->operands() &&
            AttrsEqual(candidate, node)) {
          match = candidate;
          break;
        }
      }
      if (match != nullptr) {
        graph->ReplaceAllUsesWith(node->output(0), match->output(0));
        changed = true;
      } else {
        candidates.push_back(node);
      }
    }
    if (changed) graph->RemoveDeadNodes();
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateCsePass() { return std::make_unique<CsePass>(); }

}  // namespace disc
