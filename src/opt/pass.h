// Graph-pass infrastructure.
#ifndef DISC_OPT_PASS_H_
#define DISC_OPT_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "support/artifact_dump.h"
#include "support/status.h"

namespace disc {

/// Context shared by passes in one pipeline run.
struct PassContext {
  /// Dim labels for ShapeAnalysis-backed passes (see ShapeAnalysis).
  std::vector<std::vector<std::string>> input_dim_labels;
  /// Upper bound on elements materialized by constant folding.
  int64_t max_fold_elements = 1 << 16;
  /// When enabled, the PassManager snapshots the textual IR before/after
  /// every pass application that changed the graph into
  /// `<dump.dir>/passes/NNNN.<pass>.{before,after}.ir` (numbered in
  /// execution order; deterministic). `dump.filter` selects passes by
  /// substring. The compiler threads CompileOptions::dump through here.
  DumpOptions dump;
};

/// \brief A graph-to-graph transformation.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  /// \brief Returns true if the graph changed.
  virtual Result<bool> Run(Graph* graph, const PassContext& ctx) = 0;
};

/// \brief Runs a pass sequence, optionally to fixpoint.
class PassManager {
 public:
  void AddPass(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
  }

  /// \brief One sweep over all passes. Returns whether anything changed.
  Result<bool> RunOnce(Graph* graph, const PassContext& ctx);

  /// \brief Sweeps until no pass reports a change (bounded by max_iters).
  Status RunToFixpoint(Graph* graph, const PassContext& ctx,
                       int max_iters = 10);

  /// \brief Per-pass cumulative change counts (for reporting/tests).
  /// One entry per pass name in first-change order; repeated changes
  /// across RunToFixpoint sweeps accumulate into that pass's single entry.
  const std::vector<std::pair<std::string, int>>& change_log() const {
    return change_log_;
  }

  /// Cumulative per-pass execution record (every run counted, changed or
  /// not), in registration order.
  struct PassStat {
    std::string name;
    int64_t runs = 0;
    int64_t changes = 0;  // runs that reported a change
    double total_ms = 0;  // wall-clock inside Pass::Run
  };
  const std::vector<PassStat>& pass_stats() const { return pass_stats_; }

  /// \brief Machine-readable pipeline summary: one record per pass with
  /// runs/changes/total_ms (from pass_stats) plus, when the global tracer
  /// is enabled, the matching `opt.pass` span count and total duration
  /// joined from TraceSession — the cross-check that the dump and the
  /// PR 2 trace agree. Deterministic key order; values include timings,
  /// so the summary itself is excluded from byte-identity tests.
  std::string PipelineSummaryJson() const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<std::pair<std::string, int>> change_log_;
  std::vector<PassStat> pass_stats_;
  int dump_seq_ = 0;  // numbering for IR snapshot files
};

// --- standard passes --------------------------------------------------------

/// Local algebraic/structural rewrites: identities (x+0, x*1, x/1),
/// double-negation, transpose composition/identity, trivial reshape/slice/
/// pad/concat elimination, cast-to-same-dtype removal.
std::unique_ptr<Pass> CreateCanonicalizePass();

/// Evaluates nodes whose operands are all constants (bounded by
/// ctx.max_fold_elements).
std::unique_ptr<Pass> CreateConstantFoldPass();

/// Common subexpression elimination over (kind, operands, attrs).
std::unique_ptr<Pass> CreateCsePass();

/// Removes nodes not reachable from graph outputs.
std::unique_ptr<Pass> CreateDcePass();

/// Symbolic-shape-powered cleanups (the dynamic-shape-specific pass the
/// paper's pipeline needs): removes broadcast_to/reshape ops whose output is
/// provably shape-equal to their input even when dims are dynamic.
std::unique_ptr<Pass> CreateShapeSimplifyPass();

/// Folds explicit last-two-dim transposes into matmul transpose flags.
std::unique_ptr<Pass> CreateLayoutSimplifyPass();

/// \brief The standard optimization pipeline used by the compiler.
void AddStandardPasses(PassManager* pm);

}  // namespace disc

#endif  // DISC_OPT_PASS_H_
