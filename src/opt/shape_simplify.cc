// The dynamic-shape-specific cleanup pass.
//
// Frameworks emit defensive shape plumbing around dynamic dims: broadcasts
// to shapes that are provably identical, reshapes that provably preserve the
// shape, and shape-computation chains that reduce to an input's own shape.
// None of these can be removed by looking at static types (the dims are all
// "?"); the symbolic layer can prove them away. This is a direct analog of
// the paper's use of shape constraints to recover optimizations that static
// compilers get for free.
#include "opt/pass.h"
#include "shape/shape_analysis.h"
#include "support/logging.h"

namespace disc {
namespace {

class ShapeSimplifyPass : public Pass {
 public:
  const char* name() const override { return "shape_simplify"; }

  Result<bool> Run(Graph* graph, const PassContext& ctx) override {
    ShapeAnalysis analysis(graph, ctx.input_dim_labels);
    DISC_RETURN_IF_ERROR(analysis.Run());

    bool changed = false;
    for (Node* node : graph->TopologicalOrder()) {
      switch (node->kind()) {
        case OpKind::kBroadcastTo:
        case OpKind::kReshape: {
          Value* in = node->operand(0);
          Value* out = node->output(0);
          // Provably the same shape (symbolically) -> drop the op.
          // Ranks must match and the static types must be compatible so the
          // replacement does not weaken type information downstream.
          if (in->rank() == out->rank() &&
              analysis.IsShapeEqual(in, out) &&
              StaticCompatible(in->type(), out->type())) {
            graph->ReplaceAllUsesWith(out, in);
            changed = true;
          }
          break;
        }
        default:
          break;
      }
    }
    if (changed) graph->RemoveDeadNodes();
    return changed;
  }

 private:
  // `in` may replace `out` if every statically-known dim of `out` is also
  // statically known (and equal) in `in`.
  static bool StaticCompatible(const TensorType& in, const TensorType& out) {
    if (in.dtype != out.dtype || in.rank() != out.rank()) return false;
    for (int64_t i = 0; i < out.rank(); ++i) {
      if (out.dims[i] != kDynamicDim && in.dims[i] != out.dims[i]) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateShapeSimplifyPass() {
  return std::make_unique<ShapeSimplifyPass>();
}

}  // namespace disc
