// Layout simplification: folds explicit transposes into matmul's
// transpose_a/transpose_b flags (the library kernel handles transposed
// operands for free), eliminating the materialized transposed copy.
//
// Matters most for dynamic shapes: the transpose kernel a framework emits
// for `x @ w.T` moves the whole tensor through global memory; folding it
// into the GEMM call removes a launch and a full tensor of traffic.
#include "opt/pass.h"

namespace disc {
namespace {

// True if `perm` swaps the last two dims and fixes everything else.
bool SwapsLastTwoOnly(const std::vector<int64_t>& perm) {
  int64_t rank = static_cast<int64_t>(perm.size());
  if (rank < 2) return false;
  for (int64_t i = 0; i < rank - 2; ++i) {
    if (perm[i] != i) return false;
  }
  return perm[rank - 2] == rank - 1 && perm[rank - 1] == rank - 2;
}

class LayoutSimplifyPass : public Pass {
 public:
  const char* name() const override { return "layout_simplify"; }

  Result<bool> Run(Graph* graph, const PassContext& ctx) override {
    (void)ctx;
    bool changed = false;
    for (Node* node : graph->TopologicalOrder()) {
      if (node->kind() != OpKind::kMatMul) continue;
      for (int operand_index = 0; operand_index < 2; ++operand_index) {
        Node* producer = node->operand(operand_index)->producer();
        if (producer == nullptr || producer->kind() != OpKind::kTranspose) {
          continue;
        }
        if (!SwapsLastTwoOnly(producer->GetIntListAttr("perm"))) continue;
        const char* flag = operand_index == 0 ? "transpose_a" : "transpose_b";
        graph->SetOperand(node, operand_index, producer->operand(0));
        node->SetAttr(flag, node->GetIntAttr(flag, 0) == 0 ? int64_t{1}
                                                           : int64_t{0});
        changed = true;
      }
    }
    if (changed) graph->RemoveDeadNodes();
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateLayoutSimplifyPass() {
  return std::make_unique<LayoutSimplifyPass>();
}

}  // namespace disc
