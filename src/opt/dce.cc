#include "opt/pass.h"

namespace disc {
namespace {

class DcePass : public Pass {
 public:
  const char* name() const override { return "dce"; }
  Result<bool> Run(Graph* graph, const PassContext& ctx) override {
    (void)ctx;
    return graph->RemoveDeadNodes() > 0;
  }
};

}  // namespace

std::unique_ptr<Pass> CreateDcePass() { return std::make_unique<DcePass>(); }

}  // namespace disc
