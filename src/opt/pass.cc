#include "opt/pass.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "support/json.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

Result<bool> PassManager::RunOnce(Graph* graph, const PassContext& ctx) {
  ArtifactDumper dumper(ctx.dump);
  if (pass_stats_.empty()) {
    for (const auto& pass : passes_) {
      pass_stats_.push_back({pass->name(), 0, 0, 0.0});
    }
  }
  bool changed = false;
  for (size_t i = 0; i < passes_.size(); ++i) {
    Pass* pass = passes_[i].get();
    // Snapshot before the pass so a change can be dumped as a
    // before/after pair. Only taken when dumping is on — ToString is not
    // free — and only for passes the filter admits.
    std::string before;
    bool want_snapshot = dumper.Matches(pass->name());
    if (want_snapshot) before = graph->ToString();
    bool pass_changed = false;
    auto start = std::chrono::steady_clock::now();
    {
      TraceScope scope(pass->name(), "opt.pass");
      DISC_ASSIGN_OR_RETURN(pass_changed, pass->Run(graph, ctx));
      scope.AddArg("changed", pass_changed ? "true" : "false");
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    pass_stats_[i].runs += 1;
    pass_stats_[i].total_ms += ms;
    CountMetric("opt.pass.runs");
    if (pass_changed) {
      changed = true;
      pass_stats_[i].changes += 1;
      CountMetric("opt.pass.changes");
      // Merge counts per pass name: repeated changes across fixpoint
      // sweeps accumulate into one row instead of appending duplicates.
      auto it = std::find_if(
          change_log_.begin(), change_log_.end(),
          [&](const auto& entry) { return entry.first == pass->name(); });
      if (it != change_log_.end()) {
        ++it->second;
      } else {
        change_log_.emplace_back(pass->name(), 1);
      }
      DISC_LOG(Debug) << "pass " << pass->name() << " changed the graph";
      if (want_snapshot) {
        std::string stem = StrFormat("passes/%04d.%s", dump_seq_++,
                                     pass->name());
        (void)dumper.Write(stem + ".before.ir", before);
        (void)dumper.Write(stem + ".after.ir", graph->ToString());
      }
    }
  }
  return changed;
}

Status PassManager::RunToFixpoint(Graph* graph, const PassContext& ctx,
                                  int max_iters) {
  for (int i = 0; i < max_iters; ++i) {
    DISC_ASSIGN_OR_RETURN(bool changed, RunOnce(graph, ctx));
    // Rewrites can expose more static type information (e.g. after a
    // redundant broadcast is removed); tighten before the next sweep.
    changed |= graph->RefineStaticTypes() > 0;
    if (!changed) return Status::OK();
  }
  DISC_LOG(Warning) << "pass pipeline did not reach fixpoint in " << max_iters
                    << " iterations";
  return Status::OK();
}

std::string PassManager::PipelineSummaryJson() const {
  // Join the tracer's opt.pass spans by pass name (empty when tracing was
  // off during the run — the summary then carries only pass_stats times).
  std::unordered_map<std::string, std::pair<int64_t, double>> spans;
  if (TraceSession::Global().enabled()) {
    for (const TraceEvent& event : TraceSession::Global().Snapshot("opt.pass")) {
      auto& [count, total_us] = spans[event.name];
      ++count;
      total_us += event.dur_us;
    }
  }
  JsonValue::Array passes;
  for (const PassStat& stat : pass_stats_) {
    JsonValue::Object entry;
    entry.emplace("name", JsonValue(stat.name));
    entry.emplace("runs", JsonValue(stat.runs));
    entry.emplace("changes", JsonValue(stat.changes));
    entry.emplace("total_ms", JsonValue(stat.total_ms));
    auto it = spans.find(stat.name);
    if (it != spans.end()) {
      entry.emplace("trace_spans", JsonValue(it->second.first));
      entry.emplace("trace_total_ms", JsonValue(it->second.second / 1000.0));
    }
    passes.emplace_back(std::move(entry));
  }
  JsonValue::Object summary;
  summary.emplace("passes", JsonValue(std::move(passes)));
  JsonValue::Array changes;
  for (const auto& [name, count] : change_log_) {
    JsonValue::Object entry;
    entry.emplace("name", JsonValue(name));
    entry.emplace("changes", JsonValue(static_cast<int64_t>(count)));
    changes.emplace_back(std::move(entry));
  }
  summary.emplace("change_log", JsonValue(std::move(changes)));
  return JsonValue(std::move(summary)).SerializePretty();
}

void AddStandardPasses(PassManager* pm) {
  pm->AddPass(CreateCanonicalizePass());
  pm->AddPass(CreateConstantFoldPass());
  pm->AddPass(CreateShapeSimplifyPass());
  pm->AddPass(CreateLayoutSimplifyPass());
  pm->AddPass(CreateCsePass());
  pm->AddPass(CreateDcePass());
}

}  // namespace disc
