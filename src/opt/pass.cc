#include "opt/pass.h"

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace disc {

Result<bool> PassManager::RunOnce(Graph* graph, const PassContext& ctx) {
  bool changed = false;
  for (auto& pass : passes_) {
    bool pass_changed = false;
    {
      TraceScope scope(pass->name(), "opt.pass");
      DISC_ASSIGN_OR_RETURN(pass_changed, pass->Run(graph, ctx));
      scope.AddArg("changed", pass_changed ? "true" : "false");
    }
    CountMetric("opt.pass.runs");
    if (pass_changed) {
      changed = true;
      CountMetric("opt.pass.changes");
      change_log_.emplace_back(pass->name(), 1);
      DISC_LOG(Debug) << "pass " << pass->name() << " changed the graph";
    }
  }
  return changed;
}

Status PassManager::RunToFixpoint(Graph* graph, const PassContext& ctx,
                                  int max_iters) {
  for (int i = 0; i < max_iters; ++i) {
    DISC_ASSIGN_OR_RETURN(bool changed, RunOnce(graph, ctx));
    // Rewrites can expose more static type information (e.g. after a
    // redundant broadcast is removed); tighten before the next sweep.
    changed |= graph->RefineStaticTypes() > 0;
    if (!changed) return Status::OK();
  }
  DISC_LOG(Warning) << "pass pipeline did not reach fixpoint in " << max_iters
                    << " iterations";
  return Status::OK();
}

void AddStandardPasses(PassManager* pm) {
  pm->AddPass(CreateCanonicalizePass());
  pm->AddPass(CreateConstantFoldPass());
  pm->AddPass(CreateShapeSimplifyPass());
  pm->AddPass(CreateLayoutSimplifyPass());
  pm->AddPass(CreateCsePass());
  pm->AddPass(CreateDcePass());
}

}  // namespace disc
