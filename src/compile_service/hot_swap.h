// ExecutableSlot: atomic hot-swap point between the serving path and the
// background compile service.
//
// The serving thread Acquire()s a shared_ptr snapshot per query and runs
// against it; a service worker Swap()s in a freshly compiled executable at
// any time. shared_ptr ownership makes the handoff torn-read-free: a Run
// in flight keeps its snapshot alive until it finishes, even if the swap
// happens mid-run, and the old executable is destroyed only when the last
// in-flight Run drops it.
//
// Launch-plan-cache safety (PR 1 interaction): plans memoize buffer sizes
// and variant choices of ONE executable, so they must never survive a
// swap. Plan caches are per-Executable members — a swapped-in executable
// starts with an empty cache by construction — and Swap() additionally
// clears the outgoing executable's cache so a later re-install (e.g.
// respecialization rollback) cannot replay plans from its previous life.
#ifndef DISC_COMPILE_SERVICE_HOT_SWAP_H_
#define DISC_COMPILE_SERVICE_HOT_SWAP_H_

#include <memory>
#include <mutex>

#include "runtime/executable.h"

namespace disc {

class ExecutableSlot {
 public:
  /// \brief Snapshot for one query; null until the first Swap. The caller
  /// may keep running against it across a concurrent Swap.
  std::shared_ptr<const Executable> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// \brief Installs `next` (may be null to clear) and returns the
  /// previous executable, its launch-plan cache already cleared.
  std::shared_ptr<const Executable> Swap(
      std::shared_ptr<const Executable> next) {
    std::shared_ptr<const Executable> previous;
    {
      std::lock_guard<std::mutex> lock(mu_);
      previous = std::move(current_);
      current_ = std::move(next);
      ++generation_;
    }
    if (previous != nullptr) previous->ClearPlanCache();
    return previous;
  }

  bool has_executable() const { return Acquire() != nullptr; }
  /// Number of Swap() calls; lets engines detect "a new executable arrived
  /// since I last looked" without holding the snapshot.
  int64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Executable> current_;
  int64_t generation_ = 0;
};

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_HOT_SWAP_H_
