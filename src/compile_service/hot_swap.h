// ExecutableSlot: atomic hot-swap point between the serving path and the
// background compile service.
//
// The serving thread Acquire()s a shared_ptr snapshot per query and runs
// against it; a service worker Swap()s in a freshly compiled executable at
// any time. shared_ptr ownership makes the handoff torn-read-free: a Run
// in flight keeps its snapshot alive until it finishes, even if the swap
// happens mid-run, and the old executable is destroyed only when the last
// in-flight Run drops it.
//
// Launch-plan-cache safety (PR 1 interaction): plans memoize buffer sizes
// and variant choices of ONE executable, so they must never survive a
// swap. Plan caches are per-Executable members — a swapped-in executable
// starts with an empty cache by construction — and Swap() additionally
// clears the outgoing executable's cache so a later re-install (e.g.
// respecialization rollback) cannot replay plans from its previous life.
#ifndef DISC_COMPILE_SERVICE_HOT_SWAP_H_
#define DISC_COMPILE_SERVICE_HOT_SWAP_H_

#include <memory>
#include <mutex>

#include "runtime/executable.h"

namespace disc {

class ExecutableSlot {
 public:
  /// \brief Snapshot for one query; null until the first Swap. The caller
  /// may keep running against it across a concurrent Swap.
  std::shared_ptr<const Executable> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// \brief Installs `next` (may be null to clear) and returns the
  /// previous executable, its launch-plan cache already cleared.
  ///
  /// The displaced executable is additionally *retained* as the previous
  /// generation so a post-swap guard violation or output divergence can
  /// Rollback() to it. Only one generation of history is kept: swapping
  /// twice forgets the older incumbent.
  std::shared_ptr<const Executable> Swap(
      std::shared_ptr<const Executable> next) {
    std::shared_ptr<const Executable> previous;
    {
      std::lock_guard<std::mutex> lock(mu_);
      previous = current_;
      previous_ = std::move(current_);
      current_ = std::move(next);
      ++generation_;
    }
    if (previous != nullptr) previous->ClearPlanCache();
    return previous;
  }

  /// \brief Reinstates the previous generation, discarding the current
  /// executable (its plan cache cleared so a later re-install cannot
  /// replay stale plans). Returns false when there is no previous
  /// generation to roll back to — the caller must fall back instead.
  /// A successful rollback consumes the history: a second Rollback()
  /// without an intervening Swap() returns false.
  bool Rollback() {
    std::shared_ptr<const Executable> rejected;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (previous_ == nullptr) return false;
      rejected = std::move(current_);
      current_ = std::move(previous_);
      previous_ = nullptr;
      ++generation_;
      ++rollbacks_;
    }
    if (rejected != nullptr) rejected->ClearPlanCache();
    return true;
  }

  /// \brief Drops BOTH generations (plan caches cleared). For the
  /// poisoned-with-no-history case: the current executable is proven bad
  /// and there is nothing to roll back to, so the slot must empty out
  /// rather than retain the bad executable as a rollback target.
  void Clear() {
    std::shared_ptr<const Executable> cur;
    std::shared_ptr<const Executable> prev;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cur = std::move(current_);
      prev = std::move(previous_);
      current_ = nullptr;
      previous_ = nullptr;
      ++generation_;
    }
    if (cur != nullptr) cur->ClearPlanCache();
    if (prev != nullptr) prev->ClearPlanCache();
  }

  bool has_executable() const { return Acquire() != nullptr; }
  /// True when a Rollback() would succeed (a previous generation exists).
  bool has_previous() const {
    std::lock_guard<std::mutex> lock(mu_);
    return previous_ != nullptr;
  }
  /// Number of Swap()+Rollback() transitions; lets engines detect "a new
  /// executable arrived since I last looked" without holding the snapshot.
  int64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }
  /// Number of successful Rollback() calls over the slot's lifetime.
  int64_t rollbacks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rollbacks_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Executable> current_;
  std::shared_ptr<const Executable> previous_;  // rollback target
  int64_t generation_ = 0;
  int64_t rollbacks_ = 0;
};

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_HOT_SWAP_H_
