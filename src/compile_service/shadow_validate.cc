#include "compile_service/shadow_validate.h"

#include <algorithm>
#include <set>

#include "ir/eval.h"
#include "support/artifact_dump.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {
namespace {

/// Deterministic probe inputs: uniform f32 in [-1, 1), zeros for integral
/// dtypes (always in range for gather indices / select predicates). Seeded
/// per probe so every validation of the same probe set sees identical data.
std::vector<Tensor> SynthesizeInputs(
    const Graph& graph, const std::vector<std::vector<int64_t>>& input_dims,
    uint64_t seed) {
  std::vector<Tensor> inputs;
  inputs.reserve(input_dims.size());
  Rng rng(seed);
  for (size_t i = 0; i < input_dims.size() && i < graph.inputs().size();
       ++i) {
    Tensor t(graph.inputs()[i]->dtype(), input_dims[i]);
    if (t.dtype() == DType::kF32) {
      float* data = t.f32_data();
      for (int64_t e = 0; e < t.num_elements(); ++e) {
        data[e] = rng.Uniform(-1.0f, 1.0f);
      }
    }
    // Integral dtypes stay zero-initialized.
    inputs.push_back(std::move(t));
  }
  return inputs;
}

/// Dims of every labeled dimension substituted with `value` where the
/// label matches. Returns false when the label appears nowhere.
bool SubstituteLabel(const std::vector<std::vector<std::string>>& labels,
                     const std::string& label, int64_t value,
                     std::vector<std::vector<int64_t>>* dims) {
  bool found = false;
  for (size_t i = 0; i < labels.size() && i < dims->size(); ++i) {
    for (size_t d = 0; d < labels[i].size() && d < (*dims)[i].size(); ++d) {
      if (!labels[i][d].empty() && labels[i][d] == label) {
        (*dims)[i][d] = value;
        found = true;
      }
    }
  }
  return found;
}

}  // namespace

JsonValue ValidationReport::ToJson() const {
  JsonValue::Object o;
  o["model"] = JsonValue(model);
  o["key_id"] = JsonValue(key_id);
  o["reference"] = JsonValue(reference);
  o["verdict"] = JsonValue(std::string(verdict()));
  o["passed"] = JsonValue(passed);
  o["probes"] = JsonValue(probes);
  o["divergences"] = JsonValue(divergences);
  o["guard_violations"] = JsonValue(guard_violations);
  o["probe_errors"] = JsonValue(probe_errors);
  JsonValue::Array rows;
  for (const ProbeOutcome& po : outcomes) {
    JsonValue::Object row;
    row["signature"] = JsonValue(po.signature);
    row["source"] = JsonValue(po.source);
    row["outcome"] = JsonValue(po.outcome);
    row["detail"] = JsonValue(po.detail);
    rows.push_back(JsonValue(std::move(row)));
  }
  o["probe_outcomes"] = JsonValue(std::move(rows));
  return JsonValue(std::move(o));
}

Status ValidationReport::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson().SerializePretty());
}

std::string ValidationReport::Summary() const {
  return StrFormat(
      "validation=%s probes=%lld divergences=%lld guard_violations=%lld "
      "probe_errors=%lld reference=%s",
      verdict(), static_cast<long long>(probes),
      static_cast<long long>(divergences),
      static_cast<long long>(guard_violations),
      static_cast<long long>(probe_errors), reference.c_str());
}

std::vector<ProbeBinding> ShadowValidator::BuildProbes(
    const Executable& candidate,
    const std::vector<std::vector<std::string>>& labels,
    const std::vector<std::vector<std::vector<int64_t>>>& observed_dims,
    const LikelyDimValues& profile_hot_values,
    const std::vector<std::string>& outlier_signatures) const {
  std::vector<ProbeBinding> regular;   // observed / profile / outlier
  std::vector<ProbeBinding> boundary;  // guard-boundary bindings
  std::set<std::string> seen;
  auto add = [&](std::vector<std::vector<int64_t>> dims,
                 const char* source, std::vector<ProbeBinding>* into) {
    std::string signature = ShapeSignature(dims);
    if (!seen.insert(signature).second) return;
    into->push_back(ProbeBinding{std::move(dims), source});
  };

  // Observed bindings, most recent first (the shapes traffic takes right
  // now are the ones a wrong candidate would corrupt first).
  for (auto it = observed_dims.rbegin(); it != observed_dims.rend(); ++it) {
    add(*it, "observed", &regular);
  }
  // Base shape for substitution probes: the most recent observed binding.
  const std::vector<std::vector<int64_t>>* base =
      observed_dims.empty() ? nullptr : &observed_dims.back();

  if (base != nullptr) {
    // Histogram hot values: one probe per (label, value).
    for (const auto& [label, values] : profile_hot_values) {
      for (int64_t value : values) {
        if (value < 1) continue;
        std::vector<std::vector<int64_t>> dims = *base;
        if (SubstituteLabel(labels, label, value, &dims)) {
          add(std::move(dims), "profile", &regular);
        }
      }
    }
  }

  // Flight-recorder outliers: signatures of the requests that behaved
  // strangely in production — exactly the bindings worth re-checking.
  for (const std::string& signature : outlier_signatures) {
    auto dims = ParseShapeSignature(signature);
    if (dims.ok() && dims->size() == labels.size()) {
      add(std::move(*dims), "outlier", &regular);
    }
  }

  if (base != nullptr && options_.include_guard_boundaries) {
    // Guard boundaries: every variant predicate's threshold +/- 1. A wrong
    // guard flips exactly at these values, so each labeled dim gets probed
    // there. Collected sorted for determinism.
    std::set<int64_t> thresholds;
    for (const auto& kernel : candidate.kernels()) {
      for (const KernelVariant& variant : kernel->variants()) {
        for (const DimPredicate& predicate : variant.guard.predicates) {
          for (int64_t delta : {-1, 0, 1}) {
            int64_t v = predicate.operand + delta;
            if (v >= 1) thresholds.insert(v);
          }
        }
      }
    }
    std::set<std::string> distinct_labels;
    for (const auto& per_input : labels) {
      for (const std::string& label : per_input) {
        if (!label.empty()) distinct_labels.insert(label);
      }
    }
    for (const std::string& label : distinct_labels) {
      for (int64_t value : thresholds) {
        std::vector<std::vector<int64_t>> dims = *base;
        if (SubstituteLabel(labels, label, value, &dims)) {
          add(std::move(dims), "boundary", &boundary);
        }
      }
    }
  }

  // Cap: boundary probes keep a reserved half so observation history can
  // never crowd out the bindings most likely to expose a wrong guard.
  size_t cap = static_cast<size_t>(std::max(1, options_.max_probes));
  size_t boundary_quota = std::min(boundary.size(), cap / 2);
  size_t regular_quota = std::min(regular.size(), cap - boundary_quota);
  // Unused regular slots go back to boundaries.
  boundary_quota = std::min(boundary.size(), cap - regular_quota);

  std::vector<ProbeBinding> probes;
  probes.reserve(regular_quota + boundary_quota);
  for (size_t i = 0; i < regular_quota; ++i) {
    probes.push_back(std::move(regular[i]));
  }
  for (size_t i = 0; i < boundary_quota; ++i) {
    probes.push_back(std::move(boundary[i]));
  }
  return probes;
}

ValidationReport ShadowValidator::Validate(
    const Executable& candidate, const Executable* incumbent,
    const Graph& reference_graph, const std::vector<ProbeBinding>& probes,
    const std::string& model_name, const std::string& key_id) const {
  TraceScope scope("shadow-validate", "compile_service");
  scope.AddArg("model", model_name);
  scope.AddArg("probes", std::to_string(probes.size()));

  ValidationReport report;
  report.model = model_name;
  report.key_id = key_id;
  report.reference =
      incumbent != nullptr ? "incumbent" : "reference-evaluator";

  RunOptions run_options;
  run_options.execute_data = true;
  // Probe runs must not warm or skew the candidate's launch-plan cache
  // stats; validation is observational until the swap.
  run_options.use_launch_plan_cache = false;

  uint64_t probe_seed = options_.input_seed;
  for (const ProbeBinding& probe : probes) {
    ++probe_seed;
    ProbeOutcome row;
    row.signature = ShapeSignature(probe.input_dims);
    row.source = probe.source;

    // 1. Bind. Substituted probes can violate the model's shape
    // constraints (e.g. a boundary value breaking a divisibility the
    // graph requires); those are skipped, not held against the candidate.
    auto bindings = candidate.analysis().BindInputs(probe.input_dims);
    if (!bindings.ok()) {
      row.outcome = "unbindable";
      row.detail = bindings.status().ToString();
      report.outcomes.push_back(std::move(row));
      continue;
    }
    ++report.probes;

    // 2. Guard admissibility: the variant the candidate would dispatch at
    // this binding must be admitted by its own guard.
    bool guard_ok = true;
    for (const auto& kernel : candidate.kernels()) {
      auto index = kernel->SelectVariantIndex(*bindings);
      if (!index.ok()) {
        guard_ok = false;
        row.detail = kernel->name() + ": " + index.status().ToString();
        break;
      }
      const Guard& guard = kernel->variants()[*index].guard;
      auto admitted = guard.Evaluate(*bindings);
      if (!admitted.ok() || !*admitted) {
        guard_ok = false;
        row.detail = StrFormat(
            "kernel %s dispatched variant %d ('%s') whose guard rejects "
            "this binding",
            kernel->name().c_str(), *index,
            kernel->variants()[*index].name.c_str());
        break;
      }
    }
    if (!guard_ok) {
      row.outcome = "guard-violation";
      ++report.guard_violations;
      report.passed = false;
      report.outcomes.push_back(std::move(row));
      continue;
    }

    // 3. Differential replay.
    std::vector<Tensor> inputs =
        SynthesizeInputs(reference_graph, probe.input_dims, probe_seed);
    auto candidate_run = candidate.Run(inputs, run_options);
    if (!candidate_run.ok()) {
      // kDataLoss from the runtime's own guard verification is the same
      // catch, surfaced one layer lower.
      if (candidate_run.status().code() == StatusCode::kDataLoss) {
        row.outcome = "guard-violation";
        ++report.guard_violations;
      } else {
        row.outcome = "error";
        ++report.probe_errors;
      }
      row.detail = candidate_run.status().ToString();
      report.passed = false;
      report.outcomes.push_back(std::move(row));
      continue;
    }

    std::vector<Tensor> expected;
    bool bitwise = false;
    if (incumbent != nullptr) {
      auto incumbent_run = incumbent->Run(inputs, run_options);
      if (incumbent_run.ok()) {
        expected = std::move(incumbent_run->outputs);
        bitwise = options_.bitwise_vs_incumbent;
      }
    }
    if (expected.empty()) {
      // No incumbent (or it failed at this probe — its problem, not the
      // candidate's): fall back to the IR reference evaluator.
      auto evaluated = EvaluateGraph(reference_graph, inputs);
      if (!evaluated.ok()) {
        row.outcome = "error";
        row.detail = "reference failed: " + evaluated.status().ToString();
        ++report.probe_errors;
        // A probe with no working reference proves nothing either way;
        // it does not fail the candidate.
        report.outcomes.push_back(std::move(row));
        continue;
      }
      expected = std::move(*evaluated);
      bitwise = false;
    }

    const std::vector<Tensor>& got = candidate_run->outputs;
    if (got.size() != expected.size()) {
      row.outcome = "divergence";
      row.detail = StrFormat("output count %zu vs reference %zu", got.size(),
                             expected.size());
      ++report.divergences;
      report.passed = false;
      report.outcomes.push_back(std::move(row));
      continue;
    }
    bool diverged = false;
    for (size_t i = 0; i < got.size(); ++i) {
      bool close = bitwise
                       ? Tensor::AllClose(got[i], expected[i], 0.0, 0.0)
                       : Tensor::AllClose(got[i], expected[i], options_.rtol,
                                          options_.atol);
      if (!close) {
        diverged = true;
        row.detail = StrFormat("output %zu differs (%s comparison)", i,
                               bitwise ? "bitwise" : "tolerance");
        break;
      }
    }
    if (diverged) {
      row.outcome = "divergence";
      ++report.divergences;
      report.passed = false;
    } else {
      row.outcome = "match";
    }
    report.outcomes.push_back(std::move(row));
  }

  CountMetric(report.passed ? "compile_service.validate.pass"
                            : "compile_service.validate.caught");
  if (!report.passed) {
    DISC_LOG(Warning) << "shadow validation caught candidate " << key_id
                      << " for " << model_name << ": " << report.Summary();
  }
  return report;
}

}  // namespace disc
