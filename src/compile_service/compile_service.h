// CompileService: background compilation workers, so serving never blocks
// on the compiler.
//
// BladeDISC serves dynamic-shape traffic from compiled executables, but a
// cold process (or a respecialization) has nothing compiled yet. The old
// answer — compile synchronously on the query thread — stalls the query
// for the whole compile. The service moves compilation onto a worker pool:
//
//   * priority queue: foreground cache-misses preempt profile-guided
//     respecializations, which preempt speculative prefetches;
//   * in-flight dedup by CacheKey: N queries missing on one model share
//     one job (and one future), they do not stampede the compiler;
//   * cancellation + per-job deadline: a job whose engine gave up (or that
//     sat queued past its budget) is dropped at dequeue, not compiled;
//   * persistent artifact cache consulted before compiling, populated
//     after — a warm restart turns every job into a disk hit;
//   * all submissions return a CompileJobHandle future. The engine serves
//     through its fallback leg until done() and then hot-swaps the result
//     in via ExecutableSlot (see hot_swap.h) — the query path never waits.
//
// Instrumented with compile_service.* metrics (queue depth, job latency
// histograms, cache verdicts) and "compile_service"-category trace spans;
// failpoints compile_service.worker and compile_service.cache.load|store
// let the chaos harness kill workers and corrupt stores.
#ifndef DISC_COMPILE_SERVICE_COMPILE_SERVICE_H_
#define DISC_COMPILE_SERVICE_COMPILE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "compile_service/artifact_cache.h"
#include "compile_service/cache_key.h"
#include "compile_service/hot_swap.h"

namespace disc {

enum class JobPriority : uint8_t {
  kForegroundMiss = 0,  // a live query is degrading to the fallback leg
  kRespecialize = 1,    // profile feedback wants better kernels
  kPrefetch = 2,        // nothing is waiting; warm the cache
  kValidate = 3,        // shadow-validate a candidate before adoption
};

const char* JobPriorityName(JobPriority priority);

struct CompileJobRequest {
  std::string model_name;
  /// Cloned at Submit — the caller's graph is not referenced afterwards.
  const Graph* graph = nullptr;
  std::vector<std::vector<std::string>> labels;
  CompileOptions options;
  JobPriority priority = JobPriority::kForegroundMiss;
  /// Wall-clock budget from Submit to dequeue; a job still queued past it
  /// completes with DeadlineExceeded instead of compiling. <= 0 = none.
  double deadline_ms = 0.0;
  /// Test seam: runs on the worker thread after dequeue, before the cache
  /// lookup/compile. Lets tests hold a job "in flight" while asserting the
  /// query path does not block on it.
  std::function<void()> pre_compile_hook;
  /// Causal-trace id of the serving request that triggered this job (0 =
  /// none). When left 0, Submit captures RequestContext::CurrentTraceId()
  /// from the submitting thread, so a compile job spawned under a serving
  /// request's context is attributable even though it runs on a worker
  /// thread where the thread-local context does not reach.
  uint64_t origin_trace_id = 0;
};

/// Terminal state of one job. Immutable once the handle reports done().
struct CompileJobOutcome {
  Status status = Status::OK();
  std::shared_ptr<const Executable> executable;  // null unless status.ok()
  /// True when the executable came from the persistent cache (restored,
  /// not compiled).
  bool from_disk_cache = false;
  CacheKey key;
};

namespace internal {
struct CompileJobState;
}  // namespace internal

/// \brief Future for one submitted job. Copyable; all copies (including
/// handles deduplicated onto the same in-flight job) observe one outcome.
class CompileJobHandle {
 public:
  CompileJobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;
  /// \brief Non-blocking: the outcome once done, nullptr before.
  const CompileJobOutcome* TryGet() const;
  /// \brief Blocks until the job completes (ok or not).
  const CompileJobOutcome& Wait() const;
  /// \brief Requests cancellation. Queued jobs complete with
  /// FailedPrecondition at dequeue; a job already running (or done) is
  /// unaffected. Affects every handle deduplicated onto this job.
  void Cancel();
  int64_t job_id() const;

 private:
  friend class CompileService;
  explicit CompileJobHandle(std::shared_ptr<internal::CompileJobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::CompileJobState> state_;
};

struct CompileServiceOptions {
  int num_workers = 2;
  ArtifactCacheOptions cache;
};

struct CompileServiceStats {
  int64_t submitted = 0;
  int64_t deduplicated = 0;  // Submits coalesced onto an in-flight job
  int64_t completed = 0;     // terminal outcomes, any verdict
  int64_t compiled = 0;      // ran the real compiler
  int64_t disk_hits = 0;     // restored from the persistent cache
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t deadline_expired = 0;
  int64_t max_queue_depth = 0;
  /// Generic worker tasks (SubmitTask) — counted apart from compile jobs
  /// so compile/disk-hit accounting stays comparable across configs.
  int64_t tasks_submitted = 0;
  int64_t tasks_completed = 0;
  int64_t tasks_failed = 0;
};

/// One row of the job timeline (trace_inspect/disc_explain output).
struct JobTimelineEntry {
  int64_t job_id = 0;
  std::string model;
  JobPriority priority = JobPriority::kForegroundMiss;
  std::string key_id;
  /// Wall-clock microseconds since service construction; -1 = not reached.
  double submit_us = -1.0;
  double start_us = -1.0;
  double finish_us = -1.0;
  /// "compiled" | "disk-hit" | "failed" | "cancelled" | "deadline-expired".
  std::string verdict;
  /// Trace id of the request that caused the job (0 = background/prefetch).
  uint64_t origin_trace_id = 0;
};

/// \brief The worker pool. Thread-safe. Destruction shuts down (pending
/// jobs complete as cancelled).
class CompileService {
 public:
  explicit CompileService(CompileServiceOptions options = {});
  ~CompileService();

  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;

  /// \brief Enqueues a job (or coalesces onto the in-flight job with the
  /// same CacheKey) and returns its future. Never blocks on compilation.
  CompileJobHandle Submit(CompileJobRequest request);

  /// \brief Enqueues a generic worker task (shadow validation, tuning)
  /// under the same priority queue — low-priority classes like kValidate
  /// never delay a foreground compile, and serving never blocks on them.
  /// The task's returned outcome resolves the handle; a non-OK status
  /// counts as tasks_failed, never as a compile failure. Tasks are not
  /// deduplicated (each carries its own closure) and skip the artifact
  /// cache entirely.
  CompileJobHandle SubmitTask(const std::string& name, JobPriority priority,
                              std::function<CompileJobOutcome()> task);

  /// \brief Blocks until every submitted job has completed. Test/shutdown
  /// aid; serving never calls this.
  void Drain();

  /// \brief Stops workers. Queued jobs complete as cancelled; the running
  /// jobs finish. Idempotent.
  void Shutdown();

  PersistentArtifactCache& cache() { return cache_; }
  CompileServiceStats stats() const;
  std::vector<JobTimelineEntry> JobTimeline() const;
  /// Human-readable submit->start->finish table.
  std::string JobTimelineString() const;

 private:
  void WorkerLoop(int worker_index);
  void RunJob(const std::shared_ptr<internal::CompileJobState>& job);
  void FinishJob(const std::shared_ptr<internal::CompileJobState>& job,
                 CompileJobOutcome outcome, const std::string& verdict);
  double NowUs() const;

  CompileServiceOptions options_;
  PersistentArtifactCache cache_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  /// Pending jobs, popped lowest (priority, job_id) first: strict priority,
  /// FIFO within a class.
  std::vector<std::shared_ptr<internal::CompileJobState>> queue_;
  /// key id -> in-flight (queued or running) job, for dedup.
  std::map<std::string, std::shared_ptr<internal::CompileJobState>> in_flight_;
  std::vector<JobTimelineEntry> timeline_;
  CompileServiceStats stats_;
  int64_t next_job_id_ = 1;
  int active_jobs_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_COMPILE_SERVICE_H_
