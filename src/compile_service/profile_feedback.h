// ShapeProfileFeedback: observed-dim histograms that drive profile-guided
// respecialization.
//
// BladeDISC's shape speculation needs a feedback signal: which concrete
// values do the dynamic dims actually take in production? This class
// aggregates, per input-dim label, a value -> count histogram fed from the
// engines' per-query observed shapes (the same data RunProfile sees), and
// turns it into `likely_dim_values` hint sets once the distribution is
// confident enough. Unlike the old one-shot `feedback_applied_` flag in
// DynamicCompilerEngine, the feedback is continuous: when the hot-value
// profile *shifts* (yesterday's hot batch size is no longer today's), a
// fresh hint set is emitted and the engine submits a new respecialization
// job — the compiled executable follows the traffic.
//
// The hint ordering contract matters: SymbolicDimManager::AddLikelyValue
// keeps values unique with the most recent last, and the speculative
// variant builder takes values from the back. Hint sets are therefore
// emitted in ascending frequency order so that, under
// `max_speculative_variants` truncation, the MOST frequent values win
// (asserted in tests/speculation_test.cpp).
#ifndef DISC_COMPILE_SERVICE_PROFILE_FEEDBACK_H_
#define DISC_COMPILE_SERVICE_PROFILE_FEEDBACK_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace disc {

/// Per-label likely runtime values, the CompileOptions::likely_dim_values
/// shape (label -> values, ascending frequency, most frequent last).
using LikelyDimValues =
    std::vector<std::pair<std::string, std::vector<int64_t>>>;

struct ShapeProfileOptions {
  /// Observations (queries) before the first hint set may be emitted.
  int64_t min_observations = 8;
  /// A label contributes hints only when its most frequent value covers at
  /// least this fraction of the label's observations — a flat distribution
  /// is not worth speculating on.
  double confidence = 0.5;
  /// Top-k values per label in a hint set (the compiler additionally caps
  /// variants via SpecializeOptions::max_speculative_variants).
  int max_values_per_label = 2;
  /// After the first emission, re-evaluate the profile only every this
  /// many observations (cheap steady state).
  int64_t recheck_interval = 8;
  /// Weight of one high-regret sighting (NoteRegret) relative to a plain
  /// observation: the kernel observatory proved the compiled variant
  /// choice is costing device time at this shape, so it pulls the
  /// histogram toward the offending values that much harder.
  int64_t regret_observation_weight = 4;
};

/// \brief Aggregates observed dynamic-dim values and emits hint sets when
/// the hot-value profile becomes confident or shifts. Not thread-safe; the
/// owning engine serializes access (one instance per engine).
class ShapeProfileFeedback {
 public:
  explicit ShapeProfileFeedback(ShapeProfileOptions options = {})
      : options_(options) {}

  /// \brief Records one query's observed dims. `labels` is parallel to the
  /// engine's inputs (one label per dim, "" = anonymous/static).
  void Observe(const std::vector<std::vector<std::string>>& labels,
               const std::vector<std::vector<int64_t>>& input_dims);

  /// \brief The kernel observatory's respecialization trigger: records a
  /// shape whose selected kernel variant carries positive audited regret.
  /// Counts as `regret_observation_weight` observations of these dims and
  /// arms the next MaybeRespecialize to bypass the recheck interval — a
  /// proven misprediction should not wait out the steady-state cadence.
  /// Non-positive regret is a no-op.
  void NoteRegret(const std::vector<std::vector<std::string>>& labels,
                  const std::vector<std::vector<int64_t>>& input_dims,
                  double regret_us);

  /// \brief Returns a fresh hint set when (a) enough observations exist,
  /// (b) at least one label passes the confidence bar, and (c) the
  /// resulting set differs from the last one emitted. Otherwise nullopt.
  /// The caller owns acting on it (sync recompile or service submission).
  std::optional<LikelyDimValues> MaybeRespecialize();

  int64_t observations() const { return observations_; }
  /// Canonical signature of the last emitted hint set ("" before the
  /// first); respecialization count == number of signature changes.
  const std::string& active_signature() const { return active_signature_; }
  int64_t respecializations() const { return respecializations_; }

  /// \brief Canonical text of a hint set, e.g. "B:8,512;S:1024" — used for
  /// shift detection and exposed for tests/introspection.
  static std::string Signature(const LikelyDimValues& hints);

  /// \brief Top `k` observed values per label, most frequent first (ties:
  /// smaller value first, deterministic). The shadow validator turns these
  /// into probe bindings: the shapes traffic actually takes are exactly
  /// where a candidate executable must agree with the incumbent.
  LikelyDimValues TopValues(int k) const {
    LikelyDimValues out;
    for (const auto& [label, histogram] : histograms_) {
      std::vector<std::pair<int64_t, int64_t>> ranked(histogram.begin(),
                                                      histogram.end());
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const auto& a, const auto& b) {
                         return a.second > b.second;
                       });
      std::vector<int64_t> values;
      for (const auto& [value, count] : ranked) {
        if (static_cast<int>(values.size()) >= k) break;
        values.push_back(value);
      }
      if (!values.empty()) out.emplace_back(label, std::move(values));
    }
    return out;
  }

 private:
  ShapeProfileOptions options_;
  // label -> value -> observation count.
  std::map<std::string, std::map<int64_t, int64_t>> histograms_;
  int64_t observations_ = 0;
  int64_t last_checked_at_ = 0;
  /// Set by NoteRegret; the next MaybeRespecialize skips the recheck-
  /// interval gate (min_observations still applies).
  bool regret_pending_ = false;
  std::string active_signature_;
  int64_t respecializations_ = 0;
};

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_PROFILE_FEEDBACK_H_
