#include "compile_service/artifact_cache.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "support/artifact_dump.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace fs = std::filesystem;

namespace disc {
namespace {

JsonValue KeyToJson(const CacheKey& key) {
  JsonValue::Object o;
  o["model_fingerprint"] = JsonValue(key.model_fingerprint);
  o["constraint_signature"] = JsonValue(key.constraint_signature);
  o["options_hash"] = JsonValue(key.options_hash);
  o["code_version"] = JsonValue(static_cast<int64_t>(key.code_version));
  return JsonValue(std::move(o));
}

bool KeyFromJson(const JsonValue& json, CacheKey* key) {
  const JsonValue* fp = json.Find("model_fingerprint");
  const JsonValue* cs = json.Find("constraint_signature");
  const JsonValue* oh = json.Find("options_hash");
  const JsonValue* cv = json.Find("code_version");
  if (fp == nullptr || !fp->is_string() || cs == nullptr || !cs->is_string() ||
      oh == nullptr || !oh->is_string() || cv == nullptr || !cv->is_number()) {
    return false;
  }
  key->model_fingerprint = fp->as_string();
  key->constraint_signature = cs->as_string();
  key->options_hash = oh->as_string();
  key->code_version = static_cast<int>(cv->as_number());
  return true;
}

// tmp+rename: readers (and crash recovery) see the old content or the new,
// never a torn write.
Status AtomicWrite(const std::string& path, const std::string& content) {
  std::string tmp = path + ".tmp";
  DISC_RETURN_IF_ERROR(WriteStringToFile(tmp, content));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

}  // namespace

PersistentArtifactCache::PersistentArtifactCache(ArtifactCacheOptions options)
    : options_(std::move(options)) {}

std::string PersistentArtifactCache::EntryPath(const std::string& id) const {
  return options_.dir + "/entries/" + id + ".json";
}

std::string PersistentArtifactCache::ManifestPath() const {
  return options_.dir + "/manifest.json";
}

std::string PersistentArtifactCache::PoisonPath() const {
  // Lives beside manifest.json, NOT inside quarantine/ — quarantine/ holds
  // exactly the moved-aside entry files and tooling counts them.
  return options_.dir + "/poisoned.json";
}

void PersistentArtifactCache::LoadManifestLocked() {
  if (manifest_loaded_) return;
  manifest_loaded_ = true;
  if (!enabled()) return;
  (void)EnsureDirectory(options_.dir + "/entries");

  // Poison list first: even with a corrupt/missing manifest, poisoned keys
  // must stay refused.
  if (auto poison_text = ReadFileToString(PoisonPath()); poison_text.ok()) {
    auto parsed = ParseJson(*poison_text);
    if (parsed.ok() && parsed->is_object()) {
      const JsonValue* keys = parsed->Find("poisoned");
      if (keys != nullptr && keys->is_object()) {
        for (const auto& [id, reason] : keys->as_object()) {
          poisoned_[id] = reason.is_string() ? reason.as_string() : "";
        }
      }
    } else {
      DISC_LOG(Warning) << "artifact-cache poison list corrupt at "
                        << PoisonPath() << "; keeping it untouched";
    }
  }

  auto text = ReadFileToString(ManifestPath());
  if (text.ok()) {
    auto parsed = ParseJson(*text);
    if (parsed.ok() && parsed->is_object()) {
      const JsonValue* version = parsed->Find("schema_version");
      const JsonValue* clock = parsed->Find("lru_clock");
      const JsonValue* entries = parsed->Find("entries");
      if (version != nullptr && version->is_number() &&
          static_cast<int>(version->as_number()) == kArtifactSchemaVersion &&
          entries != nullptr && entries->is_object()) {
        if (clock != nullptr && clock->is_number()) {
          lru_clock_ = static_cast<int64_t>(clock->as_number());
        }
        for (const auto& [id, v] : entries->as_object()) {
          ManifestEntry entry;
          const JsonValue* bytes = v.Find("bytes");
          const JsonValue* used = v.Find("last_used");
          const JsonValue* model = v.Find("model");
          const JsonValue* constraints = v.Find("constraints");
          if (bytes != nullptr && bytes->is_number()) {
            entry.bytes = static_cast<int64_t>(bytes->as_number());
          }
          if (used != nullptr && used->is_number()) {
            entry.last_used = static_cast<int64_t>(used->as_number());
          }
          if (model != nullptr && model->is_string()) {
            entry.model = model->as_string();
          }
          if (constraints != nullptr && constraints->is_string()) {
            entry.constraints = constraints->as_string();
          }
          manifest_[id] = std::move(entry);
        }
        return;
      }
    }
    // Present but unusable: the manifest is only an index, so rebuild it
    // from the entries directory instead of dropping the cache.
    DISC_LOG(Warning) << "artifact-cache manifest corrupt; rebuilding from "
                      << options_.dir << "/entries";
  }
  RebuildManifestLocked();
}

void PersistentArtifactCache::RebuildManifestLocked() {
  manifest_.clear();
  std::error_code ec;
  fs::directory_iterator it(options_.dir + "/entries", ec);
  if (ec) return;
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file()) continue;
    fs::path path = dirent.path();
    if (path.extension() != ".json") continue;
    ManifestEntry entry;
    entry.bytes = static_cast<int64_t>(dirent.file_size(ec));
    entry.last_used = ++lru_clock_;
    manifest_[path.stem().string()] = std::move(entry);
  }
  (void)WriteManifestLocked();
}

Status PersistentArtifactCache::WriteManifestLocked() {
  JsonValue::Object entries;
  for (const auto& [id, entry] : manifest_) {
    JsonValue::Object e;
    e["bytes"] = JsonValue(entry.bytes);
    e["last_used"] = JsonValue(entry.last_used);
    e["model"] = JsonValue(entry.model);
    e["constraints"] = JsonValue(entry.constraints);
    entries[id] = JsonValue(std::move(e));
  }
  JsonValue::Object manifest;
  manifest["schema_version"] =
      JsonValue(static_cast<int64_t>(kArtifactSchemaVersion));
  manifest["lru_clock"] = JsonValue(lru_clock_);
  manifest["entries"] = JsonValue(std::move(entries));
  return AtomicWrite(ManifestPath(),
                     JsonValue(std::move(manifest)).SerializePretty());
}

void PersistentArtifactCache::QuarantineLocked(const std::string& id,
                                               const std::string& reason) {
  DISC_LOG(Warning) << "quarantining cache entry " << id << ": " << reason;
  (void)EnsureDirectory(options_.dir + "/quarantine");
  std::error_code ec;
  fs::rename(EntryPath(id), options_.dir + "/quarantine/" + id + ".json", ec);
  if (ec) fs::remove(EntryPath(id), ec);
  manifest_.erase(id);
  (void)WriteManifestLocked();
  // Session poison: a corrupt entry must not be re-stored and re-served
  // under the same key within this process — whatever wrote it is still
  // running. Not persisted: after a restart a fresh compile may store the
  // key again (the bytes were bad, not the recipe).
  session_poisoned_.emplace(id, reason);
  ++stats_.quarantined;
  CountMetric("compile_service.cache.quarantine");
}

bool PersistentArtifactCache::IsPoisonedLocked(const std::string& id) const {
  return poisoned_.count(id) > 0 || session_poisoned_.count(id) > 0;
}

Status PersistentArtifactCache::WritePoisonListLocked() {
  JsonValue::Object keys;
  for (const auto& [id, reason] : poisoned_) keys[id] = JsonValue(reason);
  JsonValue::Object o;
  o["schema_version"] =
      JsonValue(static_cast<int64_t>(kArtifactSchemaVersion));
  o["poisoned"] = JsonValue(std::move(keys));
  return AtomicWrite(PoisonPath(), JsonValue(std::move(o)).SerializePretty());
}

Status PersistentArtifactCache::Poison(const CacheKey& key,
                                       const std::string& reason) {
  TraceScope scope("cache.poison", "compile_service");
  std::lock_guard<std::mutex> lock(mu_);
  LoadManifestLocked();
  std::string id = key.ToId();
  bool fresh = poisoned_.emplace(id, reason).second;
  CountMetric("compile_service.cache.poison");
  DISC_LOG(Warning) << "poisoning cache key " << id << ": " << reason;
  if (!enabled()) return Status::OK();  // in-memory refusal only
  // Move any on-disk entry aside so even a manifest rebuild cannot
  // resurrect it.
  std::error_code ec;
  if (fresh && (manifest_.count(id) > 0 || fs::exists(EntryPath(id), ec))) {
    QuarantineLocked(id, "poisoned: " + reason);
  }
  return WritePoisonListLocked();
}

bool PersistentArtifactCache::IsPoisoned(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  LoadManifestLocked();
  return IsPoisonedLocked(key.ToId());
}

void PersistentArtifactCache::EvictOverBudgetLocked() {
  if (options_.byte_budget <= 0) return;
  auto total = [this]() {
    int64_t sum = 0;
    for (const auto& [id, entry] : manifest_) sum += entry.bytes;
    return sum;
  };
  while (total() > options_.byte_budget && manifest_.size() > 1) {
    auto victim = manifest_.begin();
    for (auto it = manifest_.begin(); it != manifest_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    std::error_code ec;
    fs::remove(EntryPath(victim->first), ec);
    manifest_.erase(victim);
    ++stats_.evictions;
    CountMetric("compile_service.cache.evict");
  }
}

std::optional<CacheArtifact> PersistentArtifactCache::Lookup(
    const CacheKey& key) {
  TraceScope scope("cache.lookup", "compile_service");
  std::lock_guard<std::mutex> lock(mu_);
  LoadManifestLocked();
  auto miss = [this] {
    ++stats_.misses;
    CountMetric("compile_service.cache.miss");
    return std::nullopt;
  };
  if (!enabled()) return miss();

  std::string id = key.ToId();
  if (IsPoisonedLocked(id)) {
    // The recipe itself was proven bad — refuse without touching disk, so
    // a warm restart performs zero loads (and zero compiles, the engine
    // checks IsPoisoned before submitting) of the poisoned key.
    ++stats_.poison_rejects;
    CountMetric("compile_service.cache.poison_reject");
    return miss();
  }
  // Fault seam: a load failure (bad disk, truncated entry) must degrade to
  // recompilation, never crash or return a wrong executable.
  Status injected = [] {
    DISC_INJECT_FAILPOINT("compile_service.cache.load");
    return Status::OK();
  }();
  std::string entry_path = EntryPath(id);
  auto text = injected.ok() ? ReadFileToString(entry_path)
                            : Result<std::string>(injected);
  // Fault seam: bitrot in a loaded recipe. Flips the leading brace so the
  // corruption is structural and deterministic — caught below by the
  // parse/schema checks, quarantined, and session-poisoned.
  if (text.ok() && !text->empty() && !CheckFailpoint("cache.bitrot").ok()) {
    (*text)[0] ^= 0x20;
  }
  if (!text.ok()) {
    if (manifest_.count(id) > 0) {
      // The manifest promised this entry; the file is unreadable.
      QuarantineLocked(id, text.status().ToString());
    }
    return miss();
  }

  auto fail = [&](const std::string& reason) {
    QuarantineLocked(id, reason);
    ++stats_.misses;
    CountMetric("compile_service.cache.miss");
    return std::nullopt;
  };
  auto parsed = ParseJson(*text);
  if (!parsed.ok()) return fail(parsed.status().ToString());
  const JsonValue* version = parsed->Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      static_cast<int>(version->as_number()) != kArtifactSchemaVersion) {
    return fail("schema version mismatch");
  }
  const JsonValue* key_json = parsed->Find("key");
  CacheArtifact artifact;
  if (key_json == nullptr || !KeyFromJson(*key_json, &artifact.key)) {
    return fail("missing/invalid key");
  }
  if (!(artifact.key == key)) {
    // Hash collision or a tampered file: the entry is not what the id
    // claims. Safety over reuse.
    return fail("key mismatch for id " + id);
  }
  const JsonValue* options = parsed->Find("options");
  if (options == nullptr || !options->is_object()) {
    return fail("missing options");
  }
  artifact.options = OptionsFromJson(*options);
  const JsonValue* model = parsed->Find("model");
  if (model != nullptr && model->is_string()) {
    artifact.model_name = model->as_string();
  }
  const JsonValue* report = parsed->Find("report");
  if (report != nullptr && report->is_string()) {
    artifact.report_summary = report->as_string();
  }
  artifact.entry_bytes = static_cast<int64_t>(text->size());

  auto& entry = manifest_[id];
  entry.bytes = artifact.entry_bytes;
  entry.last_used = ++lru_clock_;
  if (entry.model.empty()) entry.model = artifact.model_name;
  (void)WriteManifestLocked();
  ++stats_.hits;
  CountMetric("compile_service.cache.hit");
  return artifact;
}

Status PersistentArtifactCache::Store(const CacheKey& key,
                                      const std::string& model_name,
                                      const CompileOptions& options,
                                      const std::string& report_summary) {
  TraceScope scope("cache.store", "compile_service");
  std::lock_guard<std::mutex> lock(mu_);
  LoadManifestLocked();
  if (!enabled()) return Status::OK();
  std::string poison_id = key.ToId();
  if (IsPoisonedLocked(poison_id)) {
    ++stats_.poison_rejects;
    CountMetric("compile_service.cache.poison_reject");
    return Status::FailedPrecondition("cache key " + poison_id +
                                      " is poisoned; refusing to store");
  }

  // Fault seam: a failed store must leave serving untouched (the compiled
  // executable lives in memory) and the on-disk state consistent.
  DISC_INJECT_FAILPOINT("compile_service.cache.store");

  JsonValue::Object o;
  o["schema_version"] = JsonValue(static_cast<int64_t>(kArtifactSchemaVersion));
  o["key"] = KeyToJson(key);
  o["model"] = JsonValue(model_name);
  o["options"] = OptionsToJson(options);
  o["report"] = JsonValue(report_summary);
  std::string content = JsonValue(std::move(o)).SerializePretty();

  std::string id = key.ToId();
  DISC_RETURN_IF_ERROR(AtomicWrite(EntryPath(id), content));
  auto& entry = manifest_[id];
  entry.bytes = static_cast<int64_t>(content.size());
  entry.last_used = ++lru_clock_;
  entry.model = model_name;
  entry.constraints = key.constraint_signature;
  EvictOverBudgetLocked();
  DISC_RETURN_IF_ERROR(WriteManifestLocked());
  ++stats_.stores;
  CountMetric("compile_service.cache.store");
  return Status::OK();
}

ArtifactCacheStats PersistentArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArtifactCacheStats stats = stats_;
  {
    int64_t distinct = static_cast<int64_t>(poisoned_.size());
    for (const auto& [id, reason] : session_poisoned_) {
      if (poisoned_.count(id) == 0) ++distinct;
    }
    stats.poisoned = distinct;
  }
  stats.entries = static_cast<int64_t>(manifest_.size());
  stats.total_bytes = 0;
  for (const auto& [id, entry] : manifest_) stats.total_bytes += entry.bytes;
  return stats;
}

std::string PersistentArtifactCache::ManifestSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  const_cast<PersistentArtifactCache*>(this)->LoadManifestLocked();
  if (!enabled()) return "artifact cache disabled (no directory)\n";
  std::string out = "artifact cache at " + options_.dir + " (schema v" +
                    std::to_string(kArtifactSchemaVersion) + "): " +
                    std::to_string(manifest_.size()) + " entries\n";
  if (!poisoned_.empty()) {
    out += "  poisoned keys (" + std::to_string(poisoned_.size()) + "):\n";
    for (const auto& [id, reason] : poisoned_) {
      out += "    " + id + "  " + reason + "\n";
    }
  }
  // Most-recently-used first.
  std::vector<std::pair<std::string, const ManifestEntry*>> ranked;
  for (const auto& [id, entry] : manifest_) ranked.emplace_back(id, &entry);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second->last_used > b.second->last_used;
  });
  for (const auto& [id, entry] : ranked) {
    out += "  " + id + "  model=" +
           (entry->model.empty() ? "?" : entry->model) + "  " +
           std::to_string(entry->bytes) + " bytes  lru_seq=" +
           std::to_string(entry->last_used) + "\n";
  }
  return out;
}

}  // namespace disc
