// PersistentArtifactCache: disk-backed cache of compiled-artifact recipes,
// so a warm process restart restores every executable without paying
// compilation again (BladeDISC's deployment requirement; Nimble's AOT
// compile-once argument).
//
// Layout under `options.dir`:
//
//   manifest.json           versioned index: id -> {bytes, last_used,
//                           model, constraints} + an LRU sequence counter.
//                           Rewritten tmp+rename after every mutation; if
//                           missing or corrupt it is rebuilt by scanning
//                           entries/ (the manifest is an index, never the
//                           source of truth).
//   entries/<id>.json       one artifact per CacheKey::ToId(): the full
//                           key, the CompileOptions that produced the
//                           executable (hints included), report summary,
//                           and a truncated IR preview for humans. Written
//                           tmp+rename so a crash mid-store leaves either
//                           the old entry or none — never a torn file.
//   quarantine/<id>.json    entries that failed to parse/validate on load,
//                           moved aside (not deleted — debuggable) and
//                           recompiled fresh.
//   poisoned.json           persisted quarantine list: CacheKey ids that
//                           differential validation proved miscompiled
//                           (output divergence / guard violation). Unlike
//                           quarantine/ (corrupt bytes: recompiling fresh
//                           is safe), a poisoned key's *recipe* is wrong —
//                           Lookup and Store refuse it in this process and
//                           after a warm restart, until the list is
//                           cleared or kCompileCodeVersion is bumped.
//
// What an "artifact" is here: this repo's executables hold live pointers
// into their owning Graph, and IR text does not round-trip large constant
// tensors, so entries store a *recipe* (options + key), not object code.
// A warm load replays DiscCompiler deterministically from the recipe —
// the simulation stand-in for mapping a serialized binary, charged as
// `simulated_cache_load_latency_us`, not as a compile job.
#ifndef DISC_COMPILE_SERVICE_ARTIFACT_CACHE_H_
#define DISC_COMPILE_SERVICE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "compile_service/cache_key.h"

namespace disc {

struct ArtifactCacheOptions {
  /// Root directory. Empty disables the cache (every Lookup misses, every
  /// Store is a no-op) — the `--no-compile-cache` behavior.
  std::string dir;
  /// LRU eviction bound on total entry bytes (manifest excluded).
  /// <= 0 = unlimited.
  int64_t byte_budget = 64 * 1024 * 1024;
};

/// One cached artifact, parsed and validated.
struct CacheArtifact {
  CacheKey key;
  std::string model_name;
  CompileOptions options;
  /// Report one-liner from the original compile ("N kernels, M variants");
  /// informational.
  std::string report_summary;
  int64_t entry_bytes = 0;
};

struct ArtifactCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stores = 0;
  int64_t evictions = 0;
  int64_t quarantined = 0;
  /// Keys on the persisted poison list (durable) plus session-poisoned ids.
  int64_t poisoned = 0;
  /// Lookups/Stores refused because the key was poisoned.
  int64_t poison_rejects = 0;
  int64_t entries = 0;
  int64_t total_bytes = 0;
};

/// \brief Thread-safe disk cache. All methods are safe to call
/// concurrently from service workers and the foreground.
class PersistentArtifactCache {
 public:
  explicit PersistentArtifactCache(ArtifactCacheOptions options);

  bool enabled() const { return !options_.dir.empty(); }

  /// \brief Loads the entry for `key`, if present and valid. A present but
  /// corrupt/mismatched entry is quarantined and reported as a miss.
  std::optional<CacheArtifact> Lookup(const CacheKey& key);

  /// \brief Persists an artifact (tmp+rename), updates the manifest, and
  /// evicts least-recently-used entries past the byte budget. Failures are
  /// returned, never fatal — the in-memory executable is unaffected.
  Status Store(const CacheKey& key, const std::string& model_name,
               const CompileOptions& options,
               const std::string& report_summary);

  /// \brief Durably poisons `key`: the admission gate proved the artifact
  /// it produces is wrong (divergence, guard violation). Any on-disk entry
  /// is moved to quarantine/, the id is appended to poisoned.json, and
  /// Lookup/Store refuse the key from now on — including after a warm
  /// restart. Recovery: delete poisoned.json or bump kCompileCodeVersion
  /// (a new code_version yields a different id).
  Status Poison(const CacheKey& key, const std::string& reason);

  /// \brief True when `key` is on the poison list (durable or session).
  bool IsPoisoned(const CacheKey& key);

  ArtifactCacheStats stats() const;

  /// \brief Human-readable manifest dump for trace_inspect/disc_explain:
  /// schema version, entry count/bytes, per-entry id, model, size, LRU
  /// rank.
  std::string ManifestSummary() const;

 private:
  struct ManifestEntry {
    int64_t bytes = 0;
    int64_t last_used = 0;
    std::string model;
    std::string constraints;
  };

  std::string EntryPath(const std::string& id) const;
  std::string ManifestPath() const;
  std::string PoisonPath() const;
  // All private helpers assume mu_ is held.
  void LoadManifestLocked();
  void RebuildManifestLocked();
  Status WriteManifestLocked();
  Status WritePoisonListLocked();
  void QuarantineLocked(const std::string& id, const std::string& reason);
  bool IsPoisonedLocked(const std::string& id) const;
  void EvictOverBudgetLocked();

  ArtifactCacheOptions options_;
  mutable std::mutex mu_;
  bool manifest_loaded_ = false;
  int64_t lru_clock_ = 0;
  std::map<std::string, ManifestEntry> manifest_;
  /// Durable poison list (mirrors poisoned.json): id -> reason.
  std::map<std::string, std::string> poisoned_;
  /// Session-only poison: ids whose on-disk entry was quarantined as
  /// corrupt. Not persisted (recompiling fresh is safe after a restart),
  /// but within this process the same CacheKey must not be re-stored and
  /// immediately re-served from the cache it just corrupted.
  std::map<std::string, std::string> session_poisoned_;
  ArtifactCacheStats stats_;
};

/// Schema version of entry/manifest files; bump on layout changes. Entries
/// from another schema are quarantined on load.
inline constexpr int kArtifactSchemaVersion = 1;

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_ARTIFACT_CACHE_H_
