#include "compile_service/cache_key.h"

#include <cinttypes>
#include <cstdio>

namespace disc {
namespace {

JsonValue JsonInt(int64_t v) { return JsonValue(v); }

JsonValue HintsToJson(
    const std::vector<std::pair<std::string, std::vector<int64_t>>>& hints) {
  // An array of [label, [values...]] pairs: hint order is semantic (the
  // speculative-variant builder consumes values back-first), so a sorted
  // object would lose information.
  JsonValue::Array out;
  for (const auto& [label, values] : hints) {
    JsonValue::Array pair;
    pair.emplace_back(label);
    JsonValue::Array vals;
    for (int64_t v : values) vals.push_back(JsonInt(v));
    pair.emplace_back(std::move(vals));
    out.emplace_back(std::move(pair));
  }
  return JsonValue(std::move(out));
}

void HintsFromJson(
    const JsonValue& json,
    std::vector<std::pair<std::string, std::vector<int64_t>>>* hints) {
  if (!json.is_array()) return;
  for (const JsonValue& pair : json.as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2) continue;
    const JsonValue& label = pair.as_array()[0];
    const JsonValue& vals = pair.as_array()[1];
    if (!label.is_string() || !vals.is_array()) continue;
    std::vector<int64_t> values;
    for (const JsonValue& v : vals.as_array()) {
      if (v.is_number()) values.push_back(static_cast<int64_t>(v.as_number()));
    }
    hints->emplace_back(label.as_string(), std::move(values));
  }
}

}  // namespace

std::string Fingerprint(const std::string& text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return std::string(buf);
}

JsonValue OptionsToJson(const CompileOptions& options) {
  JsonValue::Object o;
  o["run_graph_passes"] = JsonValue(options.run_graph_passes);

  JsonValue::Object fusion;
  fusion["enable_fusion"] = JsonValue(options.fusion.enable_fusion);
  fusion["enable_input_fusion"] = JsonValue(options.fusion.enable_input_fusion);
  fusion["enable_stitch"] = JsonValue(options.fusion.enable_stitch);
  fusion["use_symbolic_shapes"] = JsonValue(options.fusion.use_symbolic_shapes);
  fusion["max_group_size"] = JsonInt(options.fusion.max_group_size);
  fusion["stitch_shared_memory_bytes"] =
      JsonInt(options.fusion.stitch_shared_memory_bytes);
  fusion["record_decisions"] = JsonValue(options.fusion.record_decisions);
  o["fusion"] = JsonValue(std::move(fusion));

  JsonValue::Object spec;
  spec["enable_specialization"] =
      JsonValue(options.specialize.enable_specialization);
  spec["enable_vectorization"] =
      JsonValue(options.specialize.enable_vectorization);
  spec["enable_broadcast_elimination"] =
      JsonValue(options.specialize.enable_broadcast_elimination);
  spec["enable_reduce_schedules"] =
      JsonValue(options.specialize.enable_reduce_schedules);
  spec["enable_shape_speculation"] =
      JsonValue(options.specialize.enable_shape_speculation);
  spec["max_speculative_variants"] =
      JsonInt(options.specialize.max_speculative_variants);
  spec["vector_width"] = JsonInt(options.specialize.vector_width);
  spec["warp_row_threshold"] = JsonInt(options.specialize.warp_row_threshold);
  spec["warp_min_rows"] = JsonInt(options.specialize.warp_min_rows);
  o["specialize"] = JsonValue(std::move(spec));

  o["likely_dim_values"] = HintsToJson(options.likely_dim_values);

  JsonValue::Array divisors;
  for (const auto& [label, div] : options.dim_divisors) {
    JsonValue::Array pair;
    pair.emplace_back(label);
    pair.push_back(JsonInt(div));
    divisors.emplace_back(std::move(pair));
  }
  o["dim_divisors"] = JsonValue(std::move(divisors));
  return JsonValue(std::move(o));
}

CompileOptions OptionsFromJson(const JsonValue& json) {
  CompileOptions options;
  auto get_bool = [](const JsonValue* parent, const char* key, bool* out) {
    if (parent == nullptr) return;
    const JsonValue* v = parent->Find(key);
    if (v != nullptr && v->is_bool()) *out = v->as_bool();
  };
  auto get_i64 = [](const JsonValue* parent, const char* key, auto* out) {
    if (parent == nullptr) return;
    const JsonValue* v = parent->Find(key);
    if (v != nullptr && v->is_number()) {
      *out = static_cast<std::decay_t<decltype(*out)>>(v->as_number());
    }
  };
  get_bool(&json, "run_graph_passes", &options.run_graph_passes);

  const JsonValue* fusion = json.Find("fusion");
  get_bool(fusion, "enable_fusion", &options.fusion.enable_fusion);
  get_bool(fusion, "enable_input_fusion", &options.fusion.enable_input_fusion);
  get_bool(fusion, "enable_stitch", &options.fusion.enable_stitch);
  get_bool(fusion, "use_symbolic_shapes", &options.fusion.use_symbolic_shapes);
  get_i64(fusion, "max_group_size", &options.fusion.max_group_size);
  get_i64(fusion, "stitch_shared_memory_bytes",
          &options.fusion.stitch_shared_memory_bytes);
  get_bool(fusion, "record_decisions", &options.fusion.record_decisions);

  const JsonValue* spec = json.Find("specialize");
  get_bool(spec, "enable_specialization",
           &options.specialize.enable_specialization);
  get_bool(spec, "enable_vectorization",
           &options.specialize.enable_vectorization);
  get_bool(spec, "enable_broadcast_elimination",
           &options.specialize.enable_broadcast_elimination);
  get_bool(spec, "enable_reduce_schedules",
           &options.specialize.enable_reduce_schedules);
  get_bool(spec, "enable_shape_speculation",
           &options.specialize.enable_shape_speculation);
  get_i64(spec, "max_speculative_variants",
          &options.specialize.max_speculative_variants);
  get_i64(spec, "vector_width", &options.specialize.vector_width);
  get_i64(spec, "warp_row_threshold", &options.specialize.warp_row_threshold);
  get_i64(spec, "warp_min_rows", &options.specialize.warp_min_rows);

  const JsonValue* hints = json.Find("likely_dim_values");
  if (hints != nullptr) HintsFromJson(*hints, &options.likely_dim_values);
  const JsonValue* divisors = json.Find("dim_divisors");
  if (divisors != nullptr && divisors->is_array()) {
    for (const JsonValue& pair : divisors->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2) continue;
      const JsonValue& label = pair.as_array()[0];
      const JsonValue& div = pair.as_array()[1];
      if (label.is_string() && div.is_number()) {
        options.dim_divisors.emplace_back(
            label.as_string(), static_cast<int64_t>(div.as_number()));
      }
    }
  }
  return options;
}

std::string CacheKey::ToId() const {
  // constraint_signature is free text (contains ':' etc.) — hash it so the
  // id stays a fixed-width filesystem-safe token.
  return model_fingerprint + "-" + Fingerprint(constraint_signature) + "-" +
         options_hash + "-v" + std::to_string(code_version);
}

bool CacheKey::operator==(const CacheKey& other) const {
  return model_fingerprint == other.model_fingerprint &&
         constraint_signature == other.constraint_signature &&
         options_hash == other.options_hash &&
         code_version == other.code_version;
}

CacheKey CacheKey::Make(const Graph& graph,
                        const std::vector<std::vector<std::string>>& labels,
                        const CompileOptions& options) {
  CacheKey key;
  std::string model_text = graph.ToString();
  for (const auto& input_labels : labels) {
    model_text += "\n#labels:";
    for (const std::string& l : input_labels) model_text += " " + l;
  }
  key.model_fingerprint = Fingerprint(model_text);

  std::string constraints;
  for (const auto& [label, div] : options.dim_divisors) {
    constraints += "div " + label + "%" + std::to_string(div) + "\n";
  }
  for (const auto& [label, values] : options.likely_dim_values) {
    constraints += "likely " + label + ":";
    for (int64_t v : values) constraints += " " + std::to_string(v);
    constraints += "\n";
  }
  key.constraint_signature = constraints;

  // Hints/divisors are already in the constraint signature; hash the
  // option fields without them so "same pipeline, new hints" reads as one
  // options_hash with a changed constraint component.
  CompileOptions pipeline_only = options;
  pipeline_only.likely_dim_values.clear();
  pipeline_only.dim_divisors.clear();
  key.options_hash = Fingerprint(OptionsToJson(pipeline_only).Serialize());
  key.code_version = kCompileCodeVersion;
  return key;
}

}  // namespace disc
