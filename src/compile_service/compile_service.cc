#include "compile_service/compile_service.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "support/blame.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace disc {

namespace internal {

struct CompileJobState {
  int64_t job_id = 0;
  CompileJobRequest request;
  std::unique_ptr<Graph> graph_copy;
  CacheKey key;
  std::string key_id;
  std::chrono::steady_clock::time_point submit_time;
  size_t timeline_index = 0;
  /// Non-null for SubmitTask jobs: runs instead of the compile pipeline.
  std::function<CompileJobOutcome()> task;

  std::atomic<bool> cancel_requested{false};

  std::mutex mu;
  std::condition_variable done_cv;
  bool done = false;
  CompileJobOutcome outcome;
};

}  // namespace internal

using internal::CompileJobState;

const char* JobPriorityName(JobPriority priority) {
  switch (priority) {
    case JobPriority::kForegroundMiss:
      return "foreground-miss";
    case JobPriority::kRespecialize:
      return "respecialize";
    case JobPriority::kPrefetch:
      return "prefetch";
    case JobPriority::kValidate:
      return "validate";
  }
  return "unknown";
}

bool CompileJobHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

const CompileJobOutcome* CompileJobHandle::TryGet() const {
  if (state_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done ? &state_->outcome : nullptr;
}

const CompileJobOutcome& CompileJobHandle::Wait() const {
  DISC_CHECK(state_ != nullptr) << "Wait on an invalid CompileJobHandle";
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] { return state_->done; });
  return state_->outcome;
}

void CompileJobHandle::Cancel() {
  if (state_ != nullptr) {
    state_->cancel_requested.store(true, std::memory_order_relaxed);
  }
}

int64_t CompileJobHandle::job_id() const {
  return state_ != nullptr ? state_->job_id : -1;
}

CompileService::CompileService(CompileServiceOptions options)
    : options_(options),
      cache_(options.cache),
      epoch_(std::chrono::steady_clock::now()) {
  int n = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

CompileService::~CompileService() { Shutdown(); }

double CompileService::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

CompileJobHandle CompileService::Submit(CompileJobRequest request) {
  DISC_CHECK(request.graph != nullptr) << "Submit without a graph";
  // Capture the submitting thread's request context here: the job runs on
  // a worker thread where the serving thread-local does not reach, so the
  // trace id must travel inside the job request itself.
  if (request.origin_trace_id == 0) {
    request.origin_trace_id = RequestContext::CurrentTraceId();
  }
  TraceScope scope("job.submit", "compile_service");
  scope.AddArg("model", request.model_name);
  scope.AddArg("priority", JobPriorityName(request.priority));
  if (request.origin_trace_id != 0) {
    scope.AddArg("trace_id", std::to_string(request.origin_trace_id));
  }

  CacheKey key = CacheKey::Make(*request.graph, request.labels,
                                request.options);
  std::string key_id = key.ToId();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (shutdown_) {
    // No workers left to resolve the future — fail it synchronously.
    auto job = std::make_shared<CompileJobState>();
    job->job_id = next_job_id_++;
    job->done = true;
    job->outcome.key = std::move(key);
    job->outcome.status = Status::FailedPrecondition("service shut down");
    ++stats_.cancelled;
    return CompileJobHandle(std::move(job));
  }
  auto it = in_flight_.find(key_id);
  if (it != in_flight_.end()) {
    // Same artifact already queued or compiling: coalesce. N concurrent
    // misses on one model produce one compile, not a stampede.
    ++stats_.deduplicated;
    CountMetric("compile_service.job.deduplicated");
    return CompileJobHandle(it->second);
  }

  auto job = std::make_shared<CompileJobState>();
  job->job_id = next_job_id_++;
  job->graph_copy = request.graph->Clone();
  job->request = std::move(request);
  job->request.graph = job->graph_copy.get();
  job->key = std::move(key);
  job->key_id = key_id;
  job->submit_time = std::chrono::steady_clock::now();

  JobTimelineEntry entry;
  entry.job_id = job->job_id;
  entry.model = job->request.model_name;
  entry.priority = job->request.priority;
  entry.key_id = key_id;
  entry.origin_trace_id = job->request.origin_trace_id;
  entry.submit_us = NowUs();
  job->timeline_index = timeline_.size();
  timeline_.push_back(std::move(entry));

  in_flight_[key_id] = job;
  queue_.push_back(job);
  int64_t depth = static_cast<int64_t>(queue_.size());
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  ObserveMetric("compile_service.queue_depth", static_cast<double>(depth));
  CountMetric("compile_service.job.submitted");
  work_cv_.notify_one();
  return CompileJobHandle(job);
}

CompileJobHandle CompileService::SubmitTask(
    const std::string& name, JobPriority priority,
    std::function<CompileJobOutcome()> task) {
  DISC_CHECK(task != nullptr) << "SubmitTask without a task";
  TraceScope scope("task.submit", "compile_service");
  scope.AddArg("name", name);
  scope.AddArg("priority", JobPriorityName(priority));

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.tasks_submitted;
  if (shutdown_) {
    auto job = std::make_shared<CompileJobState>();
    job->job_id = next_job_id_++;
    job->done = true;
    job->outcome.status = Status::FailedPrecondition("service shut down");
    ++stats_.cancelled;
    return CompileJobHandle(std::move(job));
  }

  auto job = std::make_shared<CompileJobState>();
  job->job_id = next_job_id_++;
  job->request.model_name = name;
  job->request.priority = priority;
  job->request.origin_trace_id = RequestContext::CurrentTraceId();
  job->task = std::move(task);
  // Unique pseudo-id: tasks are never deduplicated and must not collide
  // with compile-job CacheKey ids in in_flight_.
  job->key_id = "task:" + std::to_string(job->job_id);
  job->submit_time = std::chrono::steady_clock::now();

  JobTimelineEntry entry;
  entry.job_id = job->job_id;
  entry.model = name;
  entry.priority = priority;
  entry.key_id = job->key_id;
  entry.origin_trace_id = job->request.origin_trace_id;
  entry.submit_us = NowUs();
  job->timeline_index = timeline_.size();
  timeline_.push_back(std::move(entry));

  in_flight_[job->key_id] = job;
  queue_.push_back(job);
  int64_t depth = static_cast<int64_t>(queue_.size());
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  ObserveMetric("compile_service.queue_depth", static_cast<double>(depth));
  CountMetric("compile_service.task.submitted");
  work_cv_.notify_one();
  return CompileJobHandle(job);
}

void CompileService::WorkerLoop(int worker_index) {
  (void)worker_index;
  for (;;) {
    std::shared_ptr<CompileJobState> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left
      // Strict priority, FIFO within a class (job_id is monotonic).
      auto best = queue_.begin();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        auto rank = [](const std::shared_ptr<CompileJobState>& j) {
          return std::make_pair(
              static_cast<int>(j->request.priority), j->job_id);
        };
        if (rank(*it) < rank(*best)) best = it;
      }
      job = *best;
      queue_.erase(best);
      ++active_jobs_;
      timeline_[job->timeline_index].start_us = NowUs();
      ObserveMetric("compile_service.queue_depth",
                    static_cast<double>(queue_.size()));
    }
    RunJob(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_jobs_;
    }
    idle_cv_.notify_all();
  }
}

void CompileService::RunJob(const std::shared_ptr<CompileJobState>& job) {
  TraceScope scope("job.run", "compile_service");
  scope.AddArg("model", job->request.model_name);
  scope.AddArg("priority", JobPriorityName(job->request.priority));
  if (job->request.origin_trace_id != 0) {
    scope.AddArg("trace_id", std::to_string(job->request.origin_trace_id));
  }

  double queued_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - job->submit_time)
          .count();
  ObserveMetric("compile_service.job.queue_us", queued_us);

  CompileJobOutcome outcome;
  outcome.key = job->key;

  if (job->cancel_requested.load(std::memory_order_relaxed)) {
    outcome.status = Status::FailedPrecondition("job cancelled");
    FinishJob(job, std::move(outcome), "cancelled");
    return;
  }
  if (job->request.deadline_ms > 0.0 &&
      queued_us > job->request.deadline_ms * 1000.0) {
    outcome.status = Status::DeadlineExceeded(
        "job queued " + std::to_string(queued_us / 1000.0) + "ms, budget " +
        std::to_string(job->request.deadline_ms) + "ms");
    FinishJob(job, std::move(outcome), "deadline-expired");
    return;
  }
  if (job->request.pre_compile_hook) job->request.pre_compile_hook();

  if (job->task) {
    // Generic worker task (shadow validation, tuning): the closure is the
    // whole job — no cache, no compiler.
    outcome = job->task();
    const char* verdict = outcome.status.ok() ? "task-done" : "task-failed";
    FinishJob(job, std::move(outcome), verdict);
    return;
  }

  // Fault seam: a worker dying mid-job must fail only this job; the engine
  // keeps serving on its fallback leg and may resubmit.
  Status injected = CheckFailpoint("compile_service.worker");
  if (!injected.ok()) {
    outcome.status = injected;
    FinishJob(job, std::move(outcome), "failed");
    return;
  }

  // Disk first: a restart (or a re-requested respecialization) restores
  // the artifact without compiling. The stored recipe replays the compiler
  // deterministically — the simulation's stand-in for mapping serialized
  // object code; it is counted as a disk hit, never as a compile.
  if (auto artifact = cache_.Lookup(job->key)) {
    auto restored = DiscCompiler::Compile(*job->request.graph,
                                          job->request.labels,
                                          artifact->options);
    if (restored.ok()) {
      outcome.executable = std::shared_ptr<const Executable>(
          std::move(*restored));
      outcome.from_disk_cache = true;
      FinishJob(job, std::move(outcome), "disk-hit");
      return;
    }
    // A recipe that no longer replays is as bad as a corrupt file.
    outcome.status = restored.status();
  }

  auto compiled = DiscCompiler::Compile(*job->request.graph,
                                        job->request.labels,
                                        job->request.options);
  if (!compiled.ok()) {
    outcome.status = compiled.status();
    FinishJob(job, std::move(outcome), "failed");
    return;
  }
  outcome.status = Status::OK();
  outcome.executable = std::shared_ptr<const Executable>(std::move(*compiled));
  Status stored = cache_.Store(job->key, job->request.model_name,
                               job->request.options,
                               outcome.executable->report().ToString());
  if (!stored.ok()) {
    // Store failures degrade persistence, not serving: the executable is
    // live in memory either way.
    DISC_LOG(Warning) << "artifact store failed for " << job->key_id << ": "
                      << stored.ToString();
  }
  FinishJob(job, std::move(outcome), "compiled");
}

void CompileService::FinishJob(const std::shared_ptr<CompileJobState>& job,
                               CompileJobOutcome outcome,
                               const std::string& verdict) {
  double total_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - job->submit_time)
          .count();
  ObserveMetric("compile_service.job.total_us", total_us);
  CountMetric("compile_service.job." + verdict);
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(job->key_id);
    JobTimelineEntry& entry = timeline_[job->timeline_index];
    entry.finish_us = NowUs();
    entry.verdict = verdict;
    ++stats_.completed;
    if (verdict == "compiled") ++stats_.compiled;
    if (verdict == "disk-hit") ++stats_.disk_hits;
    if (verdict == "failed") ++stats_.failed;
    if (verdict == "cancelled") ++stats_.cancelled;
    if (verdict == "deadline-expired") ++stats_.deadline_expired;
    if (verdict == "task-done") ++stats_.tasks_completed;
    if (verdict == "task-failed") {
      ++stats_.tasks_completed;
      ++stats_.tasks_failed;
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->outcome = std::move(outcome);
    job->done = true;
  }
  job->done_cv.notify_all();
}

void CompileService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && active_jobs_ == 0;
  });
}

void CompileService::Shutdown() {
  std::vector<std::shared_ptr<CompileJobState>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    orphans.assign(queue_.begin(), queue_.end());
    queue_.clear();
  }
  // Queued-but-never-started jobs must still resolve their futures.
  for (const auto& job : orphans) {
    CompileJobOutcome outcome;
    outcome.key = job->key;
    outcome.status = Status::FailedPrecondition("service shut down");
    FinishJob(job, std::move(outcome), "cancelled");
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

CompileServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<JobTimelineEntry> CompileService::JobTimeline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeline_;
}

std::string CompileService::JobTimelineString() const {
  std::vector<JobTimelineEntry> timeline = JobTimeline();
  std::string out = "compile-service job timeline (" +
                    std::to_string(timeline.size()) + " jobs)\n";
  char line[256];
  for (const JobTimelineEntry& e : timeline) {
    std::snprintf(line, sizeof(line),
                  "  #%-3lld %-16s %-15s submit=%9.0fus start=%9.0fus "
                  "finish=%9.0fus  %s\n",
                  static_cast<long long>(e.job_id),
                  e.model.substr(0, 16).c_str(), JobPriorityName(e.priority),
                  e.submit_us, e.start_us, e.finish_us,
                  e.verdict.empty() ? "in-flight" : e.verdict.c_str());
    out += line;
    if (e.origin_trace_id != 0) {
      std::snprintf(line, sizeof(line), "       caused-by trace_id=%llu\n",
                    static_cast<unsigned long long>(e.origin_trace_id));
      out += line;
    }
  }
  return out;
}

}  // namespace disc
