// ShadowValidator: differential admission gate for candidate executables.
//
// Every executable the system adopts — a foreground compile, a
// profile-guided respecialization, a PersistentArtifactCache warm load —
// is today one Swap() away from serving traffic. A miscompiled kernel or
// an unsound guard in that candidate silently serves wrong tensors; the
// paper's multi-version codegen argument assumes guard soundness at every
// runtime binding. The validator makes adoption conditional on evidence:
//
//   1. Assemble a probe set of input-shape bindings from what traffic
//      actually does: the engine's recently observed shapes, the
//      ShapeProfileFeedback histogram's hot values, flight-recorder
//      outlier signatures, padded with guard-boundary bindings derived
//      from each kernel variant's predicates (operand-1/operand/operand+1
//      around every DivisibleBy/LessEqual/... threshold — exactly where a
//      wrong guard flips).
//   2. Replay each probe through the candidate AND a reference — the
//      incumbent executable when one exists (bitwise comparison: a
//      respecialization must not change numerics), else the IR reference
//      evaluator (tolerance comparison).
//   3. Re-evaluate every kernel's variant selection at each probe binding
//      and assert the selected variant's guard actually admits it.
//
// The gate runs as a low-priority CompileService task (JobPriority::
// kValidate) so serving threads never block on it, and emits a
// deterministic ValidationReport (validation_report.json) for CI to parse.
// A failed validation keeps the incumbent serving, and the caller poisons
// the candidate's CacheKey in the artifact cache's persisted quarantine
// list so neither this process nor a warm restart re-adopts it.
#ifndef DISC_COMPILE_SERVICE_SHADOW_VALIDATE_H_
#define DISC_COMPILE_SERVICE_SHADOW_VALIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compile_service/profile_feedback.h"
#include "runtime/executable.h"
#include "support/json.h"

namespace disc {

struct ShadowValidateOptions {
  /// Probe-set size cap. Guard-boundary probes get a reserved share so a
  /// long observed-shape history cannot crowd out the bindings most likely
  /// to expose a wrong guard.
  int max_probes = 12;
  /// Comparison vs the reference evaluator (fused kernels keep
  /// intermediates in double; the unfused evaluator materializes f32
  /// between ops, so bitwise equality is not expected there).
  double rtol = 1e-4;
  double atol = 1e-5;
  /// Candidate vs incumbent executables run the same kernels-on-CPU mode,
  /// so their outputs must agree bit-for-bit; set false to compare with
  /// rtol/atol instead (e.g. when options change numerics intentionally).
  bool bitwise_vs_incumbent = true;
  /// Seed for deterministic probe-input synthesis.
  uint64_t input_seed = 0x5eed;
  bool include_guard_boundaries = true;
};

/// One input-shape binding to replay, tagged with where it came from.
struct ProbeBinding {
  std::vector<std::vector<int64_t>> input_dims;
  /// "observed" | "profile" | "outlier" | "boundary".
  std::string source;
};

/// Per-probe result row of the report.
struct ProbeOutcome {
  std::string signature;  // ShapeSignature of the probe
  std::string source;
  /// "match" | "divergence" | "guard-violation" | "error" | "unbindable".
  std::string outcome;
  std::string detail;
};

/// Deterministic validation verdict; serialized as validation_report.json.
struct ValidationReport {
  std::string model;
  std::string key_id;
  /// "incumbent" | "reference-evaluator".
  std::string reference;
  bool passed = true;
  int64_t probes = 0;  // probes actually replayed (unbindable excluded)
  int64_t divergences = 0;
  int64_t guard_violations = 0;
  int64_t probe_errors = 0;
  std::vector<ProbeOutcome> outcomes;

  const char* verdict() const { return passed ? "pass" : "caught"; }
  JsonValue ToJson() const;
  Status WriteJsonFile(const std::string& path) const;
  /// One greppable line: "validation=pass probes=N ...".
  std::string Summary() const;
};

class ShadowValidator {
 public:
  explicit ShadowValidator(ShadowValidateOptions options = {})
      : options_(options) {}

  /// \brief Assembles the probe set for `candidate`. `labels` is the
  /// engine's per-input per-dim label list (parallel to graph inputs);
  /// `observed_dims` are recently served bindings (most recent last);
  /// `profile_hot_values` comes from ShapeProfileFeedback::TopValues();
  /// `outlier_signatures` are flight-recorder ShapeSignatures. Guard
  /// boundaries are derived from the candidate's own variant predicates.
  /// Deduplicated by signature, capped at max_probes with a reserved
  /// share for boundary probes.
  std::vector<ProbeBinding> BuildProbes(
      const Executable& candidate,
      const std::vector<std::vector<std::string>>& labels,
      const std::vector<std::vector<std::vector<int64_t>>>& observed_dims,
      const LikelyDimValues& profile_hot_values,
      const std::vector<std::string>& outlier_signatures) const;

  /// \brief Replays `probes` through candidate and reference and renders
  /// the verdict. `incumbent` null = compare against the IR reference
  /// evaluator over `reference_graph` (the engine's unoptimized clone).
  /// Never returns an error for a *caught* candidate — a bad candidate is
  /// a passed=false report; errors are reserved for misuse (no graph).
  ValidationReport Validate(const Executable& candidate,
                            const Executable* incumbent,
                            const Graph& reference_graph,
                            const std::vector<ProbeBinding>& probes,
                            const std::string& model_name,
                            const std::string& key_id) const;

  const ShadowValidateOptions& options() const { return options_; }

 private:
  ShadowValidateOptions options_;
};

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_SHADOW_VALIDATE_H_
