#include "compile_service/profile_feedback.h"

#include <algorithm>

#include "support/metrics.h"

namespace disc {

void ShapeProfileFeedback::Observe(
    const std::vector<std::vector<std::string>>& labels,
    const std::vector<std::vector<int64_t>>& input_dims) {
  ++observations_;
  size_t n = std::min(labels.size(), input_dims.size());
  for (size_t i = 0; i < n; ++i) {
    size_t rank = std::min(labels[i].size(), input_dims[i].size());
    for (size_t d = 0; d < rank; ++d) {
      const std::string& label = labels[i][d];
      if (label.empty()) continue;
      ++histograms_[label][input_dims[i][d]];
    }
  }
}

void ShapeProfileFeedback::NoteRegret(
    const std::vector<std::vector<std::string>>& labels,
    const std::vector<std::vector<int64_t>>& input_dims, double regret_us) {
  if (regret_us <= 0.0) return;
  for (int64_t w = 0; w < options_.regret_observation_weight; ++w) {
    Observe(labels, input_dims);
  }
  regret_pending_ = true;
  CountMetric("compile_service.profile.regret_hints");
}

std::optional<LikelyDimValues> ShapeProfileFeedback::MaybeRespecialize() {
  if (observations_ < options_.min_observations) return std::nullopt;
  if (!regret_pending_ && !active_signature_.empty() &&
      observations_ - last_checked_at_ < options_.recheck_interval) {
    return std::nullopt;
  }
  regret_pending_ = false;
  last_checked_at_ = observations_;

  LikelyDimValues hints;
  for (const auto& [label, hist] : histograms_) {
    // One histogram per label; observations per label == total sightings of
    // that label (a label can appear on several inputs — each counts).
    int64_t label_total = 0;
    for (const auto& [value, count] : hist) label_total += count;
    if (label_total == 0) continue;

    // Rank values by (count desc, value asc) for determinism.
    std::vector<std::pair<int64_t, int64_t>> ranked;  // {value, count}
    ranked.reserve(hist.size());
    for (const auto& [value, count] : hist) ranked.emplace_back(value, count);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (static_cast<double>(ranked.front().second) <
        options_.confidence * static_cast<double>(label_total)) {
      continue;  // flat distribution — speculation would thrash
    }
    size_t k = std::min(ranked.size(),
                        static_cast<size_t>(options_.max_values_per_label));
    // Emit ascending frequency: most frequent LAST, so the back-first
    // speculative-variant builder specializes it first under truncation.
    std::vector<int64_t> values;
    for (size_t j = k; j > 0; --j) values.push_back(ranked[j - 1].first);
    hints.emplace_back(label, std::move(values));
  }
  if (hints.empty()) return std::nullopt;

  std::string signature = Signature(hints);
  if (signature == active_signature_) return std::nullopt;
  active_signature_ = signature;
  ++respecializations_;
  CountMetric("compile_service.profile.respecialize");
  return hints;
}

std::string ShapeProfileFeedback::Signature(const LikelyDimValues& hints) {
  std::string out;
  for (const auto& [label, values] : hints) {
    if (!out.empty()) out += ";";
    out += label + ":";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(values[i]);
    }
  }
  return out;
}

}  // namespace disc
