// CacheKey: content-addressed identity of one compiled artifact.
//
// Two compiles may share an executable iff they agree on all four
// components: what was compiled (model fingerprint over the input IR text
// and dim labels), under which shape facts (constraint-set signature:
// labels + divisor hints + likely-value hints), how (CompileOptions hash
// over every semantic field — dump settings are excluded, they never
// change the artifact), and by which compiler (code version, bumped on
// any change to compilation semantics so stale disk caches self-expire).
#ifndef DISC_COMPILE_SERVICE_CACHE_KEY_H_
#define DISC_COMPILE_SERVICE_CACHE_KEY_H_

#include <cstdint>
#include <string>

#include "compiler/compiler.h"
#include "ir/graph.h"
#include "support/json.h"

namespace disc {

/// Bump when compiler semantics change; persisted entries written under a
/// different version are ignored (and evicted) on load.
inline constexpr int kCompileCodeVersion = 1;

struct CacheKey {
  /// FNV-1a over the input graph's IR text + input-dim labels.
  std::string model_fingerprint;
  /// Canonical text of the shape facts fed into compilation: dim labels,
  /// divisor hints, likely-value hints. Distinguishes respecializations of
  /// one model (same fingerprint/options, different hints).
  std::string constraint_signature;
  /// FNV-1a over the canonical JSON of CompileOptions (minus dump).
  std::string options_hash;
  int code_version = kCompileCodeVersion;

  /// Filesystem-safe identity, also the per-entry artifact filename stem.
  std::string ToId() const;
  bool operator==(const CacheKey& other) const;

  static CacheKey Make(const Graph& graph,
                       const std::vector<std::vector<std::string>>& labels,
                       const CompileOptions& options);
};

/// \brief FNV-1a 64-bit, rendered as 16 hex chars. Deterministic across
/// runs/platforms — the disk cache depends on that.
std::string Fingerprint(const std::string& text);

/// \brief Canonical JSON of every semantic CompileOptions field (sorted
/// keys; excludes dump). Stored in artifacts so a warm load can rebuild
/// with the exact original options.
JsonValue OptionsToJson(const CompileOptions& options);

/// \brief Inverse of OptionsToJson. Unknown keys are ignored; missing keys
/// keep their defaults (forward/backward-compatible within a schema
/// version).
CompileOptions OptionsFromJson(const JsonValue& json);

}  // namespace disc

#endif  // DISC_COMPILE_SERVICE_CACHE_KEY_H_
