#include "sim/device.h"

#include <algorithm>

namespace disc {

DeviceSpec DeviceSpec::A10() {
  DeviceSpec spec;
  spec.name = "A10";
  spec.sm_count = 72;
  spec.fp32_tflops = 31.2;
  spec.dram_gbps = 600.0;
  spec.kernel_launch_us = 3.5;
  spec.max_threads_per_sm = 1536;
  spec.saturation_threads = 72 * 768;
  return spec;
}

DeviceSpec DeviceSpec::T4() {
  DeviceSpec spec;
  spec.name = "T4";
  spec.sm_count = 40;
  spec.fp32_tflops = 8.1;
  spec.dram_gbps = 320.0;
  spec.kernel_launch_us = 4.0;
  spec.max_threads_per_sm = 1024;
  spec.saturation_threads = 40 * 768;
  return spec;
}

DeviceSpec DeviceSpec::XeonCpu() {
  DeviceSpec spec;
  spec.name = "XeonCPU";
  spec.sm_count = 32;  // cores
  spec.fp32_tflops = 3.0;  // AVX-512 across 32 cores
  spec.dram_gbps = 180.0;
  spec.kernel_launch_us = 0.3;  // a function call + thread-pool wakeup
  spec.max_threads_per_sm = 2;  // SMT
  spec.saturation_threads = 64;
  return spec;
}

KernelCost DeviceModel::EstimateGenerated(const KernelStats& stats,
                                          const KernelVariant& variant) const {
  KernelCost cost;
  int64_t total_threads =
      std::max<int64_t>(1, stats.num_blocks * stats.threads_per_block);

  // Achieved bandwidth: vectorized access streams whole cache lines;
  // scalar generic access wastes part of each transaction. Low occupancy
  // cannot keep enough loads in flight.
  double access_efficiency = variant.vector_width > 1 ? 0.85 : 0.62;
  if (variant.exact_shape) access_efficiency = 0.90;  // static unrolled
  double occupancy = std::min(
      1.0, static_cast<double>(total_threads) /
               static_cast<double>(spec_.saturation_threads));
  // A block-per-row kernel with tiny rows runs tiny blocks: most of each
  // block's bandwidth window is wasted on the tree-reduce tail. (This is
  // exactly what the warp-per-row schedule fixes for short rows.)
  if (variant.schedule == ReduceSchedule::kBlockPerRow) {
    access_efficiency *=
        std::min(1.0, static_cast<double>(stats.threads_per_block) / 128.0);
  }
  // Very small launches still get some bandwidth: floor at 6%.
  double bw_frac = std::max(0.06, access_efficiency * occupancy);
  double achieved_gbps = spec_.dram_gbps * bw_frac;
  double mem_us = stats.total_bytes() / achieved_gbps / 1e3;  // B/(GB/s)=ns

  // Compute: index arithmetic shares the ALUs with the payload flops.
  double effective_flops =
      static_cast<double>(stats.flops) + 0.5 * stats.index_ops;
  double compute_eff = variant.broadcast_free ? 0.55 : 0.40;
  if (variant.exact_shape) compute_eff = 0.65;  // constants folded into code
  if (variant.schedule == ReduceSchedule::kBlockPerRow) {
    compute_eff *= 0.8;  // block-wide tree reduce + syncs
  }
  double achieved_tflops = spec_.fp32_tflops * compute_eff;
  double compute_us = effective_flops / achieved_tflops / 1e6;

  cost.memory_bound = mem_us >= compute_us;
  cost.utilization = bw_frac;
  cost.body_us = std::max(mem_us, compute_us);
  cost.time_us = cost.body_us + spec_.kernel_launch_us;
  return cost;
}

KernelCost DeviceModel::EstimateLibrary(const LibraryCallStats& stats,
                                        double efficiency) const {
  KernelCost cost;
  double compute_us =
      stats.flops / (spec_.fp32_tflops * efficiency) / 1e6;
  double mem_us =
      (stats.bytes_read + stats.bytes_written) / (spec_.dram_gbps * 0.8) /
      1e3;
  cost.memory_bound = mem_us >= compute_us;
  cost.body_us = std::max(mem_us, compute_us);
  cost.time_us = cost.body_us + spec_.kernel_launch_us;
  cost.utilization = 0.8;
  return cost;
}

}  // namespace disc
