// Analytic GPU device model (the A10/T4 substitution — see DESIGN.md §2).
//
// Every engine in the repo (DISC and all baselines) is charged by this one
// model, so relative results reflect the mechanisms under study — kernel
// launch counts, global-memory traffic, padding waste, recompilation — not
// hand-tuned constants per system. The model is a roofline with launch
// latency and a wave/occupancy correction:
//
//   t = launch + max(flops / achieved_flops,  bytes / achieved_bandwidth)
//
// achieved_* depend on the kernel's launch geometry (too few threads cannot
// saturate DRAM) and on the variant (vectorized access streams better;
// scalar strided access wastes transactions).
#ifndef DISC_SIM_DEVICE_H_
#define DISC_SIM_DEVICE_H_

#include <string>

#include "kernel/kernel.h"
#include "kernel/library.h"

namespace disc {

/// Hardware parameters of a simulated accelerator.
struct DeviceSpec {
  std::string name;
  int sm_count = 40;
  double fp32_tflops = 8.1;     // peak FP32
  double dram_gbps = 320.0;     // peak DRAM bandwidth
  double kernel_launch_us = 4.0;  // host->device launch + driver latency
  int max_threads_per_sm = 1024;
  /// Threads needed in flight to saturate DRAM.
  int64_t saturation_threads = 32 * 1024;

  /// NVIDIA A10 (GA102): 72 SMs, 31.2 TF FP32, 600 GB/s GDDR6.
  static DeviceSpec A10();
  /// NVIDIA T4 (TU104): 40 SMs, 8.1 TF FP32, 320 GB/s GDDR6.
  static DeviceSpec T4();
  /// Server-class x86 CPU (the paper's system also targets CPU backends):
  /// far lower peak but near-zero dispatch latency — launch-bound workloads
  /// shift character completely.
  static DeviceSpec XeonCpu();
};

/// Result of one kernel-cost estimation.
struct KernelCost {
  double time_us = 0.0;        // includes launch overhead
  double body_us = 0.0;        // excludes launch overhead
  bool memory_bound = false;
  double utilization = 1.0;    // fraction of DRAM bandwidth achievable
};

/// \brief Converts kernel footprints into simulated time on one device.
class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }
  double launch_overhead_us() const { return spec_.kernel_launch_us; }

  /// \brief Cost of one generated (fused) kernel launch.
  KernelCost EstimateGenerated(const KernelStats& stats,
                               const KernelVariant& variant) const;

  /// \brief Cost of one vendor library call (GEMM/Conv). `efficiency`
  /// scales peak FLOPs (cuBLAS-class kernels reach ~0.85; a tuned
  /// TVM kernel ~0.9; a naive one less).
  KernelCost EstimateLibrary(const LibraryCallStats& stats,
                             double efficiency = 0.85) const;

 private:
  DeviceSpec spec_;
};

}  // namespace disc

#endif  // DISC_SIM_DEVICE_H_
