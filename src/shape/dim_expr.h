// Symbolic dimension expressions — the paper's cross-level shape
// representation.
//
// A DimExpr describes one tensor dimension as a function of *symbolic
// dimensions* (unknown-until-runtime sizes, e.g. batch or sequence length):
//
//   d = 4            a static dim
//   d = s0           a dynamic dim
//   d = s0 * s1      flattened [batch, seq] from a reshape
//   d = s0 + 128     a concat of a dynamic and a static part
//   d = ceildiv(s0, 2)  a strided slice
//
// The same expressions flow through every level of the stack: graph-level
// shape analysis derives them, the fusion planner compares them, compiled
// kernels keep them as launch-dimension/extent formulas, and the runtime
// evaluates them against concrete input sizes ("host-side shape
// computation"). Expressions are immutable, hash-consed-by-value and kept in
// a normal form so structural equality is meaningful:
//   * Add/Mul are n-ary, flattened, constant-folded and sorted;
//   * Add combines like terms (s + s -> 2*s);
//   * Mul keeps a single leading constant coefficient;
//   * FloorDiv/CeilDiv/Mod fold constants and drop /1.
#ifndef DISC_SHAPE_DIM_EXPR_H_
#define DISC_SHAPE_DIM_EXPR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace disc {

/// Identifier of a symbolic dimension (allocated by SymbolicDimManager).
using SymbolId = int32_t;

enum class DimExprKind : uint8_t {
  kConst,
  kSymbol,
  kAdd,      // n-ary sum
  kMul,      // n-ary product, operand 0 may be the constant coefficient
  kFloorDiv, // binary
  kCeilDiv,  // binary
  kMod,      // binary
};

class DimExpr;

namespace internal {
struct DimExprNode {
  DimExprKind kind;
  int64_t const_value = 0;  // kConst
  SymbolId symbol = -1;     // kSymbol
  std::vector<DimExpr> operands;
  std::string key;  // canonical rendering, computed at construction
};
}  // namespace internal

/// \brief An immutable symbolic dimension expression (value semantics;
/// cheap shared_ptr copies).
class DimExpr {
 public:
  /// Default: the invalid/empty expression; valid() is false.
  DimExpr() = default;

  static DimExpr Const(int64_t value);
  static DimExpr Symbol(SymbolId id);
  static DimExpr Add(const DimExpr& a, const DimExpr& b);
  static DimExpr Add(std::vector<DimExpr> terms);
  static DimExpr Mul(const DimExpr& a, const DimExpr& b);
  static DimExpr Mul(std::vector<DimExpr> factors);
  static DimExpr FloorDiv(const DimExpr& a, const DimExpr& b);
  static DimExpr CeilDiv(const DimExpr& a, const DimExpr& b);
  static DimExpr Mod(const DimExpr& a, const DimExpr& b);

  bool valid() const { return node_ != nullptr; }
  DimExprKind kind() const { return node_->kind; }

  bool IsConst() const { return valid() && node_->kind == DimExprKind::kConst; }
  /// \brief True when this is exactly the constant `value`.
  bool IsConstValue(int64_t value) const {
    return IsConst() && node_->const_value == value;
  }
  int64_t const_value() const { return node_->const_value; }
  bool IsSymbol() const {
    return valid() && node_->kind == DimExprKind::kSymbol;
  }
  SymbolId symbol() const { return node_->symbol; }
  const std::vector<DimExpr>& operands() const { return node_->operands; }

  /// \brief Structural equality on the normal form.
  bool Equals(const DimExpr& other) const;
  bool operator==(const DimExpr& other) const { return Equals(other); }

  /// \brief Canonical rendering, e.g. "(s0 * s1 + 128)"; also the
  /// comparison key.
  const std::string& ToString() const { return node_->key; }

  /// \brief All symbols referenced, deduplicated.
  std::vector<SymbolId> CollectSymbols() const;

  /// \brief Evaluates against concrete symbol values; error if a referenced
  /// symbol has no binding or a divisor evaluates to zero.
  Result<int64_t> Evaluate(
      const std::unordered_map<SymbolId, int64_t>& bindings) const;

  /// \brief Replaces symbols per `subst` (absent symbols unchanged) and
  /// renormalizes.
  DimExpr Substitute(
      const std::unordered_map<SymbolId, DimExpr>& subst) const;

  /// \brief If the expression is provably divisible by `divisor` given
  /// per-symbol divisibility facts, returns true. Conservative.
  bool ProvablyDivisibleBy(
      int64_t divisor,
      const std::unordered_map<SymbolId, int64_t>& symbol_divisors) const;

  size_t Hash() const { return std::hash<std::string>()(node_->key); }

 private:
  explicit DimExpr(std::shared_ptr<const internal::DimExprNode> node)
      : node_(std::move(node)) {}
  static DimExpr Make(internal::DimExprNode node);

  std::shared_ptr<const internal::DimExprNode> node_;
};

/// A full symbolic shape: one DimExpr per dimension.
using SymShape = std::vector<DimExpr>;

/// \brief Renders e.g. "[s0, 128, (s1 * 4)]".
std::string SymShapeToString(const SymShape& shape);

/// \brief Product of all dims (empty -> 1), normalized.
DimExpr SymShapeNumElements(const SymShape& shape);

}  // namespace disc

#endif  // DISC_SHAPE_DIM_EXPR_H_
