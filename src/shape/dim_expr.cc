#include "shape/dim_expr.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {

namespace {

std::string RenderKey(const internal::DimExprNode& node) {
  switch (node.kind) {
    case DimExprKind::kConst:
      return std::to_string(node.const_value);
    case DimExprKind::kSymbol:
      return "s" + std::to_string(node.symbol);
    case DimExprKind::kAdd:
      return "(" +
             JoinMapped(node.operands, " + ",
                        [](const DimExpr& e) { return e.ToString(); }) +
             ")";
    case DimExprKind::kMul:
      return "(" +
             JoinMapped(node.operands, " * ",
                        [](const DimExpr& e) { return e.ToString(); }) +
             ")";
    case DimExprKind::kFloorDiv:
      return "floordiv(" + node.operands[0].ToString() + ", " +
             node.operands[1].ToString() + ")";
    case DimExprKind::kCeilDiv:
      return "ceildiv(" + node.operands[0].ToString() + ", " +
             node.operands[1].ToString() + ")";
    case DimExprKind::kMod:
      return "mod(" + node.operands[0].ToString() + ", " +
             node.operands[1].ToString() + ")";
  }
  return "?";
}

bool KeyLess(const DimExpr& a, const DimExpr& b) {
  return a.ToString() < b.ToString();
}

}  // namespace

DimExpr DimExpr::Make(internal::DimExprNode node) {
  node.key = RenderKey(node);
  return DimExpr(
      std::make_shared<const internal::DimExprNode>(std::move(node)));
}

DimExpr DimExpr::Const(int64_t value) {
  internal::DimExprNode node;
  node.kind = DimExprKind::kConst;
  node.const_value = value;
  return Make(std::move(node));
}

DimExpr DimExpr::Symbol(SymbolId id) {
  DISC_CHECK_GE(id, 0);
  internal::DimExprNode node;
  node.kind = DimExprKind::kSymbol;
  node.symbol = id;
  return Make(std::move(node));
}

DimExpr DimExpr::Add(const DimExpr& a, const DimExpr& b) {
  return Add(std::vector<DimExpr>{a, b});
}

DimExpr DimExpr::Add(std::vector<DimExpr> terms) {
  // Flatten nested sums.
  std::vector<DimExpr> flat;
  for (const DimExpr& t : terms) {
    DISC_CHECK(t.valid());
    if (t.kind() == DimExprKind::kAdd) {
      flat.insert(flat.end(), t.operands().begin(), t.operands().end());
    } else {
      flat.push_back(t);
    }
  }
  // Split each term into (coefficient, monomial-key, monomial-expr) and
  // combine like terms. The monomial of a kMul with a constant head is the
  // Mul of the remaining factors.
  int64_t const_sum = 0;
  struct Bucket {
    int64_t coeff = 0;
    DimExpr monomial;
  };
  std::map<std::string, Bucket> buckets;
  for (const DimExpr& t : flat) {
    if (t.IsConst()) {
      const_sum += t.const_value();
      continue;
    }
    int64_t coeff = 1;
    DimExpr monomial = t;
    if (t.kind() == DimExprKind::kMul && t.operands()[0].IsConst()) {
      coeff = t.operands()[0].const_value();
      std::vector<DimExpr> rest(t.operands().begin() + 1, t.operands().end());
      monomial = rest.size() == 1 ? rest[0] : Mul(std::move(rest));
    }
    Bucket& b = buckets[monomial.ToString()];
    b.coeff += coeff;
    b.monomial = monomial;
  }
  std::vector<DimExpr> result_terms;
  for (auto& [key, bucket] : buckets) {
    (void)key;
    if (bucket.coeff == 0) continue;
    if (bucket.coeff == 1) {
      result_terms.push_back(bucket.monomial);
    } else {
      result_terms.push_back(Mul(Const(bucket.coeff), bucket.monomial));
    }
  }
  std::sort(result_terms.begin(), result_terms.end(), KeyLess);
  if (const_sum != 0 || result_terms.empty()) {
    result_terms.push_back(Const(const_sum));
  }
  if (result_terms.size() == 1) return result_terms[0];
  internal::DimExprNode node;
  node.kind = DimExprKind::kAdd;
  node.operands = std::move(result_terms);
  return Make(std::move(node));
}

DimExpr DimExpr::Mul(const DimExpr& a, const DimExpr& b) {
  return Mul(std::vector<DimExpr>{a, b});
}

DimExpr DimExpr::Mul(std::vector<DimExpr> factors) {
  std::vector<DimExpr> flat;
  for (const DimExpr& f : factors) {
    DISC_CHECK(f.valid());
    if (f.kind() == DimExprKind::kMul) {
      flat.insert(flat.end(), f.operands().begin(), f.operands().end());
    } else {
      flat.push_back(f);
    }
  }
  int64_t coeff = 1;
  std::vector<DimExpr> rest;
  for (const DimExpr& f : flat) {
    if (f.IsConst()) {
      coeff *= f.const_value();
    } else {
      rest.push_back(f);
    }
  }
  if (coeff == 0) return Const(0);
  std::sort(rest.begin(), rest.end(), KeyLess);
  if (rest.empty()) return Const(coeff);
  std::vector<DimExpr> result;
  if (coeff != 1) result.push_back(Const(coeff));
  result.insert(result.end(), rest.begin(), rest.end());
  if (result.size() == 1) return result[0];
  internal::DimExprNode node;
  node.kind = DimExprKind::kMul;
  node.operands = std::move(result);
  return Make(std::move(node));
}

DimExpr DimExpr::FloorDiv(const DimExpr& a, const DimExpr& b) {
  DISC_CHECK(a.valid() && b.valid());
  if (b.IsConstValue(1)) return a;
  if (a.IsConst() && b.IsConst() && b.const_value() != 0) {
    return Const(a.const_value() / b.const_value());
  }
  if (a.Equals(b)) return Const(1);
  // (c * x) / c -> x when the coefficient divides exactly.
  if (b.IsConst() && b.const_value() != 0 &&
      a.kind() == DimExprKind::kMul && a.operands()[0].IsConst() &&
      a.operands()[0].const_value() % b.const_value() == 0) {
    std::vector<DimExpr> rest(a.operands().begin() + 1, a.operands().end());
    int64_t c = a.operands()[0].const_value() / b.const_value();
    rest.insert(rest.begin(), Const(c));
    return Mul(std::move(rest));
  }
  internal::DimExprNode node;
  node.kind = DimExprKind::kFloorDiv;
  node.operands = {a, b};
  return Make(std::move(node));
}

DimExpr DimExpr::CeilDiv(const DimExpr& a, const DimExpr& b) {
  DISC_CHECK(a.valid() && b.valid());
  if (b.IsConstValue(1)) return a;
  if (a.IsConst() && b.IsConst() && b.const_value() != 0) {
    return Const(disc::CeilDiv(a.const_value(), b.const_value()));
  }
  if (a.Equals(b)) return Const(1);
  internal::DimExprNode node;
  node.kind = DimExprKind::kCeilDiv;
  node.operands = {a, b};
  return Make(std::move(node));
}

DimExpr DimExpr::Mod(const DimExpr& a, const DimExpr& b) {
  DISC_CHECK(a.valid() && b.valid());
  if (b.IsConstValue(1)) return Const(0);
  if (a.IsConst() && b.IsConst() && b.const_value() != 0) {
    return Const(a.const_value() % b.const_value());
  }
  if (a.Equals(b)) return Const(0);
  internal::DimExprNode node;
  node.kind = DimExprKind::kMod;
  node.operands = {a, b};
  return Make(std::move(node));
}

bool DimExpr::Equals(const DimExpr& other) const {
  if (node_ == other.node_) return true;
  if (!valid() || !other.valid()) return false;
  return node_->key == other.node_->key;
}

std::vector<SymbolId> DimExpr::CollectSymbols() const {
  std::vector<SymbolId> result;
  if (!valid()) return result;
  if (IsSymbol()) {
    result.push_back(symbol());
    return result;
  }
  for (const DimExpr& op : node_->operands) {
    for (SymbolId s : op.CollectSymbols()) {
      if (std::find(result.begin(), result.end(), s) == result.end()) {
        result.push_back(s);
      }
    }
  }
  return result;
}

Result<int64_t> DimExpr::Evaluate(
    const std::unordered_map<SymbolId, int64_t>& bindings) const {
  DISC_CHECK(valid());
  switch (node_->kind) {
    case DimExprKind::kConst:
      return node_->const_value;
    case DimExprKind::kSymbol: {
      auto it = bindings.find(node_->symbol);
      if (it == bindings.end()) {
        return Status::NotFound("unbound symbol s" +
                                std::to_string(node_->symbol));
      }
      return it->second;
    }
    case DimExprKind::kAdd: {
      int64_t sum = 0;
      for (const DimExpr& op : node_->operands) {
        DISC_ASSIGN_OR_RETURN(int64_t v, op.Evaluate(bindings));
        sum += v;
      }
      return sum;
    }
    case DimExprKind::kMul: {
      int64_t product = 1;
      for (const DimExpr& op : node_->operands) {
        DISC_ASSIGN_OR_RETURN(int64_t v, op.Evaluate(bindings));
        product *= v;
      }
      return product;
    }
    case DimExprKind::kFloorDiv:
    case DimExprKind::kCeilDiv:
    case DimExprKind::kMod: {
      DISC_ASSIGN_OR_RETURN(int64_t a, node_->operands[0].Evaluate(bindings));
      DISC_ASSIGN_OR_RETURN(int64_t b, node_->operands[1].Evaluate(bindings));
      if (b == 0) return Status::InvalidArgument("division by zero");
      if (node_->kind == DimExprKind::kFloorDiv) return a / b;
      if (node_->kind == DimExprKind::kCeilDiv) return disc::CeilDiv(a, b);
      return a % b;
    }
  }
  return Status::Internal("invalid DimExpr");
}

DimExpr DimExpr::Substitute(
    const std::unordered_map<SymbolId, DimExpr>& subst) const {
  DISC_CHECK(valid());
  switch (node_->kind) {
    case DimExprKind::kConst:
      return *this;
    case DimExprKind::kSymbol: {
      auto it = subst.find(node_->symbol);
      return it == subst.end() ? *this : it->second;
    }
    case DimExprKind::kAdd: {
      std::vector<DimExpr> terms;
      for (const DimExpr& op : node_->operands) {
        terms.push_back(op.Substitute(subst));
      }
      return Add(std::move(terms));
    }
    case DimExprKind::kMul: {
      std::vector<DimExpr> factors;
      for (const DimExpr& op : node_->operands) {
        factors.push_back(op.Substitute(subst));
      }
      return Mul(std::move(factors));
    }
    case DimExprKind::kFloorDiv:
      return FloorDiv(node_->operands[0].Substitute(subst),
                      node_->operands[1].Substitute(subst));
    case DimExprKind::kCeilDiv:
      return CeilDiv(node_->operands[0].Substitute(subst),
                     node_->operands[1].Substitute(subst));
    case DimExprKind::kMod:
      return Mod(node_->operands[0].Substitute(subst),
                 node_->operands[1].Substitute(subst));
  }
  return *this;
}

bool DimExpr::ProvablyDivisibleBy(
    int64_t divisor,
    const std::unordered_map<SymbolId, int64_t>& symbol_divisors) const {
  DISC_CHECK(valid());
  DISC_CHECK_GT(divisor, 0);
  if (divisor == 1) return true;
  switch (node_->kind) {
    case DimExprKind::kConst:
      return node_->const_value % divisor == 0;
    case DimExprKind::kSymbol: {
      auto it = symbol_divisors.find(node_->symbol);
      return it != symbol_divisors.end() && it->second % divisor == 0;
    }
    case DimExprKind::kAdd: {
      for (const DimExpr& op : node_->operands) {
        if (!op.ProvablyDivisibleBy(divisor, symbol_divisors)) return false;
      }
      return true;
    }
    case DimExprKind::kMul: {
      // Enough if the product of per-factor provable divisors covers it.
      int64_t remaining = divisor;
      for (const DimExpr& op : node_->operands) {
        if (remaining == 1) break;
        if (op.IsConst()) {
          remaining /= Gcd(remaining, op.const_value());
        } else if (op.IsSymbol()) {
          auto it = symbol_divisors.find(op.symbol());
          if (it != symbol_divisors.end()) {
            remaining /= Gcd(remaining, it->second);
          }
        }
      }
      return remaining == 1;
    }
    default:
      return false;
  }
}

std::string SymShapeToString(const SymShape& shape) {
  return "[" +
         JoinMapped(shape, ", ",
                    [](const DimExpr& e) { return e.ToString(); }) +
         "]";
}

DimExpr SymShapeNumElements(const SymShape& shape) {
  if (shape.empty()) return DimExpr::Const(1);
  std::vector<DimExpr> factors(shape.begin(), shape.end());
  return DimExpr::Mul(std::move(factors));
}

}  // namespace disc
