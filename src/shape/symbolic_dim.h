// SymbolicDimManager: the global store of symbolic dimensions and the
// constraints the compiler learns about them.
//
// This is the paper's "systematic abstraction and excavation of shape
// information": instead of concrete dim values, the compiler accumulates
//   * equality   (union-find over symbols; s2 == s5)
//   * constants  (s3 == 768, discovered when a symbol meets a static dim)
//   * divisibility (s0 % 4 == 0 — e.g. user hint or padded allocator)
//   * ranges     (1 <= s1 <= 512 — bucket hints)
//   * likely values (runtime feedback used to choose kernel variants)
//   * product equality (reshape facts: [s0, s1, 768] ~ [s0*s1, 768])
// and answers the relational queries fusion and codegen actually need.
#ifndef DISC_SHAPE_SYMBOLIC_DIM_H_
#define DISC_SHAPE_SYMBOLIC_DIM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "shape/dim_expr.h"
#include "support/status.h"

namespace disc {

/// Per-equivalence-class knowledge about a symbolic dimension.
struct SymbolInfo {
  std::string name;                  // debug name, e.g. "batch"
  std::optional<int64_t> value;      // known constant, if proven
  int64_t divisor = 1;               // dim % divisor == 0 is guaranteed
  int64_t lower_bound = 1;           // dims are at least 1 by default
  int64_t upper_bound = INT64_MAX;
  std::vector<int64_t> likely_values;  // runtime feedback / user hints
};

/// \brief Allocates symbols, merges equal ones, stores constraints and
/// answers symbolic queries. One instance lives per compiled graph and is
/// shared by every compilation level (the "cross-level" property).
class SymbolicDimManager {
 public:
  SymbolicDimManager() = default;

  /// \brief Allocates a fresh symbolic dimension.
  SymbolId NewSymbol(const std::string& name_hint = "");

  int64_t num_symbols() const { return static_cast<int64_t>(parent_.size()); }

  /// \brief Canonical representative of `id`'s equivalence class.
  SymbolId Find(SymbolId id) const;

  /// \brief Records that two symbols always hold the same value.
  /// Fails if their known constants conflict.
  Status MergeSymbols(SymbolId a, SymbolId b);

  /// \brief Records a known constant value; fails on conflict.
  Status SetValue(SymbolId id, int64_t value);
  std::optional<int64_t> GetValue(SymbolId id) const;

  /// \brief Records that the dim is always a multiple of `divisor`.
  void AddDivisibility(SymbolId id, int64_t divisor);
  int64_t GetDivisor(SymbolId id) const;

  /// \brief Narrows the value range (intersection with existing).
  Status SetRange(SymbolId id, int64_t lower, int64_t upper);
  std::pair<int64_t, int64_t> GetRange(SymbolId id) const;

  /// \brief Appends a likely runtime value (kept unique, most recent last).
  void AddLikelyValue(SymbolId id, int64_t value);
  const std::vector<int64_t>& GetLikelyValues(SymbolId id) const;

  const SymbolInfo& Info(SymbolId id) const;

  /// \brief Records that two dim-expression products are always equal
  /// (a reshape fact), after canonicalization.
  void AddProductEqual(const SymShape& lhs, const SymShape& rhs);

  // --- queries ------------------------------------------------------------

  /// \brief Rewrites an expression replacing every symbol by its class
  /// representative (or constant value when known), renormalizing.
  DimExpr Canonicalize(const DimExpr& expr) const;
  SymShape Canonicalize(const SymShape& shape) const;

  /// \brief True when the two dims are provably always equal.
  bool IsDimEqual(const DimExpr& a, const DimExpr& b) const;

  /// \brief True when the two shapes are provably elementwise equal
  /// (same rank, all dims equal).
  bool IsShapeEqual(const SymShape& a, const SymShape& b) const;

  /// \brief True when the two shapes provably cover the same number of
  /// elements (uses product-equality facts with cancellation).
  bool IsSameNumElements(const SymShape& a, const SymShape& b) const;

  /// \brief True when the dim is provably a multiple of `divisor`.
  bool IsDivisibleBy(const DimExpr& expr, int64_t divisor) const;

  /// \brief Upper bound of the expression if one can be derived (simple
  /// interval arithmetic over +, * and constants); nullopt otherwise.
  std::optional<int64_t> UpperBound(const DimExpr& expr) const;

  /// \brief Lower bound of the expression if one can be derived. Mirrors
  /// UpperBound; symbols fall back to their recorded lower bound (>= 1 by
  /// default), so this usually succeeds even when UpperBound cannot.
  /// Handles the negative constant coefficients that subtraction
  /// (`Add(b, Mul(-1, a))`) introduces by flipping to UpperBound.
  std::optional<int64_t> LowerBound(const DimExpr& expr) const;

  /// \brief True when `a <= b` holds for EVERY runtime binding consistent
  /// with the recorded facts. Proven either structurally (equal canonical
  /// forms; ceildiv/floordiv monotonicity in the numerator) or numerically
  /// via LowerBound(b - a) >= 0. Conservative: `false` means "not
  /// provable", not "a > b" — callers must treat it as incomparable.
  bool ProvablyLe(const DimExpr& a, const DimExpr& b) const;

  /// \brief Statistics for reporting (experiment T3).
  struct Stats {
    int64_t num_symbols = 0;
    int64_t num_classes = 0;          // after unification
    int64_t num_known_constants = 0;  // classes with proven value
    int64_t num_product_facts = 0;
  };
  Stats GetStats() const;

  std::string ToString() const;

 private:
  // Decomposes a product expression into constant coefficient + symbol
  // exponent map + opaque (non-polynomial) factor keys.
  struct ProductForm {
    int64_t coeff = 1;
    std::map<std::string, int> factors;  // canonical factor key -> exponent
    bool polynomial = true;              // false if Add/div terms inside
  };
  ProductForm DecomposeProduct(const SymShape& dims) const;

  mutable std::vector<SymbolId> parent_;  // union-find (path halving in Find)
  std::vector<SymbolInfo> info_;          // indexed by root at access time
  std::vector<std::pair<SymShape, SymShape>> product_facts_;
};

}  // namespace disc

#endif  // DISC_SHAPE_SYMBOLIC_DIM_H_
