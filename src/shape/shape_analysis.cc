#include "shape/shape_analysis.h"

#include <algorithm>

#include "support/json.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace disc {

namespace {

DimExpr Sub(const DimExpr& a, const DimExpr& b) {
  return DimExpr::Add(a, DimExpr::Mul(DimExpr::Const(-1), b));
}

}  // namespace

std::string ConstraintRecord::ToString() const {
  std::string from = node_id >= 0
                         ? "%" + std::to_string(node_id) + " (" + source + ")"
                         : source;
  return kind + ": " + detail + "  <- " + from;
}

void ShapeAnalysis::Excavated(const char* kind, std::string detail) {
  ConstraintRecord record;
  record.kind = kind;
  record.detail = std::move(detail);
  if (current_node_ != nullptr) {
    record.node_id = current_node_->output(0)->id();
    record.source = OpName(current_node_->kind());
  } else {
    record.source = "input";
  }
  constraint_log_.push_back(std::move(record));
}

std::string ShapeAnalysis::ConstraintsJson() const {
  JsonValue::Array records;
  for (const ConstraintRecord& record : constraint_log_) {
    JsonValue::Object entry;
    entry.emplace("kind", JsonValue(record.kind));
    entry.emplace("constraint", JsonValue(record.detail));
    entry.emplace("node", JsonValue(static_cast<int64_t>(record.node_id)));
    entry.emplace("source", JsonValue(record.source));
    records.emplace_back(std::move(entry));
  }
  JsonValue::Object doc;
  doc.emplace("constraints", JsonValue(std::move(records)));
  SymbolicDimManager::Stats stats = manager_.GetStats();
  JsonValue::Object stats_obj;
  stats_obj.emplace("num_symbols", JsonValue(stats.num_symbols));
  stats_obj.emplace("num_classes", JsonValue(stats.num_classes));
  stats_obj.emplace("num_known_constants", JsonValue(stats.num_known_constants));
  stats_obj.emplace("num_product_facts", JsonValue(stats.num_product_facts));
  doc.emplace("stats", JsonValue(std::move(stats_obj)));
  return JsonValue(std::move(doc)).SerializePretty();
}

ShapeAnalysis::ShapeAnalysis(
    const Graph* graph, std::vector<std::vector<std::string>> input_dim_labels)
    : graph_(graph), input_dim_labels_(std::move(input_dim_labels)) {}

void ShapeAnalysis::SetShape(const Value* v, SymShape shape) {
  shapes_[v] = std::move(shape);
}

void ShapeAnalysis::SetContent(const Value* v, std::vector<DimExpr> content) {
  contents_[v] = std::move(content);
}

const SymShape& ShapeAnalysis::GetShape(const Value* v) const {
  auto it = shapes_.find(v);
  DISC_CHECK(it != shapes_.end())
      << "no symbolic shape for %" << v->id() << " (did Run() succeed?)";
  return it->second;
}

const std::vector<DimExpr>* ShapeAnalysis::GetContent(const Value* v) const {
  auto it = contents_.find(v);
  return it == contents_.end() ? nullptr : &it->second;
}

Status ShapeAnalysis::Run() {
  if (ran_) return Status::OK();

  // Seed graph inputs: static dims become constants; dynamic dims become
  // labelled (shared) or anonymous symbols.
  std::unordered_map<std::string, SymbolId> label_to_symbol;
  const auto& inputs = graph_->inputs();
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Value* input = inputs[i];
    SymShape shape;
    for (int64_t d = 0; d < input->rank(); ++d) {
      int64_t dim = input->type().dims[d];
      if (dim != kDynamicDim) {
        shape.push_back(DimExpr::Const(dim));
        continue;
      }
      std::string label;
      if (i < input_dim_labels_.size() &&
          d < static_cast<int64_t>(input_dim_labels_[i].size())) {
        label = input_dim_labels_[i][d];
      }
      if (!label.empty()) {
        auto [it, inserted] = label_to_symbol.try_emplace(label, -1);
        if (inserted) it->second = manager_.NewSymbol(label);
        shape.push_back(DimExpr::Symbol(it->second));
      } else {
        shape.push_back(DimExpr::Symbol(
            manager_.NewSymbol(input->name() + ".d" + std::to_string(d))));
      }
    }
    SetShape(input, std::move(shape));
  }

  for (const Node* node : graph_->TopologicalOrder()) {
    current_node_ = node;
    Status status = ProcessNode(node);
    current_node_ = nullptr;
    DISC_RETURN_IF_ERROR(status);
  }
  ran_ = true;
  return Status::OK();
}

Result<DimExpr> ShapeAnalysis::CombineBroadcastDims(const DimExpr& a,
                                                    const DimExpr& b) {
  DimExpr ca = manager_.Canonicalize(a);
  DimExpr cb = manager_.Canonicalize(b);
  if (ca.Equals(cb)) return ca;
  if (ca.IsConstValue(1)) return cb;
  if (cb.IsConstValue(1)) return ca;
  if (ca.IsConst() && cb.IsConst()) {
    if (ca.const_value() != cb.const_value()) {
      return Status::InvalidArgument("broadcast mismatch: " + ca.ToString() +
                                     " vs " + cb.ToString());
    }
    return ca;
  }
  // Excavation: non-1 dims of an elementwise op must agree at runtime.
  if (ca.IsSymbol() && cb.IsSymbol()) {
    DISC_RETURN_IF_ERROR(manager_.MergeSymbols(ca.symbol(), cb.symbol()));
    Excavated("merge-symbols", ca.ToString() + " == " + cb.ToString());
    return manager_.Canonicalize(ca);
  }
  if (ca.IsSymbol() && cb.IsConst()) {
    DISC_RETURN_IF_ERROR(manager_.SetValue(ca.symbol(), cb.const_value()));
    Excavated("set-value", ca.ToString() + " == " + cb.ToString());
    return cb;
  }
  if (cb.IsSymbol() && ca.IsConst()) {
    DISC_RETURN_IF_ERROR(manager_.SetValue(cb.symbol(), ca.const_value()));
    Excavated("set-value", cb.ToString() + " == " + ca.ToString());
    return ca;
  }
  // Compound expressions we cannot unify; keep one side (they must be equal
  // at runtime for the op to be valid).
  return ca;
}

Status ShapeAnalysis::InferElementwise(const Node* node) {
  // numpy-style right alignment across all operands.
  int64_t rank = 0;
  for (const Value* operand : node->operands()) {
    rank = std::max(rank, operand->rank());
  }
  SymShape out(rank, DimExpr::Const(1));
  for (const Value* operand : node->operands()) {
    const SymShape& in = GetShape(operand);
    int64_t offset = rank - static_cast<int64_t>(in.size());
    for (size_t d = 0; d < in.size(); ++d) {
      DISC_ASSIGN_OR_RETURN(out[offset + d],
                            CombineBroadcastDims(out[offset + d], in[d]));
    }
  }
  SetShape(node->output(0), std::move(out));

  // Content propagation for shape arithmetic on tracked i64 tensors.
  if (node->output(0)->dtype() == DType::kI64 ||
      node->kind() == OpKind::kCast) {
    auto content_of = [this](const Value* v) { return GetContent(v); };
    switch (node->kind()) {
      case OpKind::kCast: {
        if (const auto* c = content_of(node->operand(0))) {
          SetContent(node->output(0), *c);
        }
        break;
      }
      case OpKind::kAdd:
      case OpKind::kMul:
      case OpKind::kDiv: {
        const auto* ca = content_of(node->operand(0));
        const auto* cb = content_of(node->operand(1));
        if (ca && cb &&
            (ca->size() == cb->size() || ca->size() == 1 || cb->size() == 1)) {
          size_t n = std::max(ca->size(), cb->size());
          std::vector<DimExpr> out_content;
          for (size_t i = 0; i < n; ++i) {
            const DimExpr& x = (*ca)[ca->size() == 1 ? 0 : i];
            const DimExpr& y = (*cb)[cb->size() == 1 ? 0 : i];
            if (node->kind() == OpKind::kAdd) {
              out_content.push_back(DimExpr::Add(x, y));
            } else if (node->kind() == OpKind::kMul) {
              out_content.push_back(DimExpr::Mul(x, y));
            } else {
              out_content.push_back(DimExpr::FloorDiv(x, y));
            }
          }
          SetContent(node->output(0), std::move(out_content));
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

SymShape ShapeAnalysis::ResolveTarget(const Node* node,
                                      int64_t attr_rank_fallback) {
  // Priority 1: static attribute.
  if (node->HasAttr("new_shape")) {
    const auto& dims = node->GetIntListAttr("new_shape");
    SymShape target;
    for (int64_t d : dims) {
      target.push_back(d == kDynamicDim ? DimExpr() : DimExpr::Const(d));
    }
    return target;
  }
  // Priority 2: tracked contents of the shape operand.
  if (node->num_operands() >= 2) {
    if (const auto* content = GetContent(node->operand(1))) {
      return *content;
    }
    // Rank is the static length of the shape operand.
    int64_t rank = node->operand(1)->type().dims[0];
    DISC_CHECK_NE(rank, kDynamicDim);
    return SymShape(rank, DimExpr());
  }
  return SymShape(attr_rank_fallback, DimExpr());
}

Status ShapeAnalysis::ProcessNode(const Node* node) {
  const OpInfo& info = GetOpInfo(node->kind());
  const Value* out = node->output(0);

  switch (node->kind()) {
    case OpKind::kConstant: {
      const Tensor& t = node->GetTensorAttr("value");
      SymShape shape;
      for (int64_t d : t.dims()) shape.push_back(DimExpr::Const(d));
      SetShape(out, std::move(shape));
      if (t.dtype() == DType::kI64 && t.rank() <= 1) {
        std::vector<DimExpr> content;
        for (int64_t i = 0; i < t.num_elements(); ++i) {
          content.push_back(DimExpr::Const(t.i64_data()[i]));
        }
        SetContent(out, std::move(content));
      }
      return Status::OK();
    }

    case OpKind::kIota: {
      if (node->HasAttr("dims")) {
        SymShape shape;
        for (int64_t d : node->GetIntListAttr("dims")) {
          shape.push_back(DimExpr::Const(d));
        }
        SetShape(out, std::move(shape));
      } else {
        SymShape target = ResolveTarget(node, out->rank());
        for (size_t i = 0; i < target.size(); ++i) {
          if (!target[i].valid()) {
            target[i] = DimExpr::Symbol(
                manager_.NewSymbol("iota.d" + std::to_string(i)));
          }
        }
        SetShape(out, std::move(target));
      }
      return Status::OK();
    }

    case OpKind::kReduceSum:
    case OpKind::kReduceMax:
    case OpKind::kReduceMin:
    case OpKind::kReduceMean: {
      const SymShape& in = GetShape(node->operand(0));
      const auto& dims = node->GetIntListAttr("dims");
      bool keep = node->GetIntAttr("keep_dims", 0) != 0;
      std::vector<bool> reduced(in.size(), false);
      for (int64_t d : dims) reduced[d] = true;
      SymShape shape;
      for (size_t i = 0; i < in.size(); ++i) {
        if (reduced[i]) {
          if (keep) shape.push_back(DimExpr::Const(1));
        } else {
          shape.push_back(in[i]);
        }
      }
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kMatMul: {
      const SymShape& a = GetShape(node->operand(0));
      const SymShape& b = GetShape(node->operand(1));
      bool ta = node->GetIntAttr("transpose_a", 0) != 0;
      bool tb = node->GetIntAttr("transpose_b", 0) != 0;
      size_t ra = a.size();
      size_t rb = b.size();
      DimExpr m = a[ra - (ta ? 1 : 2)];
      DimExpr ka = a[ra - (ta ? 2 : 1)];
      DimExpr kb = b[rb - (tb ? 1 : 2)];
      DimExpr n = b[rb - (tb ? 2 : 1)];
      // Contraction dims must match — excavate.
      Result<DimExpr> contraction = CombineBroadcastDims(ka, kb);
      if (!contraction.ok()) return contraction.status();
      SymShape batch_a(a.begin(), a.end() - 2);
      SymShape batch_b(b.begin(), b.end() - 2);
      size_t rank = std::max(batch_a.size(), batch_b.size());
      SymShape shape(rank, DimExpr::Const(1));
      for (size_t i = 0; i < batch_a.size(); ++i) {
        size_t pos = rank - batch_a.size() + i;
        DISC_ASSIGN_OR_RETURN(shape[pos],
                              CombineBroadcastDims(shape[pos], batch_a[i]));
      }
      for (size_t i = 0; i < batch_b.size(); ++i) {
        size_t pos = rank - batch_b.size() + i;
        DISC_ASSIGN_OR_RETURN(shape[pos],
                              CombineBroadcastDims(shape[pos], batch_b[i]));
      }
      shape.push_back(m);
      shape.push_back(n);
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kConv2D: {
      const SymShape& in = GetShape(node->operand(0));
      const SymShape& filter = GetShape(node->operand(1));
      const auto& strides = node->GetIntListAttr("strides");
      const auto& padding = node->GetIntListAttr("padding");
      auto out_dim = [&](const DimExpr& in_d, const DimExpr& k, int64_t s,
                         int64_t p) {
        // floor((in + 2p - k) / s) + 1
        DimExpr numerator = DimExpr::Add(in_d, Sub(DimExpr::Const(2 * p), k));
        return DimExpr::Add(DimExpr::FloorDiv(numerator, DimExpr::Const(s)),
                            DimExpr::Const(1));
      };
      SymShape shape = {in[0], out_dim(in[1], filter[0], strides[0], padding[0]),
                        out_dim(in[2], filter[1], strides[1], padding[1]),
                        filter[3]};
      // Channel agreement: in[3] == filter[2].
      DISC_ASSIGN_OR_RETURN(DimExpr ignored,
                            CombineBroadcastDims(in[3], filter[2]));
      (void)ignored;
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kTranspose: {
      const SymShape& in = GetShape(node->operand(0));
      const auto& perm = node->GetIntListAttr("perm");
      SymShape shape(in.size());
      for (size_t i = 0; i < in.size(); ++i) shape[i] = in[perm[i]];
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kReshape: {
      const SymShape& in = GetShape(node->operand(0));
      SymShape target = ResolveTarget(node, out->rank());
      // Resolve a single unknown via symbolic division of the element count.
      int unknown = -1;
      int n_unknown = 0;
      std::vector<DimExpr> known;
      for (size_t i = 0; i < target.size(); ++i) {
        if (!target[i].valid()) {
          unknown = static_cast<int>(i);
          ++n_unknown;
        } else {
          known.push_back(target[i]);
        }
      }
      if (n_unknown == 1) {
        DimExpr numel = manager_.Canonicalize(SymShapeNumElements(in));
        DimExpr denom = manager_.Canonicalize(
            known.empty() ? DimExpr::Const(1)
                          : DimExpr::Mul(std::move(known)));
        target[unknown] = DimExpr::FloorDiv(numel, denom);
      } else if (n_unknown > 1) {
        for (size_t i = 0; i < target.size(); ++i) {
          if (!target[i].valid()) {
            target[i] = DimExpr::Symbol(
                manager_.NewSymbol("reshape.d" + std::to_string(i)));
          }
        }
      }
      // The defining reshape fact: element counts agree.
      manager_.AddProductEqual(in, target);
      Excavated("product-equal",
                SymShapeToString(in) + " ~ " + SymShapeToString(target));
      SetShape(out, target);
      // Reshaping a tracked 1-D shape tensor keeps its contents.
      if (const auto* c = GetContent(node->operand(0));
          c != nullptr && out->rank() == 1) {
        SetContent(out, *c);
      }
      return Status::OK();
    }

    case OpKind::kBroadcastTo: {
      const SymShape& in = GetShape(node->operand(0));
      SymShape target = ResolveTarget(node, out->rank());
      int64_t offset = static_cast<int64_t>(target.size()) -
                       static_cast<int64_t>(in.size());
      DISC_CHECK_GE(offset, 0);
      for (size_t i = 0; i < target.size(); ++i) {
        if (target[i].valid()) continue;
        // Unknown target entries inherit the aligned input dim when the
        // input cannot be a broadcast (non-1); otherwise a fresh symbol.
        int64_t in_idx = static_cast<int64_t>(i) - offset;
        if (in_idx >= 0 && !in[in_idx].IsConstValue(1)) {
          target[i] = in[in_idx];
        } else {
          target[i] = DimExpr::Symbol(
              manager_.NewSymbol("bcast.d" + std::to_string(i)));
        }
      }
      SetShape(out, std::move(target));
      return Status::OK();
    }

    case OpKind::kConcat: {
      int64_t axis = node->GetIntAttr("axis", 0);
      SymShape shape = GetShape(node->operand(0));
      std::vector<DimExpr> axis_terms = {shape[axis]};
      for (int i = 1; i < node->num_operands(); ++i) {
        const SymShape& in = GetShape(node->operand(i));
        for (size_t d = 0; d < shape.size(); ++d) {
          if (static_cast<int64_t>(d) == axis) {
            axis_terms.push_back(in[d]);
          } else {
            DISC_ASSIGN_OR_RETURN(shape[d],
                                  CombineBroadcastDims(shape[d], in[d]));
          }
        }
      }
      shape[axis] = DimExpr::Add(std::move(axis_terms));
      SetShape(out, shape);
      // Content: concatenating tracked 1-D i64 tensors (shape vectors).
      if (out->dtype() == DType::kI64 && out->rank() == 1 && axis == 0) {
        std::vector<DimExpr> content;
        bool all_known = true;
        for (const Value* operand : node->operands()) {
          const auto* c = GetContent(operand);
          if (c == nullptr) {
            all_known = false;
            break;
          }
          content.insert(content.end(), c->begin(), c->end());
        }
        if (all_known) SetContent(out, std::move(content));
      }
      return Status::OK();
    }

    case OpKind::kSlice: {
      const SymShape& in = GetShape(node->operand(0));
      const auto& starts = node->GetIntListAttr("starts");
      const auto& ends = node->GetIntListAttr("ends");
      const auto& steps = node->GetIntListAttr("steps");
      SymShape shape(in.size());
      for (size_t d = 0; d < in.size(); ++d) {
        DimExpr end = ends[d] == -1 ? in[d] : DimExpr::Const(ends[d]);
        if (ends[d] == -1 && starts[d] == 0 && steps[d] == 1) {
          shape[d] = in[d];  // full dim — preserves symbolic identity
          continue;
        }
        shape[d] = DimExpr::CeilDiv(Sub(end, DimExpr::Const(starts[d])),
                                    DimExpr::Const(steps[d]));
      }
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kGather: {
      const SymShape& data = GetShape(node->operand(0));
      const SymShape& indices = GetShape(node->operand(1));
      int64_t axis = node->GetIntAttr("axis", 0);
      SymShape shape;
      for (int64_t i = 0; i < axis; ++i) shape.push_back(data[i]);
      shape.insert(shape.end(), indices.begin(), indices.end());
      for (size_t i = static_cast<size_t>(axis) + 1; i < data.size(); ++i) {
        shape.push_back(data[i]);
      }
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kPad: {
      const SymShape& in = GetShape(node->operand(0));
      const auto& low = node->GetIntListAttr("pads_low");
      const auto& high = node->GetIntListAttr("pads_high");
      SymShape shape(in.size());
      for (size_t d = 0; d < in.size(); ++d) {
        shape[d] = DimExpr::Add(in[d], DimExpr::Const(low[d] + high[d]));
      }
      SetShape(out, std::move(shape));
      return Status::OK();
    }

    case OpKind::kShapeOf: {
      const SymShape& in = GetShape(node->operand(0));
      SetShape(out, {DimExpr::Const(static_cast<int64_t>(in.size()))});
      SetContent(out, in);  // the contents ARE the operand's dims
      return Status::OK();
    }

    case OpKind::kDim: {
      const SymShape& in = GetShape(node->operand(0));
      int64_t index = node->GetIntAttr("index", 0);
      SetShape(out, {});
      SetContent(out, {in[index]});
      return Status::OK();
    }

    default:
      break;
  }

  if (info.op_class == OpClass::kElementwise) {
    return InferElementwise(node);
  }
  return Status::Unimplemented(std::string("symbolic inference for ") +
                               info.name);
}

bool ShapeAnalysis::IsShapeEqual(const Value* a, const Value* b) const {
  return manager_.IsShapeEqual(GetShape(a), GetShape(b));
}

bool ShapeAnalysis::IsSameNumElements(const Value* a, const Value* b) const {
  return manager_.IsSameNumElements(GetShape(a), GetShape(b));
}

bool ShapeAnalysis::IsDimEqual(const Value* a, int64_t da, const Value* b,
                               int64_t db) const {
  return manager_.IsDimEqual(GetShape(a)[da], GetShape(b)[db]);
}

Result<SymbolBindings> ShapeAnalysis::BindInputs(
    const std::vector<std::vector<int64_t>>& input_dims) const {
  const auto& inputs = graph_->inputs();
  if (input_dims.size() != inputs.size()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu input shapes, got %zu", inputs.size(),
                  input_dims.size()));
  }
  SymbolBindings bindings;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const SymShape& shape = GetShape(inputs[i]);
    if (shape.size() != input_dims[i].size()) {
      return Status::InvalidArgument(
          StrFormat("input %zu: rank mismatch (%zu vs %zu)", i, shape.size(),
                    input_dims[i].size()));
    }
    for (size_t d = 0; d < shape.size(); ++d) {
      DimExpr expr = manager_.Canonicalize(shape[d]);
      int64_t actual = input_dims[i][d];
      if (expr.IsConst()) {
        if (expr.const_value() != actual) {
          return Status::InvalidArgument(StrFormat(
              "input %zu dim %zu: expected %lld, got %lld", i, d,
              static_cast<long long>(expr.const_value()),
              static_cast<long long>(actual)));
        }
        continue;
      }
      if (expr.IsSymbol()) {
        auto [it, inserted] = bindings.try_emplace(expr.symbol(), actual);
        if (!inserted && it->second != actual) {
          return Status::InvalidArgument(StrFormat(
              "input %zu dim %zu: symbol s%d bound to %lld but got %lld", i,
              d, expr.symbol(), static_cast<long long>(it->second),
              static_cast<long long>(actual)));
        }
        continue;
      }
      // Compound input dim expressions cannot arise from seeding.
      return Status::Internal("unexpected compound input dim " +
                              expr.ToString());
    }
  }
  return bindings;
}

Result<std::vector<int64_t>> ShapeAnalysis::EvaluateShape(
    const Value* v, const SymbolBindings& bindings) const {
  const SymShape& shape = GetShape(v);
  std::vector<int64_t> dims;
  dims.reserve(shape.size());
  for (const DimExpr& d : shape) {
    DISC_ASSIGN_OR_RETURN(int64_t value, EvaluateDim(d, bindings));
    dims.push_back(value);
  }
  return dims;
}

Result<int64_t> ShapeAnalysis::EvaluateDim(const DimExpr& expr,
                                           const SymbolBindings& bindings) const {
  return manager_.Canonicalize(expr).Evaluate(bindings);
}

}  // namespace disc
