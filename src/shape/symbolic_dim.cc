#include "shape/symbolic_dim.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {

SymbolId SymbolicDimManager::NewSymbol(const std::string& name_hint) {
  SymbolId id = static_cast<SymbolId>(parent_.size());
  parent_.push_back(id);
  SymbolInfo info;
  info.name = name_hint.empty() ? "s" + std::to_string(id) : name_hint;
  info_.push_back(std::move(info));
  return id;
}

SymbolId SymbolicDimManager::Find(SymbolId id) const {
  DISC_CHECK_GE(id, 0);
  DISC_CHECK_LT(id, static_cast<SymbolId>(parent_.size()));
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];  // path halving
    id = parent_[id];
  }
  return id;
}

Status SymbolicDimManager::MergeSymbols(SymbolId a, SymbolId b) {
  SymbolId ra = Find(a);
  SymbolId rb = Find(b);
  if (ra == rb) return Status::OK();
  SymbolInfo& ia = info_[ra];
  SymbolInfo& ib = info_[rb];
  if (ia.value && ib.value && *ia.value != *ib.value) {
    return Status::FailedPrecondition(
        StrFormat("cannot merge s%d (=%lld) with s%d (=%lld)", ra,
                  static_cast<long long>(*ia.value), rb,
                  static_cast<long long>(*ib.value)));
  }
  // Keep the smaller id as root for determinism.
  if (rb < ra) std::swap(ra, rb);
  SymbolInfo& root = info_[ra];
  SymbolInfo& child = info_[rb];
  if (!root.value) root.value = child.value;
  root.divisor = root.divisor / Gcd(root.divisor, child.divisor) *
                 child.divisor;  // lcm
  root.lower_bound = std::max(root.lower_bound, child.lower_bound);
  root.upper_bound = std::min(root.upper_bound, child.upper_bound);
  for (int64_t v : child.likely_values) {
    if (std::find(root.likely_values.begin(), root.likely_values.end(), v) ==
        root.likely_values.end()) {
      root.likely_values.push_back(v);
    }
  }
  parent_[rb] = ra;
  return Status::OK();
}

Status SymbolicDimManager::SetValue(SymbolId id, int64_t value) {
  SymbolInfo& info = info_[Find(id)];
  if (info.value && *info.value != value) {
    return Status::FailedPrecondition(
        StrFormat("symbol %s already has value %lld, cannot set %lld",
                  info.name.c_str(), static_cast<long long>(*info.value),
                  static_cast<long long>(value)));
  }
  info.value = value;
  return Status::OK();
}

std::optional<int64_t> SymbolicDimManager::GetValue(SymbolId id) const {
  return info_[Find(id)].value;
}

void SymbolicDimManager::AddDivisibility(SymbolId id, int64_t divisor) {
  DISC_CHECK_GT(divisor, 0);
  SymbolInfo& info = info_[Find(id)];
  info.divisor = info.divisor / Gcd(info.divisor, divisor) * divisor;  // lcm
}

int64_t SymbolicDimManager::GetDivisor(SymbolId id) const {
  return info_[Find(id)].divisor;
}

Status SymbolicDimManager::SetRange(SymbolId id, int64_t lower, int64_t upper) {
  SymbolInfo& info = info_[Find(id)];
  int64_t new_lower = std::max(info.lower_bound, lower);
  int64_t new_upper = std::min(info.upper_bound, upper);
  if (new_lower > new_upper) {
    return Status::FailedPrecondition("empty range for " + info.name);
  }
  info.lower_bound = new_lower;
  info.upper_bound = new_upper;
  return Status::OK();
}

std::pair<int64_t, int64_t> SymbolicDimManager::GetRange(SymbolId id) const {
  const SymbolInfo& info = info_[Find(id)];
  return {info.lower_bound, info.upper_bound};
}

void SymbolicDimManager::AddLikelyValue(SymbolId id, int64_t value) {
  SymbolInfo& info = info_[Find(id)];
  auto it = std::find(info.likely_values.begin(), info.likely_values.end(),
                      value);
  if (it != info.likely_values.end()) info.likely_values.erase(it);
  info.likely_values.push_back(value);
}

const std::vector<int64_t>& SymbolicDimManager::GetLikelyValues(
    SymbolId id) const {
  return info_[Find(id)].likely_values;
}

const SymbolInfo& SymbolicDimManager::Info(SymbolId id) const {
  return info_[Find(id)];
}

void SymbolicDimManager::AddProductEqual(const SymShape& lhs,
                                         const SymShape& rhs) {
  SymShape cl = Canonicalize(lhs);
  SymShape cr = Canonicalize(rhs);
  // Skip trivial facts.
  if (DimExpr::Mul(std::vector<DimExpr>(cl.begin(), cl.end()))
          .Equals(DimExpr::Mul(std::vector<DimExpr>(cr.begin(), cr.end())))) {
    return;
  }
  product_facts_.emplace_back(std::move(cl), std::move(cr));
}

DimExpr SymbolicDimManager::Canonicalize(const DimExpr& expr) const {
  std::unordered_map<SymbolId, DimExpr> subst;
  for (SymbolId s : expr.CollectSymbols()) {
    SymbolId root = Find(s);
    const SymbolInfo& info = info_[root];
    if (info.value) {
      subst[s] = DimExpr::Const(*info.value);
    } else if (root != s) {
      subst[s] = DimExpr::Symbol(root);
    } else {
      // Even the root may carry a value set later; handled above.
    }
  }
  return subst.empty() ? expr : expr.Substitute(subst);
}

SymShape SymbolicDimManager::Canonicalize(const SymShape& shape) const {
  SymShape out;
  out.reserve(shape.size());
  for (const DimExpr& d : shape) out.push_back(Canonicalize(d));
  return out;
}

bool SymbolicDimManager::IsDimEqual(const DimExpr& a, const DimExpr& b) const {
  if (!a.valid() || !b.valid()) return false;
  return Canonicalize(a).Equals(Canonicalize(b));
}

bool SymbolicDimManager::IsShapeEqual(const SymShape& a,
                                      const SymShape& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!IsDimEqual(a[i], b[i])) return false;
  }
  return true;
}

SymbolicDimManager::ProductForm SymbolicDimManager::DecomposeProduct(
    const SymShape& dims) const {
  ProductForm form;
  DimExpr product = Canonicalize(SymShapeNumElements(dims));
  std::vector<DimExpr> worklist = {product};
  while (!worklist.empty()) {
    DimExpr e = worklist.back();
    worklist.pop_back();
    if (e.IsConst()) {
      form.coeff *= e.const_value();
    } else if (e.kind() == DimExprKind::kMul) {
      for (const DimExpr& op : e.operands()) worklist.push_back(op);
    } else {
      // Symbols and opaque sub-expressions (sums, divisions) are factors.
      form.factors[e.ToString()] += 1;
      if (!e.IsSymbol()) form.polynomial = false;
    }
  }
  return form;
}

bool SymbolicDimManager::IsSameNumElements(const SymShape& a,
                                           const SymShape& b) const {
  ProductForm fa = DecomposeProduct(a);
  ProductForm fb = DecomposeProduct(b);

  // diff = fa / fb as (coeff ratio, exponent difference).
  auto diff_of = [](const ProductForm& x, const ProductForm& y) {
    std::map<std::string, int> d = x.factors;
    for (const auto& [key, exp] : y.factors) d[key] -= exp;
    std::erase_if(d, [](const auto& kv) { return kv.second == 0; });
    return d;
  };
  auto ratio_of = [](int64_t num, int64_t den) {
    DISC_CHECK(num != 0 && den != 0);
    int64_t g = Gcd(std::abs(num), std::abs(den));
    return std::pair<int64_t, int64_t>(num / g, den / g);
  };

  std::map<std::string, int> d_ab = diff_of(fa, fb);
  auto r_ab = ratio_of(fa.coeff, fb.coeff);
  if (d_ab.empty() && r_ab.first == r_ab.second) return true;

  // Try each recorded reshape fact (and its inverse) as a rewrite:
  // a/b == l/r  or  a/b == r/l  implies equality.
  for (const auto& [lhs, rhs] : product_facts_) {
    ProductForm fl = DecomposeProduct(lhs);
    ProductForm fr = DecomposeProduct(rhs);
    std::map<std::string, int> d_lr = diff_of(fl, fr);
    auto r_lr = ratio_of(fl.coeff, fr.coeff);
    if (d_ab == d_lr && r_ab == r_lr) return true;
    std::map<std::string, int> d_rl = diff_of(fr, fl);
    auto r_rl = ratio_of(fr.coeff, fl.coeff);
    if (d_ab == d_rl && r_ab == r_rl) return true;
  }
  return false;
}

bool SymbolicDimManager::IsDivisibleBy(const DimExpr& expr,
                                       int64_t divisor) const {
  DimExpr canonical = Canonicalize(expr);
  std::unordered_map<SymbolId, int64_t> divisors;
  for (SymbolId s : canonical.CollectSymbols()) {
    divisors[s] = GetDivisor(s);
  }
  return canonical.ProvablyDivisibleBy(divisor, divisors);
}

std::optional<int64_t> SymbolicDimManager::UpperBound(
    const DimExpr& expr) const {
  DimExpr e = Canonicalize(expr);
  switch (e.kind()) {
    case DimExprKind::kConst:
      return e.const_value();
    case DimExprKind::kSymbol: {
      int64_t ub = info_[Find(e.symbol())].upper_bound;
      if (ub == INT64_MAX) return std::nullopt;
      return ub;
    }
    case DimExprKind::kAdd: {
      int64_t sum = 0;
      for (const DimExpr& op : e.operands()) {
        auto ub = UpperBound(op);
        if (!ub) return std::nullopt;
        sum += *ub;
      }
      return sum;
    }
    case DimExprKind::kMul: {
      int64_t product = 1;
      for (const DimExpr& op : e.operands()) {
        auto ub = UpperBound(op);
        if (!ub || *ub < 0) return std::nullopt;
        product *= *ub;
      }
      return product;
    }
    case DimExprKind::kFloorDiv:
    case DimExprKind::kCeilDiv: {
      auto ua = UpperBound(e.operands()[0]);
      if (!ua) return std::nullopt;
      if (e.operands()[1].IsConst() && e.operands()[1].const_value() > 0) {
        int64_t c = e.operands()[1].const_value();
        return e.kind() == DimExprKind::kFloorDiv ? *ua / c : CeilDiv(*ua, c);
      }
      return *ua;  // divisor >= 1 in shape arithmetic
    }
    case DimExprKind::kMod: {
      auto ub = UpperBound(e.operands()[1]);
      if (ub) return *ub - 1;
      return UpperBound(e.operands()[0]);
    }
  }
  return std::nullopt;
}

std::optional<int64_t> SymbolicDimManager::LowerBound(
    const DimExpr& expr) const {
  DimExpr e = Canonicalize(expr);
  switch (e.kind()) {
    case DimExprKind::kConst:
      return e.const_value();
    case DimExprKind::kSymbol:
      return info_[Find(e.symbol())].lower_bound;
    case DimExprKind::kAdd: {
      int64_t sum = 0;
      for (const DimExpr& op : e.operands()) {
        auto lb = LowerBound(op);
        if (!lb) return std::nullopt;
        sum += *lb;
      }
      return sum;
    }
    case DimExprKind::kMul: {
      // Normal form keeps at most one constant coefficient, which may be
      // negative after subtraction; the remaining factors are dims (>= 0).
      // coeff >= 0: coeff * prod(LB); coeff < 0: coeff * prod(UB).
      int64_t coeff = 1;
      std::vector<DimExpr> rest;
      for (const DimExpr& op : e.operands()) {
        if (op.IsConst()) {
          coeff *= op.const_value();
        } else {
          rest.push_back(op);
        }
      }
      int64_t product = 1;
      for (const DimExpr& op : rest) {
        auto bound = coeff >= 0 ? LowerBound(op) : UpperBound(op);
        if (!bound || *bound < 0) return std::nullopt;
        product *= *bound;
      }
      return coeff * product;
    }
    case DimExprKind::kFloorDiv:
    case DimExprKind::kCeilDiv: {
      auto la = LowerBound(e.operands()[0]);
      if (!la) return std::nullopt;
      if (e.operands()[1].IsConst() && e.operands()[1].const_value() > 0) {
        int64_t c = e.operands()[1].const_value();
        return e.kind() == DimExprKind::kFloorDiv ? FloorDiv(*la, c)
                                                  : CeilDiv(*la, c);
      }
      // Symbolic divisor (>= 1 in shape arithmetic): quotient >= 0 when
      // the numerator is.
      if (*la >= 0) return 0;
      return std::nullopt;
    }
    case DimExprKind::kMod: {
      auto la = LowerBound(e.operands()[0]);
      if (la && *la >= 0) return 0;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool SymbolicDimManager::ProvablyLe(const DimExpr& a, const DimExpr& b) const {
  DimExpr ca = Canonicalize(a);
  DimExpr cb = Canonicalize(b);
  if (ca.Equals(cb)) return true;
  // Monotonicity through a shared scaled division: c*ceildiv(x, k) <=
  // c*ceildiv(y, k) iff x <= y (same for floordiv). This is how 256-byte
  // aligned sizes of comparable payloads stay comparable even when the
  // alignment rounding cannot be folded away.
  auto strip = [](const DimExpr& e, int64_t* coeff) -> DimExpr {
    *coeff = 1;
    DimExpr core = e;
    if (e.kind() == DimExprKind::kMul) {
      std::vector<DimExpr> rest;
      for (const DimExpr& op : e.operands()) {
        if (op.IsConst()) {
          *coeff *= op.const_value();
        } else {
          rest.push_back(op);
        }
      }
      if (rest.size() != 1) return DimExpr();
      core = rest[0];
    }
    if (core.kind() != DimExprKind::kFloorDiv &&
        core.kind() != DimExprKind::kCeilDiv) {
      return DimExpr();
    }
    return core;
  };
  int64_t coeff_a = 1, coeff_b = 1;
  DimExpr div_a = strip(ca, &coeff_a);
  DimExpr div_b = strip(cb, &coeff_b);
  if (div_a.valid() && div_b.valid() && coeff_a == coeff_b && coeff_a > 0 &&
      div_a.kind() == div_b.kind() &&
      div_a.operands()[1].Equals(div_b.operands()[1])) {
    if (ProvablyLe(div_a.operands()[0], div_b.operands()[0])) return true;
  }
  // Numeric discharge: b - a >= 0 under the recorded range facts.
  DimExpr diff = DimExpr::Add(cb, DimExpr::Mul(DimExpr::Const(-1), ca));
  auto lb = LowerBound(diff);
  return lb && *lb >= 0;
}

SymbolicDimManager::Stats SymbolicDimManager::GetStats() const {
  Stats stats;
  stats.num_symbols = num_symbols();
  for (SymbolId i = 0; i < static_cast<SymbolId>(parent_.size()); ++i) {
    if (Find(i) == i) {
      ++stats.num_classes;
      if (info_[i].value) ++stats.num_known_constants;
    }
  }
  stats.num_product_facts = static_cast<int64_t>(product_facts_.size());
  return stats;
}

std::string SymbolicDimManager::ToString() const {
  std::ostringstream out;
  out << "SymbolicDimManager{\n";
  for (SymbolId i = 0; i < static_cast<SymbolId>(parent_.size()); ++i) {
    if (Find(i) != i) continue;
    const SymbolInfo& info = info_[i];
    out << "  s" << i << " (" << info.name << ")";
    if (info.value) out << " = " << *info.value;
    if (info.divisor > 1) out << ", %" << info.divisor << "==0";
    if (info.upper_bound != INT64_MAX) {
      out << ", in [" << info.lower_bound << ", " << info.upper_bound << "]";
    }
    if (!info.likely_values.empty()) {
      out << ", likely {" << Join(info.likely_values, ", ") << "}";
    }
    out << "\n";
  }
  for (const auto& [lhs, rhs] : product_facts_) {
    out << "  product " << SymShapeToString(lhs) << " == "
        << SymShapeToString(rhs) << "\n";
  }
  out << "}";
  return out.str();
}

}  // namespace disc
