// Whole-graph symbolic shape analysis ("shape information propagation").
//
// Walks the graph in topological order and derives, for every value,
//   * a SymShape — one DimExpr per dimension, and
//   * for small i64 "shape tensors" (outputs of shape_of/dim/constant/
//     concat/arithmetic), the symbolic *contents* — so a dynamic reshape
//     whose target shape was computed in the graph still gets precise
//     symbolic output dims (the cross-level linkage the paper relies on).
//
// Along the way it *excavates* constraints into the SymbolicDimManager:
// elementwise ops unify operand dims, matmul unifies contraction dims,
// reshape records product-equality facts, concat produces sum expressions.
//
// The same object doubles as the runtime's host-side shape program:
// BindInputs() solves symbol values from concrete input shapes and
// EvaluateShape() computes any value's concrete dims from them.
#ifndef DISC_SHAPE_SHAPE_ANALYSIS_H_
#define DISC_SHAPE_SHAPE_ANALYSIS_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"
#include "shape/dim_expr.h"
#include "shape/symbolic_dim.h"

namespace disc {

/// Concrete symbol values solved from runtime input shapes.
using SymbolBindings = std::unordered_map<SymbolId, int64_t>;

/// \brief Provenance of one excavated symbolic-dim constraint: what was
/// learned and which IR op forced it. Serialized into the
/// `shape_constraints.json` artifact and queried by `disc_explain`.
struct ConstraintRecord {
  /// "merge-symbols" | "set-value" | "product-equal" | "likely-value".
  std::string kind;
  /// The constraint itself, canonical text, e.g. "s1 == s3",
  /// "s0 == 768", "[s0, s1, 64] ~ [(s0*s1), 64]", "s1 in {64, 128}".
  std::string detail;
  /// Node that introduced it (its output(0) value id as shown in IR
  /// dumps), or -1 for input seeding / user hints.
  int node_id = -1;
  /// Op name ("add", "reshape", "matmul", ...) or "input" / "user-hint".
  std::string source;

  std::string ToString() const;
};

/// \brief Runs and stores the symbolic shape analysis for one graph.
class ShapeAnalysis {
 public:
  /// `input_dim_labels`, if non-empty, is parallel to graph->inputs(); each
  /// entry holds one label per dimension ("" = anonymous). Dynamic dims with
  /// the same label share one symbolic dimension (e.g. the batch size of two
  /// inputs). Static dims ignore labels.
  explicit ShapeAnalysis(
      const Graph* graph,
      std::vector<std::vector<std::string>> input_dim_labels = {});

  ShapeAnalysis(const ShapeAnalysis&) = delete;
  ShapeAnalysis& operator=(const ShapeAnalysis&) = delete;

  /// \brief Propagates shapes through every node. Idempotent.
  Status Run();

  const Graph* graph() const { return graph_; }
  SymbolicDimManager& manager() { return manager_; }
  const SymbolicDimManager& manager() const { return manager_; }

  /// \brief Symbolic shape of a value (valid after Run()).
  const SymShape& GetShape(const Value* v) const;

  /// \brief Symbolic contents of an i64 shape-carrying value, if tracked.
  const std::vector<DimExpr>* GetContent(const Value* v) const;

  // --- constraint provenance ----------------------------------------------
  /// \brief Every excavated constraint in discovery order (deterministic:
  /// follows the topological walk). Records appended by the analysis
  /// itself; external seeders (e.g. likely-value hints from
  /// CompileOptions) may append via RecordConstraint.
  const std::vector<ConstraintRecord>& constraint_log() const {
    return constraint_log_;
  }
  void RecordConstraint(ConstraintRecord record) {
    constraint_log_.push_back(std::move(record));
  }
  /// \brief The log as pretty JSON (the `shape_constraints.json` artifact).
  std::string ConstraintsJson() const;

  // --- relational queries used by fusion/codegen ---------------------------
  bool IsShapeEqual(const Value* a, const Value* b) const;
  bool IsSameNumElements(const Value* a, const Value* b) const;
  bool IsDimEqual(const Value* a, int64_t da, const Value* b,
                  int64_t db) const;

  // --- runtime shape program -----------------------------------------------
  /// \brief Solves symbol values given concrete dims for every graph input
  /// (order parallel to graph->inputs()). Errors on inconsistency, e.g. two
  /// inputs that must share a batch size arriving with different sizes.
  Result<SymbolBindings> BindInputs(
      const std::vector<std::vector<int64_t>>& input_dims) const;

  /// \brief Concrete dims of `v` under the given bindings.
  Result<std::vector<int64_t>> EvaluateShape(const Value* v,
                                             const SymbolBindings& bindings) const;

  /// \brief Evaluates a single expression under bindings.
  Result<int64_t> EvaluateDim(const DimExpr& expr,
                              const SymbolBindings& bindings) const;

 private:
  Status ProcessNode(const Node* node);
  Status InferElementwise(const Node* node);
  // Combines two dims of a (numpy-aligned) elementwise op, excavating
  // equality constraints as a side effect.
  Result<DimExpr> CombineBroadcastDims(const DimExpr& a, const DimExpr& b);
  // Resolves the target shape of reshape/broadcast/iota from attr or the
  // shape operand's tracked contents; entries may be invalid (unknown).
  SymShape ResolveTarget(const Node* node, int64_t attr_rank_fallback);

  void SetShape(const Value* v, SymShape shape);
  void SetContent(const Value* v, std::vector<DimExpr> content);

  // Appends a provenance record attributed to the node currently being
  // processed (or "input" when outside ProcessNode).
  void Excavated(const char* kind, std::string detail);

  const Graph* graph_;
  std::vector<std::vector<std::string>> input_dim_labels_;
  SymbolicDimManager manager_;
  std::unordered_map<const Value*, SymShape> shapes_;
  std::unordered_map<const Value*, std::vector<DimExpr>> contents_;
  std::vector<ConstraintRecord> constraint_log_;
  const Node* current_node_ = nullptr;  // provenance attribution cursor
  bool ran_ = false;
};

}  // namespace disc

#endif  // DISC_SHAPE_SHAPE_ANALYSIS_H_
