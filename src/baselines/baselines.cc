#include "baselines/baselines.h"

#include "baselines/dynamic_engine.h"
#include "baselines/interpreter_engine.h"
#include "baselines/static_engine.h"

namespace disc {

Result<std::unique_ptr<Engine>> MakeBaseline(const std::string& name) {
  if (name == "DISC") {
    return std::unique_ptr<Engine>(
        new DynamicCompilerEngine(DynamicProfile::Disc()));
  }
  if (name == "PyTorch") {
    return std::unique_ptr<Engine>(
        new InterpreterEngine(InterpreterProfile::PyTorch()));
  }
  if (name == "TorchScript") {
    return std::unique_ptr<Engine>(
        new InterpreterEngine(InterpreterProfile::TorchScript()));
  }
  if (name == "ONNXRuntime") {
    return std::unique_ptr<Engine>(
        new InterpreterEngine(InterpreterProfile::OnnxRuntime()));
  }
  if (name == "XLA") {
    return std::unique_ptr<Engine>(
        new StaticCompilerEngine(StaticProfile::Xla()));
  }
  if (name == "TVM") {
    return std::unique_ptr<Engine>(
        new StaticCompilerEngine(StaticProfile::Tvm()));
  }
  if (name == "TensorRT") {
    return std::unique_ptr<Engine>(
        new StaticCompilerEngine(StaticProfile::TensorRt()));
  }
  if (name == "TorchInductor") {
    return std::unique_ptr<Engine>(
        new DynamicCompilerEngine(DynamicProfile::TorchInductorDynamic()));
  }
  return Status::NotFound("unknown baseline: " + name);
}

}  // namespace disc
