// Dynamic-shape compiler engines: DISC (the paper's system) and a Torch
// Inductor (dynamic-shapes mode) archetype.
//
// Both compile once ahead of time and serve any shape. They differ in the
// compiler configuration and the per-query host cost:
//   * DISC: full pipeline (symbolic fusion incl. kStitch, multi-version
//     specialization), negligible host cost — launch-dim computation is a
//     handful of integer expressions.
//   * Inductor-dynamic: fusion without stitching, single generic variant
//     per kernel, plus a per-query guard-evaluation overhead (Python-side
//     guards re-checked on every call) — the overheads the paper measures
//     on Inductor's dynamic mode.
#ifndef DISC_BASELINES_DYNAMIC_ENGINE_H_
#define DISC_BASELINES_DYNAMIC_ENGINE_H_

#include <map>
#include <memory>
#include <set>

#include "baselines/engine.h"
#include "compile_service/compile_service.h"
#include "compile_service/profile_feedback.h"
#include "compiler/compiler.h"

namespace disc {

struct DynamicProfile {
  std::string name = "DISC";
  CompileOptions compile_options;
  /// Host cost per query (guard re-evaluation etc.) when the launch plan
  /// must be built — i.e. on a plan-cache miss or with the cache disabled.
  double per_query_host_us = 1.0;
  /// Host cost per query when a memoized launch plan is replayed: the
  /// symbol solve / guard eval / buffer planning is skipped, leaving a
  /// signature hash lookup.
  double plan_hit_host_us = 0.1;
  /// Additional host cost per kernel launch.
  double per_launch_host_us = 0.0;
  /// Host cost per device-allocator call, reported separately as
  /// EngineTiming::alloc_us so the serving ledger can blame allocator
  /// traffic. Default 0 keeps every committed baseline byte-stable; the
  /// F12 blame bench prices it to make the alloc phase visible (arena-mode
  /// runs then show it collapsing to one call).
  double per_alloc_host_us = 0.0;
  /// Memoize launch plans per shape signature in the Executable (off for
  /// archetypes that re-check guards on every call, e.g. Inductor).
  bool use_plan_cache = true;
  /// When > 0: after this many queries, feed the observed dim-value
  /// frequencies back into a recompilation so hot shapes get exact-shape
  /// speculative kernels (BladeDISC's shape speculation). The feedback is
  /// continuous: a later shift of the hot-value profile triggers a fresh
  /// respecialization.
  int64_t feedback_after = 0;
  /// Respecialize on the query thread (the historical blocking behavior)
  /// even when a CompileService is attached. Without a service this is the
  /// only mode, irrespective of the flag.
  bool sync_compile_fallback = false;
  /// CUDA-Graph capture: repeated shape signatures replay a captured graph,
  /// paying the driver launch latency once per query. Shape-static by
  /// nature — a fresh signature always takes the normal launch path.
  bool use_cuda_graph = false;
  /// Memory-planning strategy per Run (see RunOptions::memory_mode). The
  /// default keeps the caching allocator so existing gated baselines stay
  /// byte-stable; DiscArena() opts into the single-allocation arena.
  MemoryMode memory_mode = MemoryMode::kCachingAllocator;
  /// Device-memory capacity forwarded to every Run (0 = unlimited).
  int64_t memory_limit_bytes = 0;

  static DynamicProfile Disc();
  /// DISC with runtime shape-speculation feedback enabled.
  static DynamicProfile DiscWithSpeculation();
  /// DISC running on the symbolic arena plan: one allocator call per Run,
  /// footprint predictable before execution.
  static DynamicProfile DiscArena();
  static DynamicProfile TorchInductorDynamic();
};

class DynamicCompilerEngine : public Engine {
 public:
  explicit DynamicCompilerEngine(DynamicProfile profile)
      : profile_(std::move(profile)) {}

  const std::string& name() const override { return profile_.name; }

  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>& input_dims,
                             const DeviceSpec& device) override;

  /// \brief Numeric execution through the compiled executable (not the
  /// reference evaluator) — exercises the real kernels.
  Result<std::vector<Tensor>> Execute(
      const std::vector<Tensor>& inputs) override;

  /// \brief Evaluates the executable's symbolic peak formula for this
  /// signature (memoized launch plans answer without size arithmetic).
  Result<int64_t> PredictPeakBytes(
      const std::vector<std::vector<int64_t>>& input_dims) override;

  const Executable* executable() const { return executable_.get(); }

  /// \brief Routes respecialization through `service` (background jobs +
  /// persistent cache) instead of compiling on the query thread. Non-
  /// owning; the service must outlive the engine. Ignored when the profile
  /// sets sync_compile_fallback.
  void set_compile_service(CompileService* service) { service_ = service; }
  /// Hint sets acted on so far (sync or async); at least 1 after the first
  /// feedback application, more after profile shifts.
  int64_t respecializations() const { return feedback_.respecializations(); }

  /// \brief Kernel-observatory back-channel: the regret audit proved the
  /// compiled variant choice at `input_dims` is leaving device time on the
  /// table. Feeds the shape into the profile with regret weighting and
  /// immediately attempts a respecialization (same sync/async routing as
  /// the per-query path). No-op unless the profile enables feedback.
  Status NoteKernelRegret(const std::vector<std::vector<int64_t>>& input_dims,
                          double regret_us);

 private:
  /// \brief Observes this query's dims and, when the hot-value profile is
  /// confident or shifted, respecializes: synchronously on the query
  /// thread (historical behavior, or sync_compile_fallback, or no service
  /// attached) or via a background service job adopted on a later query.
  Status MaybeRespecialize(const std::vector<std::vector<int64_t>>& input_dims);
  /// \brief Legacy name for the synchronous path, kept for greppability:
  /// compiles in place with `hints` and swaps the executable.
  Status RecompileWithFeedback(const LikelyDimValues& hints);

  DynamicProfile profile_;
  std::shared_ptr<const Executable> executable_;
  CompileService* service_ = nullptr;
  CompileJobHandle pending_job_;
  ShapeProfileFeedback feedback_;
  // Shape signatures with a captured CUDA graph.
  std::set<std::string> captured_signatures_;
};

}  // namespace disc

#endif  // DISC_BASELINES_DYNAMIC_ENGINE_H_
