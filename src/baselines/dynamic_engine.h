// Dynamic-shape compiler engines: DISC (the paper's system) and a Torch
// Inductor (dynamic-shapes mode) archetype.
//
// Both compile once ahead of time and serve any shape. They differ in the
// compiler configuration and the per-query host cost:
//   * DISC: full pipeline (symbolic fusion incl. kStitch, multi-version
//     specialization), negligible host cost — launch-dim computation is a
//     handful of integer expressions.
//   * Inductor-dynamic: fusion without stitching, single generic variant
//     per kernel, plus a per-query guard-evaluation overhead (Python-side
//     guards re-checked on every call) — the overheads the paper measures
//     on Inductor's dynamic mode.
#ifndef DISC_BASELINES_DYNAMIC_ENGINE_H_
#define DISC_BASELINES_DYNAMIC_ENGINE_H_

#include <map>
#include <set>

#include "baselines/engine.h"
#include "compiler/compiler.h"

namespace disc {

struct DynamicProfile {
  std::string name = "DISC";
  CompileOptions compile_options;
  /// Host cost per query (guard re-evaluation etc.) when the launch plan
  /// must be built — i.e. on a plan-cache miss or with the cache disabled.
  double per_query_host_us = 1.0;
  /// Host cost per query when a memoized launch plan is replayed: the
  /// symbol solve / guard eval / buffer planning is skipped, leaving a
  /// signature hash lookup.
  double plan_hit_host_us = 0.1;
  /// Additional host cost per kernel launch.
  double per_launch_host_us = 0.0;
  /// Memoize launch plans per shape signature in the Executable (off for
  /// archetypes that re-check guards on every call, e.g. Inductor).
  bool use_plan_cache = true;
  /// When > 0: after this many queries, feed the observed dim-value
  /// frequencies back into a background recompilation so hot shapes get
  /// exact-shape speculative kernels (BladeDISC's shape speculation).
  int64_t feedback_after = 0;
  /// CUDA-Graph capture: repeated shape signatures replay a captured graph,
  /// paying the driver launch latency once per query. Shape-static by
  /// nature — a fresh signature always takes the normal launch path.
  bool use_cuda_graph = false;

  static DynamicProfile Disc();
  /// DISC with runtime shape-speculation feedback enabled.
  static DynamicProfile DiscWithSpeculation();
  static DynamicProfile TorchInductorDynamic();
};

class DynamicCompilerEngine : public Engine {
 public:
  explicit DynamicCompilerEngine(DynamicProfile profile)
      : profile_(std::move(profile)) {}

  const std::string& name() const override { return profile_.name; }

  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>& input_dims,
                             const DeviceSpec& device) override;

  /// \brief Numeric execution through the compiled executable (not the
  /// reference evaluator) — exercises the real kernels.
  Result<std::vector<Tensor>> Execute(
      const std::vector<Tensor>& inputs) override;

  const Executable* executable() const { return executable_.get(); }

 private:
  // Aggregates observed dims and recompiles with likely-value hints.
  Status RecompileWithFeedback();

  DynamicProfile profile_;
  std::unique_ptr<Executable> executable_;
  // label -> value -> observation count.
  std::map<std::string, std::map<int64_t, int64_t>> observed_;
  bool feedback_applied_ = false;
  // Shape signatures with a captured CUDA graph.
  std::set<std::string> captured_signatures_;
};

}  // namespace disc

#endif  // DISC_BASELINES_DYNAMIC_ENGINE_H_
