// Interpreter-style engines: PyTorch eager, TorchScript, ONNX Runtime.
//
// Mechanisms modelled for real:
//   * per-op host dispatch cost (the eager tax — dominates small-shape
//     dynamic workloads),
//   * full intermediate tensors in global memory between ops,
//   * TorchScript's pointwise-chain fuser (elementwise-only, no reduce
//     crossing),
//   * ONNX Runtime's vendor composite kernels (softmax / layer-norm / GELU
//     matched structurally and executed as one library-quality kernel).
// Interpreters handle any dynamic shape natively (their strength); they
// lose on launches and traffic (their weakness) — both emerge from the
// shared device model.
#ifndef DISC_BASELINES_INTERPRETER_ENGINE_H_
#define DISC_BASELINES_INTERPRETER_ENGINE_H_

#include "baselines/engine.h"
#include "shape/shape_analysis.h"

namespace disc {

struct InterpreterProfile {
  std::string name = "PyTorch";
  /// Host-side cost per dispatched kernel/op (framework overhead).
  double per_op_host_us = 8.0;
  /// TorchScript-style pointwise fusion.
  bool fuse_pointwise_chains = false;
  /// Single-kernel vendor composites for softmax/layernorm/GELU.
  bool vendor_composites = false;
  double gemm_efficiency = 0.85;

  static InterpreterProfile PyTorch();
  static InterpreterProfile TorchScript();
  static InterpreterProfile OnnxRuntime();
};

class InterpreterEngine : public Engine {
 public:
  explicit InterpreterEngine(InterpreterProfile profile)
      : profile_(std::move(profile)) {}

  const std::string& name() const override { return profile_.name; }

  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>& input_dims,
                             const DeviceSpec& device) override;

  /// Number of device-dispatch units after fusers/composites (test hook).
  int64_t num_device_units() const;

 private:
  struct Unit {
    enum class Kind {
      kDevice,     // one kernel launch
      kLibrary,    // vendor GEMM/Conv call
      kComposite,  // vendor fused composite (softmax/LN/GELU)
      kHost,       // shape computation, no launch
      kConstant,   // resident weight
    };
    Kind kind;
    std::vector<const Node*> nodes;  // >=1; >1 only for chains/composites
    std::vector<const Value*> inputs;
    std::vector<const Value*> outputs;
    bool has_reduce = false;
  };

  void BuildUnits();
  void ComputeUnitBoundaries(Unit* unit) const;

  InterpreterProfile profile_;
  std::unique_ptr<ShapeAnalysis> analysis_;
  std::vector<Unit> units_;
};

/// \brief Structural matchers for the composite subgraphs emitted by
/// GraphBuilder::Softmax / LayerNorm / Gelu. Exposed for tests. On a match,
/// returns the member nodes (root last).
std::vector<const Node*> MatchSoftmax(const Node* div_root);
std::vector<const Node*> MatchLayerNorm(const Node* add_root);
std::vector<const Node*> MatchGelu(const Node* mul_root);

}  // namespace disc

#endif  // DISC_BASELINES_INTERPRETER_ENGINE_H_
