#include "baselines/engine.h"

#include "ir/eval.h"

namespace disc {

Status Engine::PrepareCommon(const Graph& graph,
                             std::vector<std::vector<std::string>> labels) {
  graph_ = graph.Clone();
  labels_ = std::move(labels);
  return Status::OK();
}

Result<std::vector<Tensor>> Engine::Execute(const std::vector<Tensor>& inputs) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Engine::Prepare was not called");
  }
  return EvaluateGraph(*graph_, inputs);
}

}  // namespace disc
