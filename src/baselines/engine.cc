#include "baselines/engine.h"

#include "ir/eval.h"
#include "support/metrics.h"

namespace disc {

void Engine::CountQuery() {
  ++stats_.queries;
  CountMetric("engine.queries");
}

void Engine::CountCompilation(double compile_ms) {
  ++stats_.compilations;
  stats_.total_compile_ms += compile_ms;
  CountMetric("engine.compilations");
}

void Engine::CountPlanLookup(bool hit) {
  if (hit) {
    ++stats_.launch_plan_hits;
    CountMetric("engine.plan_cache.hit");
  } else {
    ++stats_.launch_plan_misses;
    CountMetric("engine.plan_cache.miss");
  }
}

void Engine::CountMemoryPrediction(int64_t predicted_bytes) {
  ++stats_.memory_predictions;
  stats_.last_predicted_peak_bytes = predicted_bytes;
  CountMetric("engine.memory_predictions");
  ObserveMetric("engine.predicted_peak_bytes",
                static_cast<double>(predicted_bytes));
}

Status Engine::PrepareCommon(const Graph& graph,
                             std::vector<std::vector<std::string>> labels) {
  graph_ = graph.Clone();
  labels_ = std::move(labels);
  return Status::OK();
}

Result<std::vector<Tensor>> Engine::Execute(const std::vector<Tensor>& inputs) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Engine::Prepare was not called");
  }
  return EvaluateGraph(*graph_, inputs);
}

}  // namespace disc
