#include "baselines/fallback_chain.h"

#include "support/blame.h"
#include "support/metrics.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

EngineFallbackChain::EngineFallbackChain(std::unique_ptr<Engine> primary,
                                         std::unique_ptr<Engine> fallback,
                                         FallbackChainOptions options)
    : primary_(std::move(primary)),
      fallback_(std::move(fallback)),
      options_(options),
      name_(primary_->name() + "->" + fallback_->name()) {}

Status EngineFallbackChain::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  DISC_RETURN_IF_ERROR(PrepareCommon(graph, labels));
  // The degraded path must always be available: the interpreter's Prepare
  // only clones the graph and builds dispatch units, no compilation.
  DISC_RETURN_IF_ERROR(fallback_->Prepare(graph, labels_));
  primary_prepared_ = false;
  double stall_us = 0.0;
  Status status = EnsurePrimaryPrepared(&stall_us);
  if (!status.ok()) OnPrimaryFailure(status);
  return Status::OK();
}

Status EngineFallbackChain::EnsurePrimaryPrepared(double* stall_us) {
  if (primary_prepared_) return Status::OK();
  CountMetric("engine.fallback.compile_attempts");
  const double before_ms = primary_->stats().total_compile_ms;
  Status status = primary_->Prepare(*graph_, labels_);
  double this_stall_us = 0.0;
  if (options_.compile_stall_us >= 0.0) {
    this_stall_us = options_.compile_stall_us;
  } else {
    this_stall_us = (primary_->stats().total_compile_ms - before_ms) * 1000.0;
  }
  *stall_us += this_stall_us;
  TraceSession& trace = TraceSession::Global();
  if (trace.enabled() && this_stall_us > 0.0) {
    // Instant event on the simulated timeline: which request (trace id)
    // paid this lazy-compile stall — the blame ledger's compile_stall
    // phase made visible in the span view.
    trace.AddCompleteEvent(
        "compile-stall", "engine.compile", sim_now_us_, /*dur_us=*/-1.0,
        TraceSession::kSimPid, /*tid=*/0,
        {{"trace_id", std::to_string(RequestContext::CurrentTraceId())},
         {"stall_us", StrFormat("%.0f", this_stall_us)},
         {"ok", status.ok() ? "1" : "0"}});
  }
  if (!status.ok()) return status;
  primary_prepared_ = true;
  return Status::OK();
}

void EngineFallbackChain::Transition(BreakerState to,
                                     const std::string& reason) {
  transitions_.push_back({state_, to, sim_now_us_, reason});
  CountMetric(std::string("serving.breaker.") + BreakerStateName(to));
  TraceSession& trace = TraceSession::Global();
  if (trace.enabled()) {
    // Instant event (dur < 0) on the simulated-clock timeline, next to the
    // serving spans it explains.
    trace.AddCompleteEvent(
        std::string("breaker->") + BreakerStateName(to), "serving.breaker",
        sim_now_us_, /*dur_us=*/-1.0, TraceSession::kSimPid, /*tid=*/0,
        {{"from", BreakerStateName(state_)},
         {"reason", reason},
         {"consecutive_failures", std::to_string(consecutive_failures_)}});
  }
  state_ = to;
}

void EngineFallbackChain::OnPrimaryFailure(const Status& status) {
  ++consecutive_failures_;
  CountMetric("engine.fallback.primary_failures");
  if (state_ == BreakerState::kHalfOpen) {
    opened_at_us_ = sim_now_us_;
    Transition(BreakerState::kOpen, "probe failed: " + status.ToString());
  } else if (state_ == BreakerState::kClosed &&
             consecutive_failures_ >= options_.failure_threshold) {
    opened_at_us_ = sim_now_us_;
    Transition(BreakerState::kOpen,
               StrFormat("%lld consecutive failures, last: %s",
                         static_cast<long long>(consecutive_failures_),
                         status.ToString().c_str()));
  }
}

void EngineFallbackChain::OnPrimarySuccess() {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    Transition(BreakerState::kClosed, "probe succeeded");
  }
}

void EngineFallbackChain::SetSimulatedTimeUs(double now_us) {
  sim_now_us_ = now_us;
  if (state_ == BreakerState::kOpen &&
      now_us - opened_at_us_ >= options_.cooldown_us) {
    Transition(BreakerState::kHalfOpen, "cooldown elapsed");
  }
  primary_->SetSimulatedTimeUs(now_us);
  fallback_->SetSimulatedTimeUs(now_us);
}

Result<EngineTiming> EngineFallbackChain::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  CountQuery();
  double stall_us = 0.0;
  if (state_ != BreakerState::kOpen) {
    Status prepared = EnsurePrimaryPrepared(&stall_us);
    if (prepared.ok()) {
      Result<EngineTiming> result = primary_->Query(input_dims, device);
      if (result.ok()) {
        OnPrimarySuccess();
        EngineTiming timing = *result;
        timing.compile_us += stall_us;
        timing.total_us += stall_us;
        return timing;
      }
      OnPrimaryFailure(result.status());
    } else {
      OnPrimaryFailure(prepared);
    }
  }
  // Degraded path. A failed compile attempt above still stalled the query.
  Result<EngineTiming> result = fallback_->Query(input_dims, device);
  if (!result.ok()) return result.status();  // both legs down
  ++stats_.fallback_queries;
  CountMetric("engine.fallback.queries");
  EngineTiming timing = *result;
  timing.compile_us += stall_us;
  timing.total_us += stall_us;
  return timing;
}

Result<std::vector<Tensor>> EngineFallbackChain::Execute(
    const std::vector<Tensor>& inputs) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  if (state_ != BreakerState::kOpen && primary_prepared_) {
    Result<std::vector<Tensor>> result = primary_->Execute(inputs);
    if (result.ok()) {
      OnPrimarySuccess();
      return result;
    }
    OnPrimaryFailure(result.status());
  }
  ++stats_.fallback_queries;
  CountMetric("engine.fallback.queries");
  return fallback_->Execute(inputs);
}

}  // namespace disc
