// Factory for the 7 baseline systems + DISC, by paper name.
#ifndef DISC_BASELINES_BASELINES_H_
#define DISC_BASELINES_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/engine.h"

namespace disc {

/// The systems in the paper's headline comparison, in its column order.
inline const std::vector<std::string>& AllBaselineNames() {
  static const std::vector<std::string> names = {
      "DISC",       "PyTorch",       "TorchScript", "TVM",
      "ONNXRuntime", "XLA",          "TorchInductor", "TensorRT"};
  return names;
}

/// \brief Creates an engine by name (see AllBaselineNames). Returns
/// NotFound for unknown names.
Result<std::unique_ptr<Engine>> MakeBaseline(const std::string& name);

}  // namespace disc

#endif  // DISC_BASELINES_BASELINES_H_
