#include "baselines/async_engine.h"

#include <algorithm>
#include <utility>

#include "runtime/launch_plan.h"
#include "support/blame.h"
#include "support/flight_recorder.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {
// Probe fodder: how many recently served bindings the engine retains for
// the shadow validator (deduped again inside BuildProbes).
constexpr size_t kMaxRecentObserved = 8;
}  // namespace

namespace disc {

AsyncCompileEngine::AsyncCompileEngine(CompileService* service,
                                       std::unique_ptr<Engine> fallback,
                                       AsyncEngineOptions options)
    : service_(service),
      fallback_(std::move(fallback)),
      options_(std::move(options)),
      name_(options_.profile.name +
            (options_.sync_compile ? "-sync" : "-async")) {
  if (options_.profile.feedback_after > 0) {
    options_.feedback.min_observations = options_.profile.feedback_after;
  }
  feedback_ = ShapeProfileFeedback(options_.feedback);
}

Status AsyncCompileEngine::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  DISC_RETURN_IF_ERROR(PrepareCommon(graph, labels));
  DISC_RETURN_IF_ERROR(fallback_->Prepare(graph, std::move(labels)));
  // Nothing is waiting on this yet — a foreground miss (first Query before
  // the job lands) re-announces itself at miss priority.
  SubmitJob(JobPriority::kPrefetch, {});
  return Status::OK();
}

void AsyncCompileEngine::SubmitJob(JobPriority priority,
                                   LikelyDimValues hints) {
  CompileJobRequest request;
  request.model_name = graph_->name();
  request.graph = graph_.get();
  request.labels = labels_;
  request.options = options_.profile.compile_options;
  for (auto& hint : hints) {
    request.options.likely_dim_values.push_back(std::move(hint));
  }
  request.priority = priority;
  // Quarantine refusal: a poisoned CacheKey must never be recompiled — not
  // in this process and not after a warm restart. The engine keeps serving
  // on the fallback leg instead (the operator clears the quarantine).
  CacheKey key = CacheKey::Make(*graph_, request.labels, request.options);
  if (service_->cache().IsPoisoned(key)) {
    ++poisoned_skips_;
    CountMetric("engine.poisoned_skip");
    pending_has_hints_ = false;
    return;
  }
  pending_has_hints_ = !request.options.likely_dim_values.empty();
  pending_submit_sim_us_ = sim_now_us_;
  pending_job_ = service_->Submit(std::move(request));
}

void AsyncCompileEngine::MaybeAdopt(bool sync_wait, double* waited_gate_us) {
  // A validation in flight resolves first — it may install its candidate
  // (pass) or reject it (caught) before the next compile outcome lands.
  MaybeResolveValidation(sync_wait);
  if (!pending_job_.valid()) return;

  const double gate_compile = options_.simulated_compile_latency_us;
  const double gate_load = options_.simulated_cache_load_latency_us;
  const CompileJobOutcome* outcome = nullptr;
  double charged_gate = 0.0;

  if (sync_wait) {
    // Blocking mode: resolve now and charge the full simulated latency of
    // whatever the job turned out to be (compile vs disk restore) as a
    // stall on the caller's query.
    outcome = &pending_job_.Wait();
    charged_gate = outcome->from_disk_cache
                       ? std::max(0.0, gate_load)
                       : std::max(0.0, gate_compile);
  } else if (gate_compile < 0.0) {
    // Opportunistic: adopt the moment the worker is done.
    outcome = pending_job_.TryGet();
  } else {
    // Deterministic: past the earliest possible gate the outcome decides
    // which gate actually applies. Wait() may block on the wall clock (the
    // worker is slower than its simulated deadline) — charged to no query,
    // exactly like the fallback chain's fixed compile_stall_us.
    if (sim_now_us_ >=
        pending_submit_sim_us_ + std::min(gate_compile, gate_load)) {
      const CompileJobOutcome& o = pending_job_.Wait();
      double gate = o.from_disk_cache ? gate_load : gate_compile;
      if (sim_now_us_ >= pending_submit_sim_us_ + gate) outcome = &o;
    }
  }
  if (outcome == nullptr) return;

  if (waited_gate_us != nullptr) *waited_gate_us = charged_gate;
  bool had_hints = pending_has_hints_;
  CompileJobOutcome adopted = *outcome;  // copy before dropping the handle
  pending_job_ = CompileJobHandle();
  pending_has_hints_ = false;
  if (!adopted.status.ok() || adopted.executable == nullptr) {
    // Failed/cancelled/expired job: keep serving on whatever we have (the
    // fallback leg or the previous executable). A later miss resubmits.
    return;
  }

  if (options_.validate_adoptions) {
    // Admission gate: the candidate is NOT installed yet. It replays the
    // probe set against the incumbent (or reference evaluator) on a
    // low-priority worker first; installation happens when the validation
    // resolves with a pass.
    StartValidation(std::move(adopted), had_hints);
    if (sync_wait) MaybeResolveValidation(true);
    return;
  }
  AdoptNow(adopted, had_hints);
}

void AsyncCompileEngine::AdoptNow(const CompileJobOutcome& adopted,
                                  bool had_hints) {
  slot_.Swap(adopted.executable);
  previous_key_ = current_key_;
  has_previous_key_ = has_current_key_;
  current_key_ = adopted.key;
  has_current_key_ = true;
  CountMetric("engine.hot_swap");
  if (adopted.from_disk_cache) {
    ++disk_restores_;
  } else {
    CountCompilation(adopted.executable->report().compile_ms);
  }
  // CUDA-graph captures are per-executable state, like launch plans.
  captured_signatures_.clear();
  if (first_executable_sim_us_ < 0.0) {
    first_executable_sim_us_ = sim_now_us_;
  }
  if (had_hints && first_specialized_sim_us_ < 0.0) {
    first_specialized_sim_us_ = sim_now_us_;
  }
}

void AsyncCompileEngine::StartValidation(CompileJobOutcome adopted,
                                         bool had_hints) {
  ShadowValidator validator(options_.validation);
  std::vector<std::vector<std::vector<int64_t>>> observed(
      recent_observed_dims_.begin(), recent_observed_dims_.end());
  LikelyDimValues hot = feedback_.TopValues(3);
  std::vector<std::string> outlier_signatures;
  for (const FlightRecord& record : FlightRecorder::Global().Snapshot()) {
    outlier_signatures.push_back(record.signature);
  }
  std::vector<ProbeBinding> probes = validator.BuildProbes(
      *adopted.executable, labels_, observed, hot, outlier_signatures);

  // Everything the worker touches is captured by value / shared ownership
  // so the task stays safe even if the engine dies while it is queued.
  std::shared_ptr<const Executable> candidate = adopted.executable;
  std::shared_ptr<const Executable> incumbent = slot_.Acquire();
  std::shared_ptr<const Graph> reference_graph = graph_->Clone();
  auto report = std::make_shared<ValidationReport>();
  std::string model = graph_->name();
  std::string key_id = adopted.key.ToId();

  validation_candidate_ = std::move(adopted);
  validation_had_hints_ = had_hints;
  validation_submit_sim_us_ = sim_now_us_;
  validation_inflight_report_ = report;
  CountMetric("engine.validation.submitted");
  pending_validation_ = service_->SubmitTask(
      model + ":shadow-validate", JobPriority::kValidate,
      [validator, candidate, incumbent, reference_graph, probes, report,
       model, key_id]() {
        *report = validator.Validate(*candidate, incumbent.get(),
                                     *reference_graph, probes, model, key_id);
        CompileJobOutcome outcome;
        if (!report->passed) {
          outcome.status =
              Status::DataLoss("shadow validation caught candidate: " +
                               report->Summary());
        }
        return outcome;
      });
}

void AsyncCompileEngine::MaybeResolveValidation(bool sync_wait) {
  if (!pending_validation_.valid()) return;

  const double gate = std::max(0.0, options_.simulated_validation_latency_us);
  const CompileJobOutcome* done = nullptr;
  if (sync_wait) {
    done = &pending_validation_.Wait();
  } else if (options_.simulated_compile_latency_us < 0.0) {
    done = pending_validation_.TryGet();
  } else if (sim_now_us_ >= validation_submit_sim_us_ + gate) {
    // Deterministic mode: same charge-free Wait as the compile gate.
    done = &pending_validation_.Wait();
  }
  if (done == nullptr) return;

  Status task_status = done->status;  // copy before dropping the handle
  pending_validation_ = CompileJobHandle();
  ++validations_run_;
  CountMetric("engine.validation.run");
  std::shared_ptr<ValidationReport> report =
      std::move(validation_inflight_report_);
  CompileJobOutcome candidate = std::move(validation_candidate_);
  validation_candidate_ = CompileJobOutcome();
  bool had_hints = validation_had_hints_;
  validation_had_hints_ = false;
  if (report != nullptr) last_validation_report_ = report;

  if (report != nullptr && report->passed && task_status.ok()) {
    AdoptNow(candidate, had_hints);
    return;
  }
  // Caught: the incumbent keeps serving, and the candidate's key goes to
  // the persisted quarantine so neither this process nor a warm restart
  // re-adopts the artifact.
  ++validations_caught_;
  CountMetric("engine.validation.caught");
  std::string reason =
      report != nullptr ? report->Summary() : task_status.ToString();
  Status poison = service_->cache().Poison(
      candidate.key, "shadow validation: " + reason);
  if (!poison.ok()) {
    DISC_LOG(Warning) << "poison failed for " << candidate.key.ToId() << ": "
                      << poison.ToString();
  }
  DISC_LOG(Warning) << "admission gate rejected " << candidate.key.ToId()
                    << ": " << reason;
}

void AsyncCompileEngine::OnDataLoss(const Status& status) {
  ++data_loss_events_;
  CountMetric("engine.data_loss");
  TraceScope rollback_scope(name_, "engine.rollback");
  if (rollback_scope.active()) {
    rollback_scope.AddArg("reason", status.message());
  }
  if (has_current_key_) {
    Status poison = service_->cache().Poison(
        current_key_, "runtime data loss: " + status.message());
    if (!poison.ok()) {
      DISC_LOG(Warning) << "poison failed for " << current_key_.ToId() << ": "
                        << poison.ToString();
    }
  }
  if (slot_.Rollback()) {
    CountMetric("engine.rollback");
    current_key_ = previous_key_;
    has_current_key_ = has_previous_key_;
    has_previous_key_ = false;
  } else {
    // Nothing to roll back to: empty the slot entirely (retaining the bad
    // executable as rollback history would defeat the quarantine) and let
    // the fallback leg serve.
    slot_.Clear();
    has_current_key_ = false;
    has_previous_key_ = false;
    CountMetric("engine.slot_clear");
  }
  // Plan caches were cleared by the slot; CUDA-graph captures are
  // per-executable state too.
  captured_signatures_.clear();
  DISC_LOG(Warning) << name_ << ": data loss while serving — "
                    << status.message();
}

Result<EngineTiming> AsyncCompileEngine::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  TraceScope query_scope(name_, "engine.query");
  if (query_scope.active()) {
    query_scope.AddArg("trace_id",
                       std::to_string(RequestContext::CurrentTraceId()));
  }
  CountQuery();

  if (options_.validate_adoptions) {
    recent_observed_dims_.push_back(input_dims);
    while (recent_observed_dims_.size() > kMaxRecentObserved) {
      recent_observed_dims_.pop_front();
    }
  }

  double stall_us = 0.0;
  MaybeAdopt(options_.sync_compile && !slot_.has_executable(), &stall_us);

  // Profile feedback: watch the traffic; when the hot-value profile is
  // confident (or has shifted), respecialize in the background. One
  // pending job at a time — the profile keeps aggregating meanwhile (a
  // pending shadow validation counts as pending work: its candidate must
  // resolve before the next respecialization makes sense).
  if (options_.profile.feedback_after > 0) {
    feedback_.Observe(labels_, input_dims);
    if (!pending_job_.valid() && !pending_validation_.valid() &&
        slot_.has_executable()) {
      if (auto hints = feedback_.MaybeRespecialize()) {
        SubmitJob(JobPriority::kRespecialize, std::move(*hints));
      }
    }
  }

  auto serve_fallback = [&]() -> Result<EngineTiming> {
    auto result = fallback_->Query(input_dims, device);
    if (!result.ok()) return result.status();
    ++stats_.fallback_queries;
    CountMetric("engine.fallback.queries");
    EngineTiming timing = *result;
    timing.compile_us += stall_us;
    timing.total_us += stall_us;
    return timing;
  };

  std::shared_ptr<const Executable> exe = slot_.Acquire();
  if (exe == nullptr) {
    // Not compiled yet: degrade to the fallback leg, never block. Announce
    // the miss at foreground priority if the job somehow vanished
    // (failed/cancelled) so the next swap still arrives — unless a shadow
    // validation is already deciding a candidate's fate.
    if (!pending_job_.valid() && !pending_validation_.valid()) {
      SubmitJob(JobPriority::kForegroundMiss, {});
    }
    return serve_fallback();
  }

  RunOptions options;
  options.device = device;
  options.use_launch_plan_cache = options_.profile.use_plan_cache;
  if (options_.profile.use_cuda_graph) {
    options.batch_launches =
        !captured_signatures_.insert(ShapeSignature(input_dims)).second;
  }
  Result<RunResult> run = exe->RunWithShapes(input_dims, options);
  if (!run.ok() && run.status().code() == StatusCode::kDataLoss) {
    // The installed executable is provably bad at this binding (guard
    // violation / corruption). Poison it, roll back to the previous
    // generation, and retry the query there; no previous generation (or
    // the previous one is bad too) means the fallback leg serves it.
    OnDataLoss(run.status());
    exe = slot_.Acquire();
    if (exe != nullptr) {
      run = exe->RunWithShapes(input_dims, options);
      if (!run.ok() && run.status().code() == StatusCode::kDataLoss) {
        OnDataLoss(run.status());
        exe = nullptr;
      }
    }
    if (exe == nullptr) return serve_fallback();
  }
  if (!run.ok()) return run.status();
  RunResult result = std::move(*run);
  if (options_.profile.use_plan_cache) {
    CountPlanLookup(result.profile.launch_plan_hit);
  }
  EngineTiming timing;
  timing.device_us = result.profile.device_time_us;
  timing.kernel_launches =
      result.profile.kernel_launches + result.profile.library_calls;
  timing.bytes_moved =
      result.profile.bytes_read + result.profile.bytes_written;
  timing.peak_memory_bytes = result.profile.peak_memory_bytes;
  double per_query_host = result.profile.launch_plan_hit
                              ? options_.profile.plan_hit_host_us
                              : options_.profile.per_query_host_us;
  timing.host_us = per_query_host +
                   options_.profile.per_launch_host_us *
                       static_cast<double>(timing.kernel_launches);
  timing.alloc_us = options_.profile.per_alloc_host_us *
                    static_cast<double>(result.profile.alloc_calls);
  timing.compile_us = stall_us;
  timing.total_us =
      timing.device_us + timing.host_us + timing.alloc_us + stall_us;
  return timing;
}

Result<std::vector<Tensor>> AsyncCompileEngine::Execute(
    const std::vector<Tensor>& inputs) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  if (options_.validate_adoptions) {
    std::vector<std::vector<int64_t>> input_dims;
    input_dims.reserve(inputs.size());
    for (const Tensor& t : inputs) input_dims.push_back(t.dims());
    recent_observed_dims_.push_back(std::move(input_dims));
    while (recent_observed_dims_.size() > kMaxRecentObserved) {
      recent_observed_dims_.pop_front();
    }
  }
  MaybeAdopt(options_.sync_compile && !slot_.has_executable(), nullptr);
  auto serve_fallback = [&]() -> Result<std::vector<Tensor>> {
    ++stats_.fallback_queries;
    CountMetric("engine.fallback.queries");
    return fallback_->Execute(inputs);
  };
  std::shared_ptr<const Executable> exe = slot_.Acquire();
  if (exe == nullptr) return serve_fallback();
  Result<RunResult> run = exe->Run(inputs);
  if (!run.ok() && run.status().code() == StatusCode::kDataLoss) {
    OnDataLoss(run.status());
    exe = slot_.Acquire();
    if (exe != nullptr) {
      run = exe->Run(inputs);
      if (!run.ok() && run.status().code() == StatusCode::kDataLoss) {
        OnDataLoss(run.status());
        exe = nullptr;
      }
    }
    if (exe == nullptr) return serve_fallback();
  }
  if (!run.ok()) return run.status();
  return run->outputs;
}

void AsyncCompileEngine::SetSimulatedTimeUs(double now_us) {
  sim_now_us_ = now_us;
  fallback_->SetSimulatedTimeUs(now_us);
}

}  // namespace disc
