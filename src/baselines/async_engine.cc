#include "baselines/async_engine.h"

#include <algorithm>

#include "runtime/launch_plan.h"
#include "support/blame.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace disc {

AsyncCompileEngine::AsyncCompileEngine(CompileService* service,
                                       std::unique_ptr<Engine> fallback,
                                       AsyncEngineOptions options)
    : service_(service),
      fallback_(std::move(fallback)),
      options_(std::move(options)),
      name_(options_.profile.name +
            (options_.sync_compile ? "-sync" : "-async")) {
  if (options_.profile.feedback_after > 0) {
    options_.feedback.min_observations = options_.profile.feedback_after;
  }
  feedback_ = ShapeProfileFeedback(options_.feedback);
}

Status AsyncCompileEngine::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  DISC_RETURN_IF_ERROR(PrepareCommon(graph, labels));
  DISC_RETURN_IF_ERROR(fallback_->Prepare(graph, std::move(labels)));
  // Nothing is waiting on this yet — a foreground miss (first Query before
  // the job lands) re-announces itself at miss priority.
  SubmitJob(JobPriority::kPrefetch, {});
  return Status::OK();
}

void AsyncCompileEngine::SubmitJob(JobPriority priority,
                                   LikelyDimValues hints) {
  CompileJobRequest request;
  request.model_name = graph_->name();
  request.graph = graph_.get();
  request.labels = labels_;
  request.options = options_.profile.compile_options;
  for (auto& hint : hints) {
    request.options.likely_dim_values.push_back(std::move(hint));
  }
  request.priority = priority;
  pending_has_hints_ = !request.options.likely_dim_values.empty();
  pending_submit_sim_us_ = sim_now_us_;
  pending_job_ = service_->Submit(std::move(request));
}

void AsyncCompileEngine::MaybeAdopt(bool sync_wait, double* waited_gate_us) {
  if (!pending_job_.valid()) return;

  const double gate_compile = options_.simulated_compile_latency_us;
  const double gate_load = options_.simulated_cache_load_latency_us;
  const CompileJobOutcome* outcome = nullptr;
  double charged_gate = 0.0;

  if (sync_wait) {
    // Blocking mode: resolve now and charge the full simulated latency of
    // whatever the job turned out to be (compile vs disk restore) as a
    // stall on the caller's query.
    outcome = &pending_job_.Wait();
    charged_gate = outcome->from_disk_cache
                       ? std::max(0.0, gate_load)
                       : std::max(0.0, gate_compile);
  } else if (gate_compile < 0.0) {
    // Opportunistic: adopt the moment the worker is done.
    outcome = pending_job_.TryGet();
  } else {
    // Deterministic: past the earliest possible gate the outcome decides
    // which gate actually applies. Wait() may block on the wall clock (the
    // worker is slower than its simulated deadline) — charged to no query,
    // exactly like the fallback chain's fixed compile_stall_us.
    if (sim_now_us_ >=
        pending_submit_sim_us_ + std::min(gate_compile, gate_load)) {
      const CompileJobOutcome& o = pending_job_.Wait();
      double gate = o.from_disk_cache ? gate_load : gate_compile;
      if (sim_now_us_ >= pending_submit_sim_us_ + gate) outcome = &o;
    }
  }
  if (outcome == nullptr) return;

  if (waited_gate_us != nullptr) *waited_gate_us = charged_gate;
  bool had_hints = pending_has_hints_;
  CompileJobOutcome adopted = *outcome;  // copy before dropping the handle
  pending_job_ = CompileJobHandle();
  pending_has_hints_ = false;
  if (!adopted.status.ok() || adopted.executable == nullptr) {
    // Failed/cancelled/expired job: keep serving on whatever we have (the
    // fallback leg or the previous executable). A later miss resubmits.
    return;
  }

  slot_.Swap(adopted.executable);
  CountMetric("engine.hot_swap");
  if (adopted.from_disk_cache) {
    ++disk_restores_;
  } else {
    CountCompilation(adopted.executable->report().compile_ms);
  }
  // CUDA-graph captures are per-executable state, like launch plans.
  captured_signatures_.clear();
  if (first_executable_sim_us_ < 0.0) {
    first_executable_sim_us_ = sim_now_us_;
  }
  if (had_hints && first_specialized_sim_us_ < 0.0) {
    first_specialized_sim_us_ = sim_now_us_;
  }
}

Result<EngineTiming> AsyncCompileEngine::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  TraceScope query_scope(name_, "engine.query");
  if (query_scope.active()) {
    query_scope.AddArg("trace_id",
                       std::to_string(RequestContext::CurrentTraceId()));
  }
  CountQuery();

  double stall_us = 0.0;
  MaybeAdopt(options_.sync_compile && !slot_.has_executable(), &stall_us);

  // Profile feedback: watch the traffic; when the hot-value profile is
  // confident (or has shifted), respecialize in the background. One
  // pending job at a time — the profile keeps aggregating meanwhile.
  if (options_.profile.feedback_after > 0) {
    feedback_.Observe(labels_, input_dims);
    if (!pending_job_.valid() && slot_.has_executable()) {
      if (auto hints = feedback_.MaybeRespecialize()) {
        SubmitJob(JobPriority::kRespecialize, std::move(*hints));
      }
    }
  }

  std::shared_ptr<const Executable> exe = slot_.Acquire();
  if (exe == nullptr) {
    // Not compiled yet: degrade to the fallback leg, never block. Announce
    // the miss at foreground priority if the job somehow vanished
    // (failed/cancelled) so the next swap still arrives.
    if (!pending_job_.valid()) {
      SubmitJob(JobPriority::kForegroundMiss, {});
    }
    auto result = fallback_->Query(input_dims, device);
    if (!result.ok()) return result.status();
    ++stats_.fallback_queries;
    CountMetric("engine.fallback.queries");
    EngineTiming timing = *result;
    timing.compile_us += stall_us;
    timing.total_us += stall_us;
    return timing;
  }

  RunOptions options;
  options.device = device;
  options.use_launch_plan_cache = options_.profile.use_plan_cache;
  if (options_.profile.use_cuda_graph) {
    options.batch_launches =
        !captured_signatures_.insert(ShapeSignature(input_dims)).second;
  }
  DISC_ASSIGN_OR_RETURN(RunResult result,
                        exe->RunWithShapes(input_dims, options));
  if (options_.profile.use_plan_cache) {
    CountPlanLookup(result.profile.launch_plan_hit);
  }
  EngineTiming timing;
  timing.device_us = result.profile.device_time_us;
  timing.kernel_launches =
      result.profile.kernel_launches + result.profile.library_calls;
  timing.bytes_moved =
      result.profile.bytes_read + result.profile.bytes_written;
  timing.peak_memory_bytes = result.profile.peak_memory_bytes;
  double per_query_host = result.profile.launch_plan_hit
                              ? options_.profile.plan_hit_host_us
                              : options_.profile.per_query_host_us;
  timing.host_us = per_query_host +
                   options_.profile.per_launch_host_us *
                       static_cast<double>(timing.kernel_launches);
  timing.alloc_us = options_.profile.per_alloc_host_us *
                    static_cast<double>(result.profile.alloc_calls);
  timing.compile_us = stall_us;
  timing.total_us =
      timing.device_us + timing.host_us + timing.alloc_us + stall_us;
  return timing;
}

Result<std::vector<Tensor>> AsyncCompileEngine::Execute(
    const std::vector<Tensor>& inputs) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  MaybeAdopt(options_.sync_compile && !slot_.has_executable(), nullptr);
  std::shared_ptr<const Executable> exe = slot_.Acquire();
  if (exe == nullptr) {
    ++stats_.fallback_queries;
    CountMetric("engine.fallback.queries");
    return fallback_->Execute(inputs);
  }
  DISC_ASSIGN_OR_RETURN(RunResult result, exe->Run(inputs));
  return result.outputs;
}

void AsyncCompileEngine::SetSimulatedTimeUs(double now_us) {
  sim_now_us_ = now_us;
  fallback_->SetSimulatedTimeUs(now_us);
}

}  // namespace disc
