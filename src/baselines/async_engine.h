// AsyncCompileEngine: serves through the background CompileService.
//
// The deployment-shaped DISC engine. Prepare never compiles on the caller:
// it consults the persistent artifact cache (via a service job) and starts
// serving immediately. Queries that arrive before the executable is ready
// route through the fallback engine (interpreter leg — slower per query,
// zero stall); once the service finishes, the executable is hot-swapped in
// atomically and later queries run compiled. Profile feedback keeps
// watching observed dims and submits background respecialization jobs, so
// the installed executable follows the traffic.
//
// Determinism: compiled-vs-ready is a wall-clock race, useless for gated
// benchmarks. With `simulated_compile_latency_us >= 0` adoption is gated
// on the *simulated* clock instead — the executable is adopted at
// submit_sim_time + latency (disk restores at + cache_load latency),
// independent of real worker speed (we Wait on the wall clock if the
// worker is slower than its simulated deadline, charging no query). The
// same pattern as the fallback chain's fixed compile_stall_us. The
// default -1 adopts as soon as the worker finishes (production mode).
#ifndef DISC_BASELINES_ASYNC_ENGINE_H_
#define DISC_BASELINES_ASYNC_ENGINE_H_

#include <deque>
#include <memory>
#include <set>
#include <string>

#include "baselines/dynamic_engine.h"
#include "baselines/engine.h"
#include "compile_service/compile_service.h"
#include "compile_service/profile_feedback.h"
#include "compile_service/shadow_validate.h"

namespace disc {

struct AsyncEngineOptions {
  /// Compile options + per-query host costs of the compiled path.
  DynamicProfile profile = DynamicProfile::Disc();
  /// Shape-profile feedback (active when profile.feedback_after > 0, which
  /// overrides min_observations).
  ShapeProfileOptions feedback;
  /// Old blocking behavior for comparison (F10's "sync" column): the first
  /// query waits for the service job and is charged the full compile (or
  /// cache-load) latency as a stall.
  bool sync_compile = false;
  /// >= 0: adopt the compiled executable once the simulated clock passes
  /// submit + this many us (deterministic). < 0: adopt when the worker
  /// finishes (wall clock).
  double simulated_compile_latency_us = -1.0;
  /// Adoption latency when the job was restored from the persistent cache
  /// instead of compiled. Only meaningful with
  /// simulated_compile_latency_us >= 0.
  double simulated_cache_load_latency_us = 0.0;
  /// Differential admission gate: every candidate executable (compile,
  /// respecialization, or disk restore) is shadow-validated off-thread
  /// before Swap() may install it. A caught candidate is rejected and its
  /// CacheKey poisoned in the persistent quarantine. Off by default — the
  /// gate adds one validation job per adoption and delays installs by
  /// `simulated_validation_latency_us`, which perturbs adoption-time
  /// baselines (F10) that predate it.
  bool validate_adoptions = false;
  ShadowValidateOptions validation;
  /// Simulated-clock delay between validation submit and adoption (the
  /// off-thread probe-replay time). Only meaningful with
  /// simulated_compile_latency_us >= 0; the serving thread is never
  /// charged.
  double simulated_validation_latency_us = 0.0;
};

class AsyncCompileEngine : public Engine {
 public:
  /// `service` outlives the engine and is shared across engines (one
  /// worker pool per process). `fallback` serves while nothing is
  /// compiled; it must compute identical math (any Engine does).
  AsyncCompileEngine(CompileService* service, std::unique_ptr<Engine> fallback,
                     AsyncEngineOptions options = {});

  const std::string& name() const override { return name_; }

  /// \brief Submits the initial compile job (a prefetch — nothing is
  /// waiting yet) and returns without blocking. With sync_compile the job
  /// is still submitted here but awaited on the first query.
  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>& input_dims,
                             const DeviceSpec& device) override;

  Result<std::vector<Tensor>> Execute(
      const std::vector<Tensor>& inputs) override;

  void SetSimulatedTimeUs(double now_us) override;

  /// Simulated time at which the first executable (any) / the first
  /// hint-specialized executable was adopted; -1 = not yet. F10's
  /// time-to-first-specialized-kernel.
  double first_executable_sim_us() const { return first_executable_sim_us_; }
  double first_specialized_sim_us() const { return first_specialized_sim_us_; }
  int64_t swaps() const { return slot_.generation(); }
  int64_t disk_restores() const { return disk_restores_; }
  const ExecutableSlot& slot() const { return slot_; }
  ShapeProfileFeedback& feedback() { return feedback_; }

  /// Admission-gate observability. `last_validation_report` is null until
  /// the first validation resolves; it reflects the most recent one (pass
  /// or caught).
  int64_t validations_run() const { return validations_run_; }
  int64_t validations_caught() const { return validations_caught_; }
  int64_t rollbacks() const { return slot_.rollbacks(); }
  /// Runtime kDataLoss events (guard violations / corruption detected
  /// while serving) — each triggers poison + rollback (or slot clear).
  int64_t data_loss_events() const { return data_loss_events_; }
  /// Compile submissions refused because the CacheKey is quarantined.
  int64_t poisoned_skips() const { return poisoned_skips_; }
  const ValidationReport* last_validation_report() const {
    return last_validation_report_ ? last_validation_report_.get() : nullptr;
  }

 private:
  /// Submits a compile job carrying `hints` (empty = plain compile).
  /// Refuses (counting poisoned_skips_) when the resulting CacheKey is
  /// quarantined — a warm restart must never recompile a poisoned key.
  void SubmitJob(JobPriority priority, LikelyDimValues hints);
  /// Adopts a finished job if its simulated-clock gate has passed.
  /// `waited_gate_us` (nullable) receives the stall charged when called on
  /// the sync path. With validate_adoptions the finished job is handed to
  /// StartValidation instead of being installed directly.
  void MaybeAdopt(bool sync_wait, double* waited_gate_us);
  /// Installs a validated (or validation-exempt) candidate: Swap + swap
  /// bookkeeping + adopted-key tracking.
  void AdoptNow(const CompileJobOutcome& adopted, bool had_hints);
  /// Submits the kValidate shadow job for `adopted` (probe build happens
  /// on the serving thread — cheap; replay happens on the worker).
  void StartValidation(CompileJobOutcome adopted, bool had_hints);
  /// Resolves a finished validation job: adopt on pass, poison + reject on
  /// caught.
  void MaybeResolveValidation(bool sync_wait);
  /// kDataLoss while serving: poison the installed key, roll back to the
  /// previous generation (or clear the slot when there is none).
  void OnDataLoss(const Status& status);

  CompileService* service_;
  std::unique_ptr<Engine> fallback_;
  AsyncEngineOptions options_;
  std::string name_;

  ExecutableSlot slot_;
  CompileJobHandle pending_job_;
  double pending_submit_sim_us_ = 0.0;
  bool pending_has_hints_ = false;
  double sim_now_us_ = 0.0;

  /// In-flight shadow validation (at most one, like pending_job_).
  CompileJobHandle pending_validation_;
  CompileJobOutcome validation_candidate_;
  bool validation_had_hints_ = false;
  double validation_submit_sim_us_ = 0.0;
  /// Written by the worker task before it finishes; read only after the
  /// job resolves (the handle's done-latch orders the accesses).
  std::shared_ptr<ValidationReport> validation_inflight_report_;
  std::shared_ptr<ValidationReport> last_validation_report_;

  /// CacheKeys of the installed / previous-generation executables, so a
  /// runtime kDataLoss can poison the offending artifact.
  CacheKey current_key_;
  CacheKey previous_key_;
  bool has_current_key_ = false;
  bool has_previous_key_ = false;

  /// Recently served bindings (most recent last), probe fodder for the
  /// validator. Bounded; only maintained when validate_adoptions is on.
  std::deque<std::vector<std::vector<int64_t>>> recent_observed_dims_;

  ShapeProfileFeedback feedback_;
  double first_executable_sim_us_ = -1.0;
  double first_specialized_sim_us_ = -1.0;
  int64_t disk_restores_ = 0;
  int64_t validations_run_ = 0;
  int64_t validations_caught_ = 0;
  int64_t data_loss_events_ = 0;
  int64_t poisoned_skips_ = 0;
  std::set<std::string> captured_signatures_;
};

}  // namespace disc

#endif  // DISC_BASELINES_ASYNC_ENGINE_H_
