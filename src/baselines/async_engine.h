// AsyncCompileEngine: serves through the background CompileService.
//
// The deployment-shaped DISC engine. Prepare never compiles on the caller:
// it consults the persistent artifact cache (via a service job) and starts
// serving immediately. Queries that arrive before the executable is ready
// route through the fallback engine (interpreter leg — slower per query,
// zero stall); once the service finishes, the executable is hot-swapped in
// atomically and later queries run compiled. Profile feedback keeps
// watching observed dims and submits background respecialization jobs, so
// the installed executable follows the traffic.
//
// Determinism: compiled-vs-ready is a wall-clock race, useless for gated
// benchmarks. With `simulated_compile_latency_us >= 0` adoption is gated
// on the *simulated* clock instead — the executable is adopted at
// submit_sim_time + latency (disk restores at + cache_load latency),
// independent of real worker speed (we Wait on the wall clock if the
// worker is slower than its simulated deadline, charging no query). The
// same pattern as the fallback chain's fixed compile_stall_us. The
// default -1 adopts as soon as the worker finishes (production mode).
#ifndef DISC_BASELINES_ASYNC_ENGINE_H_
#define DISC_BASELINES_ASYNC_ENGINE_H_

#include <memory>
#include <set>
#include <string>

#include "baselines/dynamic_engine.h"
#include "baselines/engine.h"
#include "compile_service/compile_service.h"
#include "compile_service/profile_feedback.h"

namespace disc {

struct AsyncEngineOptions {
  /// Compile options + per-query host costs of the compiled path.
  DynamicProfile profile = DynamicProfile::Disc();
  /// Shape-profile feedback (active when profile.feedback_after > 0, which
  /// overrides min_observations).
  ShapeProfileOptions feedback;
  /// Old blocking behavior for comparison (F10's "sync" column): the first
  /// query waits for the service job and is charged the full compile (or
  /// cache-load) latency as a stall.
  bool sync_compile = false;
  /// >= 0: adopt the compiled executable once the simulated clock passes
  /// submit + this many us (deterministic). < 0: adopt when the worker
  /// finishes (wall clock).
  double simulated_compile_latency_us = -1.0;
  /// Adoption latency when the job was restored from the persistent cache
  /// instead of compiled. Only meaningful with
  /// simulated_compile_latency_us >= 0.
  double simulated_cache_load_latency_us = 0.0;
};

class AsyncCompileEngine : public Engine {
 public:
  /// `service` outlives the engine and is shared across engines (one
  /// worker pool per process). `fallback` serves while nothing is
  /// compiled; it must compute identical math (any Engine does).
  AsyncCompileEngine(CompileService* service, std::unique_ptr<Engine> fallback,
                     AsyncEngineOptions options = {});

  const std::string& name() const override { return name_; }

  /// \brief Submits the initial compile job (a prefetch — nothing is
  /// waiting yet) and returns without blocking. With sync_compile the job
  /// is still submitted here but awaited on the first query.
  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>& input_dims,
                             const DeviceSpec& device) override;

  Result<std::vector<Tensor>> Execute(
      const std::vector<Tensor>& inputs) override;

  void SetSimulatedTimeUs(double now_us) override;

  /// Simulated time at which the first executable (any) / the first
  /// hint-specialized executable was adopted; -1 = not yet. F10's
  /// time-to-first-specialized-kernel.
  double first_executable_sim_us() const { return first_executable_sim_us_; }
  double first_specialized_sim_us() const { return first_specialized_sim_us_; }
  int64_t swaps() const { return slot_.generation(); }
  int64_t disk_restores() const { return disk_restores_; }
  const ExecutableSlot& slot() const { return slot_; }
  ShapeProfileFeedback& feedback() { return feedback_; }

 private:
  /// Submits a compile job carrying `hints` (empty = plain compile).
  void SubmitJob(JobPriority priority, LikelyDimValues hints);
  /// Adopts a finished job if its simulated-clock gate has passed.
  /// `waited_gate_us` (nullable) receives the stall charged when called on
  /// the sync path.
  void MaybeAdopt(bool sync_wait, double* waited_gate_us);

  CompileService* service_;
  std::unique_ptr<Engine> fallback_;
  AsyncEngineOptions options_;
  std::string name_;

  ExecutableSlot slot_;
  CompileJobHandle pending_job_;
  double pending_submit_sim_us_ = 0.0;
  bool pending_has_hints_ = false;
  double sim_now_us_ = 0.0;

  ShapeProfileFeedback feedback_;
  double first_executable_sim_us_ = -1.0;
  double first_specialized_sim_us_ = -1.0;
  int64_t disk_restores_ = 0;
  std::set<std::string> captured_signatures_;
};

}  // namespace disc

#endif  // DISC_BASELINES_ASYNC_ENGINE_H_
