// Static-shape compiler engines: XLA, TVM, TensorRT archetypes.
//
// Mechanisms modelled for real:
//   * a shape-signature -> executable cache; a miss triggers an actual
//     compilation (this repo's own compiler, run on a clone whose inputs
//     are pinned static) and charges the profile's compile-time stall;
//   * optional bucketed padding (TensorRT optimization-profile style):
//     dynamic dims round up to the next power of two, queries execute on
//     the padded shape (wasted flops/bytes are real, computed from the
//     padded sizes) — fewer compilations, slower queries;
//   * per-profile kernel quality (a TVM-tuned or TensorRT-selected GEMM
//     beats a generic one) via the library-efficiency knob.
// Static compilation maximizes specialization (every dim is a constant, so
// every guard is provable), which is exactly the advantage the paper says
// static compilers enjoy at the cost of shape generality.
#ifndef DISC_BASELINES_STATIC_ENGINE_H_
#define DISC_BASELINES_STATIC_ENGINE_H_

#include <map>

#include "baselines/engine.h"
#include "compiler/compiler.h"

namespace disc {

struct StaticProfile {
  std::string name = "XLA";
  /// Compile stall = base + per_node * graph-size, charged to the
  /// cache-missing query.
  double compile_base_ms = 150.0;
  double compile_per_node_ms = 2.0;
  /// Pad dynamic dims up to the next power of two and cache per bucket.
  bool bucketing = false;
  /// When > 0, buckets are multiples of this instead of powers of two —
  /// models systems whose tuned engines exist only on a coarse shape grid
  /// (each tuned shape is expensive, so there are few of them).
  int64_t bucket_multiple = 0;
  double gemm_efficiency = 0.85;
  /// Compiler configuration of the archetype. None of the static baselines
  /// has AStitch-style shared-memory stitching, so their per-shape
  /// executables fuse with kLoop/kInput only — the codegen gap the paper
  /// keeps even against warm static caches.
  CompileOptions compile_options;
  /// Replay cache hits as captured CUDA graphs (one driver launch per
  /// query). Off by default — matches the evaluated versions of these
  /// systems; flip on for the launch-overhead ablation.
  bool use_cuda_graph = false;

  static StaticProfile Xla();
  static StaticProfile Tvm();
  static StaticProfile TensorRt();
};

class StaticCompilerEngine : public Engine {
 public:
  explicit StaticCompilerEngine(StaticProfile profile)
      : profile_(std::move(profile)) {}

  const std::string& name() const override { return profile_.name; }

  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(const std::vector<std::vector<int64_t>>& input_dims,
                             const DeviceSpec& device) override;

  /// Test hook: the shape signatures currently cached. Reads the shared
  /// EngineStats counter so the benches and this hook can never disagree
  /// (the counter is maintained on every insert and reset by Prepare).
  int64_t cache_size() const { return stats_.shape_cache_entries; }

 private:
  // Rounds each dynamic dim up to its bucket; static dims pass through.
  std::vector<std::vector<int64_t>> BucketDims(
      const std::vector<std::vector<int64_t>>& dims) const;

  StaticProfile profile_;
  std::map<std::string, std::unique_ptr<Executable>> cache_;
};

}  // namespace disc

#endif  // DISC_BASELINES_STATIC_ENGINE_H_
