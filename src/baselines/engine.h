// The common inference-engine interface the evaluation harness drives.
//
// Every system in the paper's comparison — BladeDISC itself, PyTorch eager,
// TorchScript, ONNX Runtime, XLA, TVM, Torch Inductor (dynamic) and
// TensorRT — is represented by an Engine. The engines are not hard-coded
// speedup ratios: each one implements its real mechanism (per-op dispatch,
// partial fusers, per-shape compilation caches, bucket padding, guard
// re-checks) on top of the shared device model, so who-wins-where emerges
// from the mechanisms, exactly what the paper's evaluation studies.
#ifndef DISC_BASELINES_ENGINE_H_
#define DISC_BASELINES_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "ir/tensor.h"
#include "sim/device.h"
#include "support/status.h"

namespace disc {

/// Cost breakdown of answering one inference query. Invariant (relied on
/// by the serving simulator's per-request ledger, which decomposes every
/// completed request's end-to-end latency into these phases and
/// DISC_CHECKs the sum): total_us == device_us + host_us + compile_us +
/// alloc_us.
struct EngineTiming {
  double total_us = 0.0;    // what a client would measure
  double device_us = 0.0;   // simulated GPU time
  double host_us = 0.0;     // framework dispatch / guard / shape overhead
  double compile_us = 0.0;  // compilation stall triggered by this query
  /// Host-side allocator traffic charged to this query (engines that price
  /// allocator calls via DynamicProfile::per_alloc_host_us; 0 elsewhere).
  double alloc_us = 0.0;
  int64_t kernel_launches = 0;
  int64_t bytes_moved = 0;
  /// Extra traffic+compute caused by padding to a bucketed shape.
  int64_t padded_waste_bytes = 0;
  int64_t peak_memory_bytes = 0;
};

/// Cumulative engine-lifetime counters. One struct for every engine so
/// the benches read hit rates uniformly instead of hand-rolling counters.
struct EngineStats {
  int64_t queries = 0;
  int64_t compilations = 0;
  double total_compile_ms = 0.0;
  /// Entries in the engine's per-shape executable cache (static engines).
  int64_t shape_cache_entries = 0;
  /// Launch-plan cache hits/misses across all queries (engines that run a
  /// shape-polymorphic Executable; zero for interpreters).
  int64_t launch_plan_hits = 0;
  int64_t launch_plan_misses = 0;
  /// Queries served on a degraded path (EngineFallbackChain's interpreter
  /// leg); zero for plain engines. The serving simulator reads the delta
  /// per batch to attribute degraded requests.
  int64_t fallback_queries = 0;
  /// Memory-footprint predictions answered (engines carrying a symbolic
  /// peak formula) and the last predicted arena size in bytes — what
  /// serving's memory-aware admission consulted most recently.
  int64_t memory_predictions = 0;
  int64_t last_predicted_peak_bytes = 0;

  /// Fraction of plan lookups that hit; 0 when no lookups happened.
  double launch_plan_hit_rate() const {
    int64_t total = launch_plan_hits + launch_plan_misses;
    return total > 0 ? static_cast<double>(launch_plan_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// \brief An inference system under test.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual const std::string& name() const = 0;

  /// \brief One-time setup with the model. For AOT systems (DISC) this is
  /// where compilation happens; JIT systems defer to the first Query.
  virtual Status Prepare(
      const Graph& graph,
      std::vector<std::vector<std::string>> input_dim_labels) = 0;

  /// \brief Timing-only inference for one set of input shapes.
  virtual Result<EngineTiming> Query(
      const std::vector<std::vector<int64_t>>& input_dims,
      const DeviceSpec& device) = 0;

  /// \brief Numeric execution (for correctness tests). All engines compute
  /// identical math; the default runs the reference evaluator.
  virtual Result<std::vector<Tensor>> Execute(
      const std::vector<Tensor>& inputs);

  /// \brief The serving simulator announces its simulated clock before
  /// each Query. Default no-op; engines with time-based internal state
  /// (the fallback chain's circuit-breaker cooldown) override it so that
  /// state advances on the *simulated* timeline, keeping replays
  /// deterministic.
  virtual void SetSimulatedTimeUs(double now_us) { (void)now_us; }

  /// \brief Predicted device-memory footprint of a query with these input
  /// shapes, WITHOUT running it (the symbolic peak formula from compile-
  /// time memory planning, evaluated for this signature). Serving uses it
  /// for memory-aware admission: shed a batch whose predicted footprint
  /// exceeds capacity instead of discovering ResourceExhausted mid-run.
  /// Returns 0 when the engine has no prediction (admit unconditionally).
  virtual Result<int64_t> PredictPeakBytes(
      const std::vector<std::vector<int64_t>>& input_dims) {
    (void)input_dims;
    return static_cast<int64_t>(0);
  }

  virtual const EngineStats& stats() const { return stats_; }

 protected:
  Status PrepareCommon(const Graph& graph,
                       std::vector<std::vector<std::string>> labels);

  // Counter choke points: bump the EngineStats field and the matching
  // global registry counter (engine.queries / engine.compilations /
  // engine.plan_cache.{hit,miss}) together so the two views can never
  // drift (asserted in metrics_test).
  void CountQuery();
  void CountCompilation(double compile_ms);
  void CountPlanLookup(bool hit);
  void CountMemoryPrediction(int64_t predicted_bytes);

  std::unique_ptr<Graph> graph_;
  std::vector<std::vector<std::string>> labels_;
  EngineStats stats_;
};

}  // namespace disc

#endif  // DISC_BASELINES_ENGINE_H_
