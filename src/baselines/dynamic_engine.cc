#include "baselines/dynamic_engine.h"

#include <algorithm>

#include "runtime/launch_plan.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

DynamicProfile DynamicProfile::Disc() {
  DynamicProfile profile;
  profile.name = "DISC";
  profile.compile_options = CompileOptions::Default();
  profile.per_query_host_us = 1.0;   // host-side shape program (int math)
  profile.per_launch_host_us = 0.0;
  return profile;
}

DynamicProfile DynamicProfile::DiscWithSpeculation() {
  DynamicProfile profile = Disc();
  profile.name = "DISC+spec";
  profile.feedback_after = 8;
  return profile;
}

DynamicProfile DynamicProfile::TorchInductorDynamic() {
  DynamicProfile profile;
  profile.name = "TorchInductor";
  CompileOptions options;
  options.fusion.enable_stitch = false;  // Triton fusion without stitching
  options.specialize.enable_specialization = false;  // one kernel per graph
  profile.compile_options = options;
  profile.per_query_host_us = 40.0;  // Python guard re-evaluation per call
  profile.per_launch_host_us = 1.5;  // Python-side launcher per kernel
  profile.use_plan_cache = false;    // guards are re-checked every call
  return profile;
}

Status DynamicCompilerEngine::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  DISC_RETURN_IF_ERROR(PrepareCommon(graph, labels));
  DISC_ASSIGN_OR_RETURN(
      executable_,
      DiscCompiler::Compile(graph, std::move(labels),
                            profile_.compile_options));
  CountCompilation(executable_->report().compile_ms);
  return Status::OK();
}

Result<EngineTiming> DynamicCompilerEngine::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (executable_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  TraceScope query_scope(profile_.name, "engine.query");
  CountQuery();

  // Shape-speculation feedback: record observed dynamic dims per label and
  // recompile once with the hot values as hints (modeled as background
  // compilation — the recompile does not stall this query; our measured
  // compile times are single-digit ms).
  if (profile_.feedback_after > 0 && !feedback_applied_) {
    for (size_t i = 0; i < input_dims.size() && i < labels_.size(); ++i) {
      for (size_t d = 0; d < input_dims[i].size() && d < labels_[i].size();
           ++d) {
        if (!labels_[i][d].empty()) {
          observed_[labels_[i][d]][input_dims[i][d]] += 1;
        }
      }
    }
    if (stats_.queries >= profile_.feedback_after) {
      DISC_RETURN_IF_ERROR(RecompileWithFeedback());
      feedback_applied_ = true;
    }
  }

  RunOptions options;
  options.device = device;
  options.use_launch_plan_cache = profile_.use_plan_cache;
  if (profile_.use_cuda_graph) {
    // CUDA-graph capture keys on the same canonical signature as the
    // launch-plan cache: replay only an already-captured signature;
    // capture this one for next time (capture itself runs at normal
    // launch cost).
    options.batch_launches =
        !captured_signatures_.insert(ShapeSignature(input_dims)).second;
  }
  DISC_ASSIGN_OR_RETURN(RunResult result,
                        executable_->RunWithShapes(input_dims, options));
  if (profile_.use_plan_cache) {
    CountPlanLookup(result.profile.launch_plan_hit);
  }
  EngineTiming timing;
  timing.device_us = result.profile.device_time_us;
  timing.kernel_launches =
      result.profile.kernel_launches + result.profile.library_calls;
  timing.bytes_moved =
      result.profile.bytes_read + result.profile.bytes_written;
  timing.peak_memory_bytes = result.profile.peak_memory_bytes;
  // A replayed plan skips the per-query host shape program; only the
  // signature lookup (and any per-launch dispatch) remains.
  double per_query_host = result.profile.launch_plan_hit
                              ? profile_.plan_hit_host_us
                              : profile_.per_query_host_us;
  timing.host_us = per_query_host +
                   profile_.per_launch_host_us *
                       static_cast<double>(timing.kernel_launches);
  timing.total_us = timing.device_us + timing.host_us;
  return timing;
}

Status DynamicCompilerEngine::RecompileWithFeedback() {
  CompileOptions options = profile_.compile_options;
  for (const auto& [label, counts] : observed_) {
    // Most frequent values last (AddLikelyValue keeps most-recent last and
    // speculation takes values from the back).
    std::vector<std::pair<int64_t, int64_t>> by_count(counts.begin(),
                                                      counts.end());
    std::sort(by_count.begin(), by_count.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    std::vector<int64_t> values;
    for (const auto& [value, count] : by_count) values.push_back(value);
    options.likely_dim_values.emplace_back(label, std::move(values));
  }
  DISC_ASSIGN_OR_RETURN(executable_,
                        DiscCompiler::Compile(*graph_, labels_, options));
  CountCompilation(executable_->report().compile_ms);
  return Status::OK();
}

Result<std::vector<Tensor>> DynamicCompilerEngine::Execute(
    const std::vector<Tensor>& inputs) {
  if (executable_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  DISC_ASSIGN_OR_RETURN(RunResult result, executable_->Run(inputs));
  return result.outputs;
}

}  // namespace disc
