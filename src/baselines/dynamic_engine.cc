#include "baselines/dynamic_engine.h"

#include <algorithm>

#include "runtime/launch_plan.h"
#include "support/blame.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

DynamicProfile DynamicProfile::Disc() {
  DynamicProfile profile;
  profile.name = "DISC";
  profile.compile_options = CompileOptions::Default();
  profile.per_query_host_us = 1.0;   // host-side shape program (int math)
  profile.per_launch_host_us = 0.0;
  return profile;
}

DynamicProfile DynamicProfile::DiscWithSpeculation() {
  DynamicProfile profile = Disc();
  profile.name = "DISC+spec";
  profile.feedback_after = 8;
  return profile;
}

DynamicProfile DynamicProfile::DiscArena() {
  DynamicProfile profile = Disc();
  profile.name = "DISC+arena";
  profile.memory_mode = MemoryMode::kArena;
  return profile;
}

DynamicProfile DynamicProfile::TorchInductorDynamic() {
  DynamicProfile profile;
  profile.name = "TorchInductor";
  CompileOptions options;
  options.fusion.enable_stitch = false;  // Triton fusion without stitching
  options.specialize.enable_specialization = false;  // one kernel per graph
  profile.compile_options = options;
  profile.per_query_host_us = 40.0;  // Python guard re-evaluation per call
  profile.per_launch_host_us = 1.5;  // Python-side launcher per kernel
  profile.use_plan_cache = false;    // guards are re-checked every call
  return profile;
}

Status DynamicCompilerEngine::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  DISC_RETURN_IF_ERROR(PrepareCommon(graph, labels));
  DISC_ASSIGN_OR_RETURN(
      std::unique_ptr<Executable> compiled,
      DiscCompiler::Compile(graph, std::move(labels),
                            profile_.compile_options));
  executable_ = std::shared_ptr<const Executable>(std::move(compiled));
  CountCompilation(executable_->report().compile_ms);
  if (profile_.feedback_after > 0) {
    ShapeProfileOptions feedback_options;
    feedback_options.min_observations = profile_.feedback_after;
    feedback_ = ShapeProfileFeedback(feedback_options);
  }
  return Status::OK();
}

Result<EngineTiming> DynamicCompilerEngine::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (executable_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  TraceScope query_scope(profile_.name, "engine.query");
  CountQuery();

  // Shape-speculation feedback: aggregate observed dim values per label
  // and respecialize with the hot values as hints — through the compile
  // service when one is attached (truly off the query thread), else
  // synchronously in place. The profile keeps watching afterwards, so a
  // shifted hot-value distribution respecializes again.
  if (profile_.feedback_after > 0) {
    DISC_RETURN_IF_ERROR(MaybeRespecialize(input_dims));
  }

  RunOptions options;
  options.device = device;
  options.use_launch_plan_cache = profile_.use_plan_cache;
  options.memory_mode = profile_.memory_mode;
  options.memory_limit_bytes = profile_.memory_limit_bytes;
  if (profile_.use_cuda_graph) {
    // CUDA-graph capture keys on the same canonical signature as the
    // launch-plan cache: replay only an already-captured signature;
    // capture this one for next time (capture itself runs at normal
    // launch cost).
    options.batch_launches =
        !captured_signatures_.insert(ShapeSignature(input_dims)).second;
  }
  DISC_ASSIGN_OR_RETURN(RunResult result,
                        executable_->RunWithShapes(input_dims, options));
  if (profile_.use_plan_cache) {
    CountPlanLookup(result.profile.launch_plan_hit);
  }
  EngineTiming timing;
  timing.device_us = result.profile.device_time_us;
  timing.kernel_launches =
      result.profile.kernel_launches + result.profile.library_calls;
  timing.bytes_moved =
      result.profile.bytes_read + result.profile.bytes_written;
  timing.peak_memory_bytes = result.profile.peak_memory_bytes;
  // A replayed plan skips the per-query host shape program; only the
  // signature lookup (and any per-launch dispatch) remains.
  double per_query_host = result.profile.launch_plan_hit
                              ? profile_.plan_hit_host_us
                              : profile_.per_query_host_us;
  timing.host_us = per_query_host +
                   profile_.per_launch_host_us *
                       static_cast<double>(timing.kernel_launches);
  timing.alloc_us = profile_.per_alloc_host_us *
                    static_cast<double>(result.profile.alloc_calls);
  timing.total_us = timing.device_us + timing.host_us + timing.alloc_us;
  if (query_scope.active()) {
    query_scope.AddArg("trace_id",
                       std::to_string(RequestContext::CurrentTraceId()));
    query_scope.AddArg("plan", result.profile.launch_plan_hit ? "hit"
                                                              : "miss");
  }
  return timing;
}

Status DynamicCompilerEngine::MaybeRespecialize(
    const std::vector<std::vector<int64_t>>& input_dims) {
  // Adopt a finished background respecialization before anything else, so
  // this query already runs on the better kernels.
  if (pending_job_.valid()) {
    if (const CompileJobOutcome* done = pending_job_.TryGet()) {
      CompileJobOutcome outcome = *done;
      pending_job_ = CompileJobHandle();
      if (outcome.status.ok() && outcome.executable != nullptr) {
        // Hot-swap: the outgoing executable's launch plans encode its own
        // buffer sizes/variants and must not survive it.
        if (executable_ != nullptr) executable_->ClearPlanCache();
        executable_ = std::move(outcome.executable);
        captured_signatures_.clear();
        if (!outcome.from_disk_cache) {
          CountCompilation(executable_->report().compile_ms);
        }
      }
      // A failed job keeps the current executable; the profile re-emits on
      // the next shift.
    }
  }

  feedback_.Observe(labels_, input_dims);
  if (pending_job_.valid()) return Status::OK();  // one job at a time
  auto hints = feedback_.MaybeRespecialize();
  if (!hints.has_value()) return Status::OK();

  if (service_ != nullptr && !profile_.sync_compile_fallback) {
    CompileJobRequest request;
    request.model_name = graph_->name();
    request.graph = graph_.get();
    request.labels = labels_;
    request.options = profile_.compile_options;
    // A hint set exists to mint speculative variants; leaving a
    // no-specialization base config in place would silently discard it.
    request.options.specialize.enable_specialization = true;
    request.options.likely_dim_values = std::move(*hints);
    request.priority = JobPriority::kRespecialize;
    pending_job_ = service_->Submit(std::move(request));
    return Status::OK();
  }
  return RecompileWithFeedback(*hints);
}

Status DynamicCompilerEngine::NoteKernelRegret(
    const std::vector<std::vector<int64_t>>& input_dims, double regret_us) {
  if (profile_.feedback_after <= 0 || regret_us <= 0.0) return Status::OK();
  feedback_.NoteRegret(labels_, input_dims, regret_us);
  // Reuse the per-query path: it adopts any finished background job first,
  // then re-evaluates the armed profile (regret bypasses the recheck
  // cadence inside the feedback) and routes the recompile sync or async.
  return MaybeRespecialize(input_dims);
}

Status DynamicCompilerEngine::RecompileWithFeedback(
    const LikelyDimValues& hints) {
  CompileOptions options = profile_.compile_options;
  // Same override as the service path: hints are a request for speculative
  // variants, so respecialization always compiles with specialization on.
  options.specialize.enable_specialization = true;
  // Hints arrive most-frequent-last (AddLikelyValue keeps most-recent last
  // and speculation takes values from the back).
  for (const auto& hint : hints) options.likely_dim_values.push_back(hint);
  DISC_ASSIGN_OR_RETURN(std::unique_ptr<Executable> compiled,
                        DiscCompiler::Compile(*graph_, labels_, options));
  executable_ = std::shared_ptr<const Executable>(std::move(compiled));
  captured_signatures_.clear();
  CountCompilation(executable_->report().compile_ms);
  return Status::OK();
}

Result<int64_t> DynamicCompilerEngine::PredictPeakBytes(
    const std::vector<std::vector<int64_t>>& input_dims) {
  if (executable_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  DISC_ASSIGN_OR_RETURN(int64_t predicted,
                        executable_->PredictPeakBytes(input_dims));
  CountMemoryPrediction(predicted);
  return predicted;
}

Result<std::vector<Tensor>> DynamicCompilerEngine::Execute(
    const std::vector<Tensor>& inputs) {
  if (executable_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  DISC_ASSIGN_OR_RETURN(RunResult result, executable_->Run(inputs));
  return result.outputs;
}

}  // namespace disc
