#include "baselines/static_engine.h"

#include "runtime/launch_plan.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/trace.h"

namespace disc {

StaticProfile StaticProfile::Xla() {
  StaticProfile profile;
  profile.name = "XLA";
  profile.compile_base_ms = 200.0;
  profile.compile_per_node_ms = 3.0;
  profile.bucketing = false;  // recompiles per exact shape
  profile.gemm_efficiency = 0.85;
  profile.compile_options.fusion.enable_stitch = false;
  return profile;
}

StaticProfile StaticProfile::Tvm() {
  StaticProfile profile;
  profile.name = "TVM";
  // Auto-scheduling/tuning per shape is minutes-to-hours; scaled down to
  // keep sweeps runnable while remaining an order of magnitude above the
  // others (relative ordering is what matters).
  profile.compile_base_ms = 2000.0;
  profile.compile_per_node_ms = 40.0;
  // TVM (pre-Relax) requires static shapes; dynamic serving deploys it
  // with bucketed padding — and because each bucket costs a tuning run,
  // deployments keep the grid coarse (multiples of 64 here).
  profile.bucketing = true;
  profile.bucket_multiple = 64;
  profile.gemm_efficiency = 0.92;  // tuned kernels
  profile.compile_options.fusion.enable_stitch = false;
  return profile;
}

StaticProfile StaticProfile::TensorRt() {
  StaticProfile profile;
  profile.name = "TensorRT";
  profile.compile_base_ms = 600.0;  // engine build
  profile.compile_per_node_ms = 6.0;
  profile.bucketing = true;  // optimization profiles + padding
  profile.gemm_efficiency = 0.92;  // kernel selection from tactic library
  profile.compile_options.fusion.enable_stitch = false;
  return profile;
}

Status StaticCompilerEngine::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  cache_.clear();
  stats_.shape_cache_entries = 0;
  return PrepareCommon(graph, std::move(labels));
}

std::vector<std::vector<int64_t>> StaticCompilerEngine::BucketDims(
    const std::vector<std::vector<int64_t>>& dims) const {
  if (!profile_.bucketing) return dims;
  std::vector<std::vector<int64_t>> bucketed = dims;
  for (size_t i = 0; i < bucketed.size() && i < graph_->inputs().size();
       ++i) {
    const TensorType& declared = graph_->inputs()[i]->type();
    for (size_t d = 0; d < bucketed[i].size(); ++d) {
      if (declared.dims[d] == kDynamicDim) {
        int64_t dim = std::max<int64_t>(1, bucketed[i][d]);
        bucketed[i][d] = profile_.bucket_multiple > 0
                             ? RoundUp(dim, profile_.bucket_multiple)
                             : NextPowerOfTwo(dim);
      }
    }
  }
  return bucketed;
}

Result<EngineTiming> StaticCompilerEngine::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (graph_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  TraceScope query_scope(profile_.name, "engine.query");
  CountQuery();
  EngineTiming timing;

  std::vector<std::vector<int64_t>> exec_dims = BucketDims(input_dims);
  const std::string key = ShapeSignature(exec_dims);

  auto it = cache_.find(key);
  if (it == cache_.end()) {
    // Cache miss: clone, pin the inputs static, compile. Static inputs make
    // every symbolic dim a constant, so specialization is maximal.
    std::unique_ptr<Graph> pinned = graph_->Clone();
    DISC_RETURN_IF_ERROR(pinned->SpecializeInputs(exec_dims));
    DISC_ASSIGN_OR_RETURN(
        std::unique_ptr<Executable> exe,
        DiscCompiler::Compile(*pinned, labels_, profile_.compile_options));
    double stall_ms = profile_.compile_base_ms +
                      profile_.compile_per_node_ms *
                          static_cast<double>(graph_->num_nodes());
    timing.compile_us = stall_ms * 1e3;
    CountCompilation(stall_ms);
    query_scope.AddArg("compile_stall", "true");
    it = cache_.emplace(key, std::move(exe)).first;
    stats_.shape_cache_entries = static_cast<int64_t>(cache_.size());
  }

  RunOptions run_options;
  run_options.device = device;
  run_options.library_efficiency = profile_.gemm_efficiency;
  // With use_cuda_graph, a compiled shape's engine captures a graph and
  // every cache hit replays it (legal: the engine is shape-static). Off by
  // default to match the paper's era of these systems.
  run_options.batch_launches =
      profile_.use_cuda_graph && timing.compile_us == 0.0;
  DISC_ASSIGN_OR_RETURN(RunResult result,
                        it->second->RunWithShapes(exec_dims, run_options));
  // Each per-shape executable has its own plan cache; after a shape's first
  // query every repeat is a plan hit, so the aggregate hit rate tracks the
  // shape-repeat rate just like the dynamic engine's.
  CountPlanLookup(result.profile.launch_plan_hit);

  timing.device_us = result.profile.device_time_us;
  timing.kernel_launches =
      result.profile.kernel_launches + result.profile.library_calls;
  timing.bytes_moved =
      result.profile.bytes_read + result.profile.bytes_written;
  timing.peak_memory_bytes = result.profile.peak_memory_bytes;
  timing.host_us = 1.0;  // thin C++ runtime dispatch

  if (profile_.bucketing && exec_dims != input_dims) {
    // Padding waste: bytes actually moved minus what the true shapes need,
    // plus the pad/slice copies at the boundary.
    DeviceModel model(device);
    int64_t true_bytes = 0;
    int64_t padded_bytes = 0;
    for (size_t i = 0; i < input_dims.size(); ++i) {
      int64_t elem = DTypeSize(graph_->inputs()[i]->type().dtype);
      true_bytes += Product(input_dims[i]) * elem;
      padded_bytes += Product(exec_dims[i]) * elem;
    }
    timing.padded_waste_bytes = padded_bytes - true_bytes;
    // Pad + unpad copies (one extra pass over inputs).
    KernelStats pad_stats;
    pad_stats.bytes_read = true_bytes;
    pad_stats.bytes_written = padded_bytes;
    pad_stats.num_blocks = std::max<int64_t>(1, padded_bytes / 4 / 256);
    pad_stats.threads_per_block = 256;
    KernelVariant pad_variant;
    pad_variant.vector_width = 4;
    pad_variant.broadcast_free = true;
    timing.device_us += model.EstimateGenerated(pad_stats, pad_variant).time_us;
    timing.kernel_launches += 1;
  }

  timing.total_us = timing.device_us + timing.host_us + timing.compile_us;
  return timing;
}

}  // namespace disc
