// EngineFallbackChain: compiled fast path + interpreter fallback behind a
// circuit breaker.
//
// Nimble splits a dynamic model into a compiled fast path and a fallback
// executor; a robust server needs the same split as a *degradation*
// structure. The chain serves every query from the primary engine (DISC)
// while it is healthy. When the primary fails — a compilation error on the
// serving path, a kernel fault, allocator exhaustion — the query transpar-
// ently falls back to the interpreter leg (identical math, slower), and a
// circuit breaker decides when to stop even trying the primary:
//
//   kClosed    — primary first; K consecutive failures open the breaker.
//   kOpen      — fallback only: a poisoned shape bucket must not re-stall
//                every batch with a doomed compile. After `cooldown_us` of
//                *simulated* time the breaker half-opens.
//   kHalfOpen  — the next query probes the primary once: success closes
//                the breaker, failure re-opens it for another cooldown.
//
// The breaker clock is the serving simulator's clock (SetSimulatedTimeUs),
// so chaos replays are bit-reproducible. Every transition is recorded (for
// tests), counted (serving.breaker.* metrics) and emitted as an instant
// trace event on the simulated timeline.
//
// The primary is (re)compiled lazily on the query path: if Prepare's
// compile failed, each closed/half-open query retries it, modelling the
// shape-cache-miss compile stall the paper's runtime pays. The measured
// stall is charged to the query's compile_us (or a fixed simulated stall
// when `compile_stall_us >= 0`, which the deterministic benches use).
#ifndef DISC_BASELINES_FALLBACK_CHAIN_H_
#define DISC_BASELINES_FALLBACK_CHAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/engine.h"

namespace disc {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// One recorded breaker state change (chronological).
struct BreakerTransition {
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  double sim_time_us = 0.0;
  std::string reason;
};

struct FallbackChainOptions {
  /// Consecutive primary failures that open the breaker.
  int64_t failure_threshold = 3;
  /// Simulated time the breaker stays open before a half-open probe.
  double cooldown_us = 20000.0;
  /// When >= 0: charge this fixed simulated stall per compile attempt on
  /// the query path instead of the measured wall-clock compile time.
  /// Deterministic benches set it so BENCH_F9.json is runner-independent.
  double compile_stall_us = -1.0;
};

class EngineFallbackChain : public Engine {
 public:
  /// `primary` is the compiled fast path, `fallback` the always-available
  /// degraded path (typically an InterpreterEngine — its Prepare never
  /// compiles, so it cannot fail the way the primary can).
  EngineFallbackChain(std::unique_ptr<Engine> primary,
                      std::unique_ptr<Engine> fallback,
                      FallbackChainOptions options = {});

  const std::string& name() const override { return name_; }

  /// \brief Prepares the fallback eagerly (must succeed) and attempts the
  /// primary's compile. A primary failure does NOT fail Prepare — it
  /// counts toward the breaker and the compile is retried on the query
  /// path.
  Status Prepare(const Graph& graph,
                 std::vector<std::vector<std::string>> labels) override;

  Result<EngineTiming> Query(
      const std::vector<std::vector<int64_t>>& input_dims,
      const DeviceSpec& device) override;

  /// \brief Routes like Query: primary when the breaker allows and the
  /// compile is live, otherwise the fallback. Faults only ever change the
  /// route, never the numerics.
  Result<std::vector<Tensor>> Execute(
      const std::vector<Tensor>& inputs) override;

  void SetSimulatedTimeUs(double now_us) override;

  BreakerState breaker_state() const { return state_; }
  const std::vector<BreakerTransition>& breaker_transitions() const {
    return transitions_;
  }
  int64_t consecutive_failures() const { return consecutive_failures_; }
  bool primary_prepared() const { return primary_prepared_; }

  Engine* primary() { return primary_.get(); }
  Engine* fallback() { return fallback_.get(); }

 private:
  /// Compiles the primary if it is not live; adds the stall to *stall_us.
  Status EnsurePrimaryPrepared(double* stall_us);
  void OnPrimaryFailure(const Status& status);
  void OnPrimarySuccess();
  void Transition(BreakerState to, const std::string& reason);

  std::unique_ptr<Engine> primary_;
  std::unique_ptr<Engine> fallback_;
  FallbackChainOptions options_;
  std::string name_;

  bool primary_prepared_ = false;
  BreakerState state_ = BreakerState::kClosed;
  int64_t consecutive_failures_ = 0;
  double opened_at_us_ = 0.0;
  double sim_now_us_ = 0.0;
  std::vector<BreakerTransition> transitions_;
};

}  // namespace disc

#endif  // DISC_BASELINES_FALLBACK_CHAIN_H_
