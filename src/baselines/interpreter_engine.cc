#include "baselines/interpreter_engine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "kernel/library.h"
#include "runtime/allocator.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/trace.h"

namespace disc {

InterpreterProfile InterpreterProfile::PyTorch() {
  InterpreterProfile profile;
  profile.name = "PyTorch";
  profile.per_op_host_us = 5.0;  // python dispatch + shape infer + launch
  profile.fuse_pointwise_chains = false;
  profile.vendor_composites = false;
  profile.gemm_efficiency = 0.85;
  return profile;
}

InterpreterProfile InterpreterProfile::TorchScript() {
  InterpreterProfile profile;
  profile.name = "TorchScript";
  profile.per_op_host_us = 2.5;  // C++ interpreter dispatch
  profile.fuse_pointwise_chains = true;
  profile.vendor_composites = false;
  profile.gemm_efficiency = 0.85;
  return profile;
}

InterpreterProfile InterpreterProfile::OnnxRuntime() {
  InterpreterProfile profile;
  profile.name = "ONNXRuntime";
  profile.per_op_host_us = 2.0;  // lean C++ runtime
  profile.fuse_pointwise_chains = true;
  profile.vendor_composites = true;  // contrib fused kernels
  profile.gemm_efficiency = 0.87;
  return profile;
}

namespace {

// Scalar-constant test used by the matchers.
bool IsScalarConst(const Value* v, double value, double tol = 1e-4) {
  const Node* producer = v->producer();
  if (producer == nullptr || producer->kind() != OpKind::kConstant) {
    return false;
  }
  const Tensor& t = producer->GetTensorAttr("value");
  return t.num_elements() == 1 &&
         std::abs(t.ElementAsDouble(0) - value) < tol;
}

const Node* ProducerIf(const Value* v, OpKind kind) {
  const Node* producer = v->producer();
  return (producer != nullptr && producer->kind() == kind) ? producer
                                                           : nullptr;
}

bool IsKeepDimsReduce(const Node* node, OpKind kind) {
  return node != nullptr && node->kind() == kind &&
         node->GetIntAttr("keep_dims", 0) != 0;
}

}  // namespace

std::vector<const Node*> MatchSoftmax(const Node* div_root) {
  if (div_root == nullptr || div_root->kind() != OpKind::kDiv) return {};
  const Node* exp = ProducerIf(div_root->operand(0), OpKind::kExp);
  const Node* rsum = ProducerIf(div_root->operand(1), OpKind::kReduceSum);
  if (exp == nullptr || !IsKeepDimsReduce(rsum, OpKind::kReduceSum)) {
    return {};
  }
  if (rsum->operand(0) != exp->output(0)) return {};
  const Node* sub = ProducerIf(exp->operand(0), OpKind::kSub);
  if (sub == nullptr) return {};
  const Node* rmax = ProducerIf(sub->operand(1), OpKind::kReduceMax);
  if (!IsKeepDimsReduce(rmax, OpKind::kReduceMax)) return {};
  if (rmax->operand(0) != sub->operand(0)) return {};
  return {rmax, sub, exp, rsum, div_root};
}

std::vector<const Node*> MatchLayerNorm(const Node* add_root) {
  if (add_root == nullptr || add_root->kind() != OpKind::kAdd) return {};
  const Node* mul_scale = ProducerIf(add_root->operand(0), OpKind::kMul);
  if (mul_scale == nullptr) return {};
  const Node* normalized = ProducerIf(mul_scale->operand(0), OpKind::kMul);
  if (normalized == nullptr) return {};
  const Node* centered = ProducerIf(normalized->operand(0), OpKind::kSub);
  const Node* inv_std = ProducerIf(normalized->operand(1), OpKind::kRsqrt);
  if (centered == nullptr || inv_std == nullptr) return {};
  const Node* add_eps = ProducerIf(inv_std->operand(0), OpKind::kAdd);
  if (add_eps == nullptr) return {};
  const Node* var = ProducerIf(add_eps->operand(0), OpKind::kReduceMean);
  if (!IsKeepDimsReduce(var, OpKind::kReduceMean)) return {};
  const Node* mul_cc = ProducerIf(var->operand(0), OpKind::kMul);
  if (mul_cc == nullptr || mul_cc->operand(0) != centered->output(0) ||
      mul_cc->operand(1) != centered->output(0)) {
    return {};
  }
  const Node* mean = ProducerIf(centered->operand(1), OpKind::kReduceMean);
  if (!IsKeepDimsReduce(mean, OpKind::kReduceMean)) return {};
  if (mean->operand(0) != centered->operand(0)) return {};
  return {mean,    centered, mul_cc,    var,     add_eps,
          inv_std, normalized, mul_scale, add_root};
}

std::vector<const Node*> MatchGelu(const Node* mul_root) {
  // Mul(Mul(0.5, x), Add(1, Tanh(inner)))
  if (mul_root == nullptr || mul_root->kind() != OpKind::kMul) return {};
  const Node* half_x = ProducerIf(mul_root->operand(0), OpKind::kMul);
  const Node* one_plus = ProducerIf(mul_root->operand(1), OpKind::kAdd);
  if (half_x == nullptr || one_plus == nullptr) return {};
  if (!IsScalarConst(half_x->operand(0), 0.5)) return {};
  if (!IsScalarConst(one_plus->operand(0), 1.0)) return {};
  const Node* tanh = ProducerIf(one_plus->operand(1), OpKind::kTanh);
  if (tanh == nullptr) return {};
  const Node* inner = ProducerIf(tanh->operand(0), OpKind::kMul);
  if (inner == nullptr || !IsScalarConst(inner->operand(0), 0.7978845608)) {
    return {};
  }
  const Node* add_x = ProducerIf(inner->operand(1), OpKind::kAdd);
  if (add_x == nullptr) return {};
  const Node* m044 = ProducerIf(add_x->operand(1), OpKind::kMul);
  if (m044 == nullptr || !IsScalarConst(m044->operand(0), 0.044715)) {
    return {};
  }
  const Node* x3 = ProducerIf(m044->operand(1), OpKind::kMul);
  if (x3 == nullptr) return {};
  const Node* xx = ProducerIf(x3->operand(0), OpKind::kMul);
  if (xx == nullptr) return {};
  return {xx, x3, m044, add_x, inner, tanh, one_plus, half_x, mul_root};
}

Status InterpreterEngine::Prepare(
    const Graph& graph, std::vector<std::vector<std::string>> labels) {
  DISC_RETURN_IF_ERROR(PrepareCommon(graph, std::move(labels)));
  analysis_ = std::make_unique<ShapeAnalysis>(graph_.get(), labels_);
  DISC_RETURN_IF_ERROR(analysis_->Run());
  BuildUnits();
  return Status::OK();
}

void InterpreterEngine::BuildUnits() {
  units_.clear();
  std::vector<Node*> topo = graph_->TopologicalOrder();
  std::unordered_set<const Node*> assigned;

  auto all_internal_uses = [&](const std::vector<const Node*>& members) {
    std::unordered_set<const Node*> inside(members.begin(), members.end());
    for (const Node* member : members) {
      if (member == members.back()) continue;  // root may escape
      for (const Value* out : member->outputs()) {
        for (const Node* user : out->users()) {
          if (!inside.count(user)) return false;
        }
        for (const Value* go : graph_->outputs()) {
          if (go == out) return false;
        }
      }
    }
    return true;
  };

  // 1. Vendor composite kernels (matched bottom-up from candidate roots).
  if (profile_.vendor_composites) {
    for (const Node* node : topo) {
      for (auto matcher : {MatchSoftmax, MatchLayerNorm, MatchGelu}) {
        std::vector<const Node*> members = matcher(node);
        if (members.empty()) continue;
        bool clean = all_internal_uses(members);
        for (const Node* member : members) {
          if (assigned.count(member)) clean = false;
        }
        if (!clean) continue;
        Unit unit;
        unit.kind = Unit::Kind::kComposite;
        unit.nodes = members;
        for (const Node* member : members) {
          assigned.insert(member);
          if (IsReduction(member->kind())) unit.has_reduce = true;
        }
        ComputeUnitBoundaries(&unit);
        units_.push_back(std::move(unit));
        break;
      }
    }
  }

  // 2. Pointwise chains (TorchScript-style): grow maximal chains through
  // single-use elementwise producers.
  std::unordered_map<const Node*, int> chain_of;
  std::vector<std::vector<const Node*>> chains;
  if (profile_.fuse_pointwise_chains) {
    for (const Node* node : topo) {
      if (assigned.count(node)) continue;
      if (node->op_class() != OpClass::kElementwise) continue;
      // Join the chain of an elementwise producer whose only use is here.
      int joined = -1;
      for (const Value* operand : node->operands()) {
        const Node* producer = operand->producer();
        if (producer == nullptr || assigned.count(producer)) continue;
        if (!chain_of.count(producer)) continue;
        if (operand->users().size() != 1) continue;
        bool is_graph_output = false;
        for (const Value* go : graph_->outputs()) {
          if (go == operand) is_graph_output = true;
        }
        if (is_graph_output) continue;
        joined = chain_of[producer];
        break;
      }
      if (joined < 0) {
        joined = static_cast<int>(chains.size());
        chains.emplace_back();
      }
      chains[joined].push_back(node);
      chain_of[node] = joined;
    }
    for (const auto& chain : chains) {
      if (chain.size() < 2) continue;  // singletons handled below
      Unit unit;
      unit.kind = Unit::Kind::kDevice;
      unit.nodes = chain;
      for (const Node* member : chain) assigned.insert(member);
      ComputeUnitBoundaries(&unit);
      units_.push_back(std::move(unit));
    }
  }

  // 3. Everything else: one unit per node.
  for (const Node* node : topo) {
    if (assigned.count(node)) continue;
    Unit unit;
    unit.nodes = {node};
    if (node->kind() == OpKind::kConstant) {
      unit.kind = Unit::Kind::kConstant;
    } else if (node->op_class() == OpClass::kShape ||
               (IsIntegral(node->output(0)->dtype()) &&
                analysis_->GetContent(node->output(0)) != nullptr)) {
      unit.kind = Unit::Kind::kHost;
    } else if (node->op_class() == OpClass::kLibrary) {
      unit.kind = Unit::Kind::kLibrary;
    } else {
      unit.kind = Unit::Kind::kDevice;
      unit.has_reduce = IsReduction(node->kind());
    }
    ComputeUnitBoundaries(&unit);
    units_.push_back(std::move(unit));
  }

  // Order units by the topological position of their last member so the
  // liveness accounting in Query sees a valid schedule.
  std::unordered_map<const Node*, size_t> pos;
  for (size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  std::sort(units_.begin(), units_.end(),
            [&](const Unit& a, const Unit& b) {
              return pos.at(a.nodes.back()) < pos.at(b.nodes.back());
            });
}

void InterpreterEngine::ComputeUnitBoundaries(Unit* unit) const {
  std::unordered_set<const Node*> inside(unit->nodes.begin(),
                                         unit->nodes.end());
  std::unordered_set<const Value*> seen;
  for (const Node* node : unit->nodes) {
    for (const Value* operand : node->operands()) {
      if (operand->producer() != nullptr && inside.count(operand->producer())) {
        continue;
      }
      if (seen.insert(operand).second) unit->inputs.push_back(operand);
    }
    for (const Value* out : node->outputs()) {
      bool external = false;
      for (const Node* user : out->users()) {
        if (!inside.count(user)) external = true;
      }
      for (const Value* go : graph_->outputs()) {
        if (go == out) external = true;
      }
      if (external) unit->outputs.push_back(out);
    }
  }
  if (unit->outputs.empty() && !unit->nodes.empty()) {
    unit->outputs.push_back(unit->nodes.back()->output(0));
  }
}

int64_t InterpreterEngine::num_device_units() const {
  int64_t n = 0;
  for (const Unit& unit : units_) {
    if (unit.kind == Unit::Kind::kDevice ||
        unit.kind == Unit::Kind::kComposite ||
        unit.kind == Unit::Kind::kLibrary) {
      ++n;
    }
  }
  return n;
}

Result<EngineTiming> InterpreterEngine::Query(
    const std::vector<std::vector<int64_t>>& input_dims,
    const DeviceSpec& device) {
  if (analysis_ == nullptr) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  TraceScope query_scope(profile_.name, "engine.query");
  DISC_ASSIGN_OR_RETURN(SymbolBindings bindings,
                        analysis_->BindInputs(input_dims));
  DeviceModel model(device);
  EngineTiming timing;
  CachingAllocator allocator;
  CountQuery();

  auto numel_of = [&](const Value* v) -> Result<int64_t> {
    DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims,
                          analysis_->EvaluateShape(v, bindings));
    return Product(dims);
  };

  // Liveness for peak-memory accounting.
  std::unordered_map<const Value*, size_t> last_use;
  for (size_t u = 0; u < units_.size(); ++u) {
    for (const Value* in : units_[u].inputs) last_use[in] = u;
  }
  std::unordered_set<const Value*> graph_outputs(graph_->outputs().begin(),
                                                 graph_->outputs().end());
  std::unordered_map<const Value*, int64_t> block_of;

  for (size_t u = 0; u < units_.size(); ++u) {
    const Unit& unit = units_[u];
    switch (unit.kind) {
      case Unit::Kind::kConstant: {
        const Value* out = unit.nodes[0]->output(0);
        DISC_ASSIGN_OR_RETURN(int64_t n, numel_of(out));
        DISC_ASSIGN_OR_RETURN(block_of[out],
                              allocator.Allocate(n * DTypeSize(out->dtype())));
        break;
      }
      case Unit::Kind::kHost: {
        timing.host_us += profile_.per_op_host_us;
        break;
      }
      case Unit::Kind::kLibrary: {
        DISC_ASSIGN_OR_RETURN(
            LibraryCallStats stats,
            ComputeLibraryStats(*unit.nodes[0], *analysis_, bindings));
        KernelCost cost =
            model.EstimateLibrary(stats, profile_.gemm_efficiency);
        timing.device_us += cost.time_us;
        timing.host_us += profile_.per_op_host_us;
        timing.kernel_launches += 1;
        timing.bytes_moved += stats.bytes_read + stats.bytes_written;
        break;
      }
      case Unit::Kind::kDevice:
      case Unit::Kind::kComposite: {
        KernelStats stats;
        for (const Value* in : unit.inputs) {
          DISC_ASSIGN_OR_RETURN(int64_t n, numel_of(in));
          stats.bytes_read += n * DTypeSize(in->dtype());
        }
        for (const Value* out : unit.outputs) {
          DISC_ASSIGN_OR_RETURN(int64_t n, numel_of(out));
          stats.bytes_written += n * DTypeSize(out->dtype());
        }
        int64_t rows = 0;
        int64_t row = 0;
        for (const Node* node : unit.nodes) {
          int64_t domain;
          if (IsReduction(node->kind())) {
            DISC_ASSIGN_OR_RETURN(domain, numel_of(node->operand(0)));
            DISC_ASSIGN_OR_RETURN(int64_t out_n,
                                  numel_of(node->output(0)));
            rows = out_n;
            row = out_n > 0 ? domain / out_n : 0;
          } else {
            DISC_ASSIGN_OR_RETURN(domain, numel_of(node->output(0)));
          }
          stats.flops += domain * std::max<int64_t>(OpFlopCost(node->kind()),
                                                    1);
          stats.index_ops += domain;
        }
        // Handwritten framework kernels: well-vectorized, tight indexing.
        KernelVariant variant;
        variant.vector_width = 4;
        variant.broadcast_free = true;
        if (unit.has_reduce) {
          variant.schedule = (row <= 1024 && rows >= 1024)
                                 ? ReduceSchedule::kWarpPerRow
                                 : ReduceSchedule::kBlockPerRow;
          if (variant.schedule == ReduceSchedule::kWarpPerRow) {
            stats.threads_per_block = 256;
            stats.num_blocks = std::max<int64_t>(1, CeilDiv(rows, 8));
          } else {
            stats.threads_per_block =
                std::min<int64_t>(1024, std::max<int64_t>(32, RoundUp(row, 32)));
            stats.num_blocks = std::max<int64_t>(1, rows);
          }
        } else {
          DISC_ASSIGN_OR_RETURN(int64_t out_n,
                                numel_of(unit.nodes.back()->output(0)));
          stats.threads_per_block = 256;
          stats.num_blocks = std::max<int64_t>(1, CeilDiv(out_n / 4 + 1, 256));
        }
        KernelCost cost = model.EstimateGenerated(stats, variant);
        timing.device_us += cost.time_us;
        timing.host_us += profile_.per_op_host_us;
        timing.kernel_launches += 1;
        timing.bytes_moved += stats.total_bytes();
        break;
      }
    }
    // Allocate unit outputs; free dead values.
    if (unit.kind != Unit::Kind::kConstant &&
        unit.kind != Unit::Kind::kHost) {
      for (const Value* out : unit.outputs) {
        DISC_ASSIGN_OR_RETURN(int64_t n, numel_of(out));
        DISC_ASSIGN_OR_RETURN(block_of[out],
                              allocator.Allocate(n * DTypeSize(out->dtype())));
      }
    }
    for (auto it = block_of.begin(); it != block_of.end();) {
      const Value* v = it->first;
      auto lu = last_use.find(v);
      bool dead = (lu == last_use.end() || lu->second <= u) &&
                  !graph_outputs.count(v) &&
                  (v->producer() == nullptr ||
                   v->producer()->kind() != OpKind::kConstant);
      if (dead) {
        DISC_RETURN_IF_ERROR(allocator.Free(it->second));
        it = block_of.erase(it);
      } else {
        ++it;
      }
    }
  }

  timing.peak_memory_bytes = allocator.stats().peak_bytes_in_use;
  timing.total_us = timing.device_us + timing.host_us;
  return timing;
}

}  // namespace disc
