#include "fusion/fusion.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "support/json.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace disc {

const char* FusionKindName(FusionKind kind) {
  switch (kind) {
    case FusionKind::kLoop:
      return "kLoop";
    case FusionKind::kInput:
      return "kInput";
    case FusionKind::kStitch:
      return "kStitch";
  }
  return "?";
}

bool FusionGroup::Contains(const Node* node) const {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

std::string FusionGroup::ToString() const {
  std::ostringstream out;
  out << "group#" << id << " " << FusionKindName(kind) << " root=%"
      << (root != nullptr ? root->output(0)->id() : -1) << " [";
  out << JoinMapped(nodes, ", ",
                    [](const Node* n) { return OpName(n->kind()); });
  out << "]";
  return out.str();
}

std::string FusionDecision::ToString() const {
  std::ostringstream out;
  out << "%" << producer << " (" << producer_op << ") -> %" << consumer
      << " (" << consumer_op << "): " << (fused ? "FUSED" : "not fused")
      << " [" << phase << "] " << reason;
  if (!constraint.empty()) out << "  :: " << constraint;
  return out.str();
}

std::vector<const FusionDecision*> FusionPlan::DecisionsFor(int a,
                                                            int b) const {
  std::vector<const FusionDecision*> found;
  for (const FusionDecision& d : decisions) {
    if ((d.producer == a && d.consumer == b) ||
        (d.producer == b && d.consumer == a)) {
      found.push_back(&d);
    }
  }
  return found;
}

std::string FusionPlan::DecisionsJson() const {
  JsonValue::Array records;
  for (const FusionDecision& d : decisions) {
    JsonValue::Object entry;
    entry.emplace("producer", JsonValue(static_cast<int64_t>(d.producer)));
    entry.emplace("producer_op", JsonValue(d.producer_op));
    entry.emplace("consumer", JsonValue(static_cast<int64_t>(d.consumer)));
    entry.emplace("consumer_op", JsonValue(d.consumer_op));
    entry.emplace("phase", JsonValue(d.phase));
    entry.emplace("fused", JsonValue(d.fused));
    entry.emplace("reason", JsonValue(d.reason));
    entry.emplace("constraint", JsonValue(d.constraint));
    records.emplace_back(std::move(entry));
  }
  JsonValue::Array group_records;
  for (const FusionGroup& g : groups) {
    JsonValue::Object entry;
    entry.emplace("id", JsonValue(static_cast<int64_t>(g.id)));
    entry.emplace("kind", JsonValue(FusionKindName(g.kind)));
    entry.emplace("root",
                  JsonValue(static_cast<int64_t>(
                      g.root != nullptr ? g.root->output(0)->id() : -1)));
    JsonValue::Array nodes;
    for (const Node* n : g.nodes) {
      JsonValue::Object node;
      node.emplace("node", JsonValue(static_cast<int64_t>(n->output(0)->id())));
      node.emplace("op", JsonValue(std::string(OpName(n->kind()))));
      nodes.emplace_back(std::move(node));
    }
    entry.emplace("nodes", JsonValue(std::move(nodes)));
    group_records.emplace_back(std::move(entry));
  }
  JsonValue::Object doc;
  doc.emplace("decisions", JsonValue(std::move(records)));
  doc.emplace("groups", JsonValue(std::move(group_records)));
  return JsonValue(std::move(doc)).SerializePretty();
}

FusionPlan::Stats FusionPlan::GetStats() const {
  Stats stats;
  stats.num_groups = static_cast<int64_t>(groups.size());
  for (const FusionGroup& g : groups) {
    if (g.size() >= 2) {
      stats.num_fused_nodes += g.size();
      stats.num_internalized_values += g.size() - static_cast<int64_t>(
                                                      g.outputs.size());
    } else {
      ++stats.num_singleton_groups;
    }
    switch (g.kind) {
      case FusionKind::kLoop:
        ++stats.num_loop_groups;
        break;
      case FusionKind::kInput:
        ++stats.num_input_groups;
        break;
      case FusionKind::kStitch:
        ++stats.num_stitch_groups;
        break;
    }
  }
  return stats;
}

std::string FusionPlan::ToString() const {
  std::ostringstream out;
  for (const FusionGroup& g : groups) out << g.ToString() << "\n";
  return out.str();
}

FusionPlanner::FusionPlanner(const Graph* graph, ShapeAnalysis* analysis,
                             FusionOptions options)
    : graph_(graph), analysis_(analysis), options_(options) {}

bool FusionPlanner::IsFusableCompute(const Node* node) const {
  switch (node->op_class()) {
    case OpClass::kElementwise:
    case OpClass::kReduction:
      break;
    case OpClass::kInjective:
      break;
    case OpClass::kCreation:
      // Constants are baked as kernel parameters, not loop members; iota is
      // computed in-loop.
      return node->kind() == OpKind::kIota;
    case OpClass::kLibrary:
    case OpClass::kShape:
      return false;
  }
  // Shape arithmetic (integer ops whose symbolic *contents* the analysis
  // tracks — dim products, concatenated shape vectors) runs on the host
  // alongside launches, never as a device kernel.
  if (IsIntegral(node->output(0)->dtype()) &&
      analysis_->GetContent(node->output(0)) != nullptr) {
    return false;
  }
  // Dynamic reshape/broadcast with a shape operand: the shape operand is a
  // host value; the node itself is still fusable.
  return true;
}

int FusionPlanner::Find(int x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

int FusionPlanner::GroupOf(const Node* node) {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) return -1;
  return Find(it->second);
}

bool FusionPlanner::ShapeEqual(const Value* a, const Value* b) const {
  if (options_.use_symbolic_shapes) {
    return analysis_->manager().IsShapeEqual(analysis_->GetShape(a),
                                             analysis_->GetShape(b));
  }
  // Shape-value-based fallback: both must be fully static and equal.
  return a->type().IsFullyStatic() && b->type().IsFullyStatic() &&
         a->type() == b->type();
}

std::string FusionPlanner::NumElementsText(const Value* v) const {
  const SymbolicDimManager& m = analysis_->manager();
  SymShape canon = m.Canonicalize(analysis_->GetShape(v));
  return "numel" + SymShapeToString(canon) + " = " +
         m.Canonicalize(SymShapeNumElements(canon)).ToString();
}

void FusionPlanner::RecordDecision(const Node* producer, const Node* consumer,
                                   const char* phase, bool fused,
                                   std::string reason,
                                   std::string constraint) {
  if (!options_.record_decisions) return;
  FusionDecision decision;
  decision.producer = producer->output(0)->id();
  decision.consumer = consumer->output(0)->id();
  decision.producer_op = OpName(producer->kind());
  decision.consumer_op = OpName(consumer->kind());
  decision.phase = phase;
  decision.fused = fused;
  decision.reason = std::move(reason);
  decision.constraint = std::move(constraint);
  int64_t key = (static_cast<int64_t>(decision.producer) << 32) |
                static_cast<uint32_t>(decision.consumer);
  auto [it, inserted] = decision_index_.try_emplace(key, decisions_.size());
  if (inserted) {
    decisions_.push_back(std::move(decision));
  } else {
    // Last verdict wins: a pair rejected in an early sweep/phase but merged
    // later reads as fused (and vice versa never happens — merged pairs
    // are not reconsidered).
    decisions_[it->second] = std::move(decision);
  }
}

namespace {
bool SameNumElementsStatic(const Value* a, const Value* b) {
  return a->type().IsFullyStatic() && b->type().IsFullyStatic() &&
         a->type().NumElements() == b->type().NumElements();
}

void SetOut(std::string* out, std::string value) {
  if (out != nullptr) *out = std::move(value);
}
}  // namespace

bool FusionPlanner::ShapesAllowLoopFusion(const Value* producer_out,
                                          const Node* consumer,
                                          std::string* reason,
                                          std::string* constraint) const {
  // Injective consumers absorb any producer through an index map.
  if (consumer->op_class() == OpClass::kInjective) {
    SetOut(reason, "injective-consumer-absorbs-producer");
    SetOut(constraint, std::string(OpName(consumer->kind())) +
                           " reads the producer through an index map; no "
                           "shape relation needed");
    return true;
  }
  const Value* consumer_out = consumer->output(0);
  if (options_.use_symbolic_shapes) {
    const SymbolicDimManager& m = analysis_->manager();
    const SymShape& ps = analysis_->GetShape(producer_out);
    const SymShape& cs = analysis_->GetShape(consumer_out);
    if (m.IsSameNumElements(ps, cs)) {
      SetOut(reason, "same-num-elements-proven");
      SetOut(constraint,
             NumElementsText(producer_out) + " == " +
                 NumElementsText(consumer_out));
      return true;
    }
    // Scalar producer.
    DimExpr pn = m.Canonicalize(SymShapeNumElements(ps));
    if (pn.IsConstValue(1)) {
      SetOut(reason, "scalar-producer");
      SetOut(constraint, NumElementsText(producer_out) + " == 1");
      return true;
    }
    // Broadcast-compatible: right-aligned, every producer dim equals the
    // consumer dim or is the constant 1.
    if (ps.size() <= cs.size()) {
      size_t offset = cs.size() - ps.size();
      bool compatible = true;
      std::string relation;
      std::string blocking;
      for (size_t i = 0; i < ps.size(); ++i) {
        DimExpr pd = m.Canonicalize(ps[i]);
        if (pd.IsConstValue(1)) {
          if (!relation.empty()) relation += ", ";
          relation += "dim" + std::to_string(i) + "=1 (broadcast)";
          continue;
        }
        DimExpr cd = m.Canonicalize(cs[offset + i]);
        if (!m.IsDimEqual(ps[i], cs[offset + i])) {
          compatible = false;
          blocking = "dim" + std::to_string(i) + ": " + pd.ToString() +
                     " != " + cd.ToString() + " (no equality fact)";
          break;
        }
        if (!relation.empty()) relation += ", ";
        relation += "dim" + std::to_string(i) + ": " + pd.ToString() +
                    " == " + cd.ToString();
      }
      if (compatible) {
        SetOut(reason, "broadcast-compatible-dims");
        SetOut(constraint, relation.empty() ? "scalar into any space"
                                            : relation);
        return true;
      }
      SetOut(reason, "blocked:no-proven-shape-relation");
      SetOut(constraint, NumElementsText(producer_out) + " vs " +
                             NumElementsText(consumer_out) + "; " + blocking);
      return false;
    }
    SetOut(reason, "blocked:no-proven-shape-relation");
    SetOut(constraint,
           NumElementsText(producer_out) + " vs " +
               NumElementsText(consumer_out) +
               "; producer rank exceeds consumer rank (not a broadcast)");
    return false;
  }
  // Without symbolic information only static equality is provable.
  if (SameNumElementsStatic(producer_out, consumer_out)) {
    SetOut(reason, "static-num-elements-equal");
    SetOut(constraint, producer_out->type().ToString() + " == " +
                           consumer_out->type().ToString() +
                           " (statically known)");
    return true;
  }
  SetOut(reason, "blocked:static-shape-unknown");
  SetOut(constraint,
         producer_out->type().ToString() + " vs " +
             consumer_out->type().ToString() +
             "; dynamic dims carry no value, and without symbolic "
             "relations equality cannot be proven");
  return false;
}

bool FusionPlanner::MergeWouldCreateCycle(int ga, int gb) {
  // Illegal if a path leaves ga (or gb), passes through an outside node and
  // re-enters the other group. BFS forward from both groups' outputs
  // through outside nodes only.
  std::unordered_set<const Node*> inside;
  for (Node* n : members_[ga]) inside.insert(n);
  for (Node* n : members_[gb]) inside.insert(n);

  std::deque<const Node*> frontier;
  std::unordered_set<const Node*> visited;
  for (const Node* n : inside) {
    for (const Value* out : n->outputs()) {
      for (const Node* user : out->users()) {
        if (!inside.count(user) && visited.insert(user).second) {
          frontier.push_back(user);
        }
      }
    }
  }
  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop_front();
    for (const Value* out : node->outputs()) {
      for (const Node* user : out->users()) {
        if (inside.count(user)) return true;  // re-entered -> cycle
        if (visited.insert(user).second) frontier.push_back(user);
      }
    }
  }
  return false;
}

bool FusionPlanner::TryMergeGroups(int ga, int gb,
                                   std::string* block_reason) {
  ga = Find(ga);
  gb = Find(gb);
  if (ga == gb) {
    SetOut(block_reason, "already-same-group");
    return false;
  }
  if (static_cast<int64_t>(members_[ga].size() + members_[gb].size()) >
      options_.max_group_size) {
    SetOut(block_reason,
           StrFormat("blocked:max-group-size (%zu + %zu > %lld)",
                     members_[ga].size(), members_[gb].size(),
                     static_cast<long long>(options_.max_group_size)));
    return false;
  }
  if (MergeWouldCreateCycle(ga, gb)) {
    SetOut(block_reason,
           "blocked:would-create-cycle (a path through outside nodes "
           "re-enters the merged group)");
    return false;
  }
  // Merge smaller into larger.
  if (members_[ga].size() < members_[gb].size()) std::swap(ga, gb);
  parent_[gb] = ga;
  members_[ga].insert(members_[ga].end(), members_[gb].begin(),
                      members_[gb].end());
  members_[gb].clear();
  return true;
}

void FusionPlanner::RunLoopFusion() {
  // Greedy producer->consumer sweep in topological order; repeated sweeps
  // until fixpoint so chains collapse fully.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node* consumer : topo_) {
      if (!node_index_.count(consumer) || IsReduce(consumer)) continue;
      for (Value* operand : consumer->operands()) {
        Node* producer = operand->producer();
        if (producer == nullptr || !node_index_.count(producer) ||
            IsReduce(producer)) {
          continue;
        }
        if (GroupOf(producer) == GroupOf(consumer)) continue;
        std::string reason;
        std::string constraint;
        if (!ShapesAllowLoopFusion(operand, consumer, &reason, &constraint)) {
          RecordDecision(producer, consumer, "loop", false, std::move(reason),
                         std::move(constraint));
          continue;
        }
        // Multi-output constraint: any value of the producer group still
        // used outside after the merge must be writable by the consumer
        // loop, i.e. same element count as the consumer's output.
        bool outputs_ok = true;
        std::string outputs_blocking;
        int pg = GroupOf(producer);
        int cg = GroupOf(consumer);
        for (Node* member : members_[pg]) {
          for (Value* out : member->outputs()) {
            bool external = false;
            for (const Node* user : out->users()) {
              int ug = node_index_.count(user)
                           ? Find(node_index_.at(user))
                           : -2;
              if (ug != pg && ug != cg) external = true;
            }
            for (const Value* go : graph_->outputs()) {
              if (go == out) external = true;
            }
            if (!external) continue;
            bool writable =
                options_.use_symbolic_shapes
                    ? analysis_->IsSameNumElements(out, consumer->output(0))
                    : SameNumElementsStatic(out, consumer->output(0));
            if (!writable) {
              outputs_ok = false;
              outputs_blocking =
                  "externally-used %" + std::to_string(out->id()) + ": " +
                  (options_.use_symbolic_shapes
                       ? NumElementsText(out) + " != " +
                             NumElementsText(consumer->output(0))
                       : out->type().ToString() + " vs " +
                             consumer->output(0)->type().ToString() +
                             " (static proof unavailable)");
            }
          }
        }
        if (!outputs_ok) {
          RecordDecision(producer, consumer, "loop", false,
                         "blocked:secondary-output-not-writable",
                         std::move(outputs_blocking));
          continue;
        }
        std::string merge_block;
        if (TryMergeGroups(pg, cg, &merge_block)) {
          changed = true;
          RecordDecision(producer, consumer, "loop", true, std::move(reason),
                         std::move(constraint));
        } else {
          RecordDecision(producer, consumer, "loop", false,
                         std::move(merge_block),
                         "shapes allowed the fusion (" + constraint +
                             ") but the group merge was refused");
        }
      }
    }
  }
}

void FusionPlanner::RunInputFusion() {
  for (Node* reduce : topo_) {
    if (!node_index_.count(reduce) || !IsReduce(reduce)) continue;
    Node* producer = reduce->operand(0)->producer();
    if (producer == nullptr || !node_index_.count(producer) ||
        IsReduce(producer)) {
      continue;
    }
    int pg = GroupOf(producer);
    int rg = GroupOf(reduce);
    if (pg == rg) continue;
    // Secondary outputs of the producer group must be full-shaped (same
    // element count as the reduce *input*) so the kInput kernel can write
    // them while it streams the input.
    bool outputs_ok = true;
    std::string blocking;
    for (Node* member : members_[pg]) {
      for (Value* out : member->outputs()) {
        bool external = false;
        for (const Node* user : out->users()) {
          int ug = node_index_.count(user) ? Find(node_index_.at(user)) : -2;
          if (ug != pg && ug != rg) external = true;
        }
        for (const Value* go : graph_->outputs()) {
          if (go == out) external = true;
        }
        if (!external) continue;
        bool full_shaped =
            options_.use_symbolic_shapes
                ? analysis_->IsSameNumElements(out, reduce->operand(0))
                : SameNumElementsStatic(out, reduce->operand(0));
        if (!full_shaped) {
          outputs_ok = false;
          blocking = "externally-used %" + std::to_string(out->id()) +
                     " is not full-shaped: " +
                     (options_.use_symbolic_shapes
                          ? NumElementsText(out) + " != " +
                                NumElementsText(reduce->operand(0))
                          : out->type().ToString() + " vs " +
                                reduce->operand(0)->type().ToString() +
                                " (static proof unavailable)");
        }
      }
    }
    if (!outputs_ok) {
      RecordDecision(producer, reduce, "input", false,
                     "blocked:secondary-output-not-full-shaped",
                     std::move(blocking));
      continue;
    }
    std::string merge_block;
    if (TryMergeGroups(pg, rg, &merge_block)) {
      RecordDecision(producer, reduce, "input", true,
                     "input-fusion:reduce-consumes-producer",
                     "the reduction streams " +
                         NumElementsText(reduce->operand(0)) +
                         " elements produced in-register by its operand "
                         "group");
    } else {
      RecordDecision(producer, reduce, "input", false, std::move(merge_block),
                     "");
    }
  }
}

namespace {

// Trailing reduce dims check: reduce dims are exactly the last k dims.
bool ReducesTrailingDims(const Node* reduce) {
  const auto& dims = reduce->GetIntListAttr("dims");
  int64_t rank = reduce->operand(0)->rank();
  std::vector<int64_t> sorted = dims;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != rank - static_cast<int64_t>(sorted.size()) +
                         static_cast<int64_t>(i)) {
      return false;
    }
  }
  return !sorted.empty();
}

}  // namespace

bool FusionPlanner::StitchCompatible(int ga, int gb, std::string* reason,
                                     std::string* constraint) {
  // Gather all reduces across both groups.
  std::vector<const Node*> reduces;
  std::vector<const Node*> all;
  for (Node* n : members_[ga]) all.push_back(n);
  for (Node* n : members_[gb]) all.push_back(n);
  for (const Node* n : all) {
    if (IsReduce(n)) reduces.push_back(n);
  }
  if (reduces.empty()) {
    SetOut(reason, "blocked:no-reduce-to-stitch-around");
    SetOut(constraint, "");
    return false;
  }
  const SymbolicDimManager& m = analysis_->manager();

  // All reduces must be trailing-dim row reductions over the same row space.
  const Node* first = reduces[0];
  if (!ReducesTrailingDims(first)) {
    SetOut(reason, "blocked:not-trailing-row-reduction");
    SetOut(constraint, "%" + std::to_string(first->output(0)->id()) +
                           " reduces non-trailing dims; rows cannot be "
                           "staged in shared memory");
    return false;
  }
  const SymShape& full = analysis_->GetShape(first->operand(0));
  for (const Node* r : reduces) {
    if (!ReducesTrailingDims(r)) {
      SetOut(reason, "blocked:not-trailing-row-reduction");
      SetOut(constraint, "%" + std::to_string(r->output(0)->id()) +
                             " reduces non-trailing dims");
      return false;
    }
    if (options_.use_symbolic_shapes) {
      if (!m.IsShapeEqual(analysis_->GetShape(r->operand(0)), full)) {
        SetOut(reason, "blocked:row-space-mismatch");
        SetOut(constraint,
               "reduce %" + std::to_string(r->output(0)->id()) +
                   " streams " +
                   SymShapeToString(
                       m.Canonicalize(analysis_->GetShape(r->operand(0)))) +
                   " but the stitch row space is " +
                   SymShapeToString(m.Canonicalize(full)) +
                   "; no shape-equality fact unifies them");
        return false;
      }
    } else if (!(r->operand(0)->type().IsFullyStatic() &&
                 first->operand(0)->type().IsFullyStatic() &&
                 r->operand(0)->type() == first->operand(0)->type())) {
      SetOut(reason, "blocked:static-shape-unknown");
      SetOut(constraint,
             "reduce inputs " + r->operand(0)->type().ToString() + " vs " +
                 first->operand(0)->type().ToString() +
                 "; dynamic dims cannot be proven row-compatible without "
                 "symbolic relations");
      return false;
    }
  }
  // Row extent = product of reduced trailing dims.
  const auto& rdims = first->GetIntListAttr("dims");
  std::vector<DimExpr> row_factors;
  for (int64_t d : rdims) row_factors.push_back(full[d]);
  DimExpr row_extent = DimExpr::Mul(std::move(row_factors));
  DimExpr rows = DimExpr::FloorDiv(SymShapeNumElements(full), row_extent);

  // Every member's output must live in the full space or the row space.
  int64_t full_shaped_intermediates = 0;
  for (const Node* n : all) {
    for (const Value* out : n->outputs()) {
      const SymShape& s = analysis_->GetShape(out);
      bool is_full = m.IsSameNumElements(s, full);
      bool is_row =
          m.IsDimEqual(SymShapeNumElements(s), rows) ||
          m.IsSameNumElements(
              s, analysis_->GetShape(reduces[0]->output(0)));
      if (!is_full && !is_row) {
        SetOut(reason, "blocked:intermediate-not-row-or-full-shaped");
        SetOut(constraint,
               "%" + std::to_string(out->id()) + " has " +
                   NumElementsText(out) + "; stitch needs the full space " +
                   SymShapeToString(m.Canonicalize(full)) +
                   " or the row space (" + m.Canonicalize(rows).ToString() +
                   " rows)");
        return false;
      }
      if (is_full) ++full_shaped_intermediates;
    }
  }
  // Shared-memory budget: each stitched stage stages one row of f32.
  auto row_ub = m.UpperBound(row_extent);
  if (row_ub.has_value()) {
    int64_t bytes = *row_ub * 4 * std::max<int64_t>(
                                      1, full_shaped_intermediates / 2);
    if (bytes > options_.stitch_shared_memory_bytes) {
      SetOut(reason, "blocked:shared-memory-budget");
      SetOut(constraint,
             StrFormat("row extent %s has proven upper bound %lld -> %lld "
                       "bytes of staging > %lld budget",
                       m.Canonicalize(row_extent).ToString().c_str(),
                       static_cast<long long>(*row_ub),
                       static_cast<long long>(bytes),
                       static_cast<long long>(
                           options_.stitch_shared_memory_bytes)));
      return false;
    }
  }
  // Unknown upper bound: optimistically stitch; the generated kernel keeps
  // a block-reduce schedule variant that handles long rows.
  SetOut(reason, "stitch:row-synchronized-reduces");
  SetOut(constraint,
         "all reduces stream " + SymShapeToString(m.Canonicalize(full)) +
             " row-wise (" + m.Canonicalize(rows).ToString() +
             " rows); every intermediate is row- or full-shaped");
  return true;
}

void FusionPlanner::RunStitchFusion() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node* consumer : topo_) {
      if (!node_index_.count(consumer)) continue;
      for (Value* operand : consumer->operands()) {
        Node* producer = operand->producer();
        if (producer == nullptr || !node_index_.count(producer)) continue;
        int pg = GroupOf(producer);
        int cg = GroupOf(consumer);
        if (pg == cg) continue;
        // At least one side must contain a reduce (otherwise kLoop rules
        // already decided), and the union must be row-synchronizable.
        bool has_reduce = false;
        for (Node* n : members_[pg]) has_reduce |= IsReduce(n);
        for (Node* n : members_[cg]) has_reduce |= IsReduce(n);
        if (!has_reduce) continue;
        std::string reason;
        std::string constraint;
        if (!StitchCompatible(pg, cg, &reason, &constraint)) {
          RecordDecision(producer, consumer, "stitch", false,
                         std::move(reason), std::move(constraint));
          continue;
        }
        std::string merge_block;
        if (TryMergeGroups(pg, cg, &merge_block)) {
          changed = true;
          RecordDecision(producer, consumer, "stitch", true,
                         std::move(reason), std::move(constraint));
        } else {
          RecordDecision(producer, consumer, "stitch", false,
                         std::move(merge_block),
                         "row spaces were compatible (" + constraint +
                             ") but the group merge was refused");
        }
      }
    }
  }
}

Result<FusionPlan> FusionPlanner::Plan() {
  topo_ = graph_->TopologicalOrder();
  node_index_.clear();
  parent_.clear();
  members_.clear();
  decisions_.clear();
  decision_index_.clear();
  for (Node* node : topo_) {
    if (!IsFusableCompute(node)) continue;
    int idx = static_cast<int>(parent_.size());
    node_index_[node] = idx;
    parent_.push_back(idx);
    members_.push_back({node});
  }

  if (options_.enable_fusion) {
    RunLoopFusion();
    if (options_.enable_input_fusion) RunInputFusion();
    if (options_.enable_stitch) RunStitchFusion();
  }
  return Finalize();
}

Result<FusionPlan> FusionPlanner::Finalize() {
  FusionPlan plan;
  // Reconcile stale verdicts: a pair can be rejected on direct
  // consideration yet end up in one group transitively (merges through
  // other edges), and merged pairs are never re-evaluated. Rewrite those
  // to fused, keeping the historical reason as provenance.
  std::unordered_map<int, const Node*> node_of_id;
  for (const auto& [node, idx] : node_index_) {
    node_of_id[node->output(0)->id()] = node;
  }
  for (FusionDecision& d : decisions_) {
    if (d.fused) continue;
    auto pit = node_of_id.find(d.producer);
    auto cit = node_of_id.find(d.consumer);
    if (pit == node_of_id.end() || cit == node_of_id.end()) continue;
    if (GroupOf(pit->second) != GroupOf(cit->second)) continue;
    d.fused = true;
    d.reason = "merged-transitively (direct attempt: " + d.reason + ")";
  }
  plan.decisions = std::move(decisions_);
  std::unordered_map<const Node*, int> topo_pos;
  for (size_t i = 0; i < topo_.size(); ++i) topo_pos[topo_[i]] = i;

  std::unordered_map<int, int> root_to_group;
  for (Node* node : topo_) {
    auto it = node_index_.find(node);
    if (it == node_index_.end()) continue;
    int root = Find(it->second);
    auto [git, inserted] =
        root_to_group.try_emplace(root, static_cast<int>(plan.groups.size()));
    if (inserted) {
      plan.groups.emplace_back();
      plan.groups.back().id = git->second;
    }
    plan.groups[git->second].nodes.push_back(node);
    plan.group_of[node] = git->second;
  }

  for (FusionGroup& group : plan.groups) {
    std::unordered_set<const Node*> inside(group.nodes.begin(),
                                           group.nodes.end());
    // Inputs: external operands (deduplicated, excluding host-shape-only
    // operands of dynamic reshape/broadcast which codegen reads from the
    // runtime shape program instead — they are still listed as inputs so
    // dependency tracking stays conservative).
    std::unordered_set<const Value*> seen_in;
    for (Node* node : group.nodes) {
      for (Value* operand : node->operands()) {
        if (operand->producer() != nullptr &&
            inside.count(operand->producer())) {
          continue;
        }
        if (seen_in.insert(operand).second) group.inputs.push_back(operand);
      }
    }
    // Outputs: values used outside or graph outputs.
    int num_reduces = 0;
    for (Node* node : group.nodes) {
      if (IsReduce(node)) ++num_reduces;
      for (Value* out : node->outputs()) {
        bool external = false;
        for (const Node* user : out->users()) {
          if (!inside.count(user)) external = true;
        }
        for (const Value* go : graph_->outputs()) {
          if (go == out) external = true;
        }
        if (external) group.outputs.push_back(out);
      }
    }
    if (group.outputs.empty()) {
      // Fully dead group (can happen pre-DCE); root is the last node.
      group.outputs.push_back(group.nodes.back()->output(0));
    }
    // Root: the topologically last output-producing node.
    Node* root = nullptr;
    for (Value* out : group.outputs) {
      Node* producer = out->producer();
      if (root == nullptr || topo_pos[producer] > topo_pos[root]) {
        root = producer;
      }
    }
    group.root = root;
    // Kind classification.
    if (num_reduces == 0) {
      group.kind = FusionKind::kLoop;
    } else if (num_reduces == 1 && IsReduce(group.root)) {
      // Single reduce at the root: XLA-style input fusion, possibly with
      // multi-output (full-shaped secondary outputs).
      group.kind = FusionKind::kInput;
    } else {
      // Multiple reduces, or elementwise work after a reduce in the same
      // kernel: needs on-chip row staging.
      group.kind = FusionKind::kStitch;
    }
  }
  return plan;
}

}  // namespace disc
