// Dynamic-shape operator fusion.
//
// The planner never sees a concrete dimension; every legality and
// profitability decision is made through SymbolicDimManager queries
// (IsShapeEqual / IsSameNumElements / IsDimEqual / UpperBound) — the paper's
// central claim that fusion needs shape *relationships*, not shape *values*.
//
// Three fusion kinds, mirroring the paper (and XLA/AStitch terminology):
//   * kLoop   — a single parallel loop over the root output; members are
//               elementwise/injective/creation ops (multi-output allowed
//               when the extra outputs are shape-equal to the root).
//   * kInput  — a reduce-rooted kernel: the reduction plus its fused
//               producer expressions ("input fusion" in XLA terms).
//   * kStitch — several row-synchronized sub-kernels stitched through
//               on-chip (shared) memory: e.g. softmax's
//               reduce→sub→exp→reduce→div in ONE kernel. Legal when all
//               reductions cover the same trailing row dims and every
//               intermediate is row- or full-shaped.
#ifndef DISC_FUSION_FUSION_H_
#define DISC_FUSION_FUSION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"
#include "shape/shape_analysis.h"

namespace disc {

enum class FusionKind : uint8_t {
  kLoop,
  kInput,
  kStitch,
};

const char* FusionKindName(FusionKind kind);

/// One fused kernel-to-be.
struct FusionGroup {
  int id = -1;
  FusionKind kind = FusionKind::kLoop;
  /// Members in topological order.
  std::vector<Node*> nodes;
  /// The node defining the primary output (drives the iteration space).
  Node* root = nullptr;
  /// Values read from outside the group (kernel parameters).
  std::vector<Value*> inputs;
  /// Values produced in the group and visible outside (kernel results).
  std::vector<Value*> outputs;

  int64_t size() const { return static_cast<int64_t>(nodes.size()); }
  bool Contains(const Node* node) const;
  std::string ToString() const;
};

/// \brief Provenance for one considered producer->consumer fusion edge:
/// the verdict, the phase that decided it, and the shape constraint that
/// proved (or the missing constraint that blocked) the merge. The planner
/// keeps the *final* decision per pair — a pair rejected by loop fusion
/// but stitched later reads as fused. Serialized to
/// `fusion_decisions.json`; queried by `disc_explain --why-not-fused`.
struct FusionDecision {
  /// Node ids are the output(0) value ids, matching `%N` in IR dumps.
  int producer = -1;
  int consumer = -1;
  std::string producer_op;
  std::string consumer_op;
  /// Which planning phase issued the final verdict: "loop"|"input"|"stitch".
  std::string phase;
  bool fused = false;
  /// Verdict label, e.g. "same-num-elements-proven",
  /// "broadcast-compatible-dims", "blocked:static-shape-unknown",
  /// "blocked:would-create-cycle".
  std::string reason;
  /// The shape relation behind the verdict, in symbolic-dim terms, e.g.
  /// "numel[s0, 512] = (512*s0) == numel[(s0*512)] = (512*s0)".
  std::string constraint;

  std::string ToString() const;
};

/// Result of planning: a partition of the graph's fusable compute nodes.
/// Library ops (matmul/conv), constants and host shape ops are NOT in any
/// group — they are handled per-node by the compiler.
struct FusionPlan {
  std::vector<FusionGroup> groups;
  std::unordered_map<const Node*, int> group_of;  // node -> group id
  /// Final decision per considered producer->consumer pair, in first-
  /// consideration order (deterministic). Empty when
  /// FusionOptions::record_decisions is off.
  std::vector<FusionDecision> decisions;

  /// \brief Decisions involving this node-id pair in either direction.
  std::vector<const FusionDecision*> DecisionsFor(int a, int b) const;
  /// \brief The decision log as pretty JSON (`fusion_decisions.json`).
  std::string DecisionsJson() const;

  struct Stats {
    int64_t num_groups = 0;
    int64_t num_fused_nodes = 0;     // nodes in groups of size >= 2
    int64_t num_singleton_groups = 0;
    int64_t num_loop_groups = 0;
    int64_t num_input_groups = 0;
    int64_t num_stitch_groups = 0;
    /// Internal edges removed from memory traffic (count of intermediate
    /// tensors that no longer hit global memory).
    int64_t num_internalized_values = 0;
  };
  Stats GetStats() const;
  std::string ToString() const;
};

struct FusionOptions {
  /// Master switch; false = every fusable node is its own kernel.
  bool enable_fusion = true;
  /// Allow reduce-rooted (kInput) fusion.
  bool enable_input_fusion = true;
  /// Allow shared-memory stitching across reduce boundaries.
  bool enable_stitch = true;
  /// Use symbolic shape relations for legality. When false the planner only
  /// fuses edges whose shapes are *statically* known equal — modelling how a
  /// shape-value-based compiler degrades on dynamic graphs (ablation F2).
  bool use_symbolic_shapes = true;
  /// Upper bound on nodes per group.
  int64_t max_group_size = 64;
  /// Shared-memory budget per stitch kernel (bytes); rows whose proven
  /// upper bound exceeds this are not stitched.
  int64_t stitch_shared_memory_bytes = 48 * 1024;
  /// Record a FusionDecision (verdict + constraint provenance) for every
  /// considered producer->consumer pair into FusionPlan::decisions.
  bool record_decisions = true;
};

/// \brief Plans fusion groups for a graph. `analysis` must have Run().
class FusionPlanner {
 public:
  FusionPlanner(const Graph* graph, ShapeAnalysis* analysis,
                FusionOptions options = {});

  Result<FusionPlan> Plan();

 private:
  // True for nodes that can live inside a loop nest.
  bool IsFusableCompute(const Node* node) const;
  bool IsReduce(const Node* node) const { return IsReduction(node->kind()); }

  // Legality of fusing across the producer->consumer edge, by shape
  // relations (or static equality when use_symbolic_shapes is off).
  // `reason`/`constraint` (optional) receive the verdict provenance.
  bool ShapesAllowLoopFusion(const Value* producer_out, const Node* consumer,
                             std::string* reason = nullptr,
                             std::string* constraint = nullptr) const;
  bool ShapeEqual(const Value* a, const Value* b) const;

  // Group bookkeeping over a mutable union-find.
  int GroupOf(const Node* node);
  // `block_reason` (optional) receives why a merge was refused.
  bool TryMergeGroups(int ga, int gb, std::string* block_reason = nullptr);
  bool MergeWouldCreateCycle(int ga, int gb);

  // Phases.
  void RunLoopFusion();
  void RunInputFusion();
  void RunStitchFusion();
  bool StitchCompatible(int ga, int gb, std::string* reason = nullptr,
                        std::string* constraint = nullptr);

  // Renders "numel[shape] = (expr)" for constraint messages.
  std::string NumElementsText(const Value* v) const;
  // Records the latest verdict for a producer->consumer pair (last wins
  // across fixpoint sweeps and phases). No-op unless record_decisions.
  void RecordDecision(const Node* producer, const Node* consumer,
                      const char* phase, bool fused, std::string reason,
                      std::string constraint);

  Result<FusionPlan> Finalize();

  const Graph* graph_;
  ShapeAnalysis* analysis_;
  FusionOptions options_;

  std::vector<Node*> topo_;
  std::unordered_map<const Node*, int> node_index_;
  // Union-find over node indices.
  std::vector<int> parent_;
  int Find(int x);
  std::vector<std::vector<Node*>> members_;  // root index -> nodes

  // Decision log: final verdict per (producer, consumer) node-id pair,
  // in first-consideration order.
  std::vector<FusionDecision> decisions_;
  std::unordered_map<int64_t, size_t> decision_index_;
};

}  // namespace disc

#endif  // DISC_FUSION_FUSION_H_
