// Compile-time buffer assignment ("buffer planning" in the paper's
// runtime): device values are assigned to logical slots once, at compile
// time, such that the assignment is valid for EVERY runtime shape.
//
// Two values may share a slot iff
//   * their live ranges over the step schedule are disjoint, and
//   * their byte sizes are *symbolically* equal (same canonical size
//     expression) — so whatever the runtime dims turn out to be, the slot
//     is exactly the right size for both.
//
// At run time the executable allocates one block per active slot instead
// of one per value: reuses become zero-cost (no allocator call at all),
// which is how the real runtime keeps its hot path free of allocator
// traffic under changing shapes.
#ifndef DISC_RUNTIME_BUFFER_PLAN_H_
#define DISC_RUNTIME_BUFFER_PLAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"
#include "shape/shape_analysis.h"

namespace disc {

struct BufferAssignment {
  /// Device value -> slot id.
  std::unordered_map<const Value*, int> slot_of;
  /// Canonical symbolic byte-size expression per slot.
  std::vector<DimExpr> slot_bytes;
  /// Occupant count per slot (parallel to slot_bytes). A slot recycled
  /// twice has three occupants; chained recycling is visible here.
  std::vector<int64_t> slot_occupants;
  int64_t num_values = 0;
  /// Reuse *events*: every placement into a previously-occupied slot
  /// counts, so a slot recycled twice contributes two. Derived from
  /// slot_occupants (sum of occupants - 1 per slot), which keeps it
  /// consistent with the assignment by construction.
  int64_t num_reused = 0;

  int64_t num_slots() const { return static_cast<int64_t>(slot_bytes.size()); }
  /// Slots that were recycled at least once.
  int64_t num_recycled_slots() const;
  /// Longest occupant chain through any single slot.
  int64_t max_slot_occupancy() const;
  std::string ToString() const;
};

/// One schedule entry for planning: the values a step defines and uses.
struct PlanStep {
  std::vector<const Value*> defines;
  std::vector<const Value*> uses;
};

/// \brief Plans slots over a step schedule. `keep_alive` values (graph
/// outputs, constants) never have their slots recycled.
BufferAssignment PlanBuffers(const std::vector<PlanStep>& steps,
                             const std::vector<const Value*>& keep_alive,
                             const ShapeAnalysis& analysis);

}  // namespace disc

#endif  // DISC_RUNTIME_BUFFER_PLAN_H_
