#include "runtime/executable.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/eval.h"
#include "kernel/library.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {

namespace {
// Per-node cost of replaying a captured CUDA graph (vs a full driver
// launch): the GPU still schedules each kernel, the host does not.
constexpr double kGraphReplayPerNodeUs = 0.4;
}  // namespace

std::string RunProfile::ToString() const {
  std::ostringstream out;
  out << StrFormat(
      "device=%.1fus launches=%lld lib_calls=%lld bytes=%.2fMB peak=%.2fMB",
      device_time_us, static_cast<long long>(kernel_launches),
      static_cast<long long>(library_calls),
      (bytes_read + bytes_written) / 1e6, peak_memory_bytes / 1e6);
  if (!variant_counts.empty()) {
    out << " variants{";
    bool first = true;
    for (const auto& [name, count] : variant_counts) {
      if (!first) out << ", ";
      out << name << ":" << count;
      first = false;
    }
    out << "}";
  }
  return out.str();
}

std::string CompileReport::ToString() const {
  return StrFormat(
      "compile=%.1fms nodes %lld->%lld, %lld kernels (%lld variants), "
      "groups: %lld loop / %lld input / %lld stitch, symbols %lld->%lld "
      "classes",
      compile_ms, static_cast<long long>(num_nodes_before),
      static_cast<long long>(num_nodes_after),
      static_cast<long long>(num_kernels),
      static_cast<long long>(num_variants),
      static_cast<long long>(fusion.num_loop_groups),
      static_cast<long long>(fusion.num_input_groups),
      static_cast<long long>(fusion.num_stitch_groups),
      static_cast<long long>(shapes.num_symbols),
      static_cast<long long>(shapes.num_classes));
}

Result<RunResult> Executable::Run(const std::vector<Tensor>& inputs,
                                  const RunOptions& options) const {
  std::vector<std::vector<int64_t>> dims;
  dims.reserve(inputs.size());
  for (const Tensor& t : inputs) dims.push_back(t.dims());
  return RunInternal(dims, options.execute_data ? &inputs : nullptr, options);
}

Result<RunResult> Executable::RunWithShapes(
    const std::vector<std::vector<int64_t>>& input_dims,
    const RunOptions& options) const {
  RunOptions timing_only = options;
  timing_only.execute_data = false;
  return RunInternal(input_dims, nullptr, timing_only);
}

Result<RunResult> Executable::RunInternal(
    const std::vector<std::vector<int64_t>>& input_dims,
    const std::vector<Tensor>* inputs, const RunOptions& options) const {
  // Host-side shape computation: solve every symbolic dim once per run.
  DISC_ASSIGN_OR_RETURN(SymbolBindings bindings,
                        analysis_->BindInputs(input_dims));

  DeviceModel model(options.device);
  RunResult result;
  RunProfile& profile = result.profile;
  CachingAllocator allocator;
  const bool execute_data = inputs != nullptr;

  std::unordered_map<const Value*, Tensor> env;
  if (execute_data) {
    for (size_t i = 0; i < graph_->inputs().size(); ++i) {
      env.emplace(graph_->inputs()[i], (*inputs)[i]);
    }
  }

  // Liveness: the last step consuming each value (for buffer release).
  std::unordered_map<const Value*, size_t> last_use;
  std::unordered_set<const Value*> graph_outputs(graph_->outputs().begin(),
                                                 graph_->outputs().end());
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    auto mark = [&](const Node* node) {
      for (const Value* operand : node->operands()) last_use[operand] = s;
    };
    if (step.kind == Step::Kind::kKernel) {
      for (const Value* in : step.kernel->group().inputs) last_use[in] = s;
    } else {
      mark(step.node);
    }
  }

  std::unordered_map<const Value*, int64_t> block_of;
  auto allocate_value = [&](const Value* v) -> Status {
    DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims,
                          analysis_->EvaluateShape(v, bindings));
    block_of[v] = allocator.Allocate(Product(dims) * DTypeSize(v->dtype()));
    return Status::OK();
  };
  auto release_dead = [&](size_t step_index) {
    for (auto it = block_of.begin(); it != block_of.end();) {
      const Value* v = it->first;
      auto lu = last_use.find(v);
      bool dead = (lu == last_use.end() || lu->second <= step_index) &&
                  !graph_outputs.count(v) &&
                  (v->producer() == nullptr ||
                   v->producer()->kind() != OpKind::kConstant);
      if (dead) {
        allocator.Free(it->second);
        it = block_of.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    switch (step.kind) {
      case Step::Kind::kConstant: {
        // Weights are resident on device for the module's lifetime.
        DISC_RETURN_IF_ERROR(allocate_value(step.node->output(0)));
        if (execute_data) {
          env.emplace(step.node->output(0),
                      step.node->GetTensorAttr("value"));
        }
        break;
      }
      case Step::Kind::kHost: {
        // Shape computation runs on the host CPU alongside kernel
        // launches; it contributes no device time.
        if (execute_data) {
          std::vector<Tensor> operand_values;
          for (const Value* operand : step.node->operands()) {
            operand_values.push_back(env.at(operand));
          }
          DISC_ASSIGN_OR_RETURN(std::vector<Tensor> values,
                                EvaluateNode(*step.node, operand_values));
          for (size_t i = 0; i < values.size(); ++i) {
            env.emplace(step.node->output(static_cast<int>(i)),
                        std::move(values[i]));
          }
        }
        break;
      }
      case Step::Kind::kLibrary: {
        DISC_ASSIGN_OR_RETURN(
            LibraryCallStats stats,
            ComputeLibraryStats(*step.node, *analysis_, bindings));
        KernelCost cost =
            model.EstimateLibrary(stats, options.library_efficiency);
        profile.device_time_us += options.batch_launches
                                      ? cost.body_us + kGraphReplayPerNodeUs
                                      : cost.time_us;
        profile.library_calls += 1;
        profile.bytes_read += stats.bytes_read;
        profile.bytes_written += stats.bytes_written;
        if (cost.memory_bound) profile.memory_bound_launches += 1;
        for (const Value* out : step.node->outputs()) {
          DISC_RETURN_IF_ERROR(allocate_value(out));
        }
        if (execute_data) {
          std::vector<Tensor> operand_values;
          for (const Value* operand : step.node->operands()) {
            operand_values.push_back(env.at(operand));
          }
          DISC_ASSIGN_OR_RETURN(std::vector<Tensor> values,
                                EvaluateNode(*step.node, operand_values));
          for (size_t i = 0; i < values.size(); ++i) {
            env.emplace(step.node->output(static_cast<int>(i)),
                        std::move(values[i]));
          }
        }
        break;
      }
      case Step::Kind::kKernel: {
        const FusedKernel& kernel = *step.kernel;
        DISC_ASSIGN_OR_RETURN(const KernelVariant* variant,
                              kernel.SelectVariant(bindings));
        DISC_ASSIGN_OR_RETURN(KernelStats stats,
                              kernel.ComputeStats(bindings, *variant));
        KernelCost cost = model.EstimateGenerated(stats, *variant);
        profile.device_time_us += options.batch_launches
                                      ? cost.body_us + kGraphReplayPerNodeUs
                                      : cost.time_us;
        profile.kernel_launches += 1;
        profile.bytes_read += stats.bytes_read;
        profile.bytes_written += stats.bytes_written;
        profile.variant_counts[kernel.name() + "/" + variant->name] += 1;
        if (cost.memory_bound) profile.memory_bound_launches += 1;
        for (const Value* out : kernel.group().outputs) {
          DISC_RETURN_IF_ERROR(allocate_value(out));
        }
        if (execute_data) {
          DISC_RETURN_IF_ERROR(kernel.Execute(bindings, &env));
        }
        break;
      }
    }
    release_dead(s);
  }

  if (options.batch_launches) {
    // One driver submission for the whole captured graph.
    profile.device_time_us += model.launch_overhead_us();
  }
  profile.peak_memory_bytes = allocator.stats().peak_bytes_in_use;
  profile.alloc_calls = allocator.stats().alloc_calls;
  profile.alloc_cache_hits = allocator.stats().cache_hits;

  if (execute_data) {
    for (const Value* out : graph_->outputs()) {
      auto it = env.find(out);
      if (it == env.end()) {
        return Status::Internal("graph output %" + std::to_string(out->id()) +
                                " was not produced");
      }
      result.outputs.push_back(it->second);
    }
  }
  return result;
}

std::string Executable::ToString() const {
  std::ostringstream out;
  out << "executable for graph '" << graph_->name() << "' — "
      << report_.ToString() << "\n";
  for (const auto& kernel : kernels_) out << kernel->ToString();
  return out.str();
}

}  // namespace disc
