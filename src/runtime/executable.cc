#include "runtime/executable.h"

#include <chrono>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/eval.h"
#include "kernel/library.h"
#include "support/blame.h"
#include "support/kernel_profile.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

namespace {
// Per-node cost of replaying a captured CUDA graph (vs a full driver
// launch): the GPU still schedules each kernel, the host does not.
constexpr double kGraphReplayPerNodeUs = 0.4;

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

Executable::~Executable() {
  KernelProfileLedger::Global().Forget(this);
}

std::string RunProfile::ToString() const {
  std::ostringstream out;
  out << StrFormat(
      "device=%.1fus launches=%lld lib_calls=%lld bytes=%.2fMB peak=%.2fMB",
      device_time_us, static_cast<long long>(kernel_launches),
      static_cast<long long>(library_calls),
      (bytes_read + bytes_written) / 1e6, peak_memory_bytes / 1e6);
  out << (launch_plan_hit ? " plan=hit" : " plan=miss");
  if (!variant_counts.empty()) {
    out << " variants{";
    bool first = true;
    for (const auto& [name, count] : variant_counts) {
      if (!first) out << ", ";
      out << name << ":" << count;
      first = false;
    }
    out << "}";
  }
  return out.str();
}

std::string CompileReport::ToString() const {
  return StrFormat(
      "compile=%.1fms nodes %lld->%lld, %lld kernels (%lld variants), "
      "groups: %lld loop / %lld input / %lld stitch, symbols %lld->%lld "
      "classes",
      compile_ms, static_cast<long long>(num_nodes_before),
      static_cast<long long>(num_nodes_after),
      static_cast<long long>(num_kernels),
      static_cast<long long>(num_variants),
      static_cast<long long>(fusion.num_loop_groups),
      static_cast<long long>(fusion.num_input_groups),
      static_cast<long long>(fusion.num_stitch_groups),
      static_cast<long long>(shapes.num_symbols),
      static_cast<long long>(shapes.num_classes));
}

std::string CompileReport::PhaseBreakdown() const {
  std::ostringstream out;
  for (const auto& [name, ms] : phase_ms) {
    out << StrFormat("  %-18s %8.3fms (%2.0f%%)\n", name.c_str(), ms,
                     compile_ms > 0 ? 100.0 * ms / compile_ms : 0.0);
  }
  return out.str();
}

Result<RunResult> Executable::Run(const std::vector<Tensor>& inputs,
                                  const RunOptions& options) const {
  std::vector<std::vector<int64_t>> dims;
  dims.reserve(inputs.size());
  for (const Tensor& t : inputs) dims.push_back(t.dims());
  return RunInternal(dims, options.execute_data ? &inputs : nullptr, options);
}

Result<RunResult> Executable::RunWithShapes(
    const std::vector<std::vector<int64_t>>& input_dims,
    const RunOptions& options) const {
  RunOptions timing_only = options;
  timing_only.execute_data = false;
  return RunInternal(input_dims, nullptr, timing_only);
}

void Executable::BuildReleaseSchedule() {
  release_after_step_.assign(steps_.size(), {});
  has_host_steps_ = false;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kHost) has_host_steps_ = true;
  }

  // Liveness: the last step consuming each value. Shape-independent, so it
  // is computed once here instead of on every Run.
  std::unordered_map<const Value*, size_t> last_use;
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    if (step.kind == Step::Kind::kKernel) {
      for (const Value* in : step.kernel->group().inputs) last_use[in] = s;
    } else {
      for (const Value* operand : step.node->operands()) last_use[operand] = s;
    }
  }

  std::unordered_set<const Value*> graph_outputs(graph_->outputs().begin(),
                                                 graph_->outputs().end());
  auto schedule_release = [&](const Value* v, size_t def_step) {
    if (graph_outputs.count(v)) return;  // outputs live to the end
    if (v->producer() != nullptr &&
        v->producer()->kind() == OpKind::kConstant) {
      return;  // weights stay resident for the module's lifetime
    }
    auto lu = last_use.find(v);
    size_t release =
        lu == last_use.end() ? def_step : std::max(def_step, lu->second);
    release_after_step_[release].push_back(v);
  };
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    switch (step.kind) {
      case Step::Kind::kConstant:
        schedule_release(step.node->output(0), s);
        break;
      case Step::Kind::kLibrary:
        for (const Value* out : step.node->outputs()) {
          schedule_release(out, s);
        }
        break;
      case Step::Kind::kKernel:
        for (const Value* out : step.kernel->group().outputs) {
          schedule_release(out, s);
        }
        break;
      case Step::Kind::kHost:
        break;  // host values are not device buffers
    }
  }
}

Result<LaunchPlan> Executable::BuildLaunchPlan(
    const std::vector<std::vector<int64_t>>& input_dims) const {
  DISC_TRACE_SCOPE("plan-build", "runtime");
  LaunchPlan plan;
  // Host-side shape computation: solve every symbolic dim once per
  // signature.
  DISC_ASSIGN_OR_RETURN(plan.bindings, analysis_->BindInputs(input_dims));
  plan.steps.resize(steps_.size());

  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    PlannedStep& ps = plan.steps[s];
    auto record_alloc = [&](const Value* v) -> Status {
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims,
                            analysis_->EvaluateShape(v, plan.bindings));
      ps.alloc_bytes.push_back(Product(dims) * DTypeSize(v->dtype()));
      return Status::OK();
    };
    switch (step.kind) {
      case Step::Kind::kConstant:
        DISC_RETURN_IF_ERROR(record_alloc(step.node->output(0)));
        break;
      case Step::Kind::kHost:
        break;  // results are data, recorded by the first data-mode run
      case Step::Kind::kLibrary: {
        DISC_ASSIGN_OR_RETURN(
            ps.library_stats,
            ComputeLibraryStats(*step.node, *analysis_, plan.bindings));
        for (const Value* out : step.node->outputs()) {
          DISC_RETURN_IF_ERROR(record_alloc(out));
        }
        break;
      }
      case Step::Kind::kKernel: {
        const FusedKernel& kernel = *step.kernel;
        DISC_ASSIGN_OR_RETURN(ps.variant_index,
                              kernel.SelectVariantIndex(plan.bindings));
        // Guard soundness check: the selected variant's guard must admit
        // these bindings. Dispatch normally guarantees this (guards are
        // evaluated in order), so a violation here means the dispatch
        // itself is miscompiled — surface it as kDataLoss so the engine
        // rolls back instead of retrying the same broken artifact.
        {
          const Guard& guard = kernel.variants()[ps.variant_index].guard;
          DISC_ASSIGN_OR_RETURN(bool admitted, guard.Evaluate(plan.bindings));
          if (!admitted) {
            return Status::DataLoss(StrFormat(
                "guard violation: kernel %s selected variant %d ('%s') whose "
                "guard rejects the bound shapes",
                kernel.name().c_str(), ps.variant_index,
                kernel.variants()[ps.variant_index].name.c_str()));
          }
        }
        DISC_ASSIGN_OR_RETURN(
            ps.kernel_stats,
            kernel.ComputeStats(plan.bindings,
                                kernel.variants()[ps.variant_index]));
        for (const Value* out : kernel.group().outputs) {
          DISC_RETURN_IF_ERROR(record_alloc(out));
        }
        break;
      }
    }
  }

  // Memoize the concrete memory layout for this signature: the arena peak
  // formula and the per-slot block sizes, evaluated once. Mode-independent
  // and cheap, so a single cached plan serves every MemoryMode and a plan
  // hit performs no size arithmetic at all.
  if (memory_plan_.planned && memory_plan_.peak_bytes.valid()) {
    DISC_ASSIGN_OR_RETURN(
        plan.arena_bytes,
        analysis_->EvaluateDim(memory_plan_.peak_bytes, plan.bindings));
  }
  plan.slot_bytes.reserve(buffer_plan_.slot_bytes.size());
  for (const DimExpr& bytes : buffer_plan_.slot_bytes) {
    DISC_ASSIGN_OR_RETURN(int64_t concrete,
                          analysis_->EvaluateDim(bytes, plan.bindings));
    plan.slot_bytes.push_back(concrete);
  }
  return plan;
}

Result<int64_t> Executable::PredictPeakBytes(
    const std::vector<std::vector<int64_t>>& input_dims) const {
  if (!memory_plan_.planned || !memory_plan_.peak_bytes.valid()) return 0;
  // A hot signature answers straight from the memoized plan; Peek leaves
  // the cache stats and LRU order untouched (prediction is observational).
  if (std::shared_ptr<const LaunchPlan> plan =
          plan_cache_.Peek(ShapeSignature(input_dims))) {
    return plan->arena_bytes;
  }
  DISC_ASSIGN_OR_RETURN(SymbolBindings bindings,
                        analysis_->BindInputs(input_dims));
  return analysis_->EvaluateDim(memory_plan_.peak_bytes, bindings);
}

Result<RunResult> Executable::RunInternal(
    const std::vector<std::vector<int64_t>>& input_dims,
    const std::vector<Tensor>* inputs, const RunOptions& options) const {
  auto start = std::chrono::steady_clock::now();
  const bool execute_data = inputs != nullptr;
  TraceScope run_scope("executable-run", "runtime");
  CountMetric("runtime.run.count");

  std::string signature;
  std::shared_ptr<const LaunchPlan> cached;
  if (options.use_launch_plan_cache) {
    signature = ShapeSignature(input_dims);
    cached = plan_cache_.Lookup(signature);
  }
  const bool hit = cached != nullptr;

  LaunchPlan fresh;
  const LaunchPlan* plan = cached.get();
  LaunchPlan* record_host = nullptr;
  if (!hit) {
    DISC_ASSIGN_OR_RETURN(fresh, BuildLaunchPlan(input_dims));
    plan = &fresh;
    if (execute_data && options.use_launch_plan_cache) record_host = &fresh;
  } else if (execute_data && !cached->host_results_recorded &&
             has_host_steps_) {
    // The cached plan was built by a timing-only run; upgrade it once with
    // the host shape-step results this data-mode run is about to compute.
    fresh = *cached;
    plan = &fresh;
    record_host = &fresh;
  }
  const double host_plan_us = ElapsedUs(start);
  if (options.use_launch_plan_cache) {
    CountMetric(hit ? "runtime.plan_cache.hit" : "runtime.plan_cache.miss");
  }
  ObserveMetric("runtime.host_plan_us", host_plan_us);
  if (run_scope.active()) {
    run_scope.AddArg("plan", options.use_launch_plan_cache
                                 ? (hit ? "hit" : "miss")
                                 : "cache-off");
    run_scope.AddArg("signature", signature.empty()
                                      ? ShapeSignature(input_dims)
                                      : signature);
    run_scope.AddArg("mode", execute_data ? "data" : "timing-only");
    // Causal link back to the serving request that issued this Run (0
    // outside a serving context).
    const uint64_t trace_id = RequestContext::CurrentTraceId();
    if (trace_id != 0) {
      run_scope.AddArg("trace_id", std::to_string(trace_id));
    }
  }

  // The observatory keys entries by shape signature; reuse the cache key
  // when it exists, compute it only for ledger-enabled cache-off runs.
  if (signature.empty() && KernelProfileLedger::Global().enabled()) {
    signature = ShapeSignature(input_dims);
  }
  DISC_ASSIGN_OR_RETURN(
      RunResult result,
      ExecutePlan(*plan, inputs, options, signature, record_host));
  result.profile.launch_plan_hit = hit;
  result.profile.host_plan_us = host_plan_us;

  // Publish only after a successful run, so failures never poison the
  // cache; re-publishing an upgraded hit replaces the entry in place. A
  // failed insertion (fault-injected here; allocation failure in a real
  // runtime) is not an error — the run already succeeded, the signature
  // just stays uncached and later runs rebuild the plan.
  if (options.use_launch_plan_cache && (!hit || record_host != nullptr)) {
    if (Status inject = CheckFailpoint("runtime.plan_cache.insert");
        !inject.ok()) {
      CountMetric("runtime.plan_cache.insert_dropped");
    } else {
      plan_cache_.Insert(
          signature, std::make_shared<const LaunchPlan>(std::move(fresh)));
    }
  }
  return result;
}

Result<RunResult> Executable::ExecutePlan(const LaunchPlan& plan,
                                          const std::vector<Tensor>* inputs,
                                          const RunOptions& options,
                                          const std::string& signature,
                                          LaunchPlan* record_host) const {
  DISC_TRACE_SCOPE("plan-execute", "runtime");
  const SymbolBindings& bindings = plan.bindings;
  DeviceModel model(options.device);
  RunResult result;
  RunProfile& profile = result.profile;
  // One relaxed atomic load decides whether this Run feeds the kernel
  // observatory; launches are buffered locally and flushed in ONE
  // ObserveRun (one lock) after the step loop.
  KernelProfileLedger& kernel_ledger = KernelProfileLedger::Global();
  const bool profile_kernels = kernel_ledger.enabled();
  std::vector<KernelLaunchObservation> kernel_observations;
  CachingAllocator allocator(options.memory_limit_bytes);
  const bool execute_data = inputs != nullptr;
  const MemoryMode mode = options.memory_mode;
  const bool use_arena = mode == MemoryMode::kArena && memory_plan_.planned;

  // Up-front allocation for the planned modes. Arena: the whole Run's
  // footprint in ONE call against the memoized peak formula — the limit
  // check (and any armed runtime.alloc failpoint) fires here, before any
  // step executes, never mid-Run. Per-slot: one block per compile-time
  // buffer slot.
  std::vector<int64_t> slot_block;
  if (use_arena) {
    if (plan.arena_bytes > 0) {
      DISC_RETURN_IF_ERROR(allocator.Allocate(plan.arena_bytes).status());
    }
    profile.arena_bytes = plan.arena_bytes;
  } else if (mode == MemoryMode::kPerSlot) {
    slot_block.reserve(plan.slot_bytes.size());
    for (int64_t bytes : plan.slot_bytes) {
      DISC_ASSIGN_OR_RETURN(int64_t id, allocator.Allocate(bytes));
      slot_block.push_back(id);
    }
  }

  std::unordered_map<const Value*, Tensor> env;
  if (execute_data) {
    for (size_t i = 0; i < graph_->inputs().size(); ++i) {
      env.emplace(graph_->inputs()[i], (*inputs)[i]);
    }
  }

  std::unordered_map<const Value*, int64_t> block_of;
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    const PlannedStep& ps = plan.steps[s];
    size_t next_alloc = 0;
    auto allocate_value = [&](const Value* v) -> Status {
      const int64_t bytes = ps.alloc_bytes[next_alloc++];
      // Values covered by a compile-time plan live in pre-allocated
      // memory: arena residents (constants included) at their offsets,
      // slot members in their slot's block. They never enter block_of, so
      // the release loop naturally skips them.
      if (use_arena && memory_plan_.slot_of.count(v)) return Status::OK();
      if (mode == MemoryMode::kPerSlot && buffer_plan_.slot_of.count(v)) {
        return Status::OK();
      }
      DISC_ASSIGN_OR_RETURN(block_of[v], allocator.Allocate(bytes));
      return Status::OK();
    };
    switch (step.kind) {
      case Step::Kind::kConstant: {
        // Weights are resident on device for the module's lifetime.
        DISC_RETURN_IF_ERROR(allocate_value(step.node->output(0)));
        if (execute_data) {
          env.emplace(step.node->output(0),
                      step.node->GetTensorAttr("value"));
        }
        break;
      }
      case Step::Kind::kHost: {
        // Shape computation runs on the host CPU alongside kernel
        // launches; it contributes no device time. Results are a pure
        // function of the shape signature, so a plan that recorded them
        // replays deep copies instead of re-evaluating the node.
        if (!execute_data) break;
        TraceScope step_scope("host-shape-op", "runtime.step");
        step_scope.AddArg("op", OpName(step.node->kind()));
        step_scope.AddArg("replayed", ps.has_host_results ? "true" : "false");
        if (ps.has_host_results) {
          for (size_t i = 0; i < ps.host_results.size(); ++i) {
            env.emplace(step.node->output(static_cast<int>(i)),
                        ps.host_results[i].Clone());
          }
          break;
        }
        std::vector<Tensor> operand_values;
        for (const Value* operand : step.node->operands()) {
          operand_values.push_back(env.at(operand));
        }
        DISC_ASSIGN_OR_RETURN(std::vector<Tensor> values,
                              EvaluateNode(*step.node, operand_values));
        if (record_host != nullptr) {
          PlannedStep& recorded = record_host->steps[s];
          recorded.host_results.clear();
          for (const Tensor& value : values) {
            recorded.host_results.push_back(value.Clone());
          }
          recorded.has_host_results = true;
        }
        for (size_t i = 0; i < values.size(); ++i) {
          env.emplace(step.node->output(static_cast<int>(i)),
                      std::move(values[i]));
        }
        break;
      }
      case Step::Kind::kLibrary: {
        TraceScope step_scope(OpName(step.node->kind()), "runtime.step");
        step_scope.AddArg("kind", "library-call");
        const LibraryCallStats& stats = ps.library_stats;
        KernelCost cost =
            model.EstimateLibrary(stats, options.library_efficiency);
        profile.device_time_us += options.batch_launches
                                      ? cost.body_us + kGraphReplayPerNodeUs
                                      : cost.time_us;
        profile.library_calls += 1;
        profile.bytes_read += stats.bytes_read;
        profile.bytes_written += stats.bytes_written;
        if (cost.memory_bound) profile.memory_bound_launches += 1;
        for (const Value* out : step.node->outputs()) {
          DISC_RETURN_IF_ERROR(allocate_value(out));
        }
        if (execute_data) {
          std::vector<Tensor> operand_values;
          for (const Value* operand : step.node->operands()) {
            operand_values.push_back(env.at(operand));
          }
          DISC_ASSIGN_OR_RETURN(std::vector<Tensor> values,
                                EvaluateNode(*step.node, operand_values));
          for (size_t i = 0; i < values.size(); ++i) {
            env.emplace(step.node->output(static_cast<int>(i)),
                        std::move(values[i]));
          }
        }
        break;
      }
      case Step::Kind::kKernel: {
        // Fault seam: a kernel launch failing at runtime (sticky device
        // error, watchdog kill) surfaces as a Status the serving layer can
        // retry or degrade on — never an abort.
        DISC_INJECT_FAILPOINT("runtime.kernel");
        const FusedKernel& kernel = *step.kernel;
        const KernelVariant& variant = kernel.variants()[ps.variant_index];
        const KernelStats& stats = ps.kernel_stats;
        TraceScope step_scope(kernel.name(), "runtime.step");
        step_scope.AddArg("kind", "kernel-launch");
        step_scope.AddArg("variant", variant.name);
        KernelCost cost = model.EstimateGenerated(stats, variant);
        profile.device_time_us += options.batch_launches
                                      ? cost.body_us + kGraphReplayPerNodeUs
                                      : cost.time_us;
        profile.kernel_launches += 1;
        profile.bytes_read += stats.bytes_read;
        profile.bytes_written += stats.bytes_written;
        profile.variant_counts[kernel.name() + "/" + variant.name] += 1;
        if (cost.memory_bound) profile.memory_bound_launches += 1;
        if (profile_kernels) {
          KernelLaunchObservation obs;
          obs.kernel = &kernel;
          obs.variant_index = ps.variant_index;
          obs.time_us = cost.time_us;
          obs.body_us = cost.body_us;
          obs.memory_bound = cost.memory_bound;
          obs.utilization = cost.utilization;
          obs.bytes = stats.total_bytes();
          obs.flops = stats.flops;
          kernel_observations.push_back(obs);
        }
        // KernelCost.utilization was computed and dropped before; the
        // histogram makes the launch-bound/memory-bound story visible
        // without enabling the ledger. Pointer cached: stable for the
        // process lifetime, and the non-default bounds (utilization is a
        // fraction) only apply on first registration anyway.
        static Histogram* utilization_hist =
            MetricsRegistry::Global().GetHistogram(
                "runtime.kernel.utilization",
                {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
        utilization_hist->Observe(cost.utilization);
        for (const Value* out : kernel.group().outputs) {
          DISC_RETURN_IF_ERROR(allocate_value(out));
        }
        if (execute_data) {
          DISC_RETURN_IF_ERROR(kernel.Execute(bindings, &env));
        }
        break;
      }
    }
    for (const Value* dead : release_after_step_[s]) {
      auto it = block_of.find(dead);
      if (it != block_of.end()) {
        DISC_RETURN_IF_ERROR(allocator.Free(it->second));
        block_of.erase(it);
      }
    }
  }

  if (record_host != nullptr && execute_data) {
    record_host->host_results_recorded = true;
  }

  if (options.batch_launches) {
    // One driver submission for the whole captured graph.
    profile.device_time_us += model.launch_overhead_us();
  }
  profile.peak_memory_bytes = allocator.stats().peak_bytes_in_use;
  profile.alloc_calls = allocator.stats().alloc_calls;
  profile.alloc_cache_hits = allocator.stats().cache_hits;
  profile.alloc_rounding_waste = allocator.stats().bytes_rounding_waste;
  // The registry mirrors the per-run allocator counters so profile fields
  // and global metrics can never disagree (asserted in metrics_test).
  CountMetric("runtime.alloc.calls", profile.alloc_calls);
  CountMetric("runtime.alloc.cache_hits", profile.alloc_cache_hits);
  CountMetric("runtime.alloc.bytes_rounding_waste",
              profile.alloc_rounding_waste);
  // Same mirror discipline for the memory-bound verdict the device model
  // computes per launch (generated kernels and library calls both count).
  CountMetric("runtime.kernel.memory_bound", profile.memory_bound_launches);
  CountMetric("runtime.kernel.launches", profile.kernel_launches);

  if (profile_kernels && !kernel_observations.empty()) {
    kernel_ledger.ObserveRun(this, signature, bindings,
                             RequestContext::CurrentTraceId(),
                             profile.device_time_us, kernel_observations);
  }

  if (execute_data) {
    for (const Value* out : graph_->outputs()) {
      auto it = env.find(out);
      if (it == env.end()) {
        return Status::Internal("graph output %" + std::to_string(out->id()) +
                                " was not produced");
      }
      result.outputs.push_back(it->second);
    }
  }
  return result;
}

std::string Executable::ToString() const {
  std::ostringstream out;
  out << "executable for graph '" << graph_->name() << "' — "
      << report_.ToString() << "\n";
  for (const auto& kernel : kernels_) out << kernel->ToString();
  return out.str();
}

}  // namespace disc
