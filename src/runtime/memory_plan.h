// Symbolic arena memory planning (BladeDISC++'s "compile-time memory
// optimization under dynamic shapes"): instead of one block per buffer
// slot, every device value receives a byte *offset* into a single arena,
// valid for EVERY runtime shape.
//
// The planner runs liveness over the step schedule (like PlanBuffers) but
// relaxes the sharing rule: two values may share arena space when their
// live ranges are disjoint and their sizes are *comparable* under the
// constraint system — `SymbolicDimManager::ProvablyLe` discharges
// "does size A fit in the space of size B for every shape?" with divisor
// and bound facts. Three reuse forms:
//   * exact   — canonical size expressions are equal (PlanBuffers' rule)
//   * fit     — the new value provably fits below the slot's size
//   * widen   — the slot provably fits in the new value's size; the slot
//               grows (sound: every earlier occupant fit the old size)
// Sizes that compare with no free slot fall back to a fresh slot — the
// conservative per-slot layout — and are recorded with a reason so
// `disc_explain --memory-plan` / memory_plan.json can show why.
//
// Slot sizes are aligned to kArenaAlignment up front, so offsets (prefix
// sums) are aligned for every binding and a single arena allocation incurs
// zero size-class rounding waste in CachingAllocator. The arena size is
// the symbolic `peak_bytes` formula: evaluate it once per shape signature
// (memoized in the launch-plan cache) and the Run hot path does a single
// cached allocation — and serving can *predict* a batch's footprint before
// running it (memory-aware admission).
#ifndef DISC_RUNTIME_MEMORY_PLAN_H_
#define DISC_RUNTIME_MEMORY_PLAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/graph.h"
#include "runtime/buffer_plan.h"
#include "shape/shape_analysis.h"

namespace disc {

/// Arena offsets are multiples of this; matches CachingAllocator's
/// size-class quantum so arena allocations round-trip waste-free.
inline constexpr int64_t kArenaAlignment = 256;

/// One arena slot: an aligned symbolic byte size and the symbolic byte
/// offset of its base within the arena.
struct ArenaSlot {
  DimExpr bytes;   // aligned: provably divisible by kArenaAlignment
  DimExpr offset;  // prefix sum of preceding slot sizes
};

/// Why a value did not share any existing arena slot.
struct ArenaFallback {
  int value_id = -1;   // Value::id() of the value ( -1 for synthetic items)
  std::string bytes;   // canonical aligned size expression
  std::string reason;  // e.g. "incomparable with free slots [...]"
};

/// Planner input decoupled from IR values so property tests can drive
/// randomized schedules directly. Live interval is the inclusive step
/// range [def_step, last_use_step].
struct ArenaItem {
  DimExpr bytes;          // un-aligned symbolic byte size
  int def_step = 0;
  int last_use_step = 0;  // clamped up to def_step
  bool pinned = false;    // never recycled (graph outputs, constants)
  int value_id = -1;      // provenance for fallback records
};

/// Raw planner output, parallel to the input items.
struct ArenaLayout {
  std::vector<int> slot_of;  // item index -> slot id
  std::vector<ArenaSlot> slots;
  DimExpr peak_bytes;  // sum of aligned slot sizes == symbolic arena size
  int64_t num_reused = 0;            // placements into an existing slot
  int64_t num_cross_size_reuses = 0; // fit / widen placements
  std::vector<ArenaFallback> fallbacks;
};

/// \brief Assigns arena slots and offsets over a synthetic schedule.
ArenaLayout PlanArenaItems(const std::vector<ArenaItem>& items,
                           const SymbolicDimManager& manager);

/// The compile-phase product carried by Executable: value -> slot, slot
/// offset/size expressions, and the symbolic peak-bytes formula.
struct MemoryPlan {
  bool planned = false;  // false when the phase did not run
  std::unordered_map<const Value*, int> slot_of;
  std::vector<ArenaSlot> slots;
  DimExpr peak_bytes;
  int64_t num_values = 0;
  int64_t num_reused = 0;
  int64_t num_cross_size_reuses = 0;
  std::vector<ArenaFallback> fallbacks;

  int64_t num_slots() const { return static_cast<int64_t>(slots.size()); }
  std::string ToString() const;
  /// Deterministic memory_plan.json artifact (dump subsystem).
  std::string ToJson() const;
};

/// \brief Plans the arena over the compiler's step schedule. Unlike
/// PlanBuffers, `steps` here should include constants (they become pinned
/// arena residents, so a Run needs no further allocations); `keep_alive`
/// values are pinned too.
MemoryPlan PlanArena(const std::vector<PlanStep>& steps,
                     const std::vector<const Value*>& keep_alive,
                     const ShapeAnalysis& analysis);

}  // namespace disc

#endif  // DISC_RUNTIME_MEMORY_PLAN_H_
