#include "runtime/buffer_plan.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "support/string_util.h"

namespace disc {

int64_t BufferAssignment::num_recycled_slots() const {
  int64_t n = 0;
  for (int64_t occupants : slot_occupants) {
    if (occupants > 1) ++n;
  }
  return n;
}

int64_t BufferAssignment::max_slot_occupancy() const {
  int64_t best = 0;
  for (int64_t occupants : slot_occupants) best = std::max(best, occupants);
  return best;
}

std::string BufferAssignment::ToString() const {
  return StrFormat(
      "%lld values in %lld slots (%lld reuses across %lld recycled slots, "
      "deepest chain %lld)",
      static_cast<long long>(num_values), static_cast<long long>(num_slots()),
      static_cast<long long>(num_reused),
      static_cast<long long>(num_recycled_slots()),
      static_cast<long long>(max_slot_occupancy()));
}

BufferAssignment PlanBuffers(const std::vector<PlanStep>& steps,
                             const std::vector<const Value*>& keep_alive,
                             const ShapeAnalysis& analysis) {
  BufferAssignment plan;
  std::unordered_set<const Value*> pinned(keep_alive.begin(),
                                          keep_alive.end());

  // Last step that uses each value.
  std::unordered_map<const Value*, size_t> last_use;
  for (size_t s = 0; s < steps.size(); ++s) {
    for (const Value* v : steps[s].uses) last_use[v] = s;
  }

  // Symbolic byte size of a value, canonical so equality is structural.
  auto size_expr = [&](const Value* v) {
    DimExpr numel = analysis.manager().Canonicalize(
        SymShapeNumElements(analysis.GetShape(v)));
    return DimExpr::Mul(numel, DimExpr::Const(DTypeSize(v->dtype())));
  };

  // Linear scan with per-size free lists.
  std::map<std::string, std::vector<int>> free_slots;
  std::unordered_set<const Value*> freed;  // guard against duplicate uses
  for (size_t s = 0; s < steps.size(); ++s) {
    for (const Value* v : steps[s].defines) {
      DimExpr bytes = size_expr(v);
      const std::string& key = bytes.ToString();
      auto& free_list = free_slots[key];
      int slot;
      if (!free_list.empty()) {
        slot = free_list.back();
        free_list.pop_back();
      } else {
        slot = static_cast<int>(plan.slot_bytes.size());
        plan.slot_bytes.push_back(bytes);
        plan.slot_occupants.push_back(0);
      }
      ++plan.slot_occupants[slot];
      plan.slot_of[v] = slot;
      ++plan.num_values;
    }
    // Recycle slots of values whose last use is this step.
    for (const Value* v : steps[s].defines) {
      // A defined-but-never-used value dies immediately after its step
      // unless pinned.
      if (pinned.count(v)) continue;
      auto lu = last_use.find(v);
      if ((lu == last_use.end() || lu->second <= s) && freed.insert(v).second) {
        free_slots[size_expr(v).ToString()].push_back(plan.slot_of.at(v));
      }
    }
    for (const Value* v : steps[s].uses) {
      if (pinned.count(v)) continue;
      auto it = plan.slot_of.find(v);
      if (it == plan.slot_of.end()) continue;  // graph input, not planned
      auto lu = last_use.find(v);
      if (lu != last_use.end() && lu->second == s && freed.insert(v).second) {
        free_slots[size_expr(v).ToString()].push_back(it->second);
      }
    }
  }
  // Reuse events derive from the occupant chains so that chained
  // recycling (one slot hosting 3+ values) counts every hand-off.
  for (int64_t occupants : plan.slot_occupants) {
    plan.num_reused += occupants - 1;
  }
  return plan;
}

}  // namespace disc
