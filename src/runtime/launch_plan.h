// Shape-signature launch plans: memoizing the host-side work of a Run.
//
// "Compile once, run any shape" still pays a per-launch host cost: every
// Run must solve the symbolic dims from the input shapes, evaluate each
// kernel's guards to pick a variant, compute launch geometry and library
// footprints, and instantiate the buffer plan. All of that is a pure
// function of the input-shape signature — so for the dominant serving
// pattern (decode loops, repeat-heavy traces) it can be done once per
// signature and replayed.
//
// A LaunchPlan records everything the host derives from one signature:
//   * the solved SymbolBindings,
//   * per step: the selected KernelVariant index, the KernelStats /
//     LibraryCallStats (launch dims live inside KernelStats), and the
//     concrete byte sizes of every buffer the step allocates,
//   * optionally the host shape-step results (tiny integer tensors that
//     are themselves pure functions of the signature).
//
// The plan deliberately does NOT bake in device time: costs are
// re-estimated from the recorded stats through the DeviceModel on every
// Run, so a cached Run sees identical simulated device timing under any
// RunOptions (device, library efficiency, graph replay) — only the host
// overhead shrinks. This mirrors real BladeDISC's runtime shape-signature
// dispatch; CUDA-graph replay is the degenerate form of the same idea and
// shares the signature key (see ShapeSignature).
//
// LaunchPlanCache is a bounded, thread-safe LRU over canonical signature
// strings. Plans are immutable once published (shared_ptr<const>), so
// concurrent Runs on one Executable may share a plan freely.
#ifndef DISC_RUNTIME_LAUNCH_PLAN_H_
#define DISC_RUNTIME_LAUNCH_PLAN_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/tensor.h"
#include "kernel/kernel.h"
#include "kernel/library.h"
#include "shape/shape_analysis.h"

namespace disc {

/// \brief Canonical cache key for a set of concrete input shapes, e.g.
/// "1x8x256;1x32x256;". One Executable fixes input count/ranks/dtypes, so
/// the dims alone identify the signature. Shared by the launch-plan cache
/// and the engines' CUDA-graph capture sets.
std::string ShapeSignature(const std::vector<std::vector<int64_t>>& input_dims);

/// \brief Inverse of ShapeSignature: "1x8x256;1x32x256;" back into dims.
/// Used to turn recorded signatures (flight-recorder outliers, plan-cache
/// keys) into replayable probe bindings for differential validation.
/// Rejects strings ShapeSignature could not have produced.
Result<std::vector<std::vector<int64_t>>> ParseShapeSignature(
    const std::string& signature);

/// Recorded host-side decisions for one executable step.
struct PlannedStep {
  /// Index into FusedKernel::variants() (kKernel steps only).
  int variant_index = 0;
  /// Launch geometry + traffic of the selected variant (kKernel steps).
  KernelStats kernel_stats;
  /// Footprint of the vendor call (kLibrary steps).
  LibraryCallStats library_stats;
  /// Concrete byte size per buffer this step allocates, in the same order
  /// the step defines its outputs (the instantiated buffer plan).
  std::vector<int64_t> alloc_bytes;
  /// Host shape-step results (kHost steps, recorded by data-mode runs).
  /// Deep copies: they never alias a caller-visible tensor.
  std::vector<Tensor> host_results;
  bool has_host_results = false;
};

/// Everything the host derives from one shape signature.
struct LaunchPlan {
  SymbolBindings bindings;
  std::vector<PlannedStep> steps;  // parallel to Executable's step schedule
  /// Concrete arena size: the symbolic peak-bytes formula evaluated for
  /// this signature (0 when the module has no device values). Memoized
  /// here so an arena-mode Run on a plan hit performs no size arithmetic
  /// and exactly one allocator call — and so admission control can read a
  /// hot signature's footprint off the cache.
  int64_t arena_bytes = 0;
  /// Concrete byte size per BufferAssignment slot (per-slot memory mode).
  std::vector<int64_t> slot_bytes;
  /// True once a data-mode run has filled every host step's results (plans
  /// built by timing-only runs are upgraded on the first data-mode hit).
  bool host_results_recorded = false;
};

/// \brief Bounded thread-safe LRU: signature -> immutable LaunchPlan.
class LaunchPlanCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
    int64_t capacity = 0;
  };

  explicit LaunchPlanCache(size_t capacity = 128) : capacity_(capacity) {}

  /// \brief Returns the plan for `signature` (bumping it to most-recent)
  /// or nullptr on a miss. Counts a hit/miss either way.
  std::shared_ptr<const LaunchPlan> Lookup(const std::string& signature);

  /// \brief Observational lookup: no hit/miss accounting, no LRU bump.
  /// Used by admission control to read a signature's memoized footprint
  /// without distorting the cache stats that benches and tests assert on.
  std::shared_ptr<const LaunchPlan> Peek(const std::string& signature) const;

  /// \brief Publishes a plan, evicting the least-recently-used entry when
  /// at capacity. Re-inserting an existing signature replaces the plan
  /// (used to attach host results recorded by the first data-mode run).
  void Insert(const std::string& signature,
              std::shared_ptr<const LaunchPlan> plan);

  /// \brief Drops entries (oldest first) until `size() <= capacity`.
  void set_capacity(size_t capacity);

  Stats stats() const;
  void Clear();

 private:
  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  // Most-recently-used at the front.
  std::list<std::pair<std::string, std::shared_ptr<const LaunchPlan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  Stats stats_;
};

}  // namespace disc

#endif  // DISC_RUNTIME_LAUNCH_PLAN_H_
