// The compiled artifact and its runtime.
//
// An Executable owns the optimized graph, the shape analysis (whose DimExprs
// double as the host-side shape program), the fusion plan and the compiled
// kernels. One compilation serves every input shape: each Run solves the
// symbolic dims from the actual input shapes, evaluates every kernel's
// guards to pick variants, computes launch dims, and executes — no
// recompilation, mirroring the paper's compile-once design.
//
// Runs are split into two phases (see runtime/launch_plan.h):
//   * plan build  — all host-side symbolic work (symbol solve, guard
//     evaluation, launch geometry, library footprints, buffer sizes),
//     a pure function of the input-shape signature;
//   * plan execute — cost-model charging, buffer lifetime simulation and
//     (in data mode) numeric execution from a finished plan.
// Plans are memoized per signature in a bounded thread-safe LRU, so
// repeated-shape Runs (decode loops, hot serving signatures) skip the
// symbolic phase entirely. Cached runs are strictly observational: same
// outputs bit-for-bit, same simulated device time — less host work.
//
// Two run modes:
//   * data mode      — executes numerics on the CPU and simulates timing;
//   * timing-only    — skips data movement entirely (shapes suffice), used
//                      by the benchmarks so sweeps stay fast.
#ifndef DISC_RUNTIME_EXECUTABLE_H_
#define DISC_RUNTIME_EXECUTABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fusion/fusion.h"
#include "ir/graph.h"
#include "ir/tensor.h"
#include "kernel/kernel.h"
#include "runtime/allocator.h"
#include "runtime/buffer_plan.h"
#include "runtime/launch_plan.h"
#include "runtime/memory_plan.h"
#include "sim/device.h"

namespace disc {

/// How a Run backs device values with memory.
enum class MemoryMode {
  /// One CachingAllocator call per live value (the baseline; reuse happens
  /// dynamically through the allocator's size-class cache).
  kCachingAllocator,
  /// One block per compile-time BufferAssignment slot, allocated up front;
  /// values inside a slot share it for free. Constants still allocate
  /// individually (they are not slot residents).
  kPerSlot,
  /// A single allocation of the symbolic peak formula: every value —
  /// constants included — lives at a compile-time offset in one arena.
  /// With a launch-plan cache hit the Run does no size arithmetic and at
  /// most one (size-class cached) allocator call.
  kArena,
};

struct RunOptions {
  DeviceSpec device = DeviceSpec::A10();
  /// When false, Run only simulates timing (outputs stay empty).
  bool execute_data = true;
  /// Fraction of peak FLOPs the vendor library reaches for GEMM/Conv
  /// (cuBLAS-class 0.85; tuned TVM/TensorRT kernels higher).
  double library_efficiency = 0.85;
  /// CUDA-Graph-style replay: all kernel launches of the run are submitted
  /// as one captured graph, paying the driver launch latency once plus a
  /// small per-node replay cost. Only valid when the caller has verified
  /// the shape signature matches a previous capture (CUDA graphs are
  /// shape-static); engines gate this on their signature cache.
  bool batch_launches = false;
  /// Memoize the host-side launch plan per shape signature. Cached plans
  /// never change outputs or simulated device time (ablation knob for the
  /// launch-overhead bench; Inductor-style engines that re-check guards
  /// every call turn it off).
  bool use_launch_plan_cache = true;
  /// Device-memory capacity for this run's allocator; 0 = unlimited.
  /// Dynamic shapes make the footprint a per-request quantity, so blowing
  /// the limit returns ResourceExhausted from Run (retryable) instead of
  /// aborting the process.
  int64_t memory_limit_bytes = 0;
  /// Memory-planning strategy. Defaults to the caching allocator so
  /// existing byte-stable baselines (F7/F9/F10 count per-value allocator
  /// traffic and failpoint fires) are unchanged; the arena is opt-in via
  /// engines/benches. Outputs are bit-identical across modes — only the
  /// allocation pattern differs.
  MemoryMode memory_mode = MemoryMode::kCachingAllocator;
};

/// Counters collected during one Run.
struct RunProfile {
  double device_time_us = 0.0;
  int64_t kernel_launches = 0;  // generated kernels
  int64_t library_calls = 0;
  int64_t memory_bound_launches = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t peak_memory_bytes = 0;
  /// Device allocator traffic (size-class cache hits are free on the hot
  /// path; misses map/reserve new memory).
  int64_t alloc_calls = 0;
  int64_t alloc_cache_hits = 0;
  /// Bytes lost to size-class rounding across this run's allocations
  /// (zero in arena mode: the plan aligns every slot to the quantum).
  int64_t alloc_rounding_waste = 0;
  /// Concrete arena size for this signature (arena mode only, else 0).
  int64_t arena_bytes = 0;
  /// True when this Run replayed a memoized launch plan (signature hit).
  bool launch_plan_hit = false;
  /// Measured wall-clock host cost of obtaining the launch plan: symbol
  /// solve + guard eval + launch geometry + buffer planning on a miss, a
  /// hash lookup on a hit. Real time, not simulated.
  double host_plan_us = 0.0;
  std::map<std::string, int64_t> variant_counts;  // per variant name

  std::string ToString() const;
};

struct RunResult {
  std::vector<Tensor> outputs;  // empty in timing-only mode
  RunProfile profile;
};

/// Summary of one compilation, for reporting and the compile-time bench.
struct CompileReport {
  double compile_ms = 0.0;
  /// Wall-clock per pipeline phase, in pipeline order (graph-passes,
  /// shape-analysis, fusion-planning, kernel-compile, step-schedule,
  /// buffer-assignment). Sums to ~compile_ms.
  std::vector<std::pair<std::string, double>> phase_ms;
  int64_t num_nodes_before = 0;
  int64_t num_nodes_after = 0;
  FusionPlan::Stats fusion;
  SymbolicDimManager::Stats shapes;
  int64_t num_kernels = 0;
  int64_t num_variants = 0;
  /// Compile-time buffer assignment: device values vs logical slots.
  int64_t buffer_values = 0;
  int64_t buffer_slots = 0;
  /// Symbolic arena plan (memory-planning phase): slot count, cross-size
  /// reuses ProvablyLe discharged, and values that fell back to a fresh
  /// slot because their size was incomparable with every free slot.
  int64_t arena_slots = 0;
  int64_t arena_cross_size_reuses = 0;
  int64_t arena_fallbacks = 0;

  std::string ToString() const;
  /// One line per phase: "graph-passes 0.42ms (31%)".
  std::string PhaseBreakdown() const;
};

/// \brief A compiled, shape-polymorphic module. Create via DiscCompiler.
class Executable {
 public:
  /// Forgets this executable's entries in the kernel-profile ledger: a
  /// feedback-driven hot swap can destroy an observed executable while
  /// the ledger still holds pointers into its kernels.
  ~Executable();

  /// \brief Full run: numerics + simulated timing.
  Result<RunResult> Run(const std::vector<Tensor>& inputs,
                        const RunOptions& options = {}) const;

  /// \brief Timing-only run from input shapes.
  Result<RunResult> RunWithShapes(
      const std::vector<std::vector<int64_t>>& input_dims,
      const RunOptions& options = {}) const;

  const Graph& graph() const { return *graph_; }
  const ShapeAnalysis& analysis() const { return *analysis_; }
  const FusionPlan& plan() const { return plan_; }
  const std::vector<std::unique_ptr<FusedKernel>>& kernels() const {
    return kernels_;
  }
  const CompileReport& report() const { return report_; }
  /// Compile-time buffer assignment (shape-polymorphic slot reuse). The
  /// CPU runtime's caching allocator realizes the same reuse dynamically;
  /// the plan documents it statically and is validated by tests.
  const BufferAssignment& buffer_plan() const { return buffer_plan_; }
  /// Symbolic arena plan: per-value byte offsets into one arena plus the
  /// symbolic peak-bytes formula (memory-planning compile phase).
  const MemoryPlan& memory_plan() const { return memory_plan_; }

  /// \brief Evaluates the symbolic peak formula for one input signature —
  /// the arena footprint a Run with these shapes would need — without
  /// running anything. Serves memory-aware admission: a launch-plan cache
  /// hit answers from the memoized plan (no size arithmetic); a miss binds
  /// the symbols and evaluates the formula (cheap, and does not disturb
  /// cache stats or LRU order). Returns 0 when no plan exists.
  Result<int64_t> PredictPeakBytes(
      const std::vector<std::vector<int64_t>>& input_dims) const;

  /// \brief Hit/miss/eviction counters of the launch-plan LRU.
  LaunchPlanCache::Stats plan_cache_stats() const {
    return plan_cache_.stats();
  }
  /// \brief Bounds the launch-plan LRU (default 128 signatures). Shrinking
  /// evicts oldest entries immediately; 0 disables caching.
  void set_plan_cache_capacity(size_t capacity) const {
    plan_cache_.set_capacity(capacity);
  }
  /// \brief Drops every memoized launch plan. Called when this executable
  /// is hot-swapped out of an ExecutableSlot: plans encode this
  /// executable's buffer sizes and kernel variants, so a replacement must
  /// never inherit them (plan caches are per-Executable, which already
  /// namespaces them — clearing additionally frees the stale plans and
  /// makes a swapped-out executable safe to re-install later).
  void ClearPlanCache() const { plan_cache_.Clear(); }

  std::string ToString() const;

 private:
  friend class DiscCompiler;
  Executable() = default;

  struct Step {
    enum class Kind { kConstant, kHost, kLibrary, kKernel };
    Kind kind;
    const Node* node = nullptr;        // kConstant/kHost/kLibrary
    const FusedKernel* kernel = nullptr;  // kKernel
  };

  Result<RunResult> RunInternal(
      const std::vector<std::vector<int64_t>>& input_dims,
      const std::vector<Tensor>* inputs, const RunOptions& options) const;

  /// Phase 1: all host-side symbolic work for one signature.
  Result<LaunchPlan> BuildLaunchPlan(
      const std::vector<std::vector<int64_t>>& input_dims) const;

  /// Phase 2: charge the cost model and (optionally) execute numerics from
  /// a finished plan. `record_host` (nullable) receives deep copies of the
  /// host shape-step results so the plan can replay them on later hits.
  /// `signature` keys the kernel-observatory flush (empty when the ledger
  /// is disabled — RunInternal only computes it on demand).
  Result<RunResult> ExecutePlan(const LaunchPlan& plan,
                                const std::vector<Tensor>* inputs,
                                const RunOptions& options,
                                const std::string& signature,
                                LaunchPlan* record_host) const;

  /// Shape-independent buffer liveness: values to free after each step.
  /// Computed once at compile time; both run phases consume it.
  void BuildReleaseSchedule();

  std::unique_ptr<Graph> graph_;
  std::unique_ptr<ShapeAnalysis> analysis_;
  FusionPlan plan_;
  std::vector<std::unique_ptr<FusedKernel>> kernels_;
  std::vector<Step> steps_;
  std::vector<std::vector<const Value*>> release_after_step_;
  bool has_host_steps_ = false;
  BufferAssignment buffer_plan_;
  MemoryPlan memory_plan_;
  CompileReport report_;
  /// Signature -> launch plan. Logically a cache, hence mutable: Run stays
  /// const and the cache is internally synchronized.
  mutable LaunchPlanCache plan_cache_;
};

}  // namespace disc

#endif  // DISC_RUNTIME_EXECUTABLE_H_
