// Size-class caching device-memory allocator (accounting model).
//
// Mirrors the behaviour of the RAL/framework caching allocators the paper's
// runtime sits on: frees return blocks to per-size-class free lists, repeat
// allocations of the same (rounded) size hit the cache, and the high-water
// mark reports the device footprint an execution strategy needs. No real
// device memory exists in the simulation, so this class tracks bytes only —
// but the cache-hit dynamics under changing shapes are real, which is what
// the memory experiments measure.
//
// Exhaustion is a *runtime* event under dynamic shapes (the footprint is a
// function of the symbolic dims each request binds), so Allocate reports it
// as Status::ResourceExhausted for the serving layer to retry or shed —
// never as a process abort. Misuse (negative sizes, double frees) also
// surfaces as Status so a single bad request cannot take the server down.
#ifndef DISC_RUNTIME_ALLOCATOR_H_
#define DISC_RUNTIME_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "support/status.h"

namespace disc {

class CachingAllocator {
 public:
  struct Stats {
    int64_t alloc_calls = 0;
    int64_t cache_hits = 0;
    int64_t bytes_in_use = 0;
    int64_t bytes_reserved = 0;  // in-use + cached free blocks
    int64_t peak_bytes_in_use = 0;
    int64_t peak_bytes_reserved = 0;
    int64_t failed_allocs = 0;  // limit exceeded or fault injected
    /// Cumulative bytes lost to size-class rounding (rounded size minus
    /// requested size, summed over successful allocations). The arena
    /// planner aligns slot sizes to the 256-B quantum precisely so its
    /// single allocation contributes zero here.
    int64_t bytes_rounding_waste = 0;
  };

  CachingAllocator() = default;
  /// \brief Caps bytes_in_use at `memory_limit_bytes` (device capacity);
  /// 0 = unlimited.
  explicit CachingAllocator(int64_t memory_limit_bytes)
      : memory_limit_bytes_(memory_limit_bytes) {}

  /// \brief Allocates `bytes` (rounded up to a 256-B-aligned size class);
  /// returns an opaque block id. ResourceExhausted when the allocation
  /// would push bytes_in_use past the memory limit (or the `runtime.alloc`
  /// failpoint fires); InvalidArgument for negative sizes.
  Result<int64_t> Allocate(int64_t bytes);

  /// \brief Returns the block to its size-class free list. InvalidArgument
  /// on an unknown id or double free.
  Status Free(int64_t block_id);

  /// \brief Releases all cached free blocks (cudaEmptyCache analog).
  void TrimCache();

  const Stats& stats() const { return stats_; }
  int64_t memory_limit_bytes() const { return memory_limit_bytes_; }

 private:
  struct Block {
    int64_t size = 0;
    bool in_use = false;
  };
  std::vector<Block> blocks_;
  std::map<int64_t, std::vector<int64_t>> free_lists_;  // size -> block ids
  Stats stats_;
  int64_t memory_limit_bytes_ = 0;
};

}  // namespace disc

#endif  // DISC_RUNTIME_ALLOCATOR_H_
