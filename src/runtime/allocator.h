// Size-class caching device-memory allocator (accounting model).
//
// Mirrors the behaviour of the RAL/framework caching allocators the paper's
// runtime sits on: frees return blocks to per-size-class free lists, repeat
// allocations of the same (rounded) size hit the cache, and the high-water
// mark reports the device footprint an execution strategy needs. No real
// device memory exists in the simulation, so this class tracks bytes only —
// but the cache-hit dynamics under changing shapes are real, which is what
// the memory experiments measure.
#ifndef DISC_RUNTIME_ALLOCATOR_H_
#define DISC_RUNTIME_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

namespace disc {

class CachingAllocator {
 public:
  struct Stats {
    int64_t alloc_calls = 0;
    int64_t cache_hits = 0;
    int64_t bytes_in_use = 0;
    int64_t bytes_reserved = 0;  // in-use + cached free blocks
    int64_t peak_bytes_in_use = 0;
    int64_t peak_bytes_reserved = 0;
  };

  /// \brief Allocates `bytes` (rounded up to a 256-B-aligned size class);
  /// returns an opaque block id.
  int64_t Allocate(int64_t bytes);

  /// \brief Returns the block to its size-class free list.
  void Free(int64_t block_id);

  /// \brief Releases all cached free blocks (cudaEmptyCache analog).
  void TrimCache();

  const Stats& stats() const { return stats_; }

 private:
  struct Block {
    int64_t size = 0;
    bool in_use = false;
  };
  std::vector<Block> blocks_;
  std::map<int64_t, std::vector<int64_t>> free_lists_;  // size -> block ids
  Stats stats_;
};

}  // namespace disc

#endif  // DISC_RUNTIME_ALLOCATOR_H_
