#include "runtime/allocator.h"

#include <algorithm>

#include "support/logging.h"
#include "support/math_util.h"

namespace disc {

int64_t CachingAllocator::Allocate(int64_t bytes) {
  DISC_CHECK_GE(bytes, 0);
  int64_t size = std::max<int64_t>(RoundUp(bytes, 256), 256);
  ++stats_.alloc_calls;

  auto it = free_lists_.find(size);
  int64_t block_id;
  if (it != free_lists_.end() && !it->second.empty()) {
    block_id = it->second.back();
    it->second.pop_back();
    ++stats_.cache_hits;
  } else {
    block_id = static_cast<int64_t>(blocks_.size());
    blocks_.push_back({size, false});
    stats_.bytes_reserved += size;
  }
  Block& block = blocks_[block_id];
  DISC_CHECK(!block.in_use);
  block.in_use = true;
  stats_.bytes_in_use += size;
  stats_.peak_bytes_in_use =
      std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
  stats_.peak_bytes_reserved =
      std::max(stats_.peak_bytes_reserved, stats_.bytes_reserved);
  return block_id;
}

void CachingAllocator::Free(int64_t block_id) {
  DISC_CHECK_GE(block_id, 0);
  DISC_CHECK_LT(block_id, static_cast<int64_t>(blocks_.size()));
  Block& block = blocks_[block_id];
  DISC_CHECK(block.in_use) << "double free of block " << block_id;
  block.in_use = false;
  stats_.bytes_in_use -= block.size;
  free_lists_[block.size].push_back(block_id);
}

void CachingAllocator::TrimCache() {
  for (auto& [size, list] : free_lists_) {
    stats_.bytes_reserved -= size * static_cast<int64_t>(list.size());
    list.clear();
  }
}

}  // namespace disc
