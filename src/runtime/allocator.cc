#include "runtime/allocator.h"

#include <algorithm>

#include "support/failpoint.h"
#include "support/math_util.h"
#include "support/string_util.h"

namespace disc {

Result<int64_t> CachingAllocator::Allocate(int64_t bytes) {
  if (bytes < 0) {
    return Status::InvalidArgument(
        StrFormat("negative allocation size %lld",
                  static_cast<long long>(bytes)));
  }
  int64_t size = std::max<int64_t>(RoundUp(bytes, 256), 256);
  ++stats_.alloc_calls;

  if (Status injected = CheckFailpoint("runtime.alloc"); !injected.ok()) {
    ++stats_.failed_allocs;
    return injected;
  }
  if (memory_limit_bytes_ > 0 &&
      stats_.bytes_in_use + size > memory_limit_bytes_) {
    ++stats_.failed_allocs;
    return Status::ResourceExhausted(StrFormat(
        "allocating %lld B would exceed the %lld B device limit "
        "(%lld B in use)",
        static_cast<long long>(size),
        static_cast<long long>(memory_limit_bytes_),
        static_cast<long long>(stats_.bytes_in_use)));
  }

  auto it = free_lists_.find(size);
  int64_t block_id;
  if (it != free_lists_.end() && !it->second.empty()) {
    block_id = it->second.back();
    it->second.pop_back();
    ++stats_.cache_hits;
  } else {
    block_id = static_cast<int64_t>(blocks_.size());
    blocks_.push_back({size, false});
    stats_.bytes_reserved += size;
  }
  Block& block = blocks_[block_id];
  if (block.in_use) {
    return Status::Internal(StrFormat("free-list block %lld is in use",
                                      static_cast<long long>(block_id)));
  }
  block.in_use = true;
  stats_.bytes_rounding_waste += size - bytes;
  stats_.bytes_in_use += size;
  stats_.peak_bytes_in_use =
      std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
  stats_.peak_bytes_reserved =
      std::max(stats_.peak_bytes_reserved, stats_.bytes_reserved);
  return block_id;
}

Status CachingAllocator::Free(int64_t block_id) {
  if (block_id < 0 || block_id >= static_cast<int64_t>(blocks_.size())) {
    return Status::InvalidArgument(StrFormat(
        "unknown block id %lld", static_cast<long long>(block_id)));
  }
  Block& block = blocks_[block_id];
  if (!block.in_use) {
    return Status::InvalidArgument(StrFormat(
        "double free of block %lld", static_cast<long long>(block_id)));
  }
  block.in_use = false;
  stats_.bytes_in_use -= block.size;
  free_lists_[block.size].push_back(block_id);
  return Status::OK();
}

void CachingAllocator::TrimCache() {
  for (auto& [size, list] : free_lists_) {
    stats_.bytes_reserved -= size * static_cast<int64_t>(list.size());
    list.clear();
  }
}

}  // namespace disc
