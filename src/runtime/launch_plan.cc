#include "runtime/launch_plan.h"

namespace disc {

std::string ShapeSignature(
    const std::vector<std::vector<int64_t>>& input_dims) {
  // "2x3;4x5;" — ';' terminates every input so "2;3;" and "2x3;" differ,
  // and a rank-0 input contributes a bare ';'.
  std::string signature;
  signature.reserve(input_dims.size() * 8);
  for (const std::vector<int64_t>& dims : input_dims) {
    for (size_t d = 0; d < dims.size(); ++d) {
      if (d > 0) signature += 'x';
      signature += std::to_string(dims[d]);
    }
    signature += ';';
  }
  return signature;
}

Result<std::vector<std::vector<int64_t>>> ParseShapeSignature(
    const std::string& signature) {
  std::vector<std::vector<int64_t>> input_dims;
  std::vector<int64_t> dims;
  std::string digits;
  auto flush_dim = [&]() -> Status {
    if (digits.empty()) {
      return Status::InvalidArgument("bad shape signature '" + signature +
                                     "': empty dim");
    }
    dims.push_back(std::stoll(digits));
    digits.clear();
    return Status::OK();
  };
  for (char c : signature) {
    if (c >= '0' && c <= '9') {
      digits += c;
    } else if (c == 'x') {
      DISC_RETURN_IF_ERROR(flush_dim());
    } else if (c == ';') {
      // A rank-0 input contributes a bare ';' (no digits): valid.
      if (!digits.empty()) DISC_RETURN_IF_ERROR(flush_dim());
      input_dims.push_back(std::move(dims));
      dims.clear();
    } else {
      return Status::InvalidArgument("bad shape signature '" + signature +
                                     "': unexpected character");
    }
  }
  if (!digits.empty() || !dims.empty()) {
    return Status::InvalidArgument("bad shape signature '" + signature +
                                   "': missing terminating ';'");
  }
  return input_dims;
}

std::shared_ptr<const LaunchPlan> LaunchPlanCache::Lookup(
    const std::string& signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(signature);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->second;
}

std::shared_ptr<const LaunchPlan> LaunchPlanCache::Peek(
    const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(signature);
  return it == index_.end() ? nullptr : it->second->second;
}

void LaunchPlanCache::Insert(const std::string& signature,
                             std::shared_ptr<const LaunchPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  ++stats_.insertions;
  auto it = index_.find(signature);
  if (it != index_.end()) {
    // Replace in place (e.g. a plan upgraded with host results).
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(signature, std::move(plan));
  index_[signature] = lru_.begin();
  EvictIfNeededLocked();
}

void LaunchPlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictIfNeededLocked();
}

void LaunchPlanCache::EvictIfNeededLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

LaunchPlanCache::Stats LaunchPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.entries = static_cast<int64_t>(lru_.size());
  stats.capacity = static_cast<int64_t>(capacity_);
  return stats;
}

void LaunchPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace disc
