#include "runtime/memory_plan.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "support/json.h"
#include "support/string_util.h"

namespace disc {
namespace {

// Rounds a symbolic byte size up to the arena alignment. When divisor
// facts already prove divisibility the expression is kept as-is, which
// lets exact-match reuse and ProvablyLe fire without reasoning about the
// ceildiv wrapper.
DimExpr AlignedSize(const DimExpr& bytes, const SymbolicDimManager& manager) {
  DimExpr e = manager.Canonicalize(bytes);
  if (manager.IsDivisibleBy(e, kArenaAlignment)) return e;
  return manager.Canonicalize(
      DimExpr::Mul(DimExpr::Const(kArenaAlignment),
                   DimExpr::CeilDiv(e, DimExpr::Const(kArenaAlignment))));
}

}  // namespace

ArenaLayout PlanArenaItems(const std::vector<ArenaItem>& items,
                           const SymbolicDimManager& manager) {
  ArenaLayout layout;
  layout.slot_of.assign(items.size(), -1);
  layout.peak_bytes = DimExpr::Const(0);

  struct SlotState {
    DimExpr bytes;
    bool busy = false;
  };
  std::vector<SlotState> slots;

  // Place items in definition order; a slot frees up strictly after its
  // occupant's last use step, so expiries release before any def at a
  // later step (a step's inputs stay live while its outputs are written).
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return items[a].def_step < items[b].def_step;
  });
  using Expiry = std::pair<int, int>;  // (last_use_step, slot)
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<Expiry>>
      expiries;

  for (size_t idx : order) {
    const ArenaItem& item = items[idx];
    while (!expiries.empty() && expiries.top().first < item.def_step) {
      slots[expiries.top().second].busy = false;
      expiries.pop();
    }
    DimExpr need = AlignedSize(item.bytes, manager);
    // Candidate slots: exact size match beats the smallest provable fit,
    // which beats widening the largest provably-smaller slot.
    int exact = -1, fit = -1, widen = -1;
    bool had_free = false;
    for (int i = 0; i < static_cast<int>(slots.size()); ++i) {
      if (slots[i].busy) continue;
      had_free = true;
      if (manager.IsDimEqual(need, slots[i].bytes)) {
        exact = i;
        break;
      }
      if (manager.ProvablyLe(need, slots[i].bytes)) {
        if (fit < 0 || manager.ProvablyLe(slots[i].bytes, slots[fit].bytes)) {
          fit = i;
        }
      } else if (manager.ProvablyLe(slots[i].bytes, need)) {
        if (widen < 0 ||
            manager.ProvablyLe(slots[widen].bytes, slots[i].bytes)) {
          widen = i;
        }
      }
    }
    int chosen = exact >= 0 ? exact : (fit >= 0 ? fit : widen);
    if (chosen >= 0) {
      ++layout.num_reused;
      if (exact < 0) ++layout.num_cross_size_reuses;
      // Widening is sound: every earlier occupant provably fit the old
      // (smaller) size, which fits the new one.
      if (exact < 0 && fit < 0) slots[chosen].bytes = need;
    } else {
      chosen = static_cast<int>(slots.size());
      slots.push_back({need, false});
      if (had_free) {
        std::ostringstream reason;
        reason << "incomparable with free slots [";
        bool first = true;
        for (int i = 0; i < static_cast<int>(slots.size()) - 1; ++i) {
          if (slots[i].busy) continue;
          if (!first) reason << ", ";
          first = false;
          reason << "#" << i << ": " << slots[i].bytes.ToString();
        }
        reason << "]";
        layout.fallbacks.push_back(
            {item.value_id, need.ToString(), reason.str()});
      }
    }
    slots[chosen].busy = true;
    layout.slot_of[idx] = chosen;
    if (!item.pinned) {
      expiries.push({std::max(item.last_use_step, item.def_step), chosen});
    }
  }

  // Finalize the layout: offsets are prefix sums of the (final, possibly
  // widened) slot sizes, so "A fits below B's offset" was reduced to the
  // per-slot size comparisons above; the peak formula is the total.
  DimExpr offset = DimExpr::Const(0);
  layout.slots.reserve(slots.size());
  for (const SlotState& s : slots) {
    layout.slots.push_back({s.bytes, offset});
    offset = manager.Canonicalize(DimExpr::Add(offset, s.bytes));
  }
  layout.peak_bytes = offset;
  return layout;
}

MemoryPlan PlanArena(const std::vector<PlanStep>& steps,
                     const std::vector<const Value*>& keep_alive,
                     const ShapeAnalysis& analysis) {
  MemoryPlan plan;
  plan.planned = true;
  plan.peak_bytes = DimExpr::Const(0);

  std::unordered_set<const Value*> pinned(keep_alive.begin(),
                                          keep_alive.end());
  std::unordered_map<const Value*, size_t> last_use;
  for (size_t s = 0; s < steps.size(); ++s) {
    for (const Value* v : steps[s].uses) last_use[v] = s;
  }

  auto size_expr = [&](const Value* v) {
    DimExpr numel = analysis.manager().Canonicalize(
        SymShapeNumElements(analysis.GetShape(v)));
    return DimExpr::Mul(numel, DimExpr::Const(DTypeSize(v->dtype())));
  };

  std::vector<const Value*> values;
  std::vector<ArenaItem> items;
  for (size_t s = 0; s < steps.size(); ++s) {
    for (const Value* v : steps[s].defines) {
      ArenaItem item;
      item.bytes = size_expr(v);
      item.def_step = static_cast<int>(s);
      auto lu = last_use.find(v);
      item.last_use_step =
          lu == last_use.end()
              ? static_cast<int>(s)
              : std::max(static_cast<int>(s), static_cast<int>(lu->second));
      item.pinned = pinned.count(v) > 0;
      item.value_id = v->id();
      values.push_back(v);
      items.push_back(std::move(item));
    }
  }

  ArenaLayout layout = PlanArenaItems(items, analysis.manager());
  for (size_t i = 0; i < values.size(); ++i) {
    plan.slot_of[values[i]] = layout.slot_of[i];
  }
  plan.slots = std::move(layout.slots);
  plan.peak_bytes = layout.peak_bytes;
  plan.num_values = static_cast<int64_t>(values.size());
  plan.num_reused = layout.num_reused;
  plan.num_cross_size_reuses = layout.num_cross_size_reuses;
  plan.fallbacks = std::move(layout.fallbacks);
  return plan;
}

std::string MemoryPlan::ToString() const {
  if (!planned) return "MemoryPlan{not planned}";
  return StrFormat(
      "MemoryPlan{%lld values in %lld arena slots, %lld reuses "
      "(%lld cross-size), %lld fallbacks, peak = %s}",
      static_cast<long long>(num_values),
      static_cast<long long>(num_slots()),
      static_cast<long long>(num_reused),
      static_cast<long long>(num_cross_size_reuses),
      static_cast<long long>(fallbacks.size()),
      peak_bytes.valid() ? peak_bytes.ToString().c_str() : "0");
}

std::string MemoryPlan::ToJson() const {
  JsonValue::Object root;
  JsonValue::Object arena;
  arena["alignment"] = JsonValue(kArenaAlignment);
  arena["peak_bytes"] =
      JsonValue(peak_bytes.valid() ? peak_bytes.ToString() : "0");
  arena["num_slots"] = JsonValue(num_slots());
  root["arena"] = JsonValue(std::move(arena));

  JsonValue::Array slot_list;
  for (size_t i = 0; i < slots.size(); ++i) {
    JsonValue::Object s;
    s["id"] = JsonValue(static_cast<int64_t>(i));
    s["bytes"] = JsonValue(slots[i].bytes.ToString());
    s["offset"] = JsonValue(slots[i].offset.ToString());
    slot_list.push_back(JsonValue(std::move(s)));
  }
  root["slots"] = JsonValue(std::move(slot_list));

  std::vector<std::pair<int, int>> by_id;  // (value id, slot)
  by_id.reserve(slot_of.size());
  for (const auto& [v, slot] : slot_of) by_id.push_back({v->id(), slot});
  std::sort(by_id.begin(), by_id.end());
  JsonValue::Array value_list;
  for (const auto& [id, slot] : by_id) {
    JsonValue::Object v;
    v["id"] = JsonValue(static_cast<int64_t>(id));
    v["slot"] = JsonValue(static_cast<int64_t>(slot));
    value_list.push_back(JsonValue(std::move(v)));
  }
  root["values"] = JsonValue(std::move(value_list));

  JsonValue::Array fallback_list;
  for (const ArenaFallback& f : fallbacks) {
    JsonValue::Object o;
    o["value"] = JsonValue(static_cast<int64_t>(f.value_id));
    o["bytes"] = JsonValue(f.bytes);
    o["reason"] = JsonValue(f.reason);
    fallback_list.push_back(JsonValue(std::move(o)));
  }
  root["fallbacks"] = JsonValue(std::move(fallback_list));

  JsonValue::Object stats;
  stats["num_values"] = JsonValue(num_values);
  stats["num_reused"] = JsonValue(num_reused);
  stats["num_cross_size_reuses"] = JsonValue(num_cross_size_reuses);
  stats["num_fallbacks"] = JsonValue(static_cast<int64_t>(fallbacks.size()));
  root["stats"] = JsonValue(std::move(stats));

  return JsonValue(std::move(root)).SerializePretty() + "\n";
}

}  // namespace disc
