// Global metrics registry: named counters and fixed-bucket histograms.
//
// Replaces ad-hoc counter plumbing with one process-wide registry so every
// layer (passes, runtime, engines, serving) reports through the same
// channel and existing stats structs (EngineStats, RunProfile) can be
// cross-checked against it.
//
// Naming convention: dot-separated `<layer>.<component>.<event>`, e.g.
//   runtime.plan_cache.hit      engine.plan_cache.miss
//   runtime.alloc.cache_hits    serving.queue_wait_us
// Counters are monotonic; histograms observe a value into fixed upper-bound
// buckets (value v lands in the first bucket with v <= bound, else the
// overflow bucket). All operations are thread-safe; Get* returns stable
// pointers that callers may cache for the process lifetime.
#ifndef DISC_SUPPORT_METRICS_H_
#define DISC_SUPPORT_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace disc {

/// \brief Monotonic named counter (reset only via Reset, for tests).
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram. Bounds are ascending inclusive upper
/// bounds; one implicit overflow bucket catches everything above the last.
class Histogram {
 public:
  /// One exemplar per bucket: the most recent observation that carried a
  /// nonzero id (a trace id) — the link from an aggregate metric back to a
  /// concrete request retained by the tracing layer.
  struct Exemplar {
    uint64_t id = 0;  // 0 = no exemplar recorded for the bucket
    double value = 0.0;
  };

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  /// \brief Observe + stamp the landing bucket's exemplar with `id` (a
  /// trace id; id 0 records no exemplar).
  void Observe(double value, uint64_t exemplar_id);

  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<int64_t> bucket_counts() const;
  /// Per-bucket exemplars, size bounds().size() + 1 (id 0 = none).
  std::vector<Exemplar> exemplars() const;
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  /// \brief Estimated quantile (q in [0,1]) by linear interpolation inside
  /// the bucket where the cumulative count crosses q*count: consumers
  /// (trace_inspect, bench reports) read p50/p90/p99 directly instead of
  /// re-deriving them from raw bucket counts. Sentinels instead of
  /// plausible-looking garbage: NaN when the histogram is empty, +inf when
  /// the quantile lands in the overflow bucket (no finite upper bound).
  double Quantile(double q) const;

  std::string ToString() const;

  /// \brief `count` bounds growing geometrically from `start` by `factor`
  /// (e.g. {1, 2, 4, ...} for microsecond latencies).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // bounds_.size() + 1
  /// Parallel to buckets_: packed exemplar id + value per bucket. Written
  /// with relaxed stores (last writer wins — an exemplar is a sample, not
  /// an aggregate, so a race only changes *which* recent request links).
  std::unique_ptr<std::atomic<uint64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<double>[]> exemplar_values_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Process-global name -> metric registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// \brief Returns the counter named `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);

  /// \brief Returns the histogram named `name`; `bounds` applies only on
  /// first registration (later callers get the existing instance).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// \brief Snapshot of every counter, sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;

  /// \brief Human-readable dump of all counters and histograms.
  std::string ToString() const;

  /// \brief Zeroes every counter (histograms keep their observations).
  /// Test isolation helper; production code never resets.
  void ResetCountersForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand: bump a named global counter by `n`.
inline void CountMetric(const std::string& name, int64_t n = 1) {
  MetricsRegistry::Global().GetCounter(name)->Increment(n);
}

/// Shorthand: observe into a named global histogram (default bounds:
/// exponential microsecond buckets 1us..~4s when first registered).
void ObserveMetric(const std::string& name, double value);

}  // namespace disc

#endif  // DISC_SUPPORT_METRICS_H_
