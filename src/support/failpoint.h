// Deterministic fault injection ("failpoints") for robustness testing.
//
// A failpoint is a named site on a real failure seam (compilation, device
// allocation, kernel execution, ...). Normally it is inert: the check
// compiles down to one relaxed atomic load (same discipline as the tracer
// in support/trace.h), so shipping the sites in production code is free.
// A chaos harness arms failpoints — programmatically or via the
// DISC_FAILPOINTS environment variable — and armed sites return an error
// Status on a seeded, reproducible schedule instead of doing their work.
// The layers above must then degrade gracefully; the chaos tests assert
// that they do.
//
// Spec grammar (env var or ArmFromSpec):
//   DISC_FAILPOINTS="<entry>[;<entry>...]"
//   entry   := <name>=<trigger>[:<param>...]
//   trigger := always | once | every:<N> | prob:<P>
//   param   := seed=<S> | max=<M> | code=<status-code>
// where <status-code> is a kebab-case StatusCode name (e.g. "unavailable",
// "resource-exhausted", "internal"). Examples:
//   compiler.compile=once
//   runtime.alloc=every:50:code=resource-exhausted
//   runtime.kernel=prob:0.05:seed=7:max=20:code=unavailable
//
// Triggers (evaluated per hit of the armed site):
//   always   — every hit fires;
//   once     — the first hit fires, later hits pass;
//   every:N  — hits N, 2N, 3N, ... fire;
//   prob:P   — each hit fires with probability P (seeded Rng, so the
//              schedule is a pure function of the seed and hit order).
// `max=M` caps the total number of fires regardless of trigger.
#ifndef DISC_SUPPORT_FAILPOINT_H_
#define DISC_SUPPORT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/rng.h"
#include "support/status.h"

namespace disc {

/// When and how an armed failpoint fires.
struct FailpointSpec {
  enum class Trigger { kAlways, kOnce, kEveryNth, kProbability };

  Trigger trigger = Trigger::kOnce;
  /// kEveryNth: fire when hit_count is a multiple of every_n (>= 1).
  int64_t every_n = 1;
  /// kProbability: per-hit fire probability in [0, 1].
  double probability = 1.0;
  /// kProbability: Rng seed — the fire schedule is reproducible.
  uint64_t seed = 0;
  /// Cap on total fires; -1 = unlimited.
  int64_t max_fires = -1;
  /// StatusCode of the injected error.
  StatusCode code = StatusCode::kUnavailable;

  /// \brief Parses the `<trigger>[:<param>...]` part of a spec entry.
  static Result<FailpointSpec> Parse(const std::string& spec);
  /// \brief Canonical spec string (round-trips through Parse).
  std::string ToString() const;
};

/// \brief Process-global registry of armed failpoints. Thread-safe.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// The one check on every hot path when nothing is armed.
  static bool AnyArmed() {
    return any_armed_.load(std::memory_order_relaxed);
  }

  /// \brief Arms (or re-arms, resetting counters) the named failpoint.
  void Arm(const std::string& name, FailpointSpec spec);

  /// \brief Arms every entry of a `name=spec;name=spec` string (the
  /// DISC_FAILPOINTS grammar). Invalid entries make the whole call fail
  /// with InvalidArgument; valid entries before the bad one stay armed.
  Status ArmFromSpec(const std::string& spec_list);

  void Disarm(const std::string& name);
  void DisarmAll();

  /// \brief Slow path of CheckFailpoint: decides whether the named site
  /// fires on this hit. Unarmed names always pass.
  Status Check(const char* name);

  /// Counters of one armed failpoint.
  struct Info {
    std::string name;
    FailpointSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
  };
  std::vector<Info> Snapshot() const;
  /// \brief Fires so far of the named failpoint (0 if unarmed).
  int64_t fires(const std::string& name) const;
  /// \brief Human-readable list of armed failpoints, one per line; empty
  /// string when nothing is armed. Printed by disc_explain/trace_inspect
  /// so a degraded run is diagnosable from its artifacts.
  std::string Summary() const;

 private:
  FailpointRegistry();  // arms from the DISC_FAILPOINTS env var, if set

  struct Armed {
    FailpointSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
    Rng rng;
  };

  static std::atomic<bool> any_armed_;
  mutable std::mutex mu_;
  std::map<std::string, Armed> points_;
};

/// \brief Returns the error an armed failpoint injects at this site, or OK.
/// One relaxed atomic load when no failpoint is armed anywhere.
inline Status CheckFailpoint(const char* name) {
  if (!FailpointRegistry::AnyArmed()) return Status::OK();
  return FailpointRegistry::Global().Check(name);
}

}  // namespace disc

/// Injects an armed fault at this site by returning its error Status from
/// the enclosing function (which must return Status or Result<T>). Free
/// when nothing is armed.
#define DISC_INJECT_FAILPOINT(name) \
  DISC_RETURN_IF_ERROR(::disc::CheckFailpoint(name))

#endif  // DISC_SUPPORT_FAILPOINT_H_
