// Kernel-level performance observatory.
//
// Request-level observability (metrics, blame ledgers, the flight
// recorder) stops at the Run boundary; below it the system was a black
// box: nothing recorded which KernelVariant each fused kernel actually
// ran under real traffic, what it cost, or whether the compile-time
// choice was right for the shapes that actually arrived. This ledger is
// that ground truth — the measurement substrate shape-generic
// auto-tuning (ROADMAP item 3) and codegen-vs-library selection (item 5)
// will be judged against.
//
// Executable::ExecutePlan feeds one KernelLaunchObservation per generated
// kernel launch (variant index + the full KernelCost decomposition) and
// flushes them with ONE lock acquisition per Run. The ledger aggregates
// per (kernel, variant, shape-signature) with streaming totals, bounded
// at max_entries (new keys beyond the bound are counted dropped, never
// resized). When disabled, the launch path pays exactly one relaxed
// atomic load — the same discipline as the flight recorder.
//
// On top of the ledger sits a counterfactual variant-regret audit: for
// every retained entry, re-evaluate EVERY variant the kernel would have
// under a reference SpecializeOptions at the observed bindings through
// the DeviceModel, and report
//
//   regret = modeled(selected variant) - min over admissible variants
//
// joined against the compile-time preference order (variant rank) so a
// misprediction names the decision that caused it: `best_compiled=false`
// means the winning variant was denied at compile time (specialization
// disabled, missing hint), `best_rank < selected rank` with
// `best_compiled=true` means the guard ordering itself mispredicted.
// Fusion-group ids join entries to fusion_decisions.json.
#ifndef DISC_SUPPORT_KERNEL_PROFILE_H_
#define DISC_SUPPORT_KERNEL_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "sim/device.h"
#include "support/json.h"

namespace disc {

/// One generated-kernel launch as ExecutePlan saw it. Buffered locally
/// per Run and flushed to the ledger in one batch.
struct KernelLaunchObservation {
  /// Non-owning; the regret audit re-runs guards and stats through this
  /// pointer. Entries are dropped automatically when their owning
  /// Executable is destroyed (Forget), so the pointer never dangles.
  const FusedKernel* kernel = nullptr;
  int variant_index = 0;
  /// The full KernelCost decomposition for this launch.
  double time_us = 0.0;
  double body_us = 0.0;
  bool memory_bound = false;
  double utilization = 0.0;
  /// Traffic + arithmetic of the launch (from the planned KernelStats).
  int64_t bytes = 0;
  int64_t flops = 0;
};

/// Streaming aggregate for one (kernel, variant, signature) key.
struct KernelProfileEntry {
  std::string kernel;       // FusedKernel::name(), e.g. "loop_fusion_0"
  int group = -1;           // fusion-group id (joins fusion_decisions.json)
  std::string fusion_kind;  // FusionKindName: "kLoop"|"kInput"|"kStitch"
  std::string variant;      // selected variant name
  int variant_index = 0;    // rank in the compiled preference order
  int num_variants = 0;     // size of the compiled variant list
  std::string signature;    // shape signature of the Runs that fed this

  int64_t launches = 0;
  double total_time_us = 0.0;  // launch + body
  double total_body_us = 0.0;  // body only
  double min_time_us = 0.0;
  double max_time_us = 0.0;
  int64_t memory_bound_launches = 0;
  double utilization_sum = 0.0;
  int64_t total_bytes = 0;
  int64_t total_flops = 0;

  double avg_time_us() const {
    return launches > 0 ? total_time_us / static_cast<double>(launches) : 0.0;
  }
  double mean_utilization() const {
    return launches > 0 ? utilization_sum / static_cast<double>(launches)
                        : 0.0;
  }
  /// Driver/dispatch share of this entry's device time.
  double launch_overhead_us() const { return total_time_us - total_body_us; }

  std::string ToString() const;
};

/// One variant's standing in a counterfactual audit.
struct VariantAssessment {
  std::string variant;
  /// Rank in the reference preference order (0 = tried first).
  int rank = 0;
  /// Guard verdict at the observed bindings.
  bool admissible = false;
  /// Present in the actually-compiled variant list (by name).
  bool compiled = false;
  /// The variant the launches actually used.
  bool selected = false;
  /// DeviceModel cost at the observed bindings (0 when not admissible —
  /// an inadmissible variant has no defined cost).
  double modeled_us = 0.0;
};

/// Regret verdict for one ledger entry: what the selected variant cost
/// versus the best variant the kernel could have had.
struct KernelRegret {
  std::string kernel;
  int group = -1;
  std::string fusion_kind;
  std::string signature;
  int64_t launches = 0;

  std::string selected_variant;
  double selected_us = 0.0;  // modeled per-launch cost of the selection
  std::string best_variant;
  double best_us = 0.0;
  /// Rank of the best variant in the reference preference order.
  int best_rank = 0;
  /// False when the best variant does not exist in the compiled kernel —
  /// it was denied at compile time (the decision to blame).
  bool best_compiled = true;

  double regret_us = 0.0;        // selected_us - best_us, per launch
  double total_regret_us = 0.0;  // regret_us * launches
  /// Fraction of this entry's selected device time that was avoidable.
  double regret_share = 0.0;

  /// Every reference variant's verdict, in preference order.
  std::vector<VariantAssessment> candidates;

  std::string ToString() const;
};

/// \brief Process-global bounded ledger of kernel launches. Feeding is
/// thread-safe; when disabled it costs one relaxed atomic load.
class KernelProfileLedger {
 public:
  struct Options {
    /// Aggregation keys retained; new keys past the bound are dropped
    /// (counted in Stats::entries_dropped).
    size_t max_entries = 1024;
    /// Per-Run records retained for the trace-id join (serving Runs with
    /// a minted trace id only); oldest drop first.
    size_t run_capacity = 256;
  };

  struct Stats {
    int64_t launches_observed = 0;
    int64_t runs_observed = 0;
    int64_t entries = 0;
    int64_t entries_dropped = 0;
    int64_t runs_retained = 0;
    int64_t runs_dropped = 0;  // retained run records evicted by the ring
  };

  /// Per-kernel slice of one Run, retained for the flight-recorder join:
  /// an outlier's trace id finds the kernel breakdown of its batch here.
  struct RunKernelSlice {
    std::string kernel;
    std::string variant;
    int64_t launches = 0;
    double time_us = 0.0;
  };
  struct RunRecord {
    uint64_t trace_id = 0;
    std::string signature;
    double device_time_us = 0.0;  // whole Run (library calls included)
    int64_t kernel_launches = 0;
    std::vector<RunKernelSlice> kernels;

    std::string ToString() const;
  };

  static KernelProfileLedger& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Replaces the bounds (existing entries stay).
  void Configure(const Options& options);

  /// \brief Flushes one Run's launches: one lock, one map accumulate per
  /// distinct (kernel, variant) in the batch. `owner` tags the entries
  /// with the Executable that owns the observed kernels, so its
  /// destructor can Forget them (see below). `bindings` are the Run's
  /// solved symbol values — retained once per new entry as the regret
  /// audit's input. `trace_id` 0 = no serving context (no run record
  /// retained). No-op when disabled.
  void ObserveRun(const void* owner, const std::string& signature,
                  const SymbolBindings& bindings, uint64_t trace_id,
                  double run_device_time_us,
                  const std::vector<KernelLaunchObservation>& launches);

  /// \brief Drops every entry observed through `owner` (an Executable
  /// address). Called by Executable's destructor as the automatic
  /// lifetime fence: a feedback-driven hot swap can destroy an observed
  /// executable mid-traffic, and without this the audit would chase
  /// dangling kernel pointers. Run records survive (they hold no
  /// pointers). Near-free when the ledger has never aggregated anything.
  void Forget(const void* owner);

  /// \brief Aggregated entries, sorted by key (kernel, variant,
  /// signature) — deterministic across runs.
  std::vector<KernelProfileEntry> Snapshot() const;

  /// \brief Retained run records for one trace id, oldest first (a trace
  /// id can appear once per Run its batch issued).
  std::vector<RunRecord> RunsForTrace(uint64_t trace_id) const;

  /// \brief The counterfactual audit: for every entry, evaluate all
  /// variants the kernel would have under `reference` (default: full
  /// specialization) at the entry's observed bindings, cost the
  /// admissible ones through DeviceModel on `device`, and report regret.
  /// Sorted by total_regret_us descending (key ascending on ties).
  /// Entries whose Executable died were already Forgotten, so the audit
  /// only ever sees live kernels.
  std::vector<KernelRegret> AuditRegret(
      const DeviceSpec& device, const SpecializeOptions& reference = {}) const;

  Stats stats() const;

  /// \brief Drops every entry and run record (enabled flag and options
  /// untouched). Test/bench isolation helper.
  void Clear();

  /// \brief Hotspot digest: stats line + top entries by total time.
  std::string ToString() const;

 private:
  struct EntryState {
    KernelProfileEntry entry;
    const FusedKernel* kernel = nullptr;
    /// The Executable the kernel lives in (Forget key).
    const void* owner = nullptr;
    /// Representative bindings (first Run observed) — the audit's input.
    SymbolBindings bindings;
  };

  KernelProfileLedger() = default;

  std::atomic<bool> enabled_{false};
  /// Fast path for Forget(): every Executable destructor calls it, and
  /// programs that never enable the ledger should not pay a lock there.
  std::atomic<bool> any_entries_{false};
  mutable std::mutex mu_;
  Options options_;
  Stats stats_;
  /// Key "kernel|variant|signature" -> state; std::map keeps snapshots
  /// deterministically ordered.
  std::map<std::string, EntryState> entries_;
  std::deque<RunRecord> runs_;  // oldest at front
};

/// \brief kernel_profile.json: schema_version, ledger stats, aggregated
/// entries, and (optionally empty) regret audit — written through the
/// deterministic JSON writer, parse-validated by the CI hotspot smoke.
JsonValue KernelProfileJson(const std::vector<KernelProfileEntry>& entries,
                            const std::vector<KernelRegret>& regrets,
                            const KernelProfileLedger::Stats& stats);

/// \brief Serializes KernelProfileJson to `path` (pretty, deterministic).
Status WriteKernelProfileJson(const std::string& path,
                              const std::vector<KernelProfileEntry>& entries,
                              const std::vector<KernelRegret>& regrets,
                              const KernelProfileLedger::Stats& stats);

}  // namespace disc

#endif  // DISC_SUPPORT_KERNEL_PROFILE_H_
