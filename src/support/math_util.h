// Integer math helpers shared by shape arithmetic, buffer planning and the
// device model.
#ifndef DISC_SUPPORT_MATH_UTIL_H_
#define DISC_SUPPORT_MATH_UTIL_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "support/logging.h"

namespace disc {

/// \brief ceil(a / b) for positive b.
inline int64_t CeilDiv(int64_t a, int64_t b) {
  DISC_CHECK_GT(b, 0);
  return (a + b - 1) / b;
}

/// \brief floor(a / b) for positive b (correct for negative a, unlike the
/// truncating `/`).
inline int64_t FloorDiv(int64_t a, int64_t b) {
  DISC_CHECK_GT(b, 0);
  return a >= 0 ? a / b : -CeilDiv(-a, b);
}

/// \brief Rounds `a` up to the next multiple of `multiple` (> 0).
inline int64_t RoundUp(int64_t a, int64_t multiple) {
  return CeilDiv(a, multiple) * multiple;
}

/// \brief Rounds `a` up to the next power of two (a >= 1).
inline int64_t NextPowerOfTwo(int64_t a) {
  DISC_CHECK_GE(a, 1);
  int64_t p = 1;
  while (p < a) p <<= 1;
  return p;
}

/// \brief Product of all elements; empty product is 1.
inline int64_t Product(const std::vector<int64_t>& dims) {
  int64_t p = 1;
  for (int64_t d : dims) p *= d;
  return p;
}

/// \brief Greatest common divisor with gcd(0, x) == x.
inline int64_t Gcd(int64_t a, int64_t b) { return std::gcd(a, b); }

}  // namespace disc

#endif  // DISC_SUPPORT_MATH_UTIL_H_
