// Per-request causal tracing and tail-latency blame attribution.
//
// Aggregate percentiles say *that* p99 is high; they never say *which*
// request, *which* shape signature, or *which* layer — queue wait, compile
// stall, host plan build, allocator traffic, device time — is to blame.
// This header is the substrate for that question:
//
//   * PhaseLedger — an itemized decomposition of one request's end-to-end
//     latency into causally-distinct phases on the simulated clock. The
//     serving simulator asserts (PR 4 accounting-invariant style) that the
//     phases sum to the request's measured end-to-end latency, so blame
//     fractions are exact, not estimates.
//   * RequestContext — a trace id + ledger minted per request at submit
//     and propagated down the synchronous call chain via a thread-local
//     scope (RequestContextScope). Layers that cannot see the serving
//     request (Executable::Run spans, CompileService job submissions)
//     read RequestContext::CurrentTraceId() to link their work back to
//     the request that caused it — cross-thread, compile jobs carry the
//     captured id in the job request itself.
//   * TailBlameAggregator — consumes completed-request records and answers
//     "what fraction of p99 latency does each phase own", printed by
//     `trace_inspect --blame` and exported as blame_report.json through
//     the deterministic JSON writer (shares sum to 1.0 by the ledger
//     invariant; the exporter re-checks it).
#ifndef DISC_SUPPORT_BLAME_H_
#define DISC_SUPPORT_BLAME_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/json.h"
#include "support/status.h"

namespace disc {

/// Itemized per-request latency decomposition (simulated-clock microseconds).
/// Phase order is fixed and mirrored by PhaseNames()/PhaseValues(); reports
/// and JSON export iterate it, so adding a phase means extending all three
/// members together (blame_test pins them in sync).
struct PhaseLedger {
  /// Waiting for the batch to form: request arrival -> batch ready (the
  /// last member's arrival under the batcher's wait budget).
  double batch_form_us = 0.0;
  /// Device-queue wait: batch ready -> first launch attempt.
  double queue_us = 0.0;
  /// Retry backoff between failed launch attempts (PR 4 degradation
  /// ladder); zero on the fault-free path.
  double backoff_us = 0.0;
  /// Decode-serving wait while the request was mid-flight but *not* in the
  /// running step batch: time spent preempted (KV blocks released under
  /// memory pressure, waiting in the resume queue) plus any scheduler gap
  /// between the steps it participated in. Zero for request-level serving,
  /// where a launched request is never descheduled.
  double decode_wait_us = 0.0;
  /// Compilation stall charged to this request's batch (lazy primary
  /// compile in the fallback chain, sync-mode async engine gate).
  double compile_stall_us = 0.0;
  /// Host-side work: shape program / guard evaluation / launch dispatch
  /// (EngineTiming::host_us — shrinks to a hash lookup on plan-cache hits).
  double host_plan_us = 0.0;
  /// Device-allocator traffic (EngineTiming::alloc_us; zero unless the
  /// engine profile prices allocator calls).
  double alloc_us = 0.0;
  /// Simulated device execution time.
  double device_us = 0.0;

  /// Sum of every phase — must equal the request's end-to-end latency
  /// (checked by the serving simulator for every completed request).
  double TotalUs() const;
  void Add(const PhaseLedger& other);
  /// Name of the largest phase ("device", "queue", ...).
  const char* DominantPhase() const;
  /// Phase names in ledger order ("batch_form", "queue", "backoff",
  /// "decode_wait", "compile_stall", "host_plan", "alloc", "device").
  static const std::vector<std::string>& PhaseNames();
  /// Phase values in the same order as PhaseNames().
  std::vector<double> PhaseValues() const;
  std::string ToString() const;
};

/// \brief One request's causal-trace identity: a process-unique trace id
/// plus the latency ledger being assembled for it. Minted by the serving
/// simulator at submit; the batch execution path activates it via
/// RequestContextScope so downstream layers can attribute their work.
class RequestContext {
 public:
  RequestContext() = default;
  explicit RequestContext(uint64_t id) : trace_id(id) {}

  uint64_t trace_id = 0;
  PhaseLedger ledger;

  /// \brief Process-unique monotonic trace id (never 0).
  static uint64_t MintTraceId();
  /// \brief The context installed on this thread, nullptr when none.
  static RequestContext* Current();
  /// \brief Current()->trace_id, or 0 when no context is installed. The
  /// cheap form layers use to annotate spans and compile jobs.
  static uint64_t CurrentTraceId();
};

/// \brief RAII: installs `context` as the thread's current RequestContext
/// for the scope (restores the previous one on exit — scopes nest).
class RequestContextScope {
 public:
  explicit RequestContextScope(RequestContext* context);
  ~RequestContextScope();

  RequestContextScope(const RequestContextScope&) = delete;
  RequestContextScope& operator=(const RequestContextScope&) = delete;

 private:
  RequestContext* previous_;
};

/// One completed request with its full attribution — what the serving
/// simulator records into ServingStats::completed_requests and what the
/// blame aggregator and flight recorder consume.
struct CompletedRequest {
  uint64_t trace_id = 0;
  int64_t request_id = 0;
  /// Padded launch signature of the batch that served it, e.g. "8x128".
  std::string signature;
  double arrival_us = 0.0;
  double e2e_us = 0.0;  // submit -> complete on the simulated clock
  PhaseLedger ledger;   // sums to e2e_us (checked at record time)
  bool degraded = false;
  int64_t retries = 0;
};

/// Per-phase blame decomposition at one tail percentile.
struct BlameReport {
  double tail_percentile = 99.0;
  /// Latency at the percentile; tail set = requests at or above it.
  double threshold_us = 0.0;
  int64_t total_requests = 0;
  int64_t tail_requests = 0;
  /// phase -> fraction of summed latency owned by the phase, over all
  /// completed requests / over the tail set. Each sums to 1.0 (exact up to
  /// float rounding) because every ledger sums to its request's latency.
  std::vector<std::pair<std::string, double>> overall_shares;
  std::vector<std::pair<std::string, double>> tail_shares;
  /// Shape signatures of the tail set with their request counts, sorted by
  /// count descending — which shapes the tail lives on.
  std::vector<std::pair<std::string, int64_t>> tail_signatures;

  std::string ToString() const;
  JsonValue ToJson() const;
  /// \brief Writes ToJson() pretty-printed (the blame_report.json file).
  Status WriteJsonFile(const std::string& path) const;
};

/// \brief Accumulates completed requests (possibly across several serving
/// runs) and computes tail blame. Not thread-safe; aggregate per run and
/// merge.
class TailBlameAggregator {
 public:
  void Add(const CompletedRequest& request) { requests_.push_back(request); }
  void AddAll(const std::vector<CompletedRequest>& requests);

  int64_t size() const { return static_cast<int64_t>(requests_.size()); }

  /// \brief Blame decomposition at `tail_percentile` (e.g. 99.0). With no
  /// requests the report is empty (zero counts, no shares).
  BlameReport Compute(double tail_percentile = 99.0) const;

 private:
  std::vector<CompletedRequest> requests_;
};

/// \brief Re-parses a serialized blame report (ParseJson) and verifies its
/// share vectors each sum to 1.0 within `tolerance`. Returns OK with
/// `*out_sum` = the tail-share sum; the CI trace-smoke step drives this
/// through `trace_inspect --blame`.
Status ValidateBlameReportJson(const std::string& json_text, double tolerance,
                               double* out_sum);

}  // namespace disc

#endif  // DISC_SUPPORT_BLAME_H_
