#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/string_util.h"

namespace disc {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumberToString(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  return StrFormat("%.17g", v);
}

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    *out += '\n';
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      *out += JsonNumberToString(number_);
      return;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        v.SerializeTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        *out += '"';
        *out += JsonEscape(key);
        *out += "\":";
        if (indent > 0) *out += ' ';
        value.SerializeTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out, 0, 0);
  return out;
}

std::string JsonValue::SerializePretty() const {
  std::string out;
  SerializeTo(&out, 2, 0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    DISC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrFormat("json: trailing characters at offset %zu", pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(
          StrFormat("json: expected '%c' at offset %zu", c, pos_));
    }
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        DISC_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        return ParseKeyword("true", JsonValue(true));
      case 'f':
        return ParseKeyword("false", JsonValue(false));
      case 'n':
        return ParseKeyword("null", JsonValue());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(const char* word, JsonValue value) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Status::InvalidArgument(
          StrFormat("json: bad literal at offset %zu", pos_));
    }
    pos_ += len;
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("json: bad number at offset %zu", start));
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("json: bad number '" + token + "'");
    }
    return JsonValue(value);
  }

  Result<std::string> ParseString() {
    DISC_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("json: truncated \\u escape");
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Status::InvalidArgument("json: bad \\u escape");
            }
          }
          // BMP only (UTF-8 encode); the repo never emits surrogates.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Status::InvalidArgument(
              StrFormat("json: bad escape '\\%c'", esc));
      }
    }
    DISC_RETURN_IF_ERROR(Expect('"'));
    return out;
  }

  Result<JsonValue> ParseArray() {
    DISC_RETURN_IF_ERROR(Expect('['));
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    while (true) {
      DISC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) break;
      DISC_RETURN_IF_ERROR(Expect(','));
    }
    return JsonValue(std::move(array));
  }

  Result<JsonValue> ParseObject() {
    DISC_RETURN_IF_ERROR(Expect('{'));
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    while (true) {
      SkipWhitespace();
      DISC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      DISC_RETURN_IF_ERROR(Expect(':'));
      DISC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      DISC_RETURN_IF_ERROR(Expect(','));
    }
    return JsonValue(std::move(object));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace disc
