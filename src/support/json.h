// Minimal JSON value type, parser and deterministic writer.
//
// The introspection subsystem (artifact dumps, fusion/shape provenance,
// BENCH_*.json results) writes machine-readable JSON and the regression
// checker reads it back. The writer is deterministic — object keys are
// kept in sorted order (std::map) and doubles render via "%.17g" so that
// identical in-memory values serialize byte-identically, which the
// artifact-determinism tests and the committed bench baselines rely on.
//
// Scope: the full JSON grammar minus \uXXXX surrogate pairs (escapes are
// decoded for the BMP subset the repo emits). Not performance-critical —
// parsed files are a few KB.
#ifndef DISC_SUPPORT_JSON_H_
#define DISC_SUPPORT_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/status.h"

namespace disc {

/// \brief A parsed JSON value (null / bool / number / string / array /
/// object). Value semantics; copies are deep.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;  // sorted => deterministic

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(int64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// \brief Object member lookup; returns nullptr when absent or when this
  /// value is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// \brief Serializes compactly (no whitespace). Deterministic: object
  /// keys are sorted, doubles use shortest-roundtrip-ish "%.17g" (integers
  /// under 2^53 print without a decimal point).
  std::string Serialize() const;
  /// \brief Pretty-printed with 2-space indentation (same determinism).
  std::string SerializePretty() const;

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// \brief Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
Result<JsonValue> ParseJson(const std::string& text);

/// \brief Escapes a string for inclusion in a JSON document (no quotes
/// added). Shared with the trace writer's conventions.
std::string JsonEscape(const std::string& s);

/// \brief Formats a double the way the serializer does (integral values
/// without a decimal point, otherwise "%.17g").
std::string JsonNumberToString(double v);

}  // namespace disc

#endif  // DISC_SUPPORT_JSON_H_
