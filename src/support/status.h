// Status / Result<T> error handling, Arrow-style: the library does not throw
// exceptions; fallible operations return Status or Result<T>.
#ifndef DISC_SUPPORT_STATUS_H_
#define DISC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace disc {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kInternal,
  kUnimplemented,
  kOutOfRange,
  kFailedPrecondition,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
  /// Unrecoverable corruption of data the operation depended on: output
  /// divergence detected by differential validation, a guard selecting an
  /// inadmissible kernel variant, bit-rotted cache entries. Never
  /// retryable — retrying replays the same corrupt artifact; the caller
  /// must discard/quarantine it instead.
  kDataLoss,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation that produces no value.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are cheap to move and copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief True for transient failures a caller may retry (possibly after
  /// a backoff): the operation itself is sound, the environment was not.
  /// Serving uses this to decide between retry-with-backoff and giving a
  /// request up. kResourceExhausted qualifies because allocator pressure
  /// subsides when in-flight work completes; kUnavailable is the generic
  /// transient-dependency code. Deadline misses are final by definition.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts in debug builds; callers
/// must check ok() (or use DISC_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// \brief Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Builds an error message via streaming, used by DISC_CHECK-style macros.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace disc

/// Propagates a non-OK Status from the current function.
#define DISC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::disc::Status _disc_status = (expr);     \
    if (!_disc_status.ok()) return _disc_status; \
  } while (false)

#define DISC_CONCAT_IMPL(x, y) x##y
#define DISC_CONCAT(x, y) DISC_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may include a declaration).
#define DISC_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  DISC_ASSIGN_OR_RETURN_IMPL(DISC_CONCAT(_disc_result_, __LINE__), lhs, rexpr)

#define DISC_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value();

#endif  // DISC_SUPPORT_STATUS_H_
