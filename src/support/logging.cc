#include "support/logging.h"

#include <cstring>
#include <mutex>

namespace disc {

namespace {
LogLevel& MutableLogLevel() {
  static LogLevel level = ParseLogLevel(std::getenv("DISC_LOG"));
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}
}  // namespace

LogLevel GetLogLevel() { return MutableLogLevel(); }
void SetLogLevel(LogLevel level) { MutableLogLevel() = level; }

LogLevel ParseLogLevel(const char* value) {
  if (value == nullptr) return LogLevel::kWarning;
  if (std::strcmp(value, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(value, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(value, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(value, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal_ || level >= GetLogLevel();
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // Concurrent Runs log from multiple threads; emit the whole formatted
    // line in one guarded write so lines never interleave.
    stream_ << '\n';
    const std::string line = stream_.str();
    static std::mutex log_mu;
    std::lock_guard<std::mutex> lock(log_mu);
    std::cerr << line << std::flush;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace disc
