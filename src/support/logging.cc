#include "support/logging.h"

#include <cstring>

namespace disc {

namespace {
LogLevel InitialLogLevel() {
  const char* env = std::getenv("DISC_LOG");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarning;
}

LogLevel& MutableLogLevel() {
  static LogLevel level = InitialLogLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}
}  // namespace

LogLevel GetLogLevel() { return MutableLogLevel(); }
void SetLogLevel(LogLevel level) { MutableLogLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal_ || level >= GetLogLevel();
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace disc
