// Low-overhead span/event tracer with Chrome-trace JSON export.
//
// The paper's claims are about *where time goes* — host shape work vs.
// device time, per-pass compile cost, queue wait vs. execution in serving.
// This tracer records those phases as spans and exports them in the Chrome
// trace-event format, loadable in chrome://tracing or Perfetto
// (ui.perfetto.dev).
//
// Design constraints:
//   * zero cost when disabled — DISC_TRACE_SCOPE is one relaxed atomic
//     load, no allocation, no lock;
//   * thread-safe — spans from concurrent Runs interleave into one
//     bounded ring buffer (oldest events drop when full, counted);
//   * two timelines — wall-clock spans record real time (pid 1); the
//     serving simulator emits events on its *simulated* clock (pid 2)
//     via AddCompleteEvent, so queue-wait spans are meaningful.
//
// Usage:
//   TraceSession::Global().Enable();
//   { DISC_TRACE_SCOPE("fusion-planning", "compile"); ... }
//   TraceSession::Global().WriteJson("out.trace.json");
#ifndef DISC_SUPPORT_TRACE_H_
#define DISC_SUPPORT_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/status.h"

namespace disc {

/// One key/value annotation on an event ("args" in the Chrome format).
using TraceArg = std::pair<std::string, std::string>;

/// One recorded event. dur_us < 0 marks an instant event ("ph":"i");
/// otherwise a complete span ("ph":"X").
struct TraceEvent {
  std::string name;
  const char* category = "";  // static string, not owned
  double ts_us = 0.0;
  double dur_us = -1.0;
  int pid = 1;
  int tid = 0;
  std::vector<TraceArg> args;
};

/// \brief Process-global trace recorder. All members are thread-safe.
class TraceSession {
 public:
  /// Timeline ids: wall-clock instrumentation vs. the serving simulator's
  /// simulated clock. Rendered as two separate "processes" by the viewers.
  static constexpr int kWallPid = 1;
  static constexpr int kSimPid = 2;

  static TraceSession& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  /// The one check on every hot path; relaxed load, nothing else.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Microseconds since the session was created (steady clock).
  double NowUs() const;

  /// \brief Records a span with explicit timing. Used by TraceScope for
  /// wall-clock spans and by the serving simulator for simulated-clock
  /// spans (pid = kSimPid). No-op when disabled.
  void AddCompleteEvent(std::string name, const char* category, double ts_us,
                        double dur_us, int pid, int tid,
                        std::vector<TraceArg> args = {});

  /// \brief Records an instant event at NowUs(). No-op when disabled.
  void AddInstantEvent(std::string name, const char* category,
                       std::vector<TraceArg> args = {});

  /// \brief Dense per-thread id (0, 1, ...) for the calling thread.
  int CurrentThreadTid();

  /// \brief Chrome-trace JSON ({"traceEvents":[...]}) of the buffered
  /// events, oldest first. Valid JSON even with zero events.
  void WriteJson(std::ostream& os) const;
  /// \brief WriteJson to a file path.
  Status WriteJson(const std::string& path) const;

  /// \brief Ring-buffer capacity in events; shrinking drops oldest.
  void set_capacity(size_t capacity);

  size_t num_events() const;
  /// Events overwritten because the ring buffer was full.
  int64_t dropped_events() const;

  /// \brief Copy of the buffered events, oldest first, optionally filtered
  /// by category (nullptr = all). Used by the introspection layer to join
  /// per-pass span times into the pipeline summary.
  std::vector<TraceEvent> Snapshot(const char* category = nullptr) const;

  /// \brief Drops all buffered events and the dropped counter (the
  /// enabled flag and thread ids are untouched).
  void Clear();

 private:
  TraceSession();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  // Ring buffer: ring_[(head_ + i) % capacity_] for i in [0, size_).
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t head_ = 0;
  size_t size_ = 0;
  int64_t dropped_ = 0;
  std::unordered_map<std::thread::id, int> thread_ids_;
};

/// \brief RAII span: records [construction, destruction) as one complete
/// event on the wall-clock timeline. When tracing is disabled the
/// constructor is a single atomic load and every method is a no-op.
class TraceScope {
 public:
  /// `name` with static storage duration (string literal, OpName, ...).
  TraceScope(const char* name, const char* category);
  /// Dynamic name; copied only when tracing is enabled.
  TraceScope(const std::string& name, const char* category);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// \brief Attaches a key/value annotation. No-op when inactive, so
  /// callers may pass already-computed strings unconditionally but should
  /// guard expensive formatting with `active()`.
  void AddArg(std::string key, std::string value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  const char* name_ = "";       // used when dyn_name_ is empty
  std::string dyn_name_;
  const char* category_ = "";
  double start_us_ = 0.0;
  std::vector<TraceArg> args_;
};

#define DISC_TRACE_CONCAT_IMPL_(a, b) a##b
#define DISC_TRACE_CONCAT_(a, b) DISC_TRACE_CONCAT_IMPL_(a, b)

/// \brief Traces the enclosing scope as a span. One relaxed atomic load
/// when tracing is disabled.
#define DISC_TRACE_SCOPE(name, category)                       \
  ::disc::TraceScope DISC_TRACE_CONCAT_(disc_trace_scope_,     \
                                        __LINE__)(name, category)

}  // namespace disc

#endif  // DISC_SUPPORT_TRACE_H_
