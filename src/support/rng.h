// Deterministic random number generation for tests, workload traces and
// synthetic model weights. A thin wrapper so all randomness in the repo is
// seeded and reproducible.
#ifndef DISC_SUPPORT_RNG_H_
#define DISC_SUPPORT_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace disc {

/// \brief Seeded pseudo-random generator (mt19937_64 based).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// \brief Uniform float in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
  }

  /// \brief Standard normal sample.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
  }

  /// \brief Fills `out` with normal samples (for weights/inputs).
  void FillNormal(std::vector<float>* out, float stddev = 1.0f) {
    for (float& v : *out) v = Normal(0.0f, stddev);
  }

  /// \brief Samples an index in [0, weights.size()) proportionally to
  /// `weights` (used for Zipf-like shape traces).
  size_t Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace disc

#endif  // DISC_SUPPORT_RNG_H_
