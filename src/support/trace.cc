#include "support/trace.h"

#include <fstream>
#include <string_view>

namespace disc {

namespace {

constexpr size_t kDefaultCapacity = 1 << 16;

// Chrome-trace JSON string escaping (quotes, backslashes, control chars).
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendArgs(std::string* out, const std::vector<TraceArg>& args) {
  *out += "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    AppendEscaped(out, key);
    *out += "\":\"";
    AppendEscaped(out, value);
    *out += "\"";
  }
  *out += "}";
}

}  // namespace

TraceSession::TraceSession()
    : epoch_(std::chrono::steady_clock::now()), capacity_(kDefaultCapacity) {
  ring_.resize(capacity_);
}

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession();
  return *session;
}

double TraceSession::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSession::AddCompleteEvent(std::string name, const char* category,
                                    double ts_us, double dur_us, int pid,
                                    int tid, std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.pid = pid;
  event.tid = tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (size_ < capacity_) {
    ring_[(head_ + size_) % capacity_] = std::move(event);
    ++size_;
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

void TraceSession::AddInstantEvent(std::string name, const char* category,
                                   std::vector<TraceArg> args) {
  if (!enabled()) return;
  AddCompleteEvent(std::move(name), category, NowUs(), /*dur_us=*/-1.0,
                   kWallPid, CurrentThreadTid(), std::move(args));
}

int TraceSession::CurrentThreadTid() {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = thread_ids_.try_emplace(
      std::this_thread::get_id(), static_cast<int>(thread_ids_.size()));
  (void)inserted;
  return it->second;
}

void TraceSession::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"disc (wall clock)\"}},\n";
  out +=
      "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
      "\"args\":{\"name\":\"serving (simulated clock)\"}}";
  char buf[96];
  for (size_t i = 0; i < size_; ++i) {
    const TraceEvent& event = ring_[(head_ + i) % capacity_];
    out += ",\n{\"name\":\"";
    AppendEscaped(&out, event.name);
    out += "\",\"cat\":\"";
    AppendEscaped(&out, event.category);
    out += "\",";
    if (event.dur_us < 0) {
      std::snprintf(buf, sizeof(buf), "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,",
                    event.ts_us);
    } else {
      std::snprintf(buf, sizeof(buf), "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,",
                    event.ts_us, event.dur_us);
    }
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"pid\":%d,\"tid\":%d", event.pid,
                  event.tid);
    out += buf;
    if (!event.args.empty()) {
      out += ",\"args\":";
      AppendArgs(&out, event.args);
    }
    out += "}";
  }
  out += "\n]}\n";
  os << out;
}

Status TraceSession::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  WriteJson(file);
  file.flush();
  if (!file.good()) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::OK();
}

void TraceSession::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> next(capacity);
  size_t keep = std::min(size_, capacity);
  // Keep the newest `keep` events, oldest first.
  for (size_t i = 0; i < keep; ++i) {
    next[i] = std::move(ring_[(head_ + (size_ - keep) + i) % capacity_]);
  }
  dropped_ += static_cast<int64_t>(size_ - keep);
  ring_ = std::move(next);
  capacity_ = capacity;
  head_ = 0;
  size_ = keep;
}

size_t TraceSession::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

int64_t TraceSession::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceSession::Snapshot(const char* category) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    const TraceEvent& event = ring_[(head_ + i) % capacity_];
    if (category != nullptr && std::string_view(event.category) != category) {
      continue;
    }
    events.push_back(event);
  }
  return events;
}

void TraceSession::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

TraceScope::TraceScope(const char* name, const char* category) {
  TraceSession& session = TraceSession::Global();
  if (!session.enabled()) return;
  active_ = true;
  name_ = name;
  category_ = category;
  start_us_ = session.NowUs();
}

TraceScope::TraceScope(const std::string& name, const char* category) {
  TraceSession& session = TraceSession::Global();
  if (!session.enabled()) return;
  active_ = true;
  dyn_name_ = name;
  category_ = category;
  start_us_ = session.NowUs();
}

TraceScope::~TraceScope() {
  if (!active_) return;
  TraceSession& session = TraceSession::Global();
  double end_us = session.NowUs();
  session.AddCompleteEvent(
      dyn_name_.empty() ? std::string(name_) : std::move(dyn_name_),
      category_, start_us_, end_us - start_us_, TraceSession::kWallPid,
      session.CurrentThreadTid(), std::move(args_));
}

void TraceScope::AddArg(std::string key, std::string value) {
  if (!active_) return;
  args_.emplace_back(std::move(key), std::move(value));
}

}  // namespace disc
