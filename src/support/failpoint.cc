#include "support/failpoint.h"

#include <cstdlib>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

std::atomic<bool> FailpointRegistry::any_armed_{false};

namespace {

/// Kebab-case code names accepted by the `code=` spec param. Only codes
/// that make sense as injected runtime faults are listed.
struct CodeName {
  const char* name;
  StatusCode code;
};
constexpr CodeName kCodeNames[] = {
    {"invalid-argument", StatusCode::kInvalidArgument},
    {"not-found", StatusCode::kNotFound},
    {"internal", StatusCode::kInternal},
    {"out-of-range", StatusCode::kOutOfRange},
    {"failed-precondition", StatusCode::kFailedPrecondition},
    {"deadline-exceeded", StatusCode::kDeadlineExceeded},
    {"resource-exhausted", StatusCode::kResourceExhausted},
    {"unavailable", StatusCode::kUnavailable},
    {"data-loss", StatusCode::kDataLoss},
};

Result<StatusCode> ParseCodeName(const std::string& name) {
  for (const CodeName& entry : kCodeNames) {
    if (name == entry.name) return entry.code;
  }
  return Status::InvalidArgument("unknown failpoint code '" + name + "'");
}

const char* CodeToKebab(StatusCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (code == entry.code) return entry.name;
  }
  return "unavailable";
}

}  // namespace

Result<FailpointSpec> FailpointSpec::Parse(const std::string& spec) {
  FailpointSpec result;
  std::vector<std::string> fields = Split(spec, ':');
  if (fields.empty() || fields[0].empty()) {
    return Status::InvalidArgument("empty failpoint trigger in '" + spec +
                                   "'");
  }
  size_t next = 1;
  const std::string& trigger = fields[0];
  if (trigger == "always") {
    result.trigger = Trigger::kAlways;
  } else if (trigger == "once") {
    result.trigger = Trigger::kOnce;
  } else if (trigger == "every") {
    result.trigger = Trigger::kEveryNth;
    if (next >= fields.size()) {
      return Status::InvalidArgument("every needs a count in '" + spec + "'");
    }
    result.every_n = std::atoll(fields[next].c_str());
    if (result.every_n < 1) {
      return Status::InvalidArgument("every:<N> needs N >= 1 in '" + spec +
                                     "'");
    }
    ++next;
  } else if (trigger == "prob") {
    result.trigger = Trigger::kProbability;
    if (next >= fields.size()) {
      return Status::InvalidArgument("prob needs a probability in '" + spec +
                                     "'");
    }
    result.probability = std::atof(fields[next].c_str());
    if (result.probability < 0.0 || result.probability > 1.0) {
      return Status::InvalidArgument("prob:<P> needs P in [0,1] in '" + spec +
                                     "'");
    }
    ++next;
  } else {
    return Status::InvalidArgument("unknown failpoint trigger '" + trigger +
                                   "'");
  }

  for (; next < fields.size(); ++next) {
    const std::string& field = fields[next];
    if (StartsWith(field, "seed=")) {
      result.seed = static_cast<uint64_t>(std::atoll(field.c_str() + 5));
    } else if (StartsWith(field, "max=")) {
      result.max_fires = std::atoll(field.c_str() + 4);
    } else if (StartsWith(field, "code=")) {
      DISC_ASSIGN_OR_RETURN(result.code, ParseCodeName(field.substr(5)));
    } else {
      return Status::InvalidArgument("unknown failpoint param '" + field +
                                     "'");
    }
  }
  return result;
}

std::string FailpointSpec::ToString() const {
  std::string out;
  switch (trigger) {
    case Trigger::kAlways:
      out = "always";
      break;
    case Trigger::kOnce:
      out = "once";
      break;
    case Trigger::kEveryNth:
      out = StrFormat("every:%lld", static_cast<long long>(every_n));
      break;
    case Trigger::kProbability:
      out = StrFormat("prob:%g:seed=%llu", probability,
                      static_cast<unsigned long long>(seed));
      break;
  }
  if (max_fires >= 0) {
    out += StrFormat(":max=%lld", static_cast<long long>(max_fires));
  }
  out += ":code=";
  out += CodeToKebab(code);
  return out;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* instance = new FailpointRegistry();
  return *instance;
}

namespace {
// Construct the registry (and thus parse DISC_FAILPOINTS) before main:
// CheckFailpoint short-circuits on the any_armed_ atomic without touching
// Global(), so env arming must happen eagerly, not on first registry use.
const bool kEnvArmed = (FailpointRegistry::Global(), true);
}  // namespace

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("DISC_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  Status status = ArmFromSpec(env);
  if (!status.ok()) {
    DISC_LOG(Warning) << "bad DISC_FAILPOINTS: " << status.ToString();
  }
}

void FailpointRegistry::Arm(const std::string& name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed armed;
  armed.spec = spec;
  armed.rng = Rng(spec.seed);
  points_[name] = std::move(armed);
  any_armed_.store(true, std::memory_order_relaxed);
}

Status FailpointRegistry::ArmFromSpec(const std::string& spec_list) {
  for (const std::string& entry : Split(spec_list, ';')) {
    std::string stripped = Strip(entry);
    if (stripped.empty()) continue;
    size_t eq = stripped.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint entry '" + stripped +
                                     "' is not <name>=<spec>");
    }
    DISC_ASSIGN_OR_RETURN(FailpointSpec spec,
                          FailpointSpec::Parse(stripped.substr(eq + 1)));
    Arm(stripped.substr(0, eq), spec);
  }
  return Status::OK();
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(name);
  if (points_.empty()) any_armed_.store(false, std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  any_armed_.store(false, std::memory_order_relaxed);
}

Status FailpointRegistry::Check(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return Status::OK();
  Armed& armed = it->second;
  ++armed.hits;

  bool fire = false;
  switch (armed.spec.trigger) {
    case FailpointSpec::Trigger::kAlways:
      fire = true;
      break;
    case FailpointSpec::Trigger::kOnce:
      fire = armed.fires == 0;
      break;
    case FailpointSpec::Trigger::kEveryNth:
      fire = armed.hits % armed.spec.every_n == 0;
      break;
    case FailpointSpec::Trigger::kProbability:
      fire = armed.rng.Uniform() < armed.spec.probability;
      break;
  }
  if (armed.spec.max_fires >= 0 && armed.fires >= armed.spec.max_fires) {
    fire = false;
  }
  if (!fire) return Status::OK();

  ++armed.fires;
  CountMetric("support.failpoint.fired");
  TraceSession& trace = TraceSession::Global();
  if (trace.enabled()) {
    trace.AddInstantEvent(std::string("failpoint:") + name, "failpoint",
                          {{"spec", armed.spec.ToString()},
                           {"fire", std::to_string(armed.fires)}});
  }
  return Status(armed.spec.code,
                StrFormat("failpoint '%s' fired (#%lld)", name,
                          static_cast<long long>(armed.fires)));
}

std::vector<FailpointRegistry::Info> FailpointRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Info> out;
  for (const auto& [name, armed] : points_) {
    out.push_back({name, armed.spec, armed.hits, armed.fires});
  }
  return out;
}

int64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

std::string FailpointRegistry::Summary() const {
  // Snapshot takes the lock; don't hold it here too.
  std::string out;
  for (const Info& info : Snapshot()) {
    out += StrFormat("%s=%s  hits=%lld fires=%lld\n", info.name.c_str(),
                     info.spec.ToString().c_str(),
                     static_cast<long long>(info.hits),
                     static_cast<long long>(info.fires));
  }
  return out;
}

}  // namespace disc
