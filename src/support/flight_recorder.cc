#include "support/flight_recorder.h"

#include <cmath>

#include "support/metrics.h"
#include "support/string_util.h"

namespace disc {

std::string FlightRecord::ToString() const {
  std::string s = StrFormat(
      "trace=%llu sig=%s e2e=%.1fus (sig mean=%.1fus stddev=%.1fus n=%lld) ",
      static_cast<unsigned long long>(trace_id), signature.c_str(), e2e_us,
      signature_mean_us, signature_stddev_us,
      static_cast<long long>(signature_count));
  s += "ledger[" + ledger.ToString() + "]";
  s += StrFormat(" dominant=%s", ledger.DominantPhase());
  for (const auto& [key, value] : annotations) {
    s += " " + key + "=" + value;
  }
  return s;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++stats_.dropped;
  }
}

bool FlightRecorder::DecideAndUpdate(Welford* w, double e2e_us,
                                     double* mean_us, double* stddev_us) {
  // Retention decision on the statistics *before* this observation.
  bool retain = false;
  *mean_us = w->mean;
  *stddev_us = 0.0;
  if (w->count >= options_.min_samples) {
    *stddev_us = std::sqrt(w->m2 / static_cast<double>(w->count));
    retain = e2e_us > *mean_us + options_.stddev_threshold * *stddev_us &&
             e2e_us > *mean_us * options_.min_inflation;
  }
  // Welford update — skipped for retained anomalies so an outlier burst
  // cannot poison the baseline it is judged against (and thereby stop
  // flagging itself).
  if (!retain) {
    ++w->count;
    const double delta = e2e_us - w->mean;
    w->mean += delta / static_cast<double>(w->count);
    w->m2 += delta * (e2e_us - w->mean);
  }
  return retain;
}

void FlightRecorder::RetainLocked(FlightRecord&& record) {
  ++stats_.retained;
  CountMetric("flight_recorder.retained");
  ring_.push_back(std::move(record));
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++stats_.dropped;
  }
}

bool FlightRecorder::Observe(
    const std::string& signature, double e2e_us, double sim_time_us,
    uint64_t trace_id, const PhaseLedger& ledger,
    std::vector<std::pair<std::string, std::string>> annotations) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.observed;
  Welford& w = signatures_[signature];
  double mean = 0.0;
  double stddev = 0.0;
  if (!DecideAndUpdate(&w, e2e_us, &mean, &stddev)) return false;
  FlightRecord record;
  record.trace_id = trace_id;
  record.signature = signature;
  record.e2e_us = e2e_us;
  record.sim_time_us = sim_time_us;
  record.ledger = ledger;
  record.signature_mean_us = mean;
  record.signature_stddev_us = stddev;
  record.signature_count = w.count;  // samples behind the decision
  record.annotations = std::move(annotations);
  RetainLocked(std::move(record));
  return true;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightRecord>(ring_.begin(), ring_.end());
}

FlightRecorder::Stats FlightRecorder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.signatures = static_cast<int64_t>(signatures_.size());
  return stats;
}

void FlightRecorder::SignatureStats(const std::string& signature,
                                    double* mean_us, double* stddev_us,
                                    int64_t* count) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = signatures_.find(signature);
  if (it == signatures_.end()) {
    if (mean_us != nullptr) *mean_us = 0.0;
    if (stddev_us != nullptr) *stddev_us = 0.0;
    if (count != nullptr) *count = 0;
    return;
  }
  const Welford& w = it->second;
  if (mean_us != nullptr) *mean_us = w.mean;
  if (stddev_us != nullptr) {
    *stddev_us =
        w.count > 0 ? std::sqrt(w.m2 / static_cast<double>(w.count)) : 0.0;
  }
  if (count != nullptr) *count = w.count;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  signatures_.clear();
  stats_ = Stats();
}

std::string FlightRecorder::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string s = StrFormat(
      "flight recorder: observed=%lld retained=%lld dropped=%lld "
      "signatures=%lld\n",
      static_cast<long long>(stats_.observed),
      static_cast<long long>(stats_.retained),
      static_cast<long long>(stats_.dropped),
      static_cast<long long>(signatures_.size()));
  for (const FlightRecord& record : ring_) {
    s += "  " + record.ToString() + "\n";
  }
  return s;
}

}  // namespace disc
