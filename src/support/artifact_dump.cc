#include "support/artifact_dump.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/logging.h"

namespace disc {

namespace fs = std::filesystem;

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + dir + ": " +
                            ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  fs::path p(path);
  if (p.has_parent_path()) {
    DISC_RETURN_IF_ERROR(EnsureDirectory(p.parent_path().string()));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << content;
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

bool ArtifactDumper::Matches(const std::string& name) const {
  if (!enabled()) return false;
  if (options_.filter.empty()) return true;
  return name.find(options_.filter) != std::string::npos;
}

Status ArtifactDumper::Write(const std::string& name,
                             const std::string& content) const {
  if (!Matches(name)) return Status::OK();
  std::string path = options_.dir + "/" + name;
  Status status = WriteStringToFile(path, content);
  if (!status.ok()) {
    DISC_LOG(Warning) << "artifact dump failed: " << status.ToString();
  }
  return status;
}

}  // namespace disc
