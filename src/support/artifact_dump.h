// Compilation-artifact dumping — the `--xla_dump_to` /
// `--mlir-print-ir-after-all` pattern for this compiler.
//
// A DumpOptions{dir, filter} threaded through CompileOptions/PassContext
// turns one compile into a directory of introspection artifacts:
//
//   <dir>/
//     module_input.ir           the graph as handed to the compiler
//     module_optimized.ir       after the pass pipeline
//     passes/0000.<pass>.before.ir   numbered IR snapshot pairs, one pair
//     passes/0000.<pass>.after.ir    per pass application that changed IR
//     pipeline_summary.json     per-pass runs/changes/time, joined with
//                               the tracer's opt.pass spans when enabled
//     shape_constraints.json    which IR op introduced each symbolic-dim
//                               constraint (ShapeAnalysis provenance)
//     fusion_decisions.json     verdict + reason + proving/blocking
//                               constraint for every considered pair
//     fusion_plan.txt           the final groups
//     memory_plan.json          symbolic arena layout: per-slot offset
//                               and size formulas, peak-bytes formula,
//                               fresh-slot fallbacks with reasons
//
// Everything except pipeline_summary.json (which contains wall-clock
// times) is deterministic: compiling the same graph twice produces
// byte-identical artifacts (tests/artifact_dump_test.cpp).
#ifndef DISC_SUPPORT_ARTIFACT_DUMP_H_
#define DISC_SUPPORT_ARTIFACT_DUMP_H_

#include <string>

#include "support/status.h"

namespace disc {

/// \brief Where (and what) to dump. Default-constructed = disabled.
struct DumpOptions {
  /// Target directory (created on demand, missing parents included).
  /// Empty disables all dumping.
  std::string dir;
  /// Substring filter on artifact names ("" = everything). E.g. "cse"
  /// keeps only the CSE pass snapshots; "fusion" keeps the decision log.
  /// Mirrors --mlir-print-ir-after-all's pass filtering.
  std::string filter;

  bool enabled() const { return !dir.empty(); }
};

/// \brief Writes named artifacts under DumpOptions::dir. Copyable, cheap;
/// a disabled dumper turns every call into a no-op.
class ArtifactDumper {
 public:
  ArtifactDumper() = default;
  explicit ArtifactDumper(DumpOptions options) : options_(std::move(options)) {}

  bool enabled() const { return options_.enabled(); }
  const DumpOptions& options() const { return options_; }

  /// \brief True when `name` passes the filter (substring match; an empty
  /// filter matches everything). Disabled dumpers match nothing.
  bool Matches(const std::string& name) const;

  /// \brief Writes `content` to `<dir>/<name>` if the dumper is enabled
  /// and `name` passes the filter. `name` may contain '/' — intermediate
  /// directories are created. Returns OK (a skip is not an error);
  /// filesystem failures are logged and returned.
  Status Write(const std::string& name, const std::string& content) const;

 private:
  DumpOptions options_;
};

/// \brief Creates `dir` and any missing parents. OK if it already exists.
Status EnsureDirectory(const std::string& dir);

/// \brief Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes `content` to `path` (truncating), creating parent
/// directories as needed.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace disc

#endif  // DISC_SUPPORT_ARTIFACT_DUMP_H_
