// Small string helpers used across the compiler (printing, parsing).
#ifndef DISC_SUPPORT_STRING_UTIL_H_
#define DISC_SUPPORT_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace disc {

/// \brief Joins the elements of `items` with `sep`, using operator<<.
template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    out << item;
    first = false;
  }
  return out.str();
}

/// \brief Joins after applying `fn` to each element.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    out << fn(item);
    first = false;
  }
  return out.str();
}

/// \brief Splits `text` on `sep`, keeping empty tokens.
std::vector<std::string> Split(std::string_view text, char sep);

/// \brief Removes leading/trailing whitespace.
std::string Strip(std::string_view text);

/// \brief True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace disc

#endif  // DISC_SUPPORT_STRING_UTIL_H_
