#include "support/blame.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>

#include "support/artifact_dump.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace disc {

double PhaseLedger::TotalUs() const {
  return batch_form_us + queue_us + backoff_us + decode_wait_us +
         compile_stall_us + host_plan_us + alloc_us + device_us;
}

void PhaseLedger::Add(const PhaseLedger& other) {
  batch_form_us += other.batch_form_us;
  queue_us += other.queue_us;
  backoff_us += other.backoff_us;
  decode_wait_us += other.decode_wait_us;
  compile_stall_us += other.compile_stall_us;
  host_plan_us += other.host_plan_us;
  alloc_us += other.alloc_us;
  device_us += other.device_us;
}

const std::vector<std::string>& PhaseLedger::PhaseNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "batch_form", "queue",     "backoff", "decode_wait",
      "compile_stall", "host_plan", "alloc", "device"};
  return *names;
}

std::vector<double> PhaseLedger::PhaseValues() const {
  return {batch_form_us,    queue_us,     backoff_us, decode_wait_us,
          compile_stall_us, host_plan_us, alloc_us,   device_us};
}

const char* PhaseLedger::DominantPhase() const {
  const std::vector<double> values = PhaseValues();
  size_t best = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) best = i;
  }
  return PhaseNames()[best].c_str();
}

std::string PhaseLedger::ToString() const {
  const std::vector<std::string>& names = PhaseNames();
  const std::vector<double> values = PhaseValues();
  std::string s;
  for (size_t i = 0; i < names.size(); ++i) {
    if (values[i] == 0.0) continue;
    if (!s.empty()) s += " ";
    s += StrFormat("%s=%.1fus", names[i].c_str(), values[i]);
  }
  return s.empty() ? "empty" : s;
}

namespace {
thread_local RequestContext* g_current_context = nullptr;
}  // namespace

uint64_t RequestContext::MintTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

RequestContext* RequestContext::Current() { return g_current_context; }

uint64_t RequestContext::CurrentTraceId() {
  return g_current_context != nullptr ? g_current_context->trace_id : 0;
}

RequestContextScope::RequestContextScope(RequestContext* context)
    : previous_(g_current_context) {
  g_current_context = context;
}

RequestContextScope::~RequestContextScope() { g_current_context = previous_; }

void TailBlameAggregator::AddAll(
    const std::vector<CompletedRequest>& requests) {
  requests_.insert(requests_.end(), requests.begin(), requests.end());
}

namespace {

std::vector<std::pair<std::string, double>> Shares(
    const std::vector<const CompletedRequest*>& set) {
  const std::vector<std::string>& names = PhaseLedger::PhaseNames();
  std::vector<double> sums(names.size(), 0.0);
  double total = 0.0;
  for (const CompletedRequest* r : set) {
    const std::vector<double> values = r->ledger.PhaseValues();
    for (size_t i = 0; i < values.size(); ++i) sums[i] += values[i];
    total += r->e2e_us;
  }
  std::vector<std::pair<std::string, double>> shares;
  if (total <= 0.0) return shares;
  shares.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    shares.emplace_back(names[i], sums[i] / total);
  }
  return shares;
}

}  // namespace

BlameReport TailBlameAggregator::Compute(double tail_percentile) const {
  BlameReport report;
  report.tail_percentile = tail_percentile;
  report.total_requests = static_cast<int64_t>(requests_.size());
  if (requests_.empty()) return report;

  std::vector<double> latencies;
  latencies.reserve(requests_.size());
  for (const CompletedRequest& r : requests_) latencies.push_back(r.e2e_us);
  std::sort(latencies.begin(), latencies.end());
  const double idx = tail_percentile / 100.0 *
                     static_cast<double>(latencies.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, latencies.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  report.threshold_us = latencies[lo] * (1.0 - frac) + latencies[hi] * frac;

  std::vector<const CompletedRequest*> all;
  std::vector<const CompletedRequest*> tail;
  all.reserve(requests_.size());
  std::map<std::string, int64_t> tail_sigs;
  for (const CompletedRequest& r : requests_) {
    all.push_back(&r);
    if (r.e2e_us >= report.threshold_us) {
      tail.push_back(&r);
      ++tail_sigs[r.signature];
    }
  }
  report.tail_requests = static_cast<int64_t>(tail.size());
  report.overall_shares = Shares(all);
  report.tail_shares = Shares(tail);
  report.tail_signatures.assign(tail_sigs.begin(), tail_sigs.end());
  std::stable_sort(report.tail_signatures.begin(),
                   report.tail_signatures.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  return report;
}

std::string BlameReport::ToString() const {
  std::string s = StrFormat(
      "tail blame @ p%.0f: threshold=%.1fus, %lld/%lld requests in tail\n",
      tail_percentile, threshold_us, static_cast<long long>(tail_requests),
      static_cast<long long>(total_requests));
  s += StrFormat("%-14s %9s %9s\n", "phase", "tail", "overall");
  for (size_t i = 0; i < tail_shares.size(); ++i) {
    const double overall =
        i < overall_shares.size() ? overall_shares[i].second : 0.0;
    s += StrFormat("%-14s %8.1f%% %8.1f%%\n", tail_shares[i].first.c_str(),
                   tail_shares[i].second * 100.0, overall * 100.0);
  }
  if (!tail_signatures.empty()) {
    s += "tail signatures:";
    for (const auto& [sig, count] : tail_signatures) {
      s += StrFormat(" %s(x%lld)", sig.c_str(),
                     static_cast<long long>(count));
    }
    s += "\n";
  }
  return s;
}

JsonValue BlameReport::ToJson() const {
  JsonValue::Object doc;
  doc.emplace("tail_percentile", JsonValue(tail_percentile));
  doc.emplace("threshold_us", JsonValue(threshold_us));
  doc.emplace("total_requests", JsonValue(total_requests));
  doc.emplace("tail_requests", JsonValue(tail_requests));
  JsonValue::Object tail;
  for (const auto& [phase, share] : tail_shares) {
    tail.emplace(phase, JsonValue(share));
  }
  doc.emplace("tail_shares", JsonValue(std::move(tail)));
  JsonValue::Object overall;
  for (const auto& [phase, share] : overall_shares) {
    overall.emplace(phase, JsonValue(share));
  }
  doc.emplace("overall_shares", JsonValue(std::move(overall)));
  JsonValue::Object sigs;
  for (const auto& [sig, count] : tail_signatures) {
    sigs.emplace(sig, JsonValue(count));
  }
  doc.emplace("tail_signatures", JsonValue(std::move(sigs)));
  return JsonValue(std::move(doc));
}

Status BlameReport::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(path, ToJson().SerializePretty());
}

Status ValidateBlameReportJson(const std::string& json_text, double tolerance,
                               double* out_sum) {
  DISC_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json_text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("blame report is not a JSON object");
  }
  double tail_sum = 0.0;
  for (const char* key : {"tail_shares", "overall_shares"}) {
    const JsonValue* shares = doc.Find(key);
    if (shares == nullptr || !shares->is_object()) {
      return Status::InvalidArgument(std::string("missing object: ") + key);
    }
    double sum = 0.0;
    for (const auto& [phase, value] : shares->as_object()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("non-numeric share: " + phase);
      }
      sum += value.as_number();
    }
    if (!shares->as_object().empty() && std::abs(sum - 1.0) > tolerance) {
      return Status::InvalidArgument(
          StrFormat("%s sum to %.12f, expected 1.0", key, sum));
    }
    if (std::string(key) == "tail_shares") tail_sum = sum;
  }
  if (out_sum != nullptr) *out_sum = tail_sum;
  return Status::OK();
}

}  // namespace disc
