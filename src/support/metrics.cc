#include "support/metrics.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/string_util.h"

namespace disc {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  exemplar_ids_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  exemplar_values_ =
      std::make_unique<std::atomic<double>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0);
    exemplar_ids_[i].store(0);
    exemplar_values_[i].store(0.0);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose inclusive upper bound admits the value (the first
  // bound >= value); past the last bound it lands in the overflow bucket.
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; keep it.
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::Observe(double value, uint64_t exemplar_id) {
  if (exemplar_id != 0) {
    size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                 bounds_.begin();
    exemplar_values_[idx].store(value, std::memory_order_relaxed);
    exemplar_ids_[idx].store(exemplar_id, std::memory_order_relaxed);
  }
  Observe(value);
}

std::vector<Histogram::Exemplar> Histogram::exemplars() const {
  std::vector<Exemplar> exemplars(bounds_.size() + 1);
  for (size_t i = 0; i < exemplars.size(); ++i) {
    exemplars[i].id = exemplar_ids_[i].load(std::memory_order_relaxed);
    exemplars[i].value = exemplar_values_[i].load(std::memory_order_relaxed);
  }
  return exemplars;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = bucket_counts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  // An empty histogram has no quantiles; 0.0 here used to masquerade as a
  // real (excellent) latency in dashboards. NaN is unambiguous.
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      // Interpolate within [lower, upper) by the fraction of the bucket's
      // mass below the target. The overflow bucket has no upper bound:
      // clamping to the last finite bound used to report "p99 = 4.2s"
      // when the truth was "p99 exceeds every bound" — +inf says that
      // honestly (and, unlike a clamp, trips threshold alerts).
      if (i >= bounds_.size()) {
        return std::numeric_limits<double>::infinity();
      }
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << StrFormat("count=%lld mean=%.2f", static_cast<long long>(count()),
                   mean());
  if (count() > 0) {
    out << StrFormat(" p50=%.6g p90=%.6g p99=%.6g", Quantile(0.50),
                     Quantile(0.90), Quantile(0.99));
  }
  std::vector<int64_t> counts = bucket_counts();
  out << " buckets[";
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out << " ";
    if (i < bounds_.size()) {
      out << StrFormat("<=%g:%lld", bounds_[i],
                       static_cast<long long>(counts[i]));
    } else {
      out << StrFormat(">%g:%lld", bounds_.empty() ? 0.0 : bounds_.back(),
                       static_cast<long long>(counts[i]));
    }
  }
  out << "]";
  std::vector<Exemplar> ex = exemplars();
  bool any_exemplar = false;
  for (const Exemplar& e : ex) any_exemplar |= e.id != 0;
  if (any_exemplar) {
    out << " exemplars[";
    bool first = true;
    for (size_t i = 0; i < ex.size(); ++i) {
      if (ex[i].id == 0) continue;
      if (!first) out << " ";
      first = false;
      const char* bound_fmt = i < bounds_.size() ? "<=%g" : ">%g";
      out << StrFormat(bound_fmt,
                       i < bounds_.size()
                           ? bounds_[i]
                           : (bounds_.empty() ? 0.0 : bounds_.back()));
      out << StrFormat(":trace=%llu@%g",
                       static_cast<unsigned long long>(ex[i].id),
                       ex[i].value);
    }
    out << "]";
  }
  return out.str();
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int count) {
  std::vector<double> bounds;
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) {
      // Microsecond latencies: 1us .. ~4s.
      bounds = Histogram::ExponentialBounds(1.0, 4.0, 12);
    }
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> snapshot;
  snapshot.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.emplace_back(name, counter->value());
  }
  return snapshot;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << " = " << histogram->ToString() << "\n";
  }
  return out.str();
}

void MetricsRegistry::ResetCountersForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
}

void ObserveMetric(const std::string& name, double value) {
  MetricsRegistry::Global().GetHistogram(name)->Observe(value);
}

}  // namespace disc
