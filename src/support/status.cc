#include "support/status.h"

namespace disc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace disc
