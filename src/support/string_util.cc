#include "support/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace disc {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Strip(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace disc
