// Minimal logging + checked assertions.
//
// DISC_CHECK(cond) aborts on violated internal invariants (programming
// errors); recoverable conditions use Status instead (see status.h).
#ifndef DISC_SUPPORT_LOGGING_H_
#define DISC_SUPPORT_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace disc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Global minimum level actually emitted; default kWarning so tests
/// and benchmarks stay quiet. Override with SetLogLevel or env DISC_LOG.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// \brief Parses a DISC_LOG env value ("debug" / "info" / "warning" /
/// "error"); anything else (including nullptr) yields kWarning.
LogLevel ParseLogLevel(const char* value);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace disc

#define DISC_LOG(level)                                                  \
  ::disc::internal::LogMessage(::disc::LogLevel::k##level, __FILE__, __LINE__)

#define DISC_CHECK(cond)                                                   \
  if (!(cond))                                                             \
  ::disc::internal::LogMessage(::disc::LogLevel::kError, __FILE__,         \
                               __LINE__, /*fatal=*/true)                   \
      << "Check failed: " #cond " "

#define DISC_CHECK_OK(expr)                                                \
  do {                                                                     \
    auto _disc_check_status = (expr);                                      \
    DISC_CHECK(_disc_check_status.ok()) << _disc_check_status.ToString();  \
  } while (false)

#define DISC_CHECK_EQ(a, b) DISC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DISC_CHECK_NE(a, b) DISC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DISC_CHECK_LT(a, b) DISC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DISC_CHECK_LE(a, b) DISC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DISC_CHECK_GT(a, b) DISC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DISC_CHECK_GE(a, b) DISC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define DISC_UNREACHABLE(msg)                                       \
  ::disc::internal::LogMessage(::disc::LogLevel::kError, __FILE__,  \
                               __LINE__, /*fatal=*/true)            \
      << "Unreachable: " << msg

#endif  // DISC_SUPPORT_LOGGING_H_
