// Shape-aware outlier flight recorder.
//
// Dynamic shapes make latency a per-signature quantity: 800us is normal
// for a 16x128 batch and a 4-sigma outlier for a 1x32 one, so a global
// threshold either drowns in false positives or misses the real tail.
// The recorder keeps a streaming mean/variance per shape signature
// (Welford) and retains the *full* attribution — trace id, phase ledger,
// batch annotations, the signature statistics at retention time — only
// for requests whose end-to-end latency is anomalous for their own
// signature. Retained records live in a bounded ring (oldest drop first),
// so the recorder is safe to leave always-on in serving: when disabled it
// costs one relaxed atomic load per observation, mirroring trace.h.
//
// Retained trace ids are also planted as histogram exemplars on the
// serving latency histogram (see Histogram::Observe's exemplar overload),
// linking the aggregate metric a dashboard alarms on to the concrete
// requests the recorder kept evidence for.
#ifndef DISC_SUPPORT_FLIGHT_RECORDER_H_
#define DISC_SUPPORT_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/blame.h"

namespace disc {

/// One retained outlier: the request's full attribution plus the signature
/// statistics that made it anomalous.
struct FlightRecord {
  uint64_t trace_id = 0;
  std::string signature;
  double e2e_us = 0.0;
  double sim_time_us = 0.0;  // completion time on the simulated clock
  PhaseLedger ledger;
  /// Signature statistics at the moment of retention (the evidence).
  double signature_mean_us = 0.0;
  double signature_stddev_us = 0.0;
  int64_t signature_count = 0;
  /// Span-style key/value detail captured from the serving layer (padded
  /// shape, policy, retries, degraded route, ...).
  std::vector<std::pair<std::string, std::string>> annotations;

  std::string ToString() const;
};

/// \brief Process-global outlier recorder. Observe() is thread-safe; when
/// disabled it is one relaxed atomic load.
class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity in retained records; oldest drop when full.
    size_t capacity = 64;
    /// Observations of a signature before its statistics are trusted —
    /// until then nothing is retained for it (cold signatures would
    /// otherwise flag their own warmup).
    int64_t min_samples = 8;
    /// Retain when e2e > mean + stddev_threshold * stddev ...
    double stddev_threshold = 3.0;
    /// ... and e2e > min_inflation * mean (guards near-zero-variance
    /// signatures, where any epsilon would be "sigmas" away).
    double min_inflation = 1.25;
  };

  struct Stats {
    int64_t observed = 0;
    int64_t retained = 0;
    int64_t dropped = 0;  // retained records evicted by the ring bound
    int64_t signatures = 0;
  };

  static FlightRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Replaces the retention options (existing records/stats stay).
  void Configure(const Options& options);

  /// \brief Feeds one completed request. Updates the signature's streaming
  /// statistics and retains a FlightRecord when the latency is anomalous
  /// for the signature (decision uses the statistics *before* this
  /// observation, so an outlier cannot mask itself; retained anomalies are
  /// excluded from the baseline so a burst cannot normalize itself).
  /// Returns true when the request was retained. No-op (one relaxed load)
  /// when disabled.
  bool Observe(const std::string& signature, double e2e_us,
               double sim_time_us, uint64_t trace_id,
               const PhaseLedger& ledger,
               std::vector<std::pair<std::string, std::string>> annotations =
                   {});

  /// \brief Feeds one formed batch's completed requests (they share a
  /// padded-shape signature) with one lock acquisition and one signature
  /// lookup — the serving hot path, reading straight from the serving
  /// stats records with no marshalling. The annotation callback
  /// (returning the span-style key/value vector) runs only when at least
  /// one request is retained, keeping string formatting off the common
  /// path entirely. Returns the number of retained records.
  template <typename AnnotationFn>
  int64_t ObserveBatch(const std::string& signature, double sim_time_us,
                       const CompletedRequest* batch, size_t n,
                       AnnotationFn&& annotate) {
    if (!enabled()) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.observed += static_cast<int64_t>(n);
    Welford& w = signatures_[signature];
    int64_t retained = 0;
    std::vector<std::pair<std::string, std::string>> annotations;
    for (size_t i = 0; i < n; ++i) {
      const CompletedRequest& cr = batch[i];
      double mean = 0.0;
      double stddev = 0.0;
      if (!DecideAndUpdate(&w, cr.e2e_us, &mean, &stddev)) continue;
      if (retained == 0) annotations = annotate();
      FlightRecord record;
      record.trace_id = cr.trace_id;
      record.signature = signature;
      record.e2e_us = cr.e2e_us;
      record.sim_time_us = sim_time_us;
      record.ledger = cr.ledger;
      record.signature_mean_us = mean;
      record.signature_stddev_us = stddev;
      record.signature_count = w.count;
      record.annotations = annotations;
      RetainLocked(std::move(record));
      ++retained;
    }
    return retained;
  }

  /// \brief Retained records, oldest first.
  std::vector<FlightRecord> Snapshot() const;
  Stats stats() const;
  /// \brief Streaming (mean, stddev, count) for one signature; count 0
  /// when the signature was never observed.
  void SignatureStats(const std::string& signature, double* mean_us,
                      double* stddev_us, int64_t* count) const;

  /// \brief Drops all records and signature statistics (enabled flag and
  /// options untouched). Test isolation helper.
  void Clear();

  std::string ToString() const;

 private:
  struct Welford {
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  FlightRecorder() = default;

  /// Retention decision on the statistics *before* this observation; folds
  /// non-retained observations into the baseline. Caller holds mu_.
  bool DecideAndUpdate(Welford* w, double e2e_us, double* mean_us,
                       double* stddev_us);
  /// Appends a retained record, enforcing the ring bound. Caller holds mu_.
  void RetainLocked(FlightRecord&& record);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Options options_;
  Stats stats_;
  std::map<std::string, Welford> signatures_;
  std::deque<FlightRecord> ring_;  // oldest at front
};

}  // namespace disc

#endif  // DISC_SUPPORT_FLIGHT_RECORDER_H_
