#include "support/kernel_profile.h"

#include <algorithm>
#include <sstream>

#include "support/artifact_dump.h"
#include "support/string_util.h"

namespace disc {

std::string KernelProfileEntry::ToString() const {
  return StrFormat(
      "%s/%s @%s: %lld launches, %.1fus total (%.1fus avg, %.1fus launch "
      "overhead), %lld mem-bound, util %.2f",
      kernel.c_str(), variant.c_str(), signature.c_str(),
      static_cast<long long>(launches), total_time_us, avg_time_us(),
      launch_overhead_us(), static_cast<long long>(memory_bound_launches),
      mean_utilization());
}

std::string KernelRegret::ToString() const {
  std::ostringstream out;
  out << StrFormat(
      "%s @%s: selected %s (%.2fus) vs best %s (%.2fus, rank %d%s) -> "
      "regret %.2fus/launch, %.1fus total over %lld launches (share %.2f)",
      kernel.c_str(), signature.c_str(), selected_variant.c_str(), selected_us,
      best_variant.c_str(), best_us, best_rank,
      best_compiled ? "" : ", NOT COMPILED", regret_us, total_regret_us,
      static_cast<long long>(launches), regret_share);
  return out.str();
}

std::string KernelProfileLedger::RunRecord::ToString() const {
  std::ostringstream out;
  out << StrFormat("trace=%llu sig=%s device=%.1fus kernels=%lld:",
                   static_cast<unsigned long long>(trace_id),
                   signature.c_str(), device_time_us,
                   static_cast<long long>(kernel_launches));
  for (const RunKernelSlice& s : kernels) {
    out << StrFormat(" %s/%s=%.1fus", s.kernel.c_str(), s.variant.c_str(),
                     s.time_us);
  }
  return out.str();
}

KernelProfileLedger& KernelProfileLedger::Global() {
  static KernelProfileLedger* ledger = new KernelProfileLedger();
  return *ledger;
}

void KernelProfileLedger::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  while (runs_.size() > options_.run_capacity) {
    runs_.pop_front();
    ++stats_.runs_dropped;
  }
}

void KernelProfileLedger::ObserveRun(
    const void* owner, const std::string& signature,
    const SymbolBindings& bindings, uint64_t trace_id,
    double run_device_time_us,
    const std::vector<KernelLaunchObservation>& launches) {
  if (!enabled() || launches.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.runs_observed;
  stats_.launches_observed += static_cast<int64_t>(launches.size());

  for (const KernelLaunchObservation& obs : launches) {
    const KernelVariant& variant = obs.kernel->variants()[obs.variant_index];
    std::string key = obs.kernel->name() + "|" + variant.name + "|" + signature;
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      if (entries_.size() >= options_.max_entries) {
        ++stats_.entries_dropped;
        continue;
      }
      EntryState state;
      state.kernel = obs.kernel;
      state.owner = owner;
      state.bindings = bindings;
      any_entries_.store(true, std::memory_order_relaxed);
      KernelProfileEntry& e = state.entry;
      e.kernel = obs.kernel->name();
      e.group = obs.kernel->group().id;
      e.fusion_kind = FusionKindName(obs.kernel->kind());
      e.variant = variant.name;
      e.variant_index = obs.variant_index;
      e.num_variants = static_cast<int>(obs.kernel->variants().size());
      e.signature = signature;
      e.min_time_us = obs.time_us;
      e.max_time_us = obs.time_us;
      it = entries_.emplace(std::move(key), std::move(state)).first;
    }
    KernelProfileEntry& e = it->second.entry;
    e.launches += 1;
    e.total_time_us += obs.time_us;
    e.total_body_us += obs.body_us;
    e.min_time_us = std::min(e.min_time_us, obs.time_us);
    e.max_time_us = std::max(e.max_time_us, obs.time_us);
    if (obs.memory_bound) e.memory_bound_launches += 1;
    e.utilization_sum += obs.utilization;
    e.total_bytes += obs.bytes;
    e.total_flops += obs.flops;
  }

  if (trace_id == 0) return;
  RunRecord record;
  record.trace_id = trace_id;
  record.signature = signature;
  record.device_time_us = run_device_time_us;
  record.kernel_launches = static_cast<int64_t>(launches.size());
  // Aggregate the batch per (kernel, variant), preserving launch order of
  // first appearance — small vectors, linear scan beats a map here.
  for (const KernelLaunchObservation& obs : launches) {
    const std::string& variant =
        obs.kernel->variants()[obs.variant_index].name;
    RunKernelSlice* slice = nullptr;
    for (RunKernelSlice& s : record.kernels) {
      if (s.kernel == obs.kernel->name() && s.variant == variant) {
        slice = &s;
        break;
      }
    }
    if (slice == nullptr) {
      record.kernels.push_back({obs.kernel->name(), variant, 0, 0.0});
      slice = &record.kernels.back();
    }
    slice->launches += 1;
    slice->time_us += obs.time_us;
  }
  runs_.push_back(std::move(record));
  ++stats_.runs_retained;
  while (runs_.size() > options_.run_capacity) {
    runs_.pop_front();
    ++stats_.runs_dropped;
    --stats_.runs_retained;
  }
}

std::vector<KernelProfileEntry> KernelProfileLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<KernelProfileEntry> entries;
  entries.reserve(entries_.size());
  for (const auto& [key, state] : entries_) entries.push_back(state.entry);
  return entries;
}

std::vector<KernelProfileLedger::RunRecord> KernelProfileLedger::RunsForTrace(
    uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RunRecord> records;
  for (const RunRecord& r : runs_) {
    if (r.trace_id == trace_id) records.push_back(r);
  }
  return records;
}

std::vector<KernelRegret> KernelProfileLedger::AuditRegret(
    const DeviceSpec& device, const SpecializeOptions& reference) const {
  std::vector<EntryState> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    states.reserve(entries_.size());
    for (const auto& [key, state] : entries_) states.push_back(state);
  }

  DeviceModel model(device);
  std::vector<KernelRegret> regrets;
  for (const EntryState& state : states) {
    const FusedKernel& kernel = *state.kernel;
    KernelRegret r;
    r.kernel = state.entry.kernel;
    r.group = state.entry.group;
    r.fusion_kind = state.entry.fusion_kind;
    r.signature = state.entry.signature;
    r.launches = state.entry.launches;
    r.selected_variant = state.entry.variant;

    // Modeled cost of the actually-selected variant at the observed
    // bindings (modeled, not averaged-measured, so the audit is a pure
    // function of (bindings, device) and byte-stable).
    const KernelVariant& selected =
        kernel.variants()[state.entry.variant_index];
    auto selected_stats = kernel.ComputeStats(state.bindings, selected);
    if (!selected_stats.ok()) continue;  // bindings went stale; skip
    r.selected_us = model.EstimateGenerated(*selected_stats, selected).time_us;

    // The counterfactual variant set: what this kernel WOULD have under
    // the reference options (full specialization by default).
    std::vector<KernelVariant> candidates = kernel.VariantsUnder(reference);
    bool have_best = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const KernelVariant& candidate = candidates[i];
      VariantAssessment a;
      a.variant = candidate.name;
      a.rank = static_cast<int>(i);
      a.selected = candidate.name == r.selected_variant;
      for (const KernelVariant& compiled : kernel.variants()) {
        if (compiled.name == candidate.name) a.compiled = true;
      }
      auto admitted = candidate.guard.Evaluate(state.bindings);
      a.admissible = admitted.ok() && *admitted;
      if (a.admissible) {
        auto stats = kernel.ComputeStats(state.bindings, candidate);
        if (stats.ok()) {
          a.modeled_us = model.EstimateGenerated(*stats, candidate).time_us;
          if (!have_best || a.modeled_us < r.best_us) {
            have_best = true;
            r.best_us = a.modeled_us;
            r.best_variant = a.variant;
            r.best_rank = a.rank;
            r.best_compiled = a.compiled;
          }
        }
      }
      r.candidates.push_back(std::move(a));
    }
    if (!have_best) continue;  // no admissible candidate: nothing to judge

    r.regret_us = r.selected_us - r.best_us;
    r.total_regret_us = r.regret_us * static_cast<double>(r.launches);
    const double selected_total =
        r.selected_us * static_cast<double>(r.launches);
    r.regret_share = selected_total > 0.0 ? r.total_regret_us / selected_total
                                          : 0.0;
    regrets.push_back(std::move(r));
  }

  std::sort(regrets.begin(), regrets.end(),
            [](const KernelRegret& a, const KernelRegret& b) {
              if (a.total_regret_us != b.total_regret_us) {
                return a.total_regret_us > b.total_regret_us;
              }
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              if (a.signature != b.signature) return a.signature < b.signature;
              return a.selected_variant < b.selected_variant;
            });
  return regrets;
}

KernelProfileLedger::Stats KernelProfileLedger::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.entries = static_cast<int64_t>(entries_.size());
  return stats;
}

void KernelProfileLedger::Forget(const void* owner) {
  // Every Executable destructor comes through here; programs that never
  // fed the ledger must not pay the lock.
  if (!any_entries_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (entries_.empty()) {
    any_entries_.store(false, std::memory_order_relaxed);
  }
}

void KernelProfileLedger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  runs_.clear();
  stats_ = Stats();
  any_entries_.store(false, std::memory_order_relaxed);
}

std::string KernelProfileLedger::ToString() const {
  Stats s = stats();
  std::vector<KernelProfileEntry> entries = Snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const KernelProfileEntry& a, const KernelProfileEntry& b) {
              if (a.total_time_us != b.total_time_us) {
                return a.total_time_us > b.total_time_us;
              }
              return a.kernel < b.kernel;
            });
  std::ostringstream out;
  out << StrFormat(
      "launches=%lld runs=%lld entries=%lld dropped=%lld "
      "run_records=%lld\n",
      static_cast<long long>(s.launches_observed),
      static_cast<long long>(s.runs_observed),
      static_cast<long long>(s.entries),
      static_cast<long long>(s.entries_dropped),
      static_cast<long long>(s.runs_retained));
  const size_t top = std::min<size_t>(entries.size(), 8);
  for (size_t i = 0; i < top; ++i) {
    out << "  " << entries[i].ToString() << "\n";
  }
  return out.str();
}

JsonValue KernelProfileJson(const std::vector<KernelProfileEntry>& entries,
                            const std::vector<KernelRegret>& regrets,
                            const KernelProfileLedger::Stats& stats) {
  JsonValue::Object doc;
  doc.emplace("schema_version", JsonValue(static_cast<int64_t>(1)));

  JsonValue::Object stats_obj;
  stats_obj.emplace("launches_observed",
                    JsonValue(stats.launches_observed));
  stats_obj.emplace("runs_observed", JsonValue(stats.runs_observed));
  stats_obj.emplace("entries", JsonValue(stats.entries));
  stats_obj.emplace("entries_dropped", JsonValue(stats.entries_dropped));
  stats_obj.emplace("runs_retained", JsonValue(stats.runs_retained));
  stats_obj.emplace("runs_dropped", JsonValue(stats.runs_dropped));
  doc.emplace("stats", JsonValue(std::move(stats_obj)));

  JsonValue::Array entry_array;
  for (const KernelProfileEntry& e : entries) {
    JsonValue::Object o;
    o.emplace("kernel", JsonValue(e.kernel));
    o.emplace("group", JsonValue(static_cast<int64_t>(e.group)));
    o.emplace("fusion_kind", JsonValue(e.fusion_kind));
    o.emplace("variant", JsonValue(e.variant));
    o.emplace("variant_index", JsonValue(static_cast<int64_t>(e.variant_index)));
    o.emplace("num_variants", JsonValue(static_cast<int64_t>(e.num_variants)));
    o.emplace("signature", JsonValue(e.signature));
    o.emplace("launches", JsonValue(e.launches));
    o.emplace("total_time_us", JsonValue(e.total_time_us));
    o.emplace("total_body_us", JsonValue(e.total_body_us));
    o.emplace("avg_time_us", JsonValue(e.avg_time_us()));
    o.emplace("min_time_us", JsonValue(e.min_time_us));
    o.emplace("max_time_us", JsonValue(e.max_time_us));
    o.emplace("launch_overhead_us", JsonValue(e.launch_overhead_us()));
    o.emplace("memory_bound_launches", JsonValue(e.memory_bound_launches));
    o.emplace("mean_utilization", JsonValue(e.mean_utilization()));
    o.emplace("total_bytes", JsonValue(e.total_bytes));
    o.emplace("total_flops", JsonValue(e.total_flops));
    entry_array.push_back(JsonValue(std::move(o)));
  }
  doc.emplace("entries", JsonValue(std::move(entry_array)));

  JsonValue::Array regret_array;
  for (const KernelRegret& r : regrets) {
    JsonValue::Object o;
    o.emplace("kernel", JsonValue(r.kernel));
    o.emplace("group", JsonValue(static_cast<int64_t>(r.group)));
    o.emplace("fusion_kind", JsonValue(r.fusion_kind));
    o.emplace("signature", JsonValue(r.signature));
    o.emplace("launches", JsonValue(r.launches));
    o.emplace("selected_variant", JsonValue(r.selected_variant));
    o.emplace("selected_us", JsonValue(r.selected_us));
    o.emplace("best_variant", JsonValue(r.best_variant));
    o.emplace("best_us", JsonValue(r.best_us));
    o.emplace("best_rank", JsonValue(static_cast<int64_t>(r.best_rank)));
    o.emplace("best_compiled", JsonValue(r.best_compiled));
    o.emplace("regret_us", JsonValue(r.regret_us));
    o.emplace("total_regret_us", JsonValue(r.total_regret_us));
    o.emplace("regret_share", JsonValue(r.regret_share));
    JsonValue::Array candidates;
    for (const VariantAssessment& a : r.candidates) {
      JsonValue::Object c;
      c.emplace("variant", JsonValue(a.variant));
      c.emplace("rank", JsonValue(static_cast<int64_t>(a.rank)));
      c.emplace("admissible", JsonValue(a.admissible));
      c.emplace("compiled", JsonValue(a.compiled));
      c.emplace("selected", JsonValue(a.selected));
      c.emplace("modeled_us", JsonValue(a.modeled_us));
      candidates.push_back(JsonValue(std::move(c)));
    }
    o.emplace("candidates", JsonValue(std::move(candidates)));
    regret_array.push_back(JsonValue(std::move(o)));
  }
  doc.emplace("regret", JsonValue(std::move(regret_array)));
  return JsonValue(std::move(doc));
}

Status WriteKernelProfileJson(const std::string& path,
                              const std::vector<KernelProfileEntry>& entries,
                              const std::vector<KernelRegret>& regrets,
                              const KernelProfileLedger::Stats& stats) {
  return WriteStringToFile(
      path, KernelProfileJson(entries, regrets, stats).SerializePretty());
}

}  // namespace disc
