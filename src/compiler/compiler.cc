#include "compiler/compiler.h"

#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "support/artifact_dump.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/string_util.h"
#include "support/trace.h"

namespace disc {

namespace {

// Times one pipeline phase into CompileReport::phase_ms and emits a
// compile-category trace span with the same name.
class PhaseScope {
 public:
  PhaseScope(CompileReport* report, const char* name)
      : report_(report),
        name_(name),
        trace_(name, "compile"),
        start_(std::chrono::steady_clock::now()) {}
  ~PhaseScope() {
    report_->phase_ms.emplace_back(
        name_, std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
                   .count());
  }

 private:
  CompileReport* report_;
  const char* name_;
  TraceScope trace_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

CompileOptions CompileOptions::NoFusion() {
  CompileOptions options;
  options.fusion.enable_fusion = false;
  options.specialize.enable_specialization = false;
  return options;
}

CompileOptions CompileOptions::NoSpecialization() {
  CompileOptions options;
  options.specialize.enable_specialization = false;
  return options;
}

CompileOptions CompileOptions::NoSymbolicShapes() {
  CompileOptions options;
  options.fusion.use_symbolic_shapes = false;
  return options;
}

Result<std::unique_ptr<Executable>> DiscCompiler::Compile(
    const Graph& graph, std::vector<std::vector<std::string>> input_dim_labels,
    const CompileOptions& options) {
  auto start = std::chrono::steady_clock::now();
  TraceScope compile_scope("compile", "compile");
  compile_scope.AddArg("graph", graph.name());
  CountMetric("compile.count");
  // Fault seam: compilation happens on the serving path under dynamic
  // shapes (a shape-cache miss triggers it), so a chaos schedule can fail
  // it here and the fallback chain above must degrade, not die.
  DISC_INJECT_FAILPOINT("compiler.compile");

  auto exe = std::unique_ptr<Executable>(new Executable());
  exe->report_.num_nodes_before = graph.num_nodes();

  ArtifactDumper dumper(options.dump);

  // 1. Clone and optimize.
  {
    PhaseScope phase(&exe->report_, "graph-passes");
    exe->graph_ = graph.Clone();
    (void)dumper.Write("module_input.ir", exe->graph_->ToString());
    if (options.run_graph_passes) {
      PassManager pm;
      AddStandardPasses(&pm);
      PassContext ctx;
      ctx.input_dim_labels = input_dim_labels;
      ctx.dump = options.dump;
      DISC_RETURN_IF_ERROR(pm.RunToFixpoint(exe->graph_.get(), ctx));
      (void)dumper.Write("pipeline_summary.json", pm.PipelineSummaryJson());
    }
    DISC_RETURN_IF_ERROR(exe->graph_->Verify());
    exe->report_.num_nodes_after = exe->graph_->num_nodes();
    (void)dumper.Write("module_optimized.ir", exe->graph_->ToString());
  }

  // 2. Symbolic shape analysis over the optimized graph.
  {
    PhaseScope phase(&exe->report_, "shape-analysis");
    exe->analysis_ = std::make_unique<ShapeAnalysis>(
        exe->graph_.get(), std::move(input_dim_labels));
    DISC_RETURN_IF_ERROR(exe->analysis_->Run());

    // 2b. Seed divisibility facts and shape-speculation hints: map labels
    // to their symbols via the seeded input shapes. Divisors go first so
    // likely-value hints can be validated against them — a hint that
    // contradicts a known divisibility (profile noise, stale feedback)
    // must not reach the specializer, where its equality guard could never
    // fire yet would burn a max_speculative_variants slot.
    if (!options.likely_dim_values.empty() || !options.dim_divisors.empty()) {
      const auto& graph_inputs = exe->graph_->inputs();
      for (size_t i = 0; i < graph_inputs.size(); ++i) {
        const SymShape& shape = exe->analysis_->GetShape(graph_inputs[i]);
        for (size_t d = 0; d < shape.size(); ++d) {
          if (!shape[d].IsSymbol()) continue;
          SymbolId symbol = shape[d].symbol();
          const std::string& name =
              exe->analysis_->manager().Info(symbol).name;
          for (const auto& [label, divisor] : options.dim_divisors) {
            if (label != name || divisor <= 1) continue;
            exe->analysis_->manager().AddDivisibility(symbol, divisor);
            ConstraintRecord record;
            record.kind = "divisibility";
            record.detail = name + " % " + std::to_string(divisor) + " == 0";
            record.source = "user-hint";
            exe->analysis_->RecordConstraint(std::move(record));
          }
          for (const auto& [label, values] : options.likely_dim_values) {
            if (label != name) continue;
            int64_t divisor = exe->analysis_->manager().GetDivisor(symbol);
            std::vector<int64_t> accepted;
            for (int64_t v : values) {
              if (divisor > 1 && v % divisor != 0) {
                ConstraintRecord blocked;
                blocked.kind = "likely-value";
                blocked.detail = "blocked: " + name + "=" +
                                 std::to_string(v) +
                                 " violates divisibility " + name + " % " +
                                 std::to_string(divisor) + " == 0";
                blocked.source = "user-hint";
                exe->analysis_->RecordConstraint(std::move(blocked));
                continue;
              }
              exe->analysis_->manager().AddLikelyValue(symbol, v);
              accepted.push_back(v);
            }
            if (accepted.empty()) continue;
            ConstraintRecord record;
            record.kind = "likely-value";
            record.detail =
                name + " in {" +
                JoinMapped(accepted, ", ",
                           [](int64_t v) { return std::to_string(v); }) +
                "}";
            record.source = "user-hint";
            exe->analysis_->RecordConstraint(std::move(record));
          }
        }
      }
    }
    (void)dumper.Write("shape_constraints.json",
                       exe->analysis_->ConstraintsJson());
  }

  // 3. Fusion planning.
  {
    PhaseScope phase(&exe->report_, "fusion-planning");
    FusionPlanner planner(exe->graph_.get(), exe->analysis_.get(),
                          options.fusion);
    DISC_ASSIGN_OR_RETURN(exe->plan_, planner.Plan());
    exe->report_.fusion = exe->plan_.GetStats();
    (void)dumper.Write("fusion_decisions.json", exe->plan_.DecisionsJson());
    (void)dumper.Write("fusion_plan.txt", exe->plan_.ToString());
  }

  // 4. Kernel compilation + specialization.
  std::unordered_map<int, const FusedKernel*> kernel_of_group;
  {
    PhaseScope phase(&exe->report_, "kernel-compile");
    for (const FusionGroup& group : exe->plan_.groups) {
      exe->kernels_.push_back(std::make_unique<FusedKernel>(
          group, exe->analysis_.get(), options.specialize));
      kernel_of_group[group.id] = exe->kernels_.back().get();
      // Injected miscompiles taint the *artifact* at compile time, so the
      // produced executable is persistently wrong — the case differential
      // admission validation exists to catch. Armed here (not in the
      // FusedKernel ctor) so scratch kernels built for counterfactual
      // audits never consume failpoint hits.
      if (!CheckFailpoint("kernel.miscompile").ok()) {
        exe->kernels_.back()->set_miscompiled(true);
      }
      if (!CheckFailpoint("kernel.guard.mispredict").ok()) {
        exe->kernels_.back()->set_guard_mispredict(true);
      }
      exe->report_.num_variants +=
          static_cast<int64_t>(exe->kernels_.back()->variants().size());
    }
    exe->report_.num_kernels = static_cast<int64_t>(exe->kernels_.size());
  }

  // 5. Step scheduling: a topological order of the group *condensation*
  // (each fused group is one unit; ungrouped nodes are their own unit).
  // Emitting groups merely at their last member's position would be wrong:
  // an external consumer of an early group output can precede the group's
  // last member in node order. The planner's cycle check guarantees the
  // condensation is a DAG, so Kahn's algorithm applies.
  {
    PhaseScope phase(&exe->report_, "step-schedule");
    std::vector<Node*> topo = exe->graph_->TopologicalOrder();
    // Unit id: group ids stay as-is; ungrouped nodes get fresh ids.
    int next_unit = static_cast<int>(exe->plan_.groups.size());
    std::unordered_map<const Node*, int> unit_of;
    std::unordered_map<int, std::vector<Node*>> unit_nodes;
    std::vector<int> unit_order;  // discovery order (stable)
    for (Node* node : topo) {
      auto it = exe->plan_.group_of.find(node);
      int unit = it != exe->plan_.group_of.end() ? it->second : next_unit++;
      unit_of[node] = unit;
      auto [nit, inserted] = unit_nodes.try_emplace(unit);
      if (inserted) unit_order.push_back(unit);
      nit->second.push_back(node);
    }
    // Indegrees over distinct unit edges.
    std::unordered_map<int, std::unordered_set<int>> producers_of;
    for (Node* node : topo) {
      int unit = unit_of.at(node);
      for (Value* operand : node->operands()) {
        Node* producer = operand->producer();
        if (producer == nullptr) continue;
        int producer_unit = unit_of.at(producer);
        if (producer_unit != unit) producers_of[unit].insert(producer_unit);
      }
    }
    std::unordered_map<int, int> pending;
    for (int unit : unit_order) {
      pending[unit] = static_cast<int>(producers_of[unit].size());
    }
    // Kahn, preferring earliest-discovered ready unit for determinism.
    std::vector<int> emitted;
    std::unordered_set<int> done;
    while (emitted.size() < unit_order.size()) {
      bool progressed = false;
      for (int unit : unit_order) {
        if (done.count(unit) || pending.at(unit) != 0) continue;
        emitted.push_back(unit);
        done.insert(unit);
        progressed = true;
        for (int other : unit_order) {
          if (!done.count(other) && producers_of[other].count(unit)) {
            --pending[other];
          }
        }
      }
      if (!progressed) {
        return Status::Internal("fused-group condensation has a cycle");
      }
    }
    for (int unit : emitted) {
      if (unit < static_cast<int>(exe->plan_.groups.size())) {
        Executable::Step step;
        step.kind = Executable::Step::Kind::kKernel;
        step.kernel = kernel_of_group.at(unit);
        exe->steps_.push_back(step);
        continue;
      }
      Node* node = unit_nodes.at(unit).front();
      Executable::Step step;
      step.node = node;
      if (node->kind() == OpKind::kConstant) {
        step.kind = Executable::Step::Kind::kConstant;
      } else if (node->op_class() == OpClass::kShape ||
                 (IsIntegral(node->output(0)->dtype()) &&
                  exe->analysis_->GetContent(node->output(0)) != nullptr)) {
        // Shape computation placed on the host (RAL-style).
        step.kind = Executable::Step::Kind::kHost;
      } else if (node->op_class() == OpClass::kLibrary) {
        step.kind = Executable::Step::Kind::kLibrary;
      } else {
        // A fusable op the planner left out of every group (does not happen
        // with the current planner, but keep the executable total).
        return Status::Internal(std::string("unscheduled node: ") +
                                OpName(node->kind()));
      }
      exe->steps_.push_back(step);
    }

    // 5b. Buffer liveness over the step schedule is shape-independent, so
    // the release points are fixed once here; every Run (cached or not)
    // replays them instead of re-deriving liveness.
    exe->BuildReleaseSchedule();
  }

  // 6. Compile-time buffer assignment over the device steps.
  {
    PhaseScope phase(&exe->report_, "buffer-assignment");
    std::vector<PlanStep> plan_steps;
    for (const Executable::Step& step : exe->steps_) {
      PlanStep ps;
      switch (step.kind) {
        case Executable::Step::Kind::kKernel:
          ps.defines.assign(step.kernel->group().outputs.begin(),
                            step.kernel->group().outputs.end());
          ps.uses.assign(step.kernel->group().inputs.begin(),
                         step.kernel->group().inputs.end());
          break;
        case Executable::Step::Kind::kLibrary:
          ps.defines.assign(step.node->outputs().begin(),
                            step.node->outputs().end());
          ps.uses.assign(step.node->operands().begin(),
                         step.node->operands().end());
          break;
        default:
          continue;  // constants/host values are not device buffers
      }
      plan_steps.push_back(std::move(ps));
    }
    std::vector<const Value*> keep_alive(exe->graph_->outputs().begin(),
                                         exe->graph_->outputs().end());
    exe->buffer_plan_ =
        PlanBuffers(plan_steps, keep_alive, *exe->analysis_);
    exe->report_.buffer_values = exe->buffer_plan_.num_values;
    exe->report_.buffer_slots = exe->buffer_plan_.num_slots();
  }

  // 7. Symbolic arena planning: byte offsets into one arena, valid for
  // every runtime shape (ProvablyLe discharges cross-size reuse). Unlike
  // the per-slot plan this schedule includes constants — they become
  // pinned arena residents — so an arena-mode Run allocates exactly once.
  // Host steps contribute their uses: a device value a host shape-op reads
  // must stay live until that step.
  {
    PhaseScope phase(&exe->report_, "memory-planning");
    std::vector<PlanStep> arena_steps;
    std::vector<const Value*> arena_keep_alive(exe->graph_->outputs().begin(),
                                               exe->graph_->outputs().end());
    for (const Executable::Step& step : exe->steps_) {
      PlanStep ps;
      switch (step.kind) {
        case Executable::Step::Kind::kKernel:
          ps.defines.assign(step.kernel->group().outputs.begin(),
                            step.kernel->group().outputs.end());
          ps.uses.assign(step.kernel->group().inputs.begin(),
                         step.kernel->group().inputs.end());
          break;
        case Executable::Step::Kind::kLibrary:
          ps.defines.assign(step.node->outputs().begin(),
                            step.node->outputs().end());
          ps.uses.assign(step.node->operands().begin(),
                         step.node->operands().end());
          break;
        case Executable::Step::Kind::kConstant:
          ps.defines.push_back(step.node->output(0));
          arena_keep_alive.push_back(step.node->output(0));
          break;
        case Executable::Step::Kind::kHost:
          ps.uses.assign(step.node->operands().begin(),
                         step.node->operands().end());
          break;
      }
      arena_steps.push_back(std::move(ps));
    }
    exe->memory_plan_ =
        PlanArena(arena_steps, arena_keep_alive, *exe->analysis_);
    exe->report_.arena_slots = exe->memory_plan_.num_slots();
    exe->report_.arena_cross_size_reuses =
        exe->memory_plan_.num_cross_size_reuses;
    exe->report_.arena_fallbacks =
        static_cast<int64_t>(exe->memory_plan_.fallbacks.size());
    (void)dumper.Write("memory_plan.json", exe->memory_plan_.ToJson());
  }

  exe->report_.shapes = exe->analysis_->manager().GetStats();
  exe->report_.compile_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return exe;
}

}  // namespace disc
