// DiscCompiler: the end-to-end pipeline.
//
//   input graph
//     -> graph optimizations (canonicalize / fold / CSE / DCE /
//        symbolic shape simplification)
//     -> symbolic shape analysis (global constraint excavation)
//     -> dynamic-shape fusion planning (kLoop / kInput / kStitch)
//     -> kernel compilation + compile-time multi-version specialization
//     -> step scheduling (host shape ops vs. library calls vs. kernels)
//     -> Executable (compile once, run any shape)
#ifndef DISC_COMPILER_COMPILER_H_
#define DISC_COMPILER_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "fusion/fusion.h"
#include "kernel/kernel.h"
#include "opt/pass.h"
#include "runtime/executable.h"
#include "support/artifact_dump.h"

namespace disc {

struct CompileOptions {
  /// Graph-level optimizations before fusion.
  bool run_graph_passes = true;
  FusionOptions fusion;
  SpecializeOptions specialize;
  /// Introspection-artifact dumping (IR snapshots, decision provenance).
  /// Disabled unless `dump.dir` is set. See support/artifact_dump.h for
  /// the directory layout.
  DumpOptions dump;
  /// Likely runtime values per input-dim label ("shape speculation" hints,
  /// from profiling feedback or the user). Seeded into the symbolic
  /// constraint store before kernel specialization; kernels then emit
  /// exact-shape variants for the hot values. Hints that contradict a
  /// divisibility fact (see `dim_divisors`) are rejected with a recorded
  /// `blocked:` constraint instead of poisoning specialization.
  std::vector<std::pair<std::string, std::vector<int64_t>>> likely_dim_values;
  /// Known divisibility per input-dim label ("B is always a multiple of
  /// 8"), e.g. from padded batching. Seeded as symbolic divisibility facts
  /// before hints are validated and kernels specialized.
  std::vector<std::pair<std::string, int64_t>> dim_divisors;

  /// Convenience ablation presets.
  static CompileOptions Default() { return {}; }
  /// No fusion, no specialization — per-op kernels (motivation baseline).
  static CompileOptions NoFusion();
  /// Fusion but a single generic variant per kernel (codegen ablation).
  static CompileOptions NoSpecialization();
  /// Fusion legality restricted to statically-known shapes (shape ablation).
  static CompileOptions NoSymbolicShapes();
};

/// \brief Compiles graphs into shape-polymorphic Executables.
class DiscCompiler {
 public:
  /// \brief Compiles `graph` (copied; the original is untouched).
  /// `input_dim_labels` names dynamic input dims so equal labels share one
  /// symbolic dimension (see ShapeAnalysis).
  static Result<std::unique_ptr<Executable>> Compile(
      const Graph& graph,
      std::vector<std::vector<std::string>> input_dim_labels = {},
      const CompileOptions& options = {});
};

}  // namespace disc

#endif  // DISC_COMPILER_COMPILER_H_
