#include "ir/builder.h"

#include <cmath>

#include "support/logging.h"

namespace disc {

Value* GraphBuilder::Create(OpKind kind, std::vector<Value*> operands,
                            AttrMap attrs) {
  std::vector<TensorType> operand_types;
  std::vector<const Tensor*> operand_constants;
  operand_types.reserve(operands.size());
  operand_constants.reserve(operands.size());
  for (Value* operand : operands) {
    operand_types.push_back(operand->type());
    const Tensor* constant = nullptr;
    if (Node* producer = operand->producer();
        producer != nullptr && producer->kind() == OpKind::kConstant) {
      constant = &producer->GetTensorAttr("value");
    }
    operand_constants.push_back(constant);
  }
  auto inferred = InferOutputTypes(kind, operand_types, attrs,
                                   operand_constants);
  DISC_CHECK(inferred.ok()) << "type inference failed for " << OpName(kind)
                            << ": " << inferred.status().ToString();
  Node* node = graph_->CreateNode(kind, std::move(operands), std::move(attrs),
                                  std::move(inferred).value());
  return node->output(0);
}

Value* GraphBuilder::Constant(Tensor value) {
  return Create(OpKind::kConstant, {}, {{"value", std::move(value)}});
}

Value* GraphBuilder::Softmax(Value* x) {
  int64_t last = x->rank() - 1;
  DISC_CHECK_GE(last, 0);
  Value* max = ReduceMax(x, {last}, /*keep=*/true);
  Value* shifted = Sub(x, max);
  Value* exp = Exp(shifted);
  Value* sum = ReduceSum(exp, {last}, /*keep=*/true);
  return Div(exp, sum);
}

Value* GraphBuilder::LayerNorm(Value* x, Value* scale, Value* bias,
                               float epsilon) {
  int64_t last = x->rank() - 1;
  DISC_CHECK_GE(last, 0);
  Value* mean = ReduceMean(x, {last}, /*keep=*/true);
  Value* centered = Sub(x, mean);
  Value* var = ReduceMean(Mul(centered, centered), {last}, /*keep=*/true);
  Value* inv_std = Rsqrt(Add(var, ScalarF32(epsilon)));
  Value* normalized = Mul(centered, inv_std);
  return Add(Mul(normalized, scale), bias);
}

Value* GraphBuilder::Gelu(Value* x) {
  // 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 x^3)))
  const float kSqrt2OverPi = 0.7978845608028654f;
  Value* x3 = Mul(Mul(x, x), x);
  Value* inner =
      Mul(ScalarF32(kSqrt2OverPi), Add(x, Mul(ScalarF32(0.044715f), x3)));
  Value* t = Tanh(inner);
  return Mul(Mul(ScalarF32(0.5f), x), Add(ScalarF32(1.0f), t));
}

}  // namespace disc
