#include "ir/graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "support/logging.h"
#include "support/string_util.h"

namespace disc {

bool TensorType::IsFullyStatic() const {
  for (int64_t d : dims) {
    if (d == kDynamicDim) return false;
  }
  return true;
}

int64_t TensorType::NumElements() const {
  DISC_CHECK(IsFullyStatic());
  int64_t n = 1;
  for (int64_t d : dims) n *= d;
  return n;
}

std::string TensorType::ToString() const {
  std::ostringstream out;
  out << DTypeName(dtype) << "[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i) out << "x";
    if (dims[i] == kDynamicDim) {
      out << "?";
    } else {
      out << dims[i];
    }
  }
  out << "]";
  return out.str();
}

int64_t Node::GetIntAttr(const std::string& key, int64_t fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  return it->second.AsInt();
}

double Node::GetFloatAttr(const std::string& key, double fallback) const {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return fallback;
  return it->second.AsFloat();
}

const std::vector<int64_t>& Node::GetIntListAttr(const std::string& key) const {
  auto it = attrs_.find(key);
  DISC_CHECK(it != attrs_.end()) << "missing int-list attr '" << key
                                 << "' on op " << OpName(kind_);
  return it->second.AsIntList();
}

DType Node::GetDTypeAttr(const std::string& key) const {
  auto it = attrs_.find(key);
  DISC_CHECK(it != attrs_.end()) << "missing dtype attr '" << key << "'";
  return it->second.AsDType();
}

const Tensor& Node::GetTensorAttr(const std::string& key) const {
  auto it = attrs_.find(key);
  DISC_CHECK(it != attrs_.end()) << "missing tensor attr '" << key << "'";
  return it->second.AsTensor();
}

std::string Node::ToString() const {
  std::ostringstream out;
  out << JoinMapped(outputs_, ", ",
                    [](const Value* v) { return "%" + std::to_string(v->id()); })
      << " = " << OpName(kind_) << "(";
  out << JoinMapped(operands_, ", ", [](const Value* v) {
    return "%" + std::to_string(v->id());
  });
  out << ")";
  if (!attrs_.empty()) {
    out << " {";
    bool first = true;
    for (const auto& [key, value] : attrs_) {
      if (!first) out << ", ";
      out << key << " = " << value.ToString();
      first = false;
    }
    out << "}";
  }
  out << " : "
      << JoinMapped(outputs_, ", ",
                    [](const Value* v) { return v->type().ToString(); });
  return out.str();
}

Value* Graph::NewValue(const std::string& name, TensorType type) {
  auto value = std::make_unique<Value>();
  value->id_ = next_value_id_++;
  value->name_ = name.empty() ? "v" + std::to_string(value->id_) : name;
  value->type_ = std::move(type);
  value->graph_ = this;
  values_.push_back(std::move(value));
  return values_.back().get();
}

Value* Graph::AddInput(const std::string& name, TensorType type) {
  Value* v = NewValue(name, std::move(type));
  inputs_.push_back(v);
  return v;
}

Node* Graph::CreateNode(OpKind kind, std::vector<Value*> operands,
                        AttrMap attrs, std::vector<TensorType> output_types) {
  const OpInfo& info = GetOpInfo(kind);
  DISC_CHECK_GE(static_cast<int>(operands.size()), info.min_operands)
      << "op " << info.name;
  if (info.max_operands >= 0) {
    DISC_CHECK_LE(static_cast<int>(operands.size()), info.max_operands)
        << "op " << info.name;
  }
  auto node = std::make_unique<Node>();
  node->id_ = next_node_id_++;
  node->kind_ = kind;
  node->operands_ = std::move(operands);
  node->attrs_ = std::move(attrs);
  for (Value* operand : node->operands_) {
    DISC_CHECK(operand != nullptr);
    DISC_CHECK(operand->graph_ == this) << "operand from another graph";
    operand->users_.push_back(node.get());
  }
  for (size_t i = 0; i < output_types.size(); ++i) {
    Value* out = NewValue("", std::move(output_types[i]));
    out->producer_ = node.get();
    out->producer_index_ = static_cast<int>(i);
    node->outputs_.push_back(out);
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().get();
}

void Graph::SetOutputs(std::vector<Value*> outputs) {
  for (Value* v : outputs) {
    DISC_CHECK(v != nullptr && v->graph_ == this);
  }
  outputs_ = std::move(outputs);
}

std::vector<Node*> Graph::nodes() const {
  std::vector<Node*> result;
  result.reserve(nodes_.size());
  for (const auto& n : nodes_) result.push_back(n.get());
  return result;
}

void Graph::ReplaceAllUsesWith(Value* from, Value* to) {
  DISC_CHECK(from->graph_ == this && to->graph_ == this);
  if (from == to) return;
  // Move users over.
  for (Node* user : from->users_) {
    for (Value*& operand : user->operands_) {
      if (operand == from) {
        operand = to;
        to->users_.push_back(user);
      }
    }
  }
  from->users_.clear();
  for (Value*& out : outputs_) {
    if (out == from) out = to;
  }
}

void Graph::SetOperand(Node* node, int index, Value* value) {
  DISC_CHECK(value->graph_ == this);
  Value* old = node->operands_.at(index);
  node->operands_[index] = value;
  value->users_.push_back(node);
  // Remove one matching use entry.
  auto it = std::find(old->users_.begin(), old->users_.end(), node);
  DISC_CHECK(it != old->users_.end());
  old->users_.erase(it);
}

Status Graph::EraseNode(Node* node) {
  for (Value* out : node->outputs_) {
    if (!out->users_.empty()) {
      return Status::InvalidArgument("EraseNode: output still has users");
    }
    for (Value* graph_out : outputs_) {
      if (graph_out == out) {
        return Status::InvalidArgument("EraseNode: output is a graph output");
      }
    }
  }
  // Unregister uses of operands.
  for (Value* operand : node->operands_) {
    auto it = std::find(operand->users_.begin(), operand->users_.end(), node);
    DISC_CHECK(it != operand->users_.end());
    operand->users_.erase(it);
  }
  auto it = std::find_if(nodes_.begin(), nodes_.end(),
                         [&](const auto& n) { return n.get() == node; });
  DISC_CHECK(it != nodes_.end());
  nodes_.erase(it);
  return Status::OK();
}

int64_t Graph::RemoveDeadNodes() {
  int64_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Iterate backwards so chains die in one sweep.
    for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
      Node* node = it->get();
      bool dead = true;
      for (Value* out : node->outputs_) {
        if (!out->users_.empty()) dead = false;
        for (Value* graph_out : outputs_) {
          if (graph_out == out) dead = false;
        }
      }
      if (dead) {
        DISC_CHECK_OK(EraseNode(node));
        ++removed;
        changed = true;
        break;  // iterators invalidated
      }
    }
  }
  return removed;
}

std::vector<Node*> Graph::TopologicalOrder() const {
  std::vector<Node*> order;
  order.reserve(nodes_.size());
  std::unordered_map<const Node*, int> pending;
  std::deque<Node*> ready;
  for (const auto& n : nodes_) {
    int count = 0;
    std::unordered_set<const Node*> seen;
    for (Value* operand : n->operands_) {
      Node* producer = operand->producer();
      if (producer != nullptr && seen.insert(producer).second) ++count;
    }
    pending[n.get()] = count;
    if (count == 0) ready.push_back(n.get());
  }
  while (!ready.empty()) {
    Node* node = ready.front();
    ready.pop_front();
    order.push_back(node);
    // Decrement each consumer exactly once per unique producer, matching the
    // unique-producer counting above (a user may consume several outputs or
    // use one output several times). Deduplicate in insertion order so the
    // resulting order — and therefore ToString — is deterministic.
    std::unordered_set<Node*> seen_users;
    std::vector<Node*> unique_users;
    for (Value* out : node->outputs_) {
      for (Node* user : out->users_) {
        if (seen_users.insert(user).second) unique_users.push_back(user);
      }
    }
    for (Node* user : unique_users) {
      if (--pending[user] == 0) ready.push_back(user);
    }
  }
  DISC_CHECK_EQ(order.size(), nodes_.size()) << "graph has a cycle";
  return order;
}

std::unique_ptr<Graph> Graph::Clone(
    std::unordered_map<const Value*, Value*>* value_map) const {
  auto clone = std::make_unique<Graph>(name_);
  std::unordered_map<const Value*, Value*> map;
  for (const Value* input : inputs_) {
    map[input] = clone->AddInput(input->name(), input->type());
  }
  for (Node* node : TopologicalOrder()) {
    std::vector<Value*> operands;
    operands.reserve(node->operands().size());
    for (Value* operand : node->operands()) operands.push_back(map.at(operand));
    std::vector<TensorType> out_types;
    for (Value* out : node->outputs()) out_types.push_back(out->type());
    Node* new_node = clone->CreateNode(node->kind(), std::move(operands),
                                       node->attrs(), std::move(out_types));
    for (size_t i = 0; i < node->outputs().size(); ++i) {
      map[node->output(static_cast<int>(i))] =
          new_node->output(static_cast<int>(i));
    }
  }
  std::vector<Value*> new_outputs;
  for (const Value* out : outputs_) new_outputs.push_back(map.at(out));
  clone->SetOutputs(std::move(new_outputs));
  if (value_map != nullptr) *value_map = std::move(map);
  return clone;
}

std::string Graph::ToString() const {
  std::ostringstream out;
  out << "graph " << (name_.empty() ? "<anon>" : name_) << " (";
  out << JoinMapped(inputs_, ", ", [](const Value* v) {
    return "%" + std::to_string(v->id()) + ": " + v->type().ToString();
  });
  out << ") {\n";
  for (Node* node : TopologicalOrder()) {
    out << "  " << node->ToString() << "\n";
  }
  out << "  return "
      << JoinMapped(outputs_, ", ",
                    [](const Value* v) { return "%" + std::to_string(v->id()); })
      << "\n}";
  return out.str();
}

}  // namespace disc
