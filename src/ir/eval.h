// Reference evaluator: executes single ops / whole graphs on concrete
// tensors, one op at a time.
//
// This is the semantic ground truth of the repo. It is used by
//   * constant folding (disc::opt),
//   * the eager-interpreter baselines (PyTorch-style engines), and
//   * every correctness test that compares compiled kernels against a
//     reference.
// It favours clarity over speed.
#ifndef DISC_IR_EVAL_H_
#define DISC_IR_EVAL_H_

#include <vector>

#include "ir/graph.h"
#include "ir/tensor.h"
#include "support/status.h"

namespace disc {

/// \brief Evaluates one node given concrete operand tensors.
Result<std::vector<Tensor>> EvaluateNode(const Node& node,
                                         const std::vector<Tensor>& inputs);

/// \brief Evaluates the whole graph; `inputs` parallel to graph.inputs().
/// Input dims must be consistent with the declared (possibly dynamic)
/// types. Returns tensors parallel to graph.outputs().
Result<std::vector<Tensor>> EvaluateGraph(const Graph& graph,
                                          const std::vector<Tensor>& inputs);

/// \brief Scalar semantics of a unary elementwise op (dtype-aware via
/// double carrier; exact for the integral range used in shapes).
double ApplyUnaryScalar(OpKind kind, double x);

/// \brief Scalar semantics of a binary elementwise op. Integral ops
/// (div/mod on i64) truncate like C++.
double ApplyBinaryScalar(OpKind kind, double a, double b, DType dtype);

}  // namespace disc

#endif  // DISC_IR_EVAL_H_
