// Operator vocabulary of the graph IR.
//
// The set mirrors the HLO/mhlo-level ops the paper's compiler consumes:
// elementwise compute ops, reductions, library-backed contractions
// (MatMul/Conv2D), data-movement ops, and shape-manipulation ops that feed
// the host-side shape computation.
#ifndef DISC_IR_OP_KIND_H_
#define DISC_IR_OP_KIND_H_

#include <cstdint>
#include <string>

namespace disc {

enum class OpKind : uint16_t {
  // --- creation -------------------------------------------------------
  kConstant = 0,  // attr "value": Tensor
  kIota,          // attr "axis"; output shape from attr "dims" or operand

  // --- elementwise unary ----------------------------------------------
  kAbs,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kRsqrt,
  kTanh,
  kErf,
  kSigmoid,
  kRelu,
  kFloor,
  kCeil,
  kSign,
  kReciprocal,
  kLogicalNot,
  kCast,  // attr "to": DType

  // --- elementwise binary (numpy-style implicit broadcast) -------------
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
  kMaximum,
  kMinimum,
  kMod,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqual,
  kNotEqual,
  kAnd,
  kOr,

  // --- elementwise ternary ---------------------------------------------
  kSelect,  // (pred, on_true, on_false)

  // --- reductions -------------------------------------------------------
  kReduceSum,   // attrs "dims": [i64], "keep_dims": i64
  kReduceMax,
  kReduceMin,
  kReduceMean,

  // --- library-backed contractions --------------------------------------
  kMatMul,  // attrs "transpose_a", "transpose_b"; batched on leading dims
  kConv2D,  // NHWC, attrs "strides": [2], "padding": [2] (symmetric h, w)

  // --- data movement ----------------------------------------------------
  kTranspose,    // attr "perm": [i64]
  kReshape,      // attr "new_shape" ([-1] wildcard allowed) or shape operand
  kBroadcastTo,  // attr "new_shape" or shape operand; numpy broadcast rules
  kConcat,       // attr "axis"; n-ary
  kSlice,        // attrs "starts", "ends" (end==-1 means dim end), "steps"
  kGather,       // attr "axis"; (data, indices)
  kPad,          // attrs "pads_low", "pads_high", "pad_value": f64

  // --- shape computation (host-side) -------------------------------------
  kShapeOf,  // tensor -> 1-D i64 tensor of length rank
  kDim,      // attr "index"; tensor -> i64 scalar

  kNumOps,
};

/// Coarse classification used by fusion planning and the engines.
enum class OpClass : uint8_t {
  kCreation,     // constants, iota
  kElementwise,  // unary/binary/ternary map ops (with implicit broadcast)
  kReduction,    // reduce ops
  kLibrary,      // MatMul / Conv2D — backed by vendor-style library kernels
  kInjective,    // pure data movement: transpose/reshape/broadcast/... —
                 // fusable like elementwise (each output reads <=1 input elem)
  kShape,        // host-side shape computation
};

/// Static metadata for an op kind.
struct OpInfo {
  const char* name;       // e.g. "add"
  int min_operands;       // -1: variadic (kConcat)
  int max_operands;       // inclusive; -1: unbounded
  OpClass op_class;
};

/// \brief Metadata lookup; aborts on invalid kind.
const OpInfo& GetOpInfo(OpKind kind);

/// \brief Lower-case op name (e.g. "reduce_sum").
inline const char* OpName(OpKind kind) { return GetOpInfo(kind).name; }

/// \brief Reverse lookup by name; returns kNumOps when unknown.
OpKind OpKindFromName(const std::string& name);

/// \brief True for elementwise/injective/creation ops (fusable into loops).
bool IsFusableElementwise(OpKind kind);

/// \brief True for kReduce* ops.
inline bool IsReduction(OpKind kind) {
  return GetOpInfo(kind).op_class == OpClass::kReduction;
}

/// \brief True for elementwise binary ops with implicit broadcast.
bool IsBinaryElementwise(OpKind kind);

/// \brief True for elementwise unary ops.
bool IsUnaryElementwise(OpKind kind);

/// \brief True when the op's output dtype is i1 (comparisons, logic).
bool IsPredicateOp(OpKind kind);

}  // namespace disc

#endif  // DISC_IR_OP_KIND_H_
