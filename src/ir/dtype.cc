#include "ir/dtype.h"

namespace disc {

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kI64:
      return "i64";
    case DType::kI1:
      return "i1";
  }
  return "invalid";
}

}  // namespace disc
