#include "ir/eval.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ir/type_inference.h"
#include "support/logging.h"
#include "support/string_util.h"

namespace disc {

namespace {

// Multi-dimensional index iteration over `dims`; returns false when done.
bool NextIndex(const std::vector<int64_t>& dims, std::vector<int64_t>* idx) {
  for (int64_t i = static_cast<int64_t>(dims.size()) - 1; i >= 0; --i) {
    if (++(*idx)[i] < dims[i]) return true;
    (*idx)[i] = 0;
  }
  return false;
}

int64_t LinearIndex(const std::vector<int64_t>& idx,
                    const std::vector<int64_t>& strides) {
  int64_t linear = 0;
  for (size_t i = 0; i < idx.size(); ++i) linear += idx[i] * strides[i];
  return linear;
}

// Maps an output index to an operand's linear index under numpy broadcast
// (right-aligned; operand dims of size 1 have stride 0).
int64_t BroadcastOperandIndex(const std::vector<int64_t>& out_idx,
                              const Tensor& operand) {
  const auto& dims = operand.dims();
  auto strides = operand.Strides();
  int64_t offset = static_cast<int64_t>(out_idx.size()) - operand.rank();
  int64_t linear = 0;
  for (int64_t i = 0; i < operand.rank(); ++i) {
    int64_t id = dims[i] == 1 ? 0 : out_idx[offset + i];
    linear += id * strides[i];
  }
  return linear;
}

Status InvalidOp(const Node& node, const std::string& msg) {
  return Status::InvalidArgument(std::string(OpName(node.kind())) + ": " +
                                 msg);
}

Result<Tensor> EvalElementwise(const Node& node,
                               const std::vector<Tensor>& inputs) {
  // Output dims from concrete broadcast.
  std::vector<int64_t> out_dims =
      inputs.empty() ? std::vector<int64_t>{} : inputs[0].dims();
  for (size_t i = 1; i < inputs.size(); ++i) {
    DISC_ASSIGN_OR_RETURN(out_dims, BroadcastDims(out_dims, inputs[i].dims()));
  }
  DType out_dtype;
  if (node.kind() == OpKind::kCast) {
    out_dtype = node.GetDTypeAttr("to");
  } else if (IsPredicateOp(node.kind())) {
    out_dtype = DType::kI1;
  } else if (node.kind() == OpKind::kSelect) {
    out_dtype = inputs[1].dtype();
  } else {
    out_dtype = inputs[0].dtype();
  }
  Tensor out(out_dtype, out_dims);
  if (out.num_elements() == 0) return out;

  std::vector<int64_t> idx(out_dims.size(), 0);
  auto out_strides = out.Strides();
  do {
    int64_t out_linear = LinearIndex(idx, out_strides);
    if (node.kind() == OpKind::kSelect) {
      double pred = inputs[0].ElementAsDouble(
          BroadcastOperandIndex(idx, inputs[0]));
      const Tensor& chosen = pred != 0.0 ? inputs[1] : inputs[2];
      out.SetElementFromDouble(out_linear, chosen.ElementAsDouble(
                                               BroadcastOperandIndex(idx, chosen)));
    } else if (inputs.size() == 1) {
      double x =
          inputs[0].ElementAsDouble(BroadcastOperandIndex(idx, inputs[0]));
      out.SetElementFromDouble(out_linear, ApplyUnaryScalar(node.kind(), x));
    } else {
      double a =
          inputs[0].ElementAsDouble(BroadcastOperandIndex(idx, inputs[0]));
      double b =
          inputs[1].ElementAsDouble(BroadcastOperandIndex(idx, inputs[1]));
      out.SetElementFromDouble(
          out_linear, ApplyBinaryScalar(node.kind(), a, b, inputs[0].dtype()));
    }
  } while (NextIndex(out_dims, &idx));
  return out;
}

Result<Tensor> EvalReduce(const Node& node, const Tensor& in) {
  const auto& reduce_dims = node.GetIntListAttr("dims");
  bool keep = node.GetIntAttr("keep_dims", 0) != 0;
  std::vector<bool> reduced(in.rank(), false);
  for (int64_t d : reduce_dims) reduced[d] = true;

  std::vector<int64_t> out_dims;
  for (int64_t i = 0; i < in.rank(); ++i) {
    if (reduced[i]) {
      if (keep) out_dims.push_back(1);
    } else {
      out_dims.push_back(in.dims()[i]);
    }
  }
  Tensor out(in.dtype(), out_dims);
  auto out_strides = out.Strides();

  double init;
  switch (node.kind()) {
    case OpKind::kReduceSum:
    case OpKind::kReduceMean:
      init = 0.0;
      break;
    case OpKind::kReduceMax:
      init = -std::numeric_limits<double>::infinity();
      break;
    case OpKind::kReduceMin:
      init = std::numeric_limits<double>::infinity();
      break;
    default:
      return Status::Internal("not a reduction");
  }
  std::vector<double> acc(std::max<int64_t>(out.num_elements(), 1), init);

  int64_t reduce_count = 1;
  for (int64_t i = 0; i < in.rank(); ++i) {
    if (reduced[i]) reduce_count *= in.dims()[i];
  }

  if (in.num_elements() > 0) {
    std::vector<int64_t> idx(in.rank(), 0);
    do {
      // Output index: drop (or zero) reduced dims.
      std::vector<int64_t> out_idx;
      for (int64_t i = 0; i < in.rank(); ++i) {
        if (reduced[i]) {
          if (keep) out_idx.push_back(0);
        } else {
          out_idx.push_back(idx[i]);
        }
      }
      int64_t out_linear = LinearIndex(out_idx, out_strides);
      double v = in.ElementAsDouble(LinearIndex(idx, in.Strides()));
      switch (node.kind()) {
        case OpKind::kReduceSum:
        case OpKind::kReduceMean:
          acc[out_linear] += v;
          break;
        case OpKind::kReduceMax:
          acc[out_linear] = std::max(acc[out_linear], v);
          break;
        case OpKind::kReduceMin:
          acc[out_linear] = std::min(acc[out_linear], v);
          break;
        default:
          break;
      }
    } while (NextIndex(in.dims(), &idx));
  }
  for (int64_t i = 0; i < out.num_elements(); ++i) {
    double v = acc[i];
    if (node.kind() == OpKind::kReduceMean && reduce_count > 0) {
      v /= static_cast<double>(reduce_count);
    }
    out.SetElementFromDouble(i, v);
  }
  return out;
}

Result<Tensor> EvalMatMul(const Node& node, const Tensor& a, const Tensor& b) {
  bool ta = node.GetIntAttr("transpose_a", 0) != 0;
  bool tb = node.GetIntAttr("transpose_b", 0) != 0;
  int64_t ra = a.rank();
  int64_t rb = b.rank();
  if (ra < 2 || rb < 2) return InvalidOp(node, "rank < 2");
  int64_t m = a.dims()[ra - (ta ? 1 : 2)];
  int64_t k = a.dims()[ra - (ta ? 2 : 1)];
  int64_t kb = b.dims()[rb - (tb ? 1 : 2)];
  int64_t n = b.dims()[rb - (tb ? 2 : 1)];
  if (k != kb) return InvalidOp(node, "contraction mismatch");

  std::vector<int64_t> batch_a(a.dims().begin(), a.dims().end() - 2);
  std::vector<int64_t> batch_b(b.dims().begin(), b.dims().end() - 2);
  DISC_ASSIGN_OR_RETURN(std::vector<int64_t> batch,
                        BroadcastDims(batch_a, batch_b));
  std::vector<int64_t> out_dims = batch;
  out_dims.push_back(m);
  out_dims.push_back(n);
  Tensor out(a.dtype(), out_dims);

  int64_t batch_count = Product(batch);
  // Per-batch base offsets with broadcast over batch dims.
  auto batch_offset = [&](const Tensor& t,
                          const std::vector<int64_t>& batch_idx) {
    int64_t batch_rank = t.rank() - 2;
    int64_t align = static_cast<int64_t>(batch_idx.size()) - batch_rank;
    auto full_strides = t.Strides();
    int64_t offset = 0;
    for (int64_t i = 0; i < batch_rank; ++i) {
      int64_t id = t.dims()[i] == 1 ? 0 : batch_idx[align + i];
      offset += id * full_strides[i];
    }
    return offset;
  };

  const float* fa = a.dtype() == DType::kF32 ? a.f32_data() : nullptr;
  const float* fb = b.dtype() == DType::kF32 ? b.f32_data() : nullptr;
  float* fo = out.dtype() == DType::kF32 ? out.f32_data() : nullptr;

  std::vector<int64_t> batch_idx(batch.size(), 0);
  for (int64_t bi = 0; bi < batch_count; ++bi) {
    int64_t oa = batch_offset(a, batch_idx);
    int64_t ob = batch_offset(b, batch_idx);
    int64_t oo = bi * m * n;
    int64_t lda = a.dims()[ra - 1];
    int64_t ldb = b.dims()[rb - 1];
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          int64_t ia = ta ? (kk * lda + i) : (i * lda + kk);
          int64_t ib = tb ? (j * ldb + kk) : (kk * ldb + j);
          if (fa != nullptr) {
            sum += static_cast<double>(fa[oa + ia]) *
                   static_cast<double>(fb[ob + ib]);
          } else {
            sum += a.ElementAsDouble(oa + ia) * b.ElementAsDouble(ob + ib);
          }
        }
        if (fo != nullptr) {
          fo[oo + i * n + j] = static_cast<float>(sum);
        } else {
          out.SetElementFromDouble(oo + i * n + j, sum);
        }
      }
    }
    NextIndex(batch, &batch_idx);
  }
  return out;
}

Result<Tensor> EvalConv2D(const Node& node, const Tensor& in,
                          const Tensor& filter) {
  const auto& strides = node.GetIntListAttr("strides");
  const auto& padding = node.GetIntListAttr("padding");
  if (in.rank() != 4 || filter.rank() != 4) return InvalidOp(node, "rank");
  int64_t n = in.dims()[0], h = in.dims()[1], w = in.dims()[2],
          c = in.dims()[3];
  int64_t kh = filter.dims()[0], kw = filter.dims()[1],
          fc = filter.dims()[2], oc = filter.dims()[3];
  if (c != fc) return InvalidOp(node, "channel mismatch");
  int64_t sh = strides[0], sw = strides[1], ph = padding[0], pw = padding[1];
  int64_t oh = (h + 2 * ph - kh) / sh + 1;
  int64_t ow = (w + 2 * pw - kw) / sw + 1;
  Tensor out(in.dtype(), {n, oh, ow, oc});
  const float* src = in.f32_data();
  const float* flt = filter.f32_data();
  float* dst = out.f32_data();
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t yo = 0; yo < oh; ++yo) {
      for (int64_t xo = 0; xo < ow; ++xo) {
        for (int64_t co = 0; co < oc; ++co) {
          double sum = 0.0;
          for (int64_t ky = 0; ky < kh; ++ky) {
            int64_t yi = yo * sh - ph + ky;
            if (yi < 0 || yi >= h) continue;
            for (int64_t kx = 0; kx < kw; ++kx) {
              int64_t xi = xo * sw - pw + kx;
              if (xi < 0 || xi >= w) continue;
              for (int64_t ci = 0; ci < c; ++ci) {
                sum += static_cast<double>(
                           src[((ni * h + yi) * w + xi) * c + ci]) *
                       static_cast<double>(
                           flt[((ky * kw + kx) * c + ci) * oc + co]);
              }
            }
          }
          dst[((ni * oh + yo) * ow + xo) * oc + co] = static_cast<float>(sum);
        }
      }
    }
  }
  return out;
}

}  // namespace

double ApplyUnaryScalar(OpKind kind, double x) {
  switch (kind) {
    case OpKind::kAbs:
      return std::abs(x);
    case OpKind::kNeg:
      return -x;
    case OpKind::kExp:
      return std::exp(x);
    case OpKind::kLog:
      return std::log(x);
    case OpKind::kSqrt:
      return std::sqrt(x);
    case OpKind::kRsqrt:
      return 1.0 / std::sqrt(x);
    case OpKind::kTanh:
      return std::tanh(x);
    case OpKind::kErf:
      return std::erf(x);
    case OpKind::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case OpKind::kRelu:
      return x > 0.0 ? x : 0.0;
    case OpKind::kFloor:
      return std::floor(x);
    case OpKind::kCeil:
      return std::ceil(x);
    case OpKind::kSign:
      return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0);
    case OpKind::kReciprocal:
      return 1.0 / x;
    case OpKind::kLogicalNot:
      return x == 0.0 ? 1.0 : 0.0;
    case OpKind::kCast:
      return x;  // dtype conversion handled by SetElementFromDouble
    default:
      DISC_UNREACHABLE(OpName(kind));
      return 0.0;
  }
}

double ApplyBinaryScalar(OpKind kind, double a, double b, DType dtype) {
  bool integral = IsIntegral(dtype);
  switch (kind) {
    case OpKind::kAdd:
      return a + b;
    case OpKind::kSub:
      return a - b;
    case OpKind::kMul:
      return a * b;
    case OpKind::kDiv:
      if (integral) {
        return static_cast<double>(static_cast<int64_t>(a) /
                                   static_cast<int64_t>(b));
      }
      return a / b;
    case OpKind::kPow:
      return std::pow(a, b);
    case OpKind::kMaximum:
      return std::max(a, b);
    case OpKind::kMinimum:
      return std::min(a, b);
    case OpKind::kMod:
      if (integral) {
        return static_cast<double>(static_cast<int64_t>(a) %
                                   static_cast<int64_t>(b));
      }
      return std::fmod(a, b);
    case OpKind::kLess:
      return a < b ? 1.0 : 0.0;
    case OpKind::kLessEqual:
      return a <= b ? 1.0 : 0.0;
    case OpKind::kGreater:
      return a > b ? 1.0 : 0.0;
    case OpKind::kGreaterEqual:
      return a >= b ? 1.0 : 0.0;
    case OpKind::kEqual:
      return a == b ? 1.0 : 0.0;
    case OpKind::kNotEqual:
      return a != b ? 1.0 : 0.0;
    case OpKind::kAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case OpKind::kOr:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    default:
      DISC_UNREACHABLE(OpName(kind));
      return 0.0;
  }
}

Result<std::vector<Tensor>> EvaluateNode(const Node& node,
                                         const std::vector<Tensor>& inputs) {
  auto single = [](Tensor t) { return std::vector<Tensor>{std::move(t)}; };
  switch (node.kind()) {
    case OpKind::kConstant:
      return single(node.GetTensorAttr("value"));

    case OpKind::kIota: {
      std::vector<int64_t> dims;
      if (node.HasAttr("dims")) {
        dims = node.GetIntListAttr("dims");
      } else if (!inputs.empty()) {
        const Tensor& shape = inputs[0];
        dims.assign(shape.i64_data(), shape.i64_data() + shape.num_elements());
      }
      DType dt = node.HasAttr("dtype") ? node.GetDTypeAttr("dtype")
                                       : DType::kI64;
      int64_t axis = node.GetIntAttr("axis", 0);
      Tensor out(dt, dims);
      if (out.num_elements() > 0) {
        std::vector<int64_t> idx(dims.size(), 0);
        auto strides = out.Strides();
        do {
          out.SetElementFromDouble(LinearIndex(idx, strides),
                                   static_cast<double>(idx[axis]));
        } while (NextIndex(dims, &idx));
      }
      return single(std::move(out));
    }

    case OpKind::kReduceSum:
    case OpKind::kReduceMax:
    case OpKind::kReduceMin:
    case OpKind::kReduceMean: {
      DISC_ASSIGN_OR_RETURN(Tensor out, EvalReduce(node, inputs[0]));
      return single(std::move(out));
    }

    case OpKind::kMatMul: {
      DISC_ASSIGN_OR_RETURN(Tensor out,
                            EvalMatMul(node, inputs[0], inputs[1]));
      return single(std::move(out));
    }
    case OpKind::kConv2D: {
      DISC_ASSIGN_OR_RETURN(Tensor out,
                            EvalConv2D(node, inputs[0], inputs[1]));
      return single(std::move(out));
    }

    case OpKind::kTranspose: {
      const Tensor& in = inputs[0];
      const auto& perm = node.GetIntListAttr("perm");
      std::vector<int64_t> out_dims(in.rank());
      for (int64_t i = 0; i < in.rank(); ++i) out_dims[i] = in.dims()[perm[i]];
      Tensor out(in.dtype(), out_dims);
      if (out.num_elements() > 0) {
        std::vector<int64_t> idx(out_dims.size(), 0);
        auto out_strides = out.Strides();
        auto in_strides = in.Strides();
        do {
          int64_t in_linear = 0;
          for (int64_t i = 0; i < in.rank(); ++i) {
            in_linear += idx[i] * in_strides[perm[i]];
          }
          out.SetElementFromDouble(LinearIndex(idx, out_strides),
                                   in.ElementAsDouble(in_linear));
        } while (NextIndex(out_dims, &idx));
      }
      return single(std::move(out));
    }

    case OpKind::kReshape: {
      const Tensor& in = inputs[0];
      std::vector<int64_t> target;
      if (node.HasAttr("new_shape")) {
        target = node.GetIntListAttr("new_shape");
      } else {
        const Tensor& shape = inputs[1];
        target.assign(shape.i64_data(),
                      shape.i64_data() + shape.num_elements());
      }
      int64_t known = 1;
      int wildcard = -1;
      for (size_t i = 0; i < target.size(); ++i) {
        if (target[i] == -1) {
          wildcard = static_cast<int>(i);
        } else {
          known *= target[i];
        }
      }
      if (wildcard >= 0) {
        if (known == 0 || in.num_elements() % known != 0) {
          return InvalidOp(node, "cannot infer wildcard");
        }
        target[wildcard] = in.num_elements() / known;
      }
      if (Product(target) != in.num_elements()) {
        return InvalidOp(node,
                         StrFormat("element count mismatch: %lld -> %lld",
                                   static_cast<long long>(in.num_elements()),
                                   static_cast<long long>(Product(target))));
      }
      // Rebuild with new dims (same row-major data order).
      Tensor reshaped(in.dtype(), target);
      for (int64_t i = 0; i < in.num_elements(); ++i) {
        reshaped.SetElementFromDouble(i, in.ElementAsDouble(i));
      }
      return single(std::move(reshaped));
    }

    case OpKind::kBroadcastTo: {
      const Tensor& in = inputs[0];
      std::vector<int64_t> target;
      if (node.HasAttr("new_shape")) {
        target = node.GetIntListAttr("new_shape");
        // -1 entries inherit the aligned input dim.
        int64_t offset = static_cast<int64_t>(target.size()) - in.rank();
        for (size_t i = 0; i < target.size(); ++i) {
          if (target[i] == -1) {
            int64_t in_idx = static_cast<int64_t>(i) - offset;
            if (in_idx < 0) return InvalidOp(node, "unresolvable -1");
            target[i] = in.dims()[in_idx];
          }
        }
      } else {
        const Tensor& shape = inputs[1];
        target.assign(shape.i64_data(),
                      shape.i64_data() + shape.num_elements());
      }
      Tensor out(in.dtype(), target);
      if (out.num_elements() > 0) {
        std::vector<int64_t> idx(target.size(), 0);
        auto strides = out.Strides();
        do {
          out.SetElementFromDouble(
              LinearIndex(idx, strides),
              in.ElementAsDouble(BroadcastOperandIndex(idx, in)));
        } while (NextIndex(target, &idx));
      }
      return single(std::move(out));
    }

    case OpKind::kConcat: {
      int64_t axis = node.GetIntAttr("axis", 0);
      std::vector<int64_t> out_dims = inputs[0].dims();
      for (size_t i = 1; i < inputs.size(); ++i) {
        out_dims[axis] += inputs[i].dims()[axis];
      }
      Tensor out(inputs[0].dtype(), out_dims);
      int64_t axis_offset = 0;
      for (const Tensor& in : inputs) {
        if (in.num_elements() == 0) {
          axis_offset += in.dims()[axis];
          continue;
        }
        std::vector<int64_t> idx(in.rank(), 0);
        auto in_strides = in.Strides();
        auto out_strides = out.Strides();
        do {
          std::vector<int64_t> out_idx = idx;
          out_idx[axis] += axis_offset;
          out.SetElementFromDouble(LinearIndex(out_idx, out_strides),
                                   in.ElementAsDouble(LinearIndex(idx, in_strides)));
        } while (NextIndex(in.dims(), &idx));
        axis_offset += in.dims()[axis];
      }
      return single(std::move(out));
    }

    case OpKind::kSlice: {
      const Tensor& in = inputs[0];
      const auto& starts = node.GetIntListAttr("starts");
      auto ends = node.GetIntListAttr("ends");
      const auto& steps = node.GetIntListAttr("steps");
      std::vector<int64_t> out_dims(in.rank());
      for (int64_t i = 0; i < in.rank(); ++i) {
        if (ends[i] == -1) ends[i] = in.dims()[i];
        out_dims[i] = (ends[i] - starts[i] + steps[i] - 1) / steps[i];
        if (out_dims[i] < 0 || starts[i] < 0 || ends[i] > in.dims()[i]) {
          return InvalidOp(node, "slice out of bounds");
        }
      }
      Tensor out(in.dtype(), out_dims);
      if (out.num_elements() > 0) {
        std::vector<int64_t> idx(out_dims.size(), 0);
        auto out_strides = out.Strides();
        auto in_strides = in.Strides();
        do {
          int64_t in_linear = 0;
          for (int64_t i = 0; i < in.rank(); ++i) {
            in_linear += (starts[i] + idx[i] * steps[i]) * in_strides[i];
          }
          out.SetElementFromDouble(LinearIndex(idx, out_strides),
                                   in.ElementAsDouble(in_linear));
        } while (NextIndex(out_dims, &idx));
      }
      return single(std::move(out));
    }

    case OpKind::kGather: {
      const Tensor& data = inputs[0];
      const Tensor& indices = inputs[1];
      int64_t axis = node.GetIntAttr("axis", 0);
      std::vector<int64_t> out_dims;
      for (int64_t i = 0; i < axis; ++i) out_dims.push_back(data.dims()[i]);
      for (int64_t d : indices.dims()) out_dims.push_back(d);
      for (int64_t i = axis + 1; i < data.rank(); ++i) {
        out_dims.push_back(data.dims()[i]);
      }
      Tensor out(data.dtype(), out_dims);
      if (out.num_elements() > 0) {
        std::vector<int64_t> idx(out_dims.size(), 0);
        auto out_strides = out.Strides();
        auto data_strides = data.Strides();
        auto index_strides = indices.Strides();
        do {
          // Split out index into (prefix, index-part, suffix).
          int64_t index_linear = 0;
          for (int64_t i = 0; i < indices.rank(); ++i) {
            index_linear += idx[axis + i] * index_strides[i];
          }
          int64_t gathered = indices.i64_data()[index_linear];
          if (gathered < 0 || gathered >= data.dims()[axis]) {
            return InvalidOp(node, "index out of bounds");
          }
          int64_t data_linear = 0;
          for (int64_t i = 0; i < axis; ++i) {
            data_linear += idx[i] * data_strides[i];
          }
          data_linear += gathered * data_strides[axis];
          for (int64_t i = axis + 1; i < data.rank(); ++i) {
            data_linear += idx[indices.rank() + i - 1] * data_strides[i];
          }
          out.SetElementFromDouble(LinearIndex(idx, out_strides),
                                   data.ElementAsDouble(data_linear));
        } while (NextIndex(out_dims, &idx));
      }
      return single(std::move(out));
    }

    case OpKind::kPad: {
      const Tensor& in = inputs[0];
      const auto& low = node.GetIntListAttr("pads_low");
      const auto& high = node.GetIntListAttr("pads_high");
      double pad_value = node.GetFloatAttr("pad_value", 0.0);
      std::vector<int64_t> out_dims(in.rank());
      for (int64_t i = 0; i < in.rank(); ++i) {
        out_dims[i] = in.dims()[i] + low[i] + high[i];
      }
      Tensor out(in.dtype(), out_dims);
      for (int64_t i = 0; i < out.num_elements(); ++i) {
        out.SetElementFromDouble(i, pad_value);
      }
      if (in.num_elements() > 0) {
        std::vector<int64_t> idx(in.rank(), 0);
        auto in_strides = in.Strides();
        auto out_strides = out.Strides();
        do {
          std::vector<int64_t> out_idx(idx.size());
          for (size_t i = 0; i < idx.size(); ++i) out_idx[i] = idx[i] + low[i];
          out.SetElementFromDouble(
              LinearIndex(out_idx, out_strides),
              in.ElementAsDouble(LinearIndex(idx, in_strides)));
        } while (NextIndex(in.dims(), &idx));
      }
      return single(std::move(out));
    }

    case OpKind::kShapeOf: {
      const Tensor& in = inputs[0];
      std::vector<int64_t> dims = in.dims();
      return single(Tensor::I64({in.rank()}, std::move(dims)));
    }
    case OpKind::kDim: {
      int64_t index = node.GetIntAttr("index", 0);
      return single(Tensor::ScalarI64(inputs[0].dims()[index]));
    }

    default:
      break;
  }
  if (GetOpInfo(node.kind()).op_class == OpClass::kElementwise) {
    DISC_ASSIGN_OR_RETURN(Tensor out, EvalElementwise(node, inputs));
    return single(std::move(out));
  }
  return Status::Unimplemented(std::string("eval for ") +
                               OpName(node.kind()));
}

Result<std::vector<Tensor>> EvaluateGraph(const Graph& graph,
                                          const std::vector<Tensor>& inputs) {
  if (inputs.size() != graph.inputs().size()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu inputs, got %zu", graph.inputs().size(),
                  inputs.size()));
  }
  std::unordered_map<const Value*, Tensor> env;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const Value* input = graph.inputs()[i];
    if (input->rank() != inputs[i].rank()) {
      return Status::InvalidArgument(
          StrFormat("input %zu: rank mismatch", i));
    }
    for (int64_t d = 0; d < input->rank(); ++d) {
      int64_t declared = input->type().dims[d];
      if (declared != kDynamicDim && declared != inputs[i].dims()[d]) {
        return Status::InvalidArgument(
            StrFormat("input %zu dim %lld: expected %lld, got %lld", i,
                      static_cast<long long>(d),
                      static_cast<long long>(declared),
                      static_cast<long long>(inputs[i].dims()[d])));
      }
    }
    env.emplace(input, inputs[i]);
  }
  for (const Node* node : graph.TopologicalOrder()) {
    std::vector<Tensor> operand_values;
    operand_values.reserve(node->operands().size());
    for (const Value* operand : node->operands()) {
      auto it = env.find(operand);
      DISC_CHECK(it != env.end());
      operand_values.push_back(it->second);
    }
    DISC_ASSIGN_OR_RETURN(std::vector<Tensor> results,
                          EvaluateNode(*node, operand_values));
    for (size_t i = 0; i < results.size(); ++i) {
      env.emplace(node->output(static_cast<int>(i)), std::move(results[i]));
    }
  }
  std::vector<Tensor> outputs;
  outputs.reserve(graph.outputs().size());
  for (const Value* out : graph.outputs()) {
    auto it = env.find(out);
    DISC_CHECK(it != env.end());
    outputs.push_back(it->second);
  }
  return outputs;
}

}  // namespace disc
