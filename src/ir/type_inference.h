// Compile-time (static, -1-aware) output type inference.
//
// This is the coarse shape layer: each dim is either a known constant or
// kDynamicDim. The paper's contribution — *relationships* among the unknown
// dims — is layered on top in disc::shape; the property test
// shape_consistency_test verifies the two layers agree.
#ifndef DISC_IR_TYPE_INFERENCE_H_
#define DISC_IR_TYPE_INFERENCE_H_

#include <vector>

#include "ir/graph.h"
#include "support/status.h"

namespace disc {

/// \brief Infers output types of an op from operand types and attributes.
///
/// `operand_constants[i]` may supply the concrete tensor value of operand i
/// when it is a compile-time constant (used to resolve shape operands of
/// reshape/broadcast); entries may be nullptr.
Result<std::vector<TensorType>> InferOutputTypes(
    OpKind kind, const std::vector<TensorType>& operand_types,
    const AttrMap& attrs,
    const std::vector<const Tensor*>& operand_constants);

/// \brief numpy-style broadcast of two shapes (-1 aware). Dims must be
/// compatible where both are known.
Result<std::vector<int64_t>> BroadcastDims(const std::vector<int64_t>& a,
                                           const std::vector<int64_t>& b);

}  // namespace disc

#endif  // DISC_IR_TYPE_INFERENCE_H_
