// Concrete tensors: the runtime data container used by constants, the
// execution engines and tests.
//
// Storage model: f32 data lives in a float buffer; i64/i1 data lives in an
// int64 buffer (booleans stored as 0/1). Buffers are shared_ptr so tensors
// are cheap to copy (aliasing semantics like most ML runtimes).
#ifndef DISC_IR_TENSOR_H_
#define DISC_IR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/dtype.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace disc {

/// \brief A dense, row-major, concretely-shaped tensor.
class Tensor {
 public:
  Tensor() : dtype_(DType::kF32) {}

  /// \brief Allocates a zero-initialized tensor.
  Tensor(DType dtype, std::vector<int64_t> dims);

  /// \brief Creates an f32 tensor from explicit values (size must match).
  static Tensor F32(std::vector<int64_t> dims, std::vector<float> values);
  /// \brief Creates an i64 tensor from explicit values.
  static Tensor I64(std::vector<int64_t> dims, std::vector<int64_t> values);
  /// \brief Creates an i1 tensor from explicit 0/1 values.
  static Tensor I1(std::vector<int64_t> dims, std::vector<int64_t> values);
  /// \brief Rank-0 f32 scalar.
  static Tensor ScalarF32(float value) { return F32({}, {value}); }
  /// \brief Rank-0 i64 scalar.
  static Tensor ScalarI64(int64_t value) { return I64({}, {value}); }

  DType dtype() const { return dtype_; }
  const std::vector<int64_t>& dims() const { return dims_; }
  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t num_elements() const { return Product(dims_); }
  int64_t byte_size() const { return num_elements() * DTypeSize(dtype_); }

  /// \brief Mutable f32 data; requires dtype()==kF32.
  float* f32_data() {
    DISC_CHECK(dtype_ == DType::kF32);
    return fdata_->data();
  }
  const float* f32_data() const {
    DISC_CHECK(dtype_ == DType::kF32);
    return fdata_->data();
  }
  /// \brief Mutable integer data; requires an integral dtype.
  int64_t* i64_data() {
    DISC_CHECK(IsIntegral(dtype_));
    return idata_->data();
  }
  const int64_t* i64_data() const {
    DISC_CHECK(IsIntegral(dtype_));
    return idata_->data();
  }

  /// \brief Element read as double regardless of dtype (for tests/printing).
  double ElementAsDouble(int64_t linear_index) const;
  /// \brief Element write from double regardless of dtype.
  void SetElementFromDouble(int64_t linear_index, double value);

  /// \brief Deep copy (new buffers).
  Tensor Clone() const;

  /// \brief Row-major strides for the current dims.
  std::vector<int64_t> Strides() const;

  /// \brief Short description, e.g. "f32[2x3]".
  std::string TypeString() const;
  /// \brief Values (truncated for large tensors), for debugging.
  std::string ToString(int64_t max_elements = 16) const;

  /// \brief Max |a-b| over elements; tensors must match in type and dims.
  static double MaxAbsDiff(const Tensor& a, const Tensor& b);
  /// \brief True when shapes/dtypes match and values agree within atol+rtol.
  static bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-4,
                       double atol = 1e-5);

 private:
  DType dtype_;
  std::vector<int64_t> dims_;
  std::shared_ptr<std::vector<float>> fdata_;
  std::shared_ptr<std::vector<int64_t>> idata_;
};

}  // namespace disc

#endif  // DISC_IR_TENSOR_H_
