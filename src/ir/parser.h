// Parser for the textual graph form produced by Graph::ToString().
//
// Grammar (one node per line):
//
//   graph NAME (%0: f32[?x128], %1: i64[4]) {
//     %2 = constant() {value = f32[2] {1, 2}} : f32[2]
//     %3, %4 = some_op(%0, %2) {axis = 1, perm = [1, 0]} : f32[4], f32[4]
//     return %3
//   }
//
// Intended for tests, debugging dumps and small hand-written fixtures.
// Tensor attributes parse only when fully printed (the printer truncates
// large constants with "...", which this parser rejects).
#ifndef DISC_IR_PARSER_H_
#define DISC_IR_PARSER_H_

#include <memory>
#include <string>

#include "ir/graph.h"
#include "support/status.h"

namespace disc {

/// \brief Parses the textual graph form. Output types are re-inferred and
/// verified against the declared ones.
Result<std::unique_ptr<Graph>> ParseGraph(const std::string& text);

}  // namespace disc

#endif  // DISC_IR_PARSER_H_
