#include "ir/attribute.h"

#include <sstream>

#include "support/string_util.h"

namespace disc {

std::string Attribute::ToString() const {
  std::ostringstream out;
  if (IsInt()) {
    out << AsInt();
  } else if (IsFloat()) {
    out << AsFloat();
  } else if (IsString()) {
    out << '"' << AsString() << '"';
  } else if (IsIntList()) {
    out << "[" << Join(AsIntList(), ", ") << "]";
  } else if (IsDType()) {
    out << DTypeName(AsDType());
  } else if (IsTensor()) {
    out << AsTensor().ToString(64);
  }
  return out.str();
}

bool Attribute::operator==(const Attribute& other) const {
  if (value_.index() != other.value_.index()) return false;
  if (IsInt()) return AsInt() == other.AsInt();
  if (IsFloat()) return AsFloat() == other.AsFloat();
  if (IsString()) return AsString() == other.AsString();
  if (IsIntList()) return AsIntList() == other.AsIntList();
  if (IsDType()) return AsDType() == other.AsDType();
  if (IsTensor()) {
    const Tensor& a = AsTensor();
    const Tensor& b = other.AsTensor();
    if (a.dtype() != b.dtype() || a.dims() != b.dims()) return false;
    for (int64_t i = 0; i < a.num_elements(); ++i) {
      if (a.ElementAsDouble(i) != b.ElementAsDouble(i)) return false;
    }
    return true;
  }
  return false;
}

}  // namespace disc
