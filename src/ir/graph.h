// Graph IR: a DAG of operator nodes over multi-dimensional tensor values.
//
// Dimensions may be unknown at compile time: `TensorType` stores -1 for a
// dynamic dimension. The richer symbolic relationships between dynamic
// dimensions (the paper's core abstraction) live in `disc::shape` and are
// attached to a Graph externally via ShapeAnalysis.
#ifndef DISC_IR_GRAPH_H_
#define DISC_IR_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/attribute.h"
#include "ir/dtype.h"
#include "ir/op_kind.h"
#include "support/status.h"

namespace disc {

class Node;
class Graph;

/// Sentinel for a dynamic (unknown at compile time) dimension.
inline constexpr int64_t kDynamicDim = -1;

/// \brief Compile-time type of a tensor value: dtype + dims (-1 = dynamic).
struct TensorType {
  DType dtype = DType::kF32;
  std::vector<int64_t> dims;

  TensorType() = default;
  TensorType(DType d, std::vector<int64_t> dm)
      : dtype(d), dims(std::move(dm)) {}

  int64_t rank() const { return static_cast<int64_t>(dims.size()); }
  bool IsStaticDim(int64_t i) const { return dims[i] != kDynamicDim; }
  /// \brief True when every dimension is known.
  bool IsFullyStatic() const;
  /// \brief Number of elements; requires IsFullyStatic().
  int64_t NumElements() const;
  /// \brief e.g. "f32[?x128]".
  std::string ToString() const;

  bool operator==(const TensorType& other) const {
    return dtype == other.dtype && dims == other.dims;
  }
};

/// \brief An SSA value: a graph input or one output of a Node.
class Value {
 public:
  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const TensorType& type() const { return type_; }
  DType dtype() const { return type_.dtype; }
  int64_t rank() const { return type_.rank(); }

  /// \brief Producing node, or nullptr for graph inputs.
  Node* producer() const { return producer_; }
  /// \brief Which output of the producer this value is.
  int producer_index() const { return producer_index_; }
  bool IsGraphInput() const { return producer_ == nullptr; }

  /// \brief Nodes consuming this value (duplicates if used twice by a node).
  const std::vector<Node*>& users() const { return users_; }

  Graph* graph() const { return graph_; }

 private:
  friend class Graph;
  int id_ = -1;
  std::string name_;
  TensorType type_;
  Node* producer_ = nullptr;
  int producer_index_ = 0;
  std::vector<Node*> users_;
  Graph* graph_ = nullptr;
};

/// \brief An operator application.
class Node {
 public:
  int id() const { return id_; }
  OpKind kind() const { return kind_; }
  const std::vector<Value*>& operands() const { return operands_; }
  Value* operand(int i) const { return operands_.at(i); }
  int num_operands() const { return static_cast<int>(operands_.size()); }
  const std::vector<Value*>& outputs() const { return outputs_; }
  Value* output(int i = 0) const { return outputs_.at(i); }

  const AttrMap& attrs() const { return attrs_; }
  bool HasAttr(const std::string& key) const { return attrs_.count(key) > 0; }
  /// \brief Integer attribute or `fallback` when absent.
  int64_t GetIntAttr(const std::string& key, int64_t fallback = 0) const;
  double GetFloatAttr(const std::string& key, double fallback = 0.0) const;
  const std::vector<int64_t>& GetIntListAttr(const std::string& key) const;
  DType GetDTypeAttr(const std::string& key) const;
  const Tensor& GetTensorAttr(const std::string& key) const;
  void SetAttr(const std::string& key, Attribute value) {
    attrs_[key] = std::move(value);
  }

  OpClass op_class() const { return GetOpInfo(kind_).op_class; }

  /// \brief One-line rendering, e.g. "%5 = add(%1, %2) : f32[?x4]".
  std::string ToString() const;

 private:
  friend class Graph;
  int id_ = -1;
  OpKind kind_ = OpKind::kNumOps;
  std::vector<Value*> operands_;
  AttrMap attrs_;
  std::vector<Value*> outputs_;
};

/// \brief A computation graph: owns nodes and values; tracks inputs/outputs
/// and maintains def-use chains under mutation.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// \brief Declares a graph input value.
  Value* AddInput(const std::string& name, TensorType type);

  /// \brief Appends a node; output types must be supplied (use GraphBuilder
  /// for automatic inference). Returns the node.
  Node* CreateNode(OpKind kind, std::vector<Value*> operands, AttrMap attrs,
                   std::vector<TensorType> output_types);

  /// \brief Marks graph outputs (replaces previous set).
  void SetOutputs(std::vector<Value*> outputs);

  const std::vector<Value*>& inputs() const { return inputs_; }
  const std::vector<Value*>& outputs() const { return outputs_; }
  /// \brief Nodes in creation order (a valid topological order as long as
  /// only CreateNode/ReplaceAllUsesWith/EraseNode are used).
  std::vector<Node*> nodes() const;
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  /// \brief Redirects every use of `from` (including graph outputs) to `to`.
  void ReplaceAllUsesWith(Value* from, Value* to);

  /// \brief Swaps operand `index` of `node` to `value`, updating use lists.
  void SetOperand(Node* node, int index, Value* value);

  /// \brief Removes a node whose outputs have no users and are not graph
  /// outputs. Returns InvalidArgument otherwise.
  Status EraseNode(Node* node);

  /// \brief Erases all nodes not reachable from the outputs. Returns the
  /// number of nodes removed.
  int64_t RemoveDeadNodes();

  /// \brief Nodes in dependency order (operands before users).
  std::vector<Node*> TopologicalOrder() const;

  /// \brief Deep copy. `value_map`, if non-null, receives old->new value
  /// pointers.
  std::unique_ptr<Graph> Clone(
      std::unordered_map<const Value*, Value*>* value_map = nullptr) const;

  /// \brief Structural well-formedness check (operand counts, dtypes of
  /// shape operands, attr presence, acyclicity). Stored output types may be
  /// less precise than inferable (a dynamic dim where inference proves a
  /// static one) — use RefineStaticTypes() to tighten them.
  Status Verify() const;

  /// \brief Re-runs static inference over every node and tightens output
  /// dims that are stored as dynamic but inferable as static (e.g. after a
  /// rewrite replaced an operand with a more precisely typed value).
  /// Returns the number of dims tightened.
  int64_t RefineStaticTypes();

  /// \brief Pins every graph input to the given static dims (used by the
  /// static-shape baseline compilers, which clone + specialize per shape)
  /// and propagates via RefineStaticTypes(). Dims must be consistent with
  /// the declared types.
  Status SpecializeInputs(const std::vector<std::vector<int64_t>>& dims);

  /// \brief Multi-line textual form of the whole graph.
  std::string ToString() const;

 private:
  Value* NewValue(const std::string& name, TensorType type);

  std::string name_;
  std::vector<std::unique_ptr<Value>> values_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Value*> inputs_;
  std::vector<Value*> outputs_;
  int next_value_id_ = 0;
  int next_node_id_ = 0;
};

}  // namespace disc

#endif  // DISC_IR_GRAPH_H_
