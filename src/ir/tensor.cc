#include "ir/tensor.h"

#include <cmath>
#include <sstream>

namespace disc {

Tensor::Tensor(DType dtype, std::vector<int64_t> dims)
    : dtype_(dtype), dims_(std::move(dims)) {
  int64_t n = num_elements();
  DISC_CHECK_GE(n, 0);
  if (dtype_ == DType::kF32) {
    fdata_ = std::make_shared<std::vector<float>>(n, 0.0f);
  } else {
    idata_ = std::make_shared<std::vector<int64_t>>(n, 0);
  }
}

Tensor Tensor::F32(std::vector<int64_t> dims, std::vector<float> values) {
  Tensor t;
  t.dtype_ = DType::kF32;
  t.dims_ = std::move(dims);
  DISC_CHECK_EQ(t.num_elements(), static_cast<int64_t>(values.size()));
  t.fdata_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::I64(std::vector<int64_t> dims, std::vector<int64_t> values) {
  Tensor t;
  t.dtype_ = DType::kI64;
  t.dims_ = std::move(dims);
  DISC_CHECK_EQ(t.num_elements(), static_cast<int64_t>(values.size()));
  t.idata_ = std::make_shared<std::vector<int64_t>>(std::move(values));
  return t;
}

Tensor Tensor::I1(std::vector<int64_t> dims, std::vector<int64_t> values) {
  Tensor t = I64(std::move(dims), std::move(values));
  t.dtype_ = DType::kI1;
  for (int64_t& v : *t.idata_) v = (v != 0) ? 1 : 0;
  return t;
}

double Tensor::ElementAsDouble(int64_t linear_index) const {
  DISC_CHECK_GE(linear_index, 0);
  DISC_CHECK_LT(linear_index, num_elements());
  if (dtype_ == DType::kF32) return (*fdata_)[linear_index];
  return static_cast<double>((*idata_)[linear_index]);
}

void Tensor::SetElementFromDouble(int64_t linear_index, double value) {
  DISC_CHECK_GE(linear_index, 0);
  DISC_CHECK_LT(linear_index, num_elements());
  if (dtype_ == DType::kF32) {
    (*fdata_)[linear_index] = static_cast<float>(value);
  } else if (dtype_ == DType::kI1) {
    (*idata_)[linear_index] = (value != 0.0) ? 1 : 0;
  } else {
    (*idata_)[linear_index] = static_cast<int64_t>(value);
  }
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.dtype_ = dtype_;
  t.dims_ = dims_;
  if (fdata_) t.fdata_ = std::make_shared<std::vector<float>>(*fdata_);
  if (idata_) t.idata_ = std::make_shared<std::vector<int64_t>>(*idata_);
  return t;
}

std::vector<int64_t> Tensor::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (int64_t i = static_cast<int64_t>(dims_.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * dims_[i + 1];
  }
  return strides;
}

std::string Tensor::TypeString() const {
  std::ostringstream out;
  out << DTypeName(dtype_) << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << "x";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << TypeString() << " {";
  int64_t n = std::min(num_elements(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i) out << ", ";
    out << ElementAsDouble(i);
  }
  if (n < num_elements()) out << ", ...";
  out << "}";
  return out.str();
}

double Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  DISC_CHECK(a.dtype() == b.dtype());
  DISC_CHECK(a.dims() == b.dims());
  double max_diff = 0.0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(a.ElementAsDouble(i) - b.ElementAsDouble(i)));
  }
  return max_diff;
}

bool Tensor::AllClose(const Tensor& a, const Tensor& b, double rtol,
                      double atol) {
  if (a.dtype() != b.dtype() || a.dims() != b.dims()) return false;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    double av = a.ElementAsDouble(i);
    double bv = b.ElementAsDouble(i);
    if (std::isnan(av) != std::isnan(bv)) return false;
    if (std::isnan(av)) continue;
    if (std::abs(av - bv) > atol + rtol * std::abs(bv)) return false;
  }
  return true;
}

}  // namespace disc
