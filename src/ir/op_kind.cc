#include "ir/op_kind.h"

#include <array>
#include <unordered_map>

#include "support/logging.h"

namespace disc {

namespace {

constexpr int kN = static_cast<int>(OpKind::kNumOps);

const std::array<OpInfo, kN>& InfoTable() {
  static const std::array<OpInfo, kN> table = [] {
    std::array<OpInfo, kN> t{};
    auto set = [&t](OpKind k, const char* name, int min_ops, int max_ops,
                    OpClass c) {
      t[static_cast<int>(k)] = OpInfo{name, min_ops, max_ops, c};
    };
    set(OpKind::kConstant, "constant", 0, 0, OpClass::kCreation);
    set(OpKind::kIota, "iota", 0, 1, OpClass::kCreation);

    set(OpKind::kAbs, "abs", 1, 1, OpClass::kElementwise);
    set(OpKind::kNeg, "neg", 1, 1, OpClass::kElementwise);
    set(OpKind::kExp, "exp", 1, 1, OpClass::kElementwise);
    set(OpKind::kLog, "log", 1, 1, OpClass::kElementwise);
    set(OpKind::kSqrt, "sqrt", 1, 1, OpClass::kElementwise);
    set(OpKind::kRsqrt, "rsqrt", 1, 1, OpClass::kElementwise);
    set(OpKind::kTanh, "tanh", 1, 1, OpClass::kElementwise);
    set(OpKind::kErf, "erf", 1, 1, OpClass::kElementwise);
    set(OpKind::kSigmoid, "sigmoid", 1, 1, OpClass::kElementwise);
    set(OpKind::kRelu, "relu", 1, 1, OpClass::kElementwise);
    set(OpKind::kFloor, "floor", 1, 1, OpClass::kElementwise);
    set(OpKind::kCeil, "ceil", 1, 1, OpClass::kElementwise);
    set(OpKind::kSign, "sign", 1, 1, OpClass::kElementwise);
    set(OpKind::kReciprocal, "reciprocal", 1, 1, OpClass::kElementwise);
    set(OpKind::kLogicalNot, "logical_not", 1, 1, OpClass::kElementwise);
    set(OpKind::kCast, "cast", 1, 1, OpClass::kElementwise);

    set(OpKind::kAdd, "add", 2, 2, OpClass::kElementwise);
    set(OpKind::kSub, "sub", 2, 2, OpClass::kElementwise);
    set(OpKind::kMul, "mul", 2, 2, OpClass::kElementwise);
    set(OpKind::kDiv, "div", 2, 2, OpClass::kElementwise);
    set(OpKind::kPow, "pow", 2, 2, OpClass::kElementwise);
    set(OpKind::kMaximum, "maximum", 2, 2, OpClass::kElementwise);
    set(OpKind::kMinimum, "minimum", 2, 2, OpClass::kElementwise);
    set(OpKind::kMod, "mod", 2, 2, OpClass::kElementwise);
    set(OpKind::kLess, "less", 2, 2, OpClass::kElementwise);
    set(OpKind::kLessEqual, "less_equal", 2, 2, OpClass::kElementwise);
    set(OpKind::kGreater, "greater", 2, 2, OpClass::kElementwise);
    set(OpKind::kGreaterEqual, "greater_equal", 2, 2, OpClass::kElementwise);
    set(OpKind::kEqual, "equal", 2, 2, OpClass::kElementwise);
    set(OpKind::kNotEqual, "not_equal", 2, 2, OpClass::kElementwise);
    set(OpKind::kAnd, "and", 2, 2, OpClass::kElementwise);
    set(OpKind::kOr, "or", 2, 2, OpClass::kElementwise);

    set(OpKind::kSelect, "select", 3, 3, OpClass::kElementwise);

    set(OpKind::kReduceSum, "reduce_sum", 1, 1, OpClass::kReduction);
    set(OpKind::kReduceMax, "reduce_max", 1, 1, OpClass::kReduction);
    set(OpKind::kReduceMin, "reduce_min", 1, 1, OpClass::kReduction);
    set(OpKind::kReduceMean, "reduce_mean", 1, 1, OpClass::kReduction);

    set(OpKind::kMatMul, "matmul", 2, 2, OpClass::kLibrary);
    set(OpKind::kConv2D, "conv2d", 2, 2, OpClass::kLibrary);

    set(OpKind::kTranspose, "transpose", 1, 1, OpClass::kInjective);
    set(OpKind::kReshape, "reshape", 1, 2, OpClass::kInjective);
    set(OpKind::kBroadcastTo, "broadcast_to", 1, 2, OpClass::kInjective);
    set(OpKind::kConcat, "concat", 1, -1, OpClass::kInjective);
    set(OpKind::kSlice, "slice", 1, 1, OpClass::kInjective);
    set(OpKind::kGather, "gather", 2, 2, OpClass::kInjective);
    set(OpKind::kPad, "pad", 1, 1, OpClass::kInjective);

    set(OpKind::kShapeOf, "shape_of", 1, 1, OpClass::kShape);
    set(OpKind::kDim, "dim", 1, 1, OpClass::kShape);
    return t;
  }();
  return table;
}

}  // namespace

const OpInfo& GetOpInfo(OpKind kind) {
  int idx = static_cast<int>(kind);
  DISC_CHECK_GE(idx, 0);
  DISC_CHECK_LT(idx, kN);
  const OpInfo& info = InfoTable()[idx];
  DISC_CHECK(info.name != nullptr) << "op kind " << idx << " not registered";
  return info;
}

OpKind OpKindFromName(const std::string& name) {
  static const std::unordered_map<std::string, OpKind> map = [] {
    std::unordered_map<std::string, OpKind> m;
    for (int i = 0; i < kN; ++i) {
      OpKind k = static_cast<OpKind>(i);
      m.emplace(GetOpInfo(k).name, k);
    }
    return m;
  }();
  auto it = map.find(name);
  return it == map.end() ? OpKind::kNumOps : it->second;
}

bool IsFusableElementwise(OpKind kind) {
  OpClass c = GetOpInfo(kind).op_class;
  return c == OpClass::kElementwise || c == OpClass::kInjective ||
         c == OpClass::kCreation;
}

bool IsBinaryElementwise(OpKind kind) {
  return GetOpInfo(kind).op_class == OpClass::kElementwise &&
         GetOpInfo(kind).min_operands == 2;
}

bool IsUnaryElementwise(OpKind kind) {
  return GetOpInfo(kind).op_class == OpClass::kElementwise &&
         GetOpInfo(kind).min_operands == 1;
}

bool IsPredicateOp(OpKind kind) {
  switch (kind) {
    case OpKind::kLess:
    case OpKind::kLessEqual:
    case OpKind::kGreater:
    case OpKind::kGreaterEqual:
    case OpKind::kEqual:
    case OpKind::kNotEqual:
    case OpKind::kAnd:
    case OpKind::kOr:
    case OpKind::kLogicalNot:
      return true;
    default:
      return false;
  }
}

}  // namespace disc
