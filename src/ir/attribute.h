// Node attributes: a small tagged union plus an ordered attribute map.
#ifndef DISC_IR_ATTRIBUTE_H_
#define DISC_IR_ATTRIBUTE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "ir/dtype.h"
#include "ir/tensor.h"
#include "support/logging.h"

namespace disc {

/// \brief Attribute value: int, float, string, int list, dtype or tensor.
class Attribute {
 public:
  Attribute() : value_(int64_t{0}) {}
  /*implicit*/ Attribute(int64_t v) : value_(v) {}
  /*implicit*/ Attribute(int v) : value_(static_cast<int64_t>(v)) {}
  /*implicit*/ Attribute(bool v) : value_(static_cast<int64_t>(v)) {}
  /*implicit*/ Attribute(double v) : value_(v) {}
  /*implicit*/ Attribute(std::string v) : value_(std::move(v)) {}
  /*implicit*/ Attribute(const char* v) : value_(std::string(v)) {}
  /*implicit*/ Attribute(std::vector<int64_t> v) : value_(std::move(v)) {}
  /*implicit*/ Attribute(DType v) : value_(v) {}
  /*implicit*/ Attribute(Tensor v) : value_(std::move(v)) {}

  bool IsInt() const { return std::holds_alternative<int64_t>(value_); }
  bool IsFloat() const { return std::holds_alternative<double>(value_); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }
  bool IsIntList() const {
    return std::holds_alternative<std::vector<int64_t>>(value_);
  }
  bool IsDType() const { return std::holds_alternative<DType>(value_); }
  bool IsTensor() const { return std::holds_alternative<Tensor>(value_); }

  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsFloat() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const std::vector<int64_t>& AsIntList() const {
    return std::get<std::vector<int64_t>>(value_);
  }
  DType AsDType() const { return std::get<DType>(value_); }
  const Tensor& AsTensor() const { return std::get<Tensor>(value_); }

  /// \brief Debug rendering, e.g. "[2, 3]" or "f32[2x2]{...}".
  std::string ToString() const;

  /// \brief Structural equality (tensor attributes compare by contents).
  bool operator==(const Attribute& other) const;

 private:
  std::variant<int64_t, double, std::string, std::vector<int64_t>, DType,
               Tensor>
      value_;
};

/// Ordered attribute map (ordered so printing/hashing is deterministic).
using AttrMap = std::map<std::string, Attribute>;

}  // namespace disc

#endif  // DISC_IR_ATTRIBUTE_H_
