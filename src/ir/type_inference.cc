#include "ir/type_inference.h"

#include <algorithm>

#include "support/string_util.h"

namespace disc {

namespace {

Status Invalid(OpKind kind, const std::string& msg) {
  return Status::InvalidArgument(std::string(OpName(kind)) + ": " + msg);
}

// Resolves the target shape of reshape/broadcast_to: either the "new_shape"
// attribute or a 1-D i64 shape operand (whose value may be a constant).
Result<std::vector<int64_t>> ResolveTargetShape(
    OpKind kind, const std::vector<TensorType>& operand_types,
    const AttrMap& attrs, const std::vector<const Tensor*>& operand_constants) {
  if (auto it = attrs.find("new_shape"); it != attrs.end()) {
    return it->second.AsIntList();
  }
  if (operand_types.size() < 2) {
    return Invalid(kind, "needs 'new_shape' attr or a shape operand");
  }
  const TensorType& shape_type = operand_types[1];
  if (shape_type.dtype != DType::kI64 || shape_type.rank() != 1) {
    return Invalid(kind, "shape operand must be 1-D i64");
  }
  if (operand_constants.size() > 1 && operand_constants[1] != nullptr) {
    const Tensor& t = *operand_constants[1];
    std::vector<int64_t> dims(t.i64_data(), t.i64_data() + t.num_elements());
    return dims;
  }
  if (shape_type.dims[0] == kDynamicDim) {
    return Invalid(kind, "shape operand length (output rank) must be static");
  }
  // Rank known, dims unknown.
  return std::vector<int64_t>(shape_type.dims[0], kDynamicDim);
}

}  // namespace

Result<std::vector<int64_t>> BroadcastDims(const std::vector<int64_t>& a,
                                           const std::vector<int64_t>& b) {
  size_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank);
  for (size_t i = 0; i < rank; ++i) {
    // Right-aligned; missing dims act as 1.
    int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da == 1) {
      out[i] = db;
    } else if (db == 1) {
      out[i] = da;
    } else if (da == kDynamicDim) {
      out[i] = db == kDynamicDim ? kDynamicDim : db;
    } else if (db == kDynamicDim) {
      out[i] = da;
    } else if (da == db) {
      out[i] = da;
    } else {
      return Status::InvalidArgument(
          StrFormat("broadcast mismatch: %lld vs %lld at dim %zu",
                    static_cast<long long>(da), static_cast<long long>(db), i));
    }
  }
  return out;
}

Result<std::vector<TensorType>> InferOutputTypes(
    OpKind kind, const std::vector<TensorType>& operand_types,
    const AttrMap& attrs,
    const std::vector<const Tensor*>& operand_constants) {
  auto types = [](TensorType t) {
    return std::vector<TensorType>{std::move(t)};
  };
  const OpInfo& info = GetOpInfo(kind);

  switch (kind) {
    case OpKind::kConstant: {
      auto it = attrs.find("value");
      if (it == attrs.end()) return Invalid(kind, "missing 'value' attr");
      const Tensor& t = it->second.AsTensor();
      return types(TensorType(t.dtype(), t.dims()));
    }
    case OpKind::kIota: {
      auto dt = attrs.count("dtype") ? attrs.at("dtype").AsDType() : DType::kI64;
      if (auto it = attrs.find("dims"); it != attrs.end()) {
        return types(TensorType(dt, it->second.AsIntList()));
      }
      // Dynamic variant: shape operand.
      DISC_ASSIGN_OR_RETURN(
          std::vector<int64_t> dims,
          ResolveTargetShape(kind, operand_types, attrs, operand_constants));
      return types(TensorType(dt, std::move(dims)));
    }

    case OpKind::kCast: {
      auto it = attrs.find("to");
      if (it == attrs.end()) return Invalid(kind, "missing 'to' attr");
      return types(TensorType(it->second.AsDType(), operand_types[0].dims));
    }

    case OpKind::kSelect: {
      if (operand_types[0].dtype != DType::kI1) {
        return Invalid(kind, "predicate must be i1");
      }
      DISC_ASSIGN_OR_RETURN(
          std::vector<int64_t> dims01,
          BroadcastDims(operand_types[0].dims, operand_types[1].dims));
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> dims,
                            BroadcastDims(dims01, operand_types[2].dims));
      if (operand_types[1].dtype != operand_types[2].dtype) {
        return Invalid(kind, "branch dtypes differ");
      }
      return types(TensorType(operand_types[1].dtype, std::move(dims)));
    }

    case OpKind::kReduceSum:
    case OpKind::kReduceMax:
    case OpKind::kReduceMin:
    case OpKind::kReduceMean: {
      const TensorType& in = operand_types[0];
      auto it = attrs.find("dims");
      if (it == attrs.end()) return Invalid(kind, "missing 'dims' attr");
      std::vector<int64_t> reduce_dims = it->second.AsIntList();
      bool keep = false;
      if (auto kit = attrs.find("keep_dims"); kit != attrs.end()) {
        keep = kit->second.AsInt() != 0;
      }
      std::vector<bool> reduced(in.rank(), false);
      for (int64_t d : reduce_dims) {
        if (d < 0 || d >= in.rank()) return Invalid(kind, "reduce dim oob");
        reduced[d] = true;
      }
      std::vector<int64_t> out_dims;
      for (int64_t i = 0; i < in.rank(); ++i) {
        if (reduced[i]) {
          if (keep) out_dims.push_back(1);
        } else {
          out_dims.push_back(in.dims[i]);
        }
      }
      return types(TensorType(in.dtype, std::move(out_dims)));
    }

    case OpKind::kMatMul: {
      const TensorType& a = operand_types[0];
      const TensorType& b = operand_types[1];
      if (a.rank() < 2 || b.rank() < 2) {
        return Invalid(kind, "operands must have rank >= 2");
      }
      if (a.dtype != b.dtype) return Invalid(kind, "dtype mismatch");
      bool ta = attrs.count("transpose_a") && attrs.at("transpose_a").AsInt();
      bool tb = attrs.count("transpose_b") && attrs.at("transpose_b").AsInt();
      int64_t m = a.dims[a.rank() - (ta ? 1 : 2)];
      int64_t ka = a.dims[a.rank() - (ta ? 2 : 1)];
      int64_t kb = b.dims[b.rank() - (tb ? 1 : 2)];
      int64_t n = b.dims[b.rank() - (tb ? 2 : 1)];
      if (ka != kDynamicDim && kb != kDynamicDim && ka != kb) {
        return Invalid(kind, StrFormat("contraction dims differ: %lld vs %lld",
                                       static_cast<long long>(ka),
                                       static_cast<long long>(kb)));
      }
      std::vector<int64_t> batch_a(a.dims.begin(), a.dims.end() - 2);
      std::vector<int64_t> batch_b(b.dims.begin(), b.dims.end() - 2);
      DISC_ASSIGN_OR_RETURN(std::vector<int64_t> batch,
                            BroadcastDims(batch_a, batch_b));
      batch.push_back(m);
      batch.push_back(n);
      return types(TensorType(a.dtype, std::move(batch)));
    }

    case OpKind::kConv2D: {
      const TensorType& in = operand_types[0];   // NHWC
      const TensorType& filter = operand_types[1];  // KhKwC0C1
      if (in.rank() != 4 || filter.rank() != 4) {
        return Invalid(kind, "conv2d expects rank-4 input and filter");
      }
      std::vector<int64_t> strides = attrs.count("strides")
                                         ? attrs.at("strides").AsIntList()
                                         : std::vector<int64_t>{1, 1};
      std::vector<int64_t> padding = attrs.count("padding")
                                         ? attrs.at("padding").AsIntList()
                                         : std::vector<int64_t>{0, 0};
      if (strides.size() != 2 || padding.size() != 2) {
        return Invalid(kind, "strides/padding must have 2 entries");
      }
      auto conv_out = [&](int64_t in_d, int64_t k, int64_t s,
                          int64_t p) -> int64_t {
        if (in_d == kDynamicDim || k == kDynamicDim) return kDynamicDim;
        return (in_d + 2 * p - k) / s + 1;
      };
      int64_t oh = conv_out(in.dims[1], filter.dims[0], strides[0], padding[0]);
      int64_t ow = conv_out(in.dims[2], filter.dims[1], strides[1], padding[1]);
      return types(
          TensorType(in.dtype, {in.dims[0], oh, ow, filter.dims[3]}));
    }

    case OpKind::kTranspose: {
      const TensorType& in = operand_types[0];
      auto it = attrs.find("perm");
      if (it == attrs.end()) return Invalid(kind, "missing 'perm' attr");
      const std::vector<int64_t>& perm = it->second.AsIntList();
      if (static_cast<int64_t>(perm.size()) != in.rank()) {
        return Invalid(kind, "perm size != rank");
      }
      std::vector<int64_t> dims(in.rank());
      std::vector<bool> used(in.rank(), false);
      for (int64_t i = 0; i < in.rank(); ++i) {
        if (perm[i] < 0 || perm[i] >= in.rank() || used[perm[i]]) {
          return Invalid(kind, "perm is not a permutation");
        }
        used[perm[i]] = true;
        dims[i] = in.dims[perm[i]];
      }
      return types(TensorType(in.dtype, std::move(dims)));
    }

    case OpKind::kReshape: {
      const TensorType& in = operand_types[0];
      DISC_ASSIGN_OR_RETURN(
          std::vector<int64_t> target,
          ResolveTargetShape(kind, operand_types, attrs, operand_constants));
      // Resolve a single -1 wildcard when input size is known.
      int wildcard = -1;
      int64_t known_product = 1;
      int n_wild = 0;
      for (size_t i = 0; i < target.size(); ++i) {
        if (target[i] == kDynamicDim) {
          wildcard = static_cast<int>(i);
          ++n_wild;
        } else {
          known_product *= target[i];
        }
      }
      if (n_wild == 1 && in.IsFullyStatic()) {
        int64_t total = in.NumElements();
        if (known_product == 0 || total % known_product != 0) {
          return Invalid(kind, "element count mismatch");
        }
        target[wildcard] = total / known_product;
      }
      if (n_wild == 0 && in.IsFullyStatic()) {
        int64_t total = in.NumElements();
        if (total != Product(target)) {
          return Invalid(kind, "element count mismatch");
        }
      }
      return types(TensorType(in.dtype, std::move(target)));
    }

    case OpKind::kBroadcastTo: {
      const TensorType& in = operand_types[0];
      DISC_ASSIGN_OR_RETURN(
          std::vector<int64_t> target,
          ResolveTargetShape(kind, operand_types, attrs, operand_constants));
      if (static_cast<int64_t>(target.size()) < in.rank()) {
        return Invalid(kind, "broadcast rank smaller than input rank");
      }
      // Validate right-aligned compatibility where both are known.
      int64_t offset = static_cast<int64_t>(target.size()) - in.rank();
      for (int64_t i = 0; i < in.rank(); ++i) {
        int64_t from = in.dims[i];
        int64_t to = target[offset + i];
        if (from != kDynamicDim && to != kDynamicDim && from != 1 &&
            from != to) {
          return Invalid(kind, "incompatible broadcast dims");
        }
      }
      return types(TensorType(in.dtype, std::move(target)));
    }

    case OpKind::kConcat: {
      auto it = attrs.find("axis");
      if (it == attrs.end()) return Invalid(kind, "missing 'axis' attr");
      int64_t axis = it->second.AsInt();
      const TensorType& first = operand_types[0];
      if (axis < 0 || axis >= first.rank()) return Invalid(kind, "axis oob");
      std::vector<int64_t> dims = first.dims;
      for (size_t i = 1; i < operand_types.size(); ++i) {
        const TensorType& t = operand_types[i];
        if (t.dtype != first.dtype) return Invalid(kind, "dtype mismatch");
        if (t.rank() != first.rank()) return Invalid(kind, "rank mismatch");
        for (int64_t d = 0; d < first.rank(); ++d) {
          if (d == axis) {
            if (dims[d] == kDynamicDim || t.dims[d] == kDynamicDim) {
              dims[d] = kDynamicDim;
            } else {
              dims[d] += t.dims[d];
            }
          } else {
            if (dims[d] != kDynamicDim && t.dims[d] != kDynamicDim &&
                dims[d] != t.dims[d]) {
              return Invalid(kind, "non-axis dims differ");
            }
            if (dims[d] == kDynamicDim && t.dims[d] != kDynamicDim) {
              dims[d] = t.dims[d];
            }
          }
        }
      }
      return types(TensorType(first.dtype, std::move(dims)));
    }

    case OpKind::kSlice: {
      const TensorType& in = operand_types[0];
      for (const char* key : {"starts", "ends", "steps"}) {
        if (!attrs.count(key)) {
          return Invalid(kind, std::string("missing '") + key + "' attr");
        }
      }
      const auto& starts = attrs.at("starts").AsIntList();
      const auto& ends = attrs.at("ends").AsIntList();
      const auto& steps = attrs.at("steps").AsIntList();
      if (static_cast<int64_t>(starts.size()) != in.rank() ||
          ends.size() != starts.size() || steps.size() != starts.size()) {
        return Invalid(kind, "starts/ends/steps must match rank");
      }
      std::vector<int64_t> dims(in.rank());
      for (int64_t i = 0; i < in.rank(); ++i) {
        if (steps[i] <= 0) return Invalid(kind, "steps must be positive");
        int64_t end = ends[i];
        if (end == -1) {
          // "to the end" — stays symbolic when the dim is dynamic.
          if (in.dims[i] == kDynamicDim) {
            dims[i] = kDynamicDim;
            continue;
          }
          end = in.dims[i];
        }
        dims[i] = (end - starts[i] + steps[i] - 1) / steps[i];
        if (dims[i] < 0) return Invalid(kind, "negative slice extent");
      }
      return types(TensorType(in.dtype, std::move(dims)));
    }

    case OpKind::kGather: {
      const TensorType& data = operand_types[0];
      const TensorType& indices = operand_types[1];
      if (!IsIntegral(indices.dtype)) {
        return Invalid(kind, "indices must be integral");
      }
      auto it = attrs.find("axis");
      int64_t axis = it == attrs.end() ? 0 : it->second.AsInt();
      if (axis < 0 || axis >= data.rank()) return Invalid(kind, "axis oob");
      std::vector<int64_t> dims;
      for (int64_t i = 0; i < axis; ++i) dims.push_back(data.dims[i]);
      for (int64_t d : indices.dims) dims.push_back(d);
      for (int64_t i = axis + 1; i < data.rank(); ++i) {
        dims.push_back(data.dims[i]);
      }
      return types(TensorType(data.dtype, std::move(dims)));
    }

    case OpKind::kPad: {
      const TensorType& in = operand_types[0];
      if (!attrs.count("pads_low") || !attrs.count("pads_high")) {
        return Invalid(kind, "missing pads attrs");
      }
      const auto& low = attrs.at("pads_low").AsIntList();
      const auto& high = attrs.at("pads_high").AsIntList();
      if (static_cast<int64_t>(low.size()) != in.rank() ||
          low.size() != high.size()) {
        return Invalid(kind, "pads must match rank");
      }
      std::vector<int64_t> dims(in.rank());
      for (int64_t i = 0; i < in.rank(); ++i) {
        dims[i] = in.dims[i] == kDynamicDim ? kDynamicDim
                                            : in.dims[i] + low[i] + high[i];
      }
      return types(TensorType(in.dtype, std::move(dims)));
    }

    case OpKind::kShapeOf: {
      return types(TensorType(DType::kI64, {operand_types[0].rank()}));
    }
    case OpKind::kDim: {
      auto it = attrs.find("index");
      if (it == attrs.end()) return Invalid(kind, "missing 'index' attr");
      int64_t index = it->second.AsInt();
      if (index < 0 || index >= operand_types[0].rank()) {
        return Invalid(kind, "index oob");
      }
      return types(TensorType(DType::kI64, {}));
    }

    default:
      break;
  }

  // Generic elementwise handling (unary same-type; binary broadcast).
  if (info.op_class == OpClass::kElementwise) {
    if (operand_types.size() == 1) {
      return types(operand_types[0]);
    }
    if (operand_types.size() == 2) {
      if (operand_types[0].dtype != operand_types[1].dtype) {
        return Invalid(kind, "dtype mismatch: " +
                                 operand_types[0].ToString() + " vs " +
                                 operand_types[1].ToString());
      }
      DISC_ASSIGN_OR_RETURN(
          std::vector<int64_t> dims,
          BroadcastDims(operand_types[0].dims, operand_types[1].dims));
      DType out_dtype =
          IsPredicateOp(kind) ? DType::kI1 : operand_types[0].dtype;
      return types(TensorType(out_dtype, std::move(dims)));
    }
  }
  return Invalid(kind, "no inference rule");
}

}  // namespace disc
