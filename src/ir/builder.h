// Convenience API for constructing graphs with automatic type inference.
#ifndef DISC_IR_BUILDER_H_
#define DISC_IR_BUILDER_H_

#include <string>
#include <vector>

#include "ir/graph.h"
#include "ir/type_inference.h"

namespace disc {

/// \brief Builds nodes into a Graph, inferring output types eagerly.
///
/// Inference failures are programming errors in model-building code, so the
/// builder aborts on them (DISC_CHECK) rather than returning Status — this
/// keeps model definitions readable. Use Graph::CreateNode +
/// InferOutputTypes directly if you need recoverable errors.
class GraphBuilder {
 public:
  explicit GraphBuilder(Graph* graph) : graph_(graph) {}

  Graph* graph() const { return graph_; }

  /// \brief Declares a graph input.
  Value* Input(const std::string& name, DType dtype,
               std::vector<int64_t> dims) {
    return graph_->AddInput(name, TensorType(dtype, std::move(dims)));
  }

  /// \brief Generic node creation with inference.
  Value* Create(OpKind kind, std::vector<Value*> operands, AttrMap attrs = {});

  // --- creation ---------------------------------------------------------
  Value* Constant(Tensor value);
  Value* ScalarF32(float v) { return Constant(Tensor::ScalarF32(v)); }
  Value* ScalarI64(int64_t v) { return Constant(Tensor::ScalarI64(v)); }

  // --- elementwise -------------------------------------------------------
  Value* Unary(OpKind kind, Value* x) { return Create(kind, {x}); }
  Value* Abs(Value* x) { return Unary(OpKind::kAbs, x); }
  Value* Neg(Value* x) { return Unary(OpKind::kNeg, x); }
  Value* Exp(Value* x) { return Unary(OpKind::kExp, x); }
  Value* Log(Value* x) { return Unary(OpKind::kLog, x); }
  Value* Sqrt(Value* x) { return Unary(OpKind::kSqrt, x); }
  Value* Rsqrt(Value* x) { return Unary(OpKind::kRsqrt, x); }
  Value* Tanh(Value* x) { return Unary(OpKind::kTanh, x); }
  Value* Erf(Value* x) { return Unary(OpKind::kErf, x); }
  Value* Sigmoid(Value* x) { return Unary(OpKind::kSigmoid, x); }
  Value* Relu(Value* x) { return Unary(OpKind::kRelu, x); }
  Value* Reciprocal(Value* x) { return Unary(OpKind::kReciprocal, x); }
  Value* Cast(Value* x, DType to) {
    return Create(OpKind::kCast, {x}, {{"to", to}});
  }

  Value* Binary(OpKind kind, Value* a, Value* b) { return Create(kind, {a, b}); }
  Value* Add(Value* a, Value* b) { return Binary(OpKind::kAdd, a, b); }
  Value* Sub(Value* a, Value* b) { return Binary(OpKind::kSub, a, b); }
  Value* Mul(Value* a, Value* b) { return Binary(OpKind::kMul, a, b); }
  Value* Div(Value* a, Value* b) { return Binary(OpKind::kDiv, a, b); }
  Value* Pow(Value* a, Value* b) { return Binary(OpKind::kPow, a, b); }
  Value* Maximum(Value* a, Value* b) { return Binary(OpKind::kMaximum, a, b); }
  Value* Minimum(Value* a, Value* b) { return Binary(OpKind::kMinimum, a, b); }
  Value* Less(Value* a, Value* b) { return Binary(OpKind::kLess, a, b); }
  Value* Greater(Value* a, Value* b) { return Binary(OpKind::kGreater, a, b); }
  Value* Equal(Value* a, Value* b) { return Binary(OpKind::kEqual, a, b); }
  Value* Select(Value* pred, Value* t, Value* f) {
    return Create(OpKind::kSelect, {pred, t, f});
  }

  // --- reductions --------------------------------------------------------
  Value* Reduce(OpKind kind, Value* x, std::vector<int64_t> dims,
                bool keep_dims = false) {
    return Create(kind, {x},
                  {{"dims", std::move(dims)},
                   {"keep_dims", static_cast<int64_t>(keep_dims)}});
  }
  Value* ReduceSum(Value* x, std::vector<int64_t> dims, bool keep = false) {
    return Reduce(OpKind::kReduceSum, x, std::move(dims), keep);
  }
  Value* ReduceMax(Value* x, std::vector<int64_t> dims, bool keep = false) {
    return Reduce(OpKind::kReduceMax, x, std::move(dims), keep);
  }
  Value* ReduceMean(Value* x, std::vector<int64_t> dims, bool keep = false) {
    return Reduce(OpKind::kReduceMean, x, std::move(dims), keep);
  }

  // --- library ops -------------------------------------------------------
  Value* MatMul(Value* a, Value* b, bool transpose_a = false,
                bool transpose_b = false) {
    return Create(OpKind::kMatMul, {a, b},
                  {{"transpose_a", static_cast<int64_t>(transpose_a)},
                   {"transpose_b", static_cast<int64_t>(transpose_b)}});
  }
  Value* Conv2D(Value* input, Value* filter, std::vector<int64_t> strides,
                std::vector<int64_t> padding) {
    return Create(OpKind::kConv2D, {input, filter},
                  {{"strides", std::move(strides)},
                   {"padding", std::move(padding)}});
  }

  // --- data movement -----------------------------------------------------
  Value* Transpose(Value* x, std::vector<int64_t> perm) {
    return Create(OpKind::kTranspose, {x}, {{"perm", std::move(perm)}});
  }
  /// \brief Static reshape (one -1 wildcard allowed).
  Value* Reshape(Value* x, std::vector<int64_t> new_shape) {
    return Create(OpKind::kReshape, {x}, {{"new_shape", std::move(new_shape)}});
  }
  /// \brief Dynamic reshape: target shape is a runtime 1-D i64 tensor.
  Value* ReshapeDynamic(Value* x, Value* shape) {
    return Create(OpKind::kReshape, {x, shape});
  }
  Value* BroadcastTo(Value* x, std::vector<int64_t> new_shape) {
    return Create(OpKind::kBroadcastTo, {x},
                  {{"new_shape", std::move(new_shape)}});
  }
  Value* BroadcastToDynamic(Value* x, Value* shape) {
    return Create(OpKind::kBroadcastTo, {x, shape});
  }
  Value* Concat(std::vector<Value*> parts, int64_t axis) {
    return Create(OpKind::kConcat, std::move(parts), {{"axis", axis}});
  }
  Value* Slice(Value* x, std::vector<int64_t> starts, std::vector<int64_t> ends,
               std::vector<int64_t> steps) {
    return Create(OpKind::kSlice, {x},
                  {{"starts", std::move(starts)},
                   {"ends", std::move(ends)},
                   {"steps", std::move(steps)}});
  }
  Value* Gather(Value* data, Value* indices, int64_t axis = 0) {
    return Create(OpKind::kGather, {data, indices}, {{"axis", axis}});
  }
  Value* Pad(Value* x, std::vector<int64_t> low, std::vector<int64_t> high,
             double value = 0.0) {
    return Create(OpKind::kPad, {x},
                  {{"pads_low", std::move(low)},
                   {"pads_high", std::move(high)},
                   {"pad_value", value}});
  }

  // --- shape computation ---------------------------------------------------
  Value* ShapeOf(Value* x) { return Create(OpKind::kShapeOf, {x}); }
  Value* Dim(Value* x, int64_t index) {
    return Create(OpKind::kDim, {x}, {{"index", index}});
  }
  Value* Iota(std::vector<int64_t> dims, int64_t axis,
              DType dtype = DType::kI64) {
    return Create(OpKind::kIota, {},
                  {{"dims", std::move(dims)}, {"axis", axis}, {"dtype", dtype}});
  }

  // --- composite helpers (emit primitive subgraphs) -----------------------
  /// \brief softmax over the last axis, numerically stabilized.
  Value* Softmax(Value* x);
  /// \brief layer norm over the last axis with learned scale/bias.
  Value* LayerNorm(Value* x, Value* scale, Value* bias, float epsilon = 1e-5f);
  /// \brief tanh-approximated GELU.
  Value* Gelu(Value* x);

  void Output(std::vector<Value*> outputs) {
    graph_->SetOutputs(std::move(outputs));
  }

 private:
  Graph* graph_;
};

}  // namespace disc

#endif  // DISC_IR_BUILDER_H_
