// Element types supported by the compiler.
//
// The set is deliberately small: f32 carries all "real" model data, i64
// carries shapes/indices (mirroring how real stacks compute shapes in i64),
// and i1 carries predicates. This keeps the execution engine simple while
// exercising every dtype-related code path (casts, mixed-type ops, shape
// tensors) the paper's system needs.
#ifndef DISC_IR_DTYPE_H_
#define DISC_IR_DTYPE_H_

#include <cstdint>
#include <string>

namespace disc {

enum class DType : uint8_t {
  kF32 = 0,
  kI64 = 1,
  kI1 = 2,  // boolean
};

/// \brief Size of one element in bytes.
inline int64_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kI64:
      return 8;
    case DType::kI1:
      return 1;
  }
  return 0;
}

/// \brief Lower-case name ("f32", "i64", "i1").
const char* DTypeName(DType dtype);

/// \brief True for i64/i1.
inline bool IsIntegral(DType dtype) { return dtype != DType::kF32; }

}  // namespace disc

#endif  // DISC_IR_DTYPE_H_
