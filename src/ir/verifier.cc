#include "ir/graph.h"
#include "ir/type_inference.h"
#include "support/string_util.h"

namespace disc {

// Structural verification: operand counts, dtype constraints, output types
// consistent with re-running inference, DAG property.
Status Graph::Verify() const {
  // Acyclicity (TopologicalOrder aborts on a cycle, so pre-check here with a
  // non-fatal coloring walk).
  {
    enum Color { kWhite, kGray, kBlack };
    std::unordered_map<const Node*, Color> color;
    // Iterative DFS.
    for (const auto& owned : nodes_) {
      Node* start = owned.get();
      if (color[start] != kWhite) continue;
      std::vector<std::pair<Node*, size_t>> stack = {{start, 0}};
      color[start] = kGray;
      while (!stack.empty()) {
        auto& [node, idx] = stack.back();
        if (idx >= node->operands().size()) {
          color[node] = kBlack;
          stack.pop_back();
          continue;
        }
        Value* operand = node->operands()[idx++];
        Node* producer = operand->producer();
        if (producer == nullptr) continue;
        if (color[producer] == kGray) {
          return Status::Internal("graph contains a cycle through node " +
                                  std::to_string(producer->id()));
        }
        if (color[producer] == kWhite) {
          color[producer] = kGray;
          stack.emplace_back(producer, 0);
        }
      }
    }
  }

  for (const auto& owned : nodes_) {
    const Node* node = owned.get();
    const OpInfo& info = GetOpInfo(node->kind());
    int n = node->num_operands();
    if (n < info.min_operands ||
        (info.max_operands >= 0 && n > info.max_operands)) {
      return Status::InvalidArgument(
          StrFormat("node %%%d (%s): bad operand count %d", node->id(),
                    info.name, n));
    }
    // Re-run inference and require consistency (a dim may be *more* static
    // in the stored type only if inference returned dynamic there).
    std::vector<TensorType> operand_types;
    std::vector<const Tensor*> operand_constants;
    for (Value* operand : node->operands()) {
      operand_types.push_back(operand->type());
      const Tensor* constant = nullptr;
      if (Node* producer = operand->producer();
          producer != nullptr && producer->kind() == OpKind::kConstant) {
        constant = &producer->GetTensorAttr("value");
      }
      operand_constants.push_back(constant);
    }
    auto inferred = InferOutputTypes(node->kind(), operand_types,
                                     node->attrs(), operand_constants);
    if (!inferred.ok()) {
      return Status::InvalidArgument(
          StrFormat("node %%%d (%s): %s", node->id(), info.name,
                    inferred.status().message().c_str()));
    }
    if (inferred->size() != node->outputs().size()) {
      return Status::InvalidArgument(
          StrFormat("node %%%d (%s): output count mismatch", node->id(),
                    info.name));
    }
    for (size_t i = 0; i < inferred->size(); ++i) {
      const TensorType& stored = node->output(static_cast<int>(i))->type();
      const TensorType& computed = (*inferred)[i];
      if (stored.dtype != computed.dtype ||
          stored.rank() != computed.rank()) {
        return Status::InvalidArgument(StrFormat(
            "node %%%d (%s): stored type %s vs inferred %s", node->id(),
            info.name, stored.ToString().c_str(),
            computed.ToString().c_str()));
      }
      for (int64_t d = 0; d < stored.rank(); ++d) {
        // A stored static dim must match inference exactly; a stored
        // dynamic dim is sound imprecision (tightened by
        // RefineStaticTypes) and is accepted.
        if (stored.dims[d] != kDynamicDim &&
            computed.dims[d] != kDynamicDim &&
            stored.dims[d] != computed.dims[d]) {
          return Status::InvalidArgument(StrFormat(
              "node %%%d (%s): dim %lld mismatch (%s vs %s)", node->id(),
              info.name, static_cast<long long>(d),
              stored.ToString().c_str(), computed.ToString().c_str()));
        }
      }
    }
  }
  for (const Value* out : outputs_) {
    if (out == nullptr) return Status::InvalidArgument("null graph output");
  }
  return Status::OK();
}

Status Graph::SpecializeInputs(
    const std::vector<std::vector<int64_t>>& dims) {
  if (dims.size() != inputs_.size()) {
    return Status::InvalidArgument("SpecializeInputs: input count mismatch");
  }
  for (size_t i = 0; i < inputs_.size(); ++i) {
    Value* input = inputs_[i];
    if (static_cast<int64_t>(dims[i].size()) != input->rank()) {
      return Status::InvalidArgument(
          StrFormat("SpecializeInputs: input %zu rank mismatch", i));
    }
    for (int64_t d = 0; d < input->rank(); ++d) {
      int64_t declared = input->type_.dims[d];
      if (declared != kDynamicDim && declared != dims[i][d]) {
        return Status::InvalidArgument(
            StrFormat("SpecializeInputs: input %zu dim %lld is %lld, cannot "
                      "pin to %lld",
                      i, static_cast<long long>(d),
                      static_cast<long long>(declared),
                      static_cast<long long>(dims[i][d])));
      }
      input->type_.dims[d] = dims[i][d];
    }
  }
  RefineStaticTypes();
  return Status::OK();
}

int64_t Graph::RefineStaticTypes() {
  int64_t tightened = 0;
  for (Node* node : TopologicalOrder()) {
    std::vector<TensorType> operand_types;
    std::vector<const Tensor*> operand_constants;
    for (Value* operand : node->operands()) {
      operand_types.push_back(operand->type());
      const Tensor* constant = nullptr;
      if (Node* producer = operand->producer();
          producer != nullptr && producer->kind() == OpKind::kConstant) {
        constant = &producer->GetTensorAttr("value");
      }
      operand_constants.push_back(constant);
    }
    auto inferred = InferOutputTypes(node->kind(), operand_types,
                                     node->attrs(), operand_constants);
    if (!inferred.ok()) continue;
    for (size_t i = 0;
         i < inferred->size() && i < node->outputs().size(); ++i) {
      Value* out = node->output(static_cast<int>(i));
      TensorType& stored = out->type_;
      const TensorType& computed = (*inferred)[i];
      if (stored.rank() != computed.rank()) continue;
      for (int64_t d = 0; d < stored.rank(); ++d) {
        if (stored.dims[d] == kDynamicDim &&
            computed.dims[d] != kDynamicDim) {
          stored.dims[d] = computed.dims[d];
          ++tightened;
        }
      }
    }
  }
  return tightened;
}

}  // namespace disc
