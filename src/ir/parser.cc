#include "ir/parser.h"

#include <cctype>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "support/string_util.h"

namespace disc {
namespace {

// Minimal recursive-descent tokenizer/cursor over the graph text.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool TryConsume(const std::string& token) {
    SkipSpace();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status Consume(const std::string& token) {
    if (!TryConsume(token)) {
      return Status::InvalidArgument("expected '" + token + "' at: " +
                                     Context());
    }
    return Status::OK();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_.]*
  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at: " + Context());
    }
    return text_.substr(start, pos_ - start);
  }

  Result<int64_t> ParseInt() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected integer at: " + Context());
    }
    return std::stoll(text_.substr(start, pos_ - start));
  }

  /// Number: integer or floating point; `is_float` reports which.
  Result<double> ParseNumber(bool* is_float) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    *is_float = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        *is_float = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else if (c == 'n' && text_.compare(pos_, 3, "nan") == 0) {
        *is_float = true;
        pos_ += 3;
        return std::nan("");
      } else if (c == 'i' && text_.compare(pos_, 3, "inf") == 0) {
        *is_float = true;
        pos_ += 3;
        bool neg = text_[start] == '-';
        return neg ? -std::numeric_limits<double>::infinity()
                   : std::numeric_limits<double>::infinity();
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected number at: " + Context());
    }
    return std::stod(text_.substr(start, pos_ - start));
  }

  std::string Context() const {
    return "'" + text_.substr(pos_, std::min<size_t>(24, text_.size() - pos_)) +
           "'";
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Result<DType> ParseDType(const std::string& name) {
  if (name == "f32") return DType::kF32;
  if (name == "i64") return DType::kI64;
  if (name == "i1") return DType::kI1;
  return Status::InvalidArgument("unknown dtype: " + name);
}

// f32[?x128] etc.
Result<TensorType> ParseType(Cursor* cursor) {
  DISC_ASSIGN_OR_RETURN(std::string dtype_name, cursor->ParseIdent());
  DISC_ASSIGN_OR_RETURN(DType dtype, ParseDType(dtype_name));
  DISC_RETURN_IF_ERROR(cursor->Consume("["));
  std::vector<int64_t> dims;
  if (!cursor->TryConsume("]")) {
    while (true) {
      if (cursor->TryConsume("?")) {
        dims.push_back(kDynamicDim);
      } else {
        DISC_ASSIGN_OR_RETURN(int64_t d, cursor->ParseInt());
        dims.push_back(d);
      }
      if (cursor->TryConsume("]")) break;
      DISC_RETURN_IF_ERROR(cursor->Consume("x"));
    }
  }
  return TensorType(dtype, std::move(dims));
}

Result<Attribute> ParseAttrValue(Cursor* cursor) {
  char c = cursor->Peek();
  if (c == '"') {
    DISC_RETURN_IF_ERROR(cursor->Consume("\""));
    std::string s;
    while (cursor->Peek() != '"') {
      bool is_float;
      (void)is_float;
      // Strings in our attrs contain no escapes; read raw until quote.
      // Peek skips spaces, so rebuild character by character.
      // (Strings are rare — op names only — keep it simple.)
      DISC_ASSIGN_OR_RETURN(std::string part, cursor->ParseIdent());
      if (!s.empty()) s += " ";
      s += part;
    }
    DISC_RETURN_IF_ERROR(cursor->Consume("\""));
    return Attribute(std::move(s));
  }
  if (c == '[') {
    DISC_RETURN_IF_ERROR(cursor->Consume("["));
    std::vector<int64_t> list;
    if (!cursor->TryConsume("]")) {
      while (true) {
        DISC_ASSIGN_OR_RETURN(int64_t v, cursor->ParseInt());
        list.push_back(v);
        if (cursor->TryConsume("]")) break;
        DISC_RETURN_IF_ERROR(cursor->Consume(","));
      }
    }
    return Attribute(std::move(list));
  }
  if (std::isalpha(static_cast<unsigned char>(c))) {
    // dtype name or tensor literal (dtype followed by '[').
    DISC_ASSIGN_OR_RETURN(std::string ident, cursor->ParseIdent());
    if (cursor->Peek() == '[') {
      // Rewind is awkward; parse the remainder of a tensor literal here.
      DISC_ASSIGN_OR_RETURN(DType dtype, ParseDType(ident));
      DISC_RETURN_IF_ERROR(cursor->Consume("["));
      std::vector<int64_t> dims;
      if (!cursor->TryConsume("]")) {
        while (true) {
          DISC_ASSIGN_OR_RETURN(int64_t d, cursor->ParseInt());
          dims.push_back(d);
          if (cursor->TryConsume("]")) break;
          DISC_RETURN_IF_ERROR(cursor->Consume("x"));
        }
      }
      DISC_RETURN_IF_ERROR(cursor->Consume("{"));
      Tensor t(dtype, dims);
      for (int64_t i = 0; i < t.num_elements(); ++i) {
        if (cursor->Peek() == '.') {
          return Status::InvalidArgument("truncated tensor literal");
        }
        bool is_float = false;
        DISC_ASSIGN_OR_RETURN(double v, cursor->ParseNumber(&is_float));
        t.SetElementFromDouble(i, v);
        if (i + 1 < t.num_elements()) DISC_RETURN_IF_ERROR(cursor->Consume(","));
      }
      DISC_RETURN_IF_ERROR(cursor->Consume("}"));
      return Attribute(std::move(t));
    }
    DISC_ASSIGN_OR_RETURN(DType dtype, ParseDType(ident));
    return Attribute(dtype);
  }
  bool is_float = false;
  DISC_ASSIGN_OR_RETURN(double v, cursor->ParseNumber(&is_float));
  if (is_float) return Attribute(v);
  return Attribute(static_cast<int64_t>(v));
}

Result<AttrMap> ParseAttrs(Cursor* cursor) {
  AttrMap attrs;
  if (!cursor->TryConsume("{")) return attrs;
  if (cursor->TryConsume("}")) return attrs;
  while (true) {
    DISC_ASSIGN_OR_RETURN(std::string key, cursor->ParseIdent());
    DISC_RETURN_IF_ERROR(cursor->Consume("="));
    DISC_ASSIGN_OR_RETURN(Attribute value, ParseAttrValue(cursor));
    attrs.emplace(std::move(key), std::move(value));
    if (cursor->TryConsume("}")) break;
    DISC_RETURN_IF_ERROR(cursor->Consume(","));
  }
  return attrs;
}

Result<int64_t> ParseValueRef(Cursor* cursor) {
  DISC_RETURN_IF_ERROR(cursor->Consume("%"));
  return cursor->ParseInt();
}

}  // namespace

Result<std::unique_ptr<Graph>> ParseGraph(const std::string& text) {
  Cursor cursor(text);
  DISC_RETURN_IF_ERROR(cursor.Consume("graph"));
  std::string name;
  if (!cursor.TryConsume("<anon>")) {
    DISC_ASSIGN_OR_RETURN(name, cursor.ParseIdent());
  }
  auto graph = std::make_unique<Graph>(name);

  std::unordered_map<int64_t, Value*> values;

  // Inputs.
  DISC_RETURN_IF_ERROR(cursor.Consume("("));
  if (!cursor.TryConsume(")")) {
    while (true) {
      DISC_ASSIGN_OR_RETURN(int64_t id, ParseValueRef(&cursor));
      DISC_RETURN_IF_ERROR(cursor.Consume(":"));
      DISC_ASSIGN_OR_RETURN(TensorType type, ParseType(&cursor));
      values[id] = graph->AddInput("in" + std::to_string(id), type);
      if (cursor.TryConsume(")")) break;
      DISC_RETURN_IF_ERROR(cursor.Consume(","));
    }
  }
  DISC_RETURN_IF_ERROR(cursor.Consume("{"));

  // Nodes until 'return'.
  while (!cursor.TryConsume("return")) {
    // %a, %b = op(%x, %y) {attrs} : type, type
    std::vector<int64_t> out_ids;
    while (true) {
      DISC_ASSIGN_OR_RETURN(int64_t id, ParseValueRef(&cursor));
      out_ids.push_back(id);
      if (!cursor.TryConsume(",")) break;
    }
    DISC_RETURN_IF_ERROR(cursor.Consume("="));
    DISC_ASSIGN_OR_RETURN(std::string op_name, cursor.ParseIdent());
    OpKind kind = OpKindFromName(op_name);
    if (kind == OpKind::kNumOps) {
      return Status::InvalidArgument("unknown op: " + op_name);
    }
    DISC_RETURN_IF_ERROR(cursor.Consume("("));
    std::vector<Value*> operands;
    if (!cursor.TryConsume(")")) {
      while (true) {
        DISC_ASSIGN_OR_RETURN(int64_t id, ParseValueRef(&cursor));
        auto it = values.find(id);
        if (it == values.end()) {
          return Status::InvalidArgument("use of undefined value %" +
                                         std::to_string(id));
        }
        operands.push_back(it->second);
        if (cursor.TryConsume(")")) break;
        DISC_RETURN_IF_ERROR(cursor.Consume(","));
      }
    }
    DISC_ASSIGN_OR_RETURN(AttrMap attrs, ParseAttrs(&cursor));
    DISC_RETURN_IF_ERROR(cursor.Consume(":"));
    std::vector<TensorType> out_types;
    for (size_t i = 0; i < out_ids.size(); ++i) {
      DISC_ASSIGN_OR_RETURN(TensorType type, ParseType(&cursor));
      out_types.push_back(std::move(type));
      if (i + 1 < out_ids.size()) DISC_RETURN_IF_ERROR(cursor.Consume(","));
    }
    Node* node = graph->CreateNode(kind, std::move(operands),
                                   std::move(attrs), std::move(out_types));
    for (size_t i = 0; i < out_ids.size(); ++i) {
      values[out_ids[i]] = node->output(static_cast<int>(i));
    }
  }

  // Outputs.
  std::vector<Value*> outputs;
  while (true) {
    DISC_ASSIGN_OR_RETURN(int64_t id, ParseValueRef(&cursor));
    auto it = values.find(id);
    if (it == values.end()) {
      return Status::InvalidArgument("return of undefined value %" +
                                     std::to_string(id));
    }
    outputs.push_back(it->second);
    if (!cursor.TryConsume(",")) break;
  }
  graph->SetOutputs(std::move(outputs));
  DISC_RETURN_IF_ERROR(cursor.Consume("}"));
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("trailing text after graph");
  }
  DISC_RETURN_IF_ERROR(graph->Verify());
  return graph;
}

}  // namespace disc
