#include <gtest/gtest.h>

#include "support/failpoint.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/string_util.h"

namespace disc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

TEST(StatusTest, RetryableCodes) {
  // Transient environment failures are retryable; caller mistakes and
  // final outcomes are not.
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  // Retrying data loss would replay the same corrupt artifact; the caller
  // must discard/quarantine it instead.
  EXPECT_FALSE(Status::DataLoss("x").IsRetryable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Double(Result<int> in) {
  DISC_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_FALSE(Double(Status::Internal("boom")).ok());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  DISC_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{}, ", "), "");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  hi \n"), "hi");
  EXPECT_EQ(Strip(""), "");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("reduce_sum", "reduce"));
  EXPECT_FALSE(StartsWith("re", "reduce"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 3), 0);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(8, 4), 8);
}

TEST(MathUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(64), 64);
  EXPECT_EQ(NextPowerOfTwo(65), 128);
}

TEST(MathUtilTest, Product) {
  EXPECT_EQ(Product({}), 1);
  EXPECT_EQ(Product({2, 3, 4}), 24);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(LoggingTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  // Anything unrecognized — including no env var at all — falls back to
  // the quiet default.
  EXPECT_EQ(ParseLogLevel("verbose"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(nullptr), LogLevel::kWarning);
}

TEST(LoggingTest, SetLogLevelRoundTrip) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(saved);
}

TEST(LoggingDeathTest, CheckNePrintsBothValues) {
  EXPECT_DEATH({ DISC_CHECK_NE(3, 3) << "extra"; }, "\\(3 vs 3\\)");
}

TEST(LoggingDeathTest, CheckEqPrintsBothValues) {
  EXPECT_DEATH({ DISC_CHECK_EQ(2, 5); }, "\\(2 vs 5\\)");
}

// Failpoint tests share the process-global registry; each test disarms on
// exit so the rest of the suite stays fault-free.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedCheckIsOk) {
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(CheckFailpoint("nothing.armed").ok());
}

TEST_F(FailpointTest, SpecParseRoundTrips) {
  for (const char* spec :
       {"always", "once", "every:50", "prob:0.05:seed=7:max=20",
        "always:code=resource-exhausted", "once:code=internal"}) {
    Result<FailpointSpec> parsed = FailpointSpec::Parse(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status().ToString();
    Result<FailpointSpec> again = FailpointSpec::Parse(parsed->ToString());
    ASSERT_TRUE(again.ok()) << parsed->ToString();
    EXPECT_EQ(again->ToString(), parsed->ToString()) << spec;
  }
}

TEST_F(FailpointTest, SpecParseRejectsGarbage) {
  for (const char* spec :
       {"", "sometimes", "every:0", "every:x", "prob:1.5", "prob:-0.1",
        "always:bogus=1", "once:code=no-such-code"}) {
    EXPECT_FALSE(FailpointSpec::Parse(spec).ok()) << spec;
  }
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  FailpointSpec spec;
  spec.trigger = FailpointSpec::Trigger::kAlways;
  spec.code = StatusCode::kInternal;
  FailpointRegistry::Global().Arm("t.always", spec);
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status s = CheckFailpoint("t.always");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInternal);
  }
  EXPECT_EQ(FailpointRegistry::Global().fires("t.always"), 3);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(FailpointRegistry::Global().ArmFromSpec("t.once=once").ok());
  EXPECT_FALSE(CheckFailpoint("t.once").ok());
  EXPECT_TRUE(CheckFailpoint("t.once").ok());
  EXPECT_TRUE(CheckFailpoint("t.once").ok());
  EXPECT_EQ(FailpointRegistry::Global().fires("t.once"), 1);
}

TEST_F(FailpointTest, EveryNthFiresOnMultiples) {
  ASSERT_TRUE(FailpointRegistry::Global().ArmFromSpec("t.nth=every:3").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(!CheckFailpoint("t.nth").ok());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailpointTest, ProbabilityScheduleIsSeedDeterministic) {
  auto run = [](const char* name) {
    FailpointRegistry::Global().ArmFromSpec(
        std::string(name) + "=prob:0.3:seed=42");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!CheckFailpoint(name).ok());
    return fired;
  };
  std::vector<bool> a = run("t.prob_a");
  std::vector<bool> b = run("t.prob_b");
  EXPECT_EQ(a, b);  // same seed, same schedule
  int64_t fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST_F(FailpointTest, MaxCapsTotalFires) {
  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec("t.max=always:max=2").ok());
  int64_t fires = 0;
  for (int i = 0; i < 10; ++i) fires += CheckFailpoint("t.max").ok() ? 0 : 1;
  EXPECT_EQ(fires, 2);
}

TEST_F(FailpointTest, InjectedCodeIsHonoured) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("t.code=always:code=deadline-exceeded")
                  .ok());
  EXPECT_EQ(CheckFailpoint("t.code").code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FailpointTest, DataLossCodeIsInjectable) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("t.dataloss=always:code=data-loss")
                  .ok());
  Status s = CheckFailpoint("t.dataloss");
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(s.IsRetryable());
}

// Grammar boundary values: the extremes of each trigger are legal specs
// with well-defined schedules.
TEST_F(FailpointTest, ProbabilityZeroParsesAndNeverFires) {
  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec("t.p0=prob:0:seed=5").ok());
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(CheckFailpoint("t.p0").ok());
  EXPECT_EQ(FailpointRegistry::Global().fires("t.p0"), 0);
}

TEST_F(FailpointTest, ProbabilityOneParsesAndAlwaysFires) {
  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec("t.p1=prob:1:seed=5").ok());
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(CheckFailpoint("t.p1").ok());
  EXPECT_EQ(FailpointRegistry::Global().fires("t.p1"), 16);
}

TEST_F(FailpointTest, EveryOneFiresOnEveryHit) {
  ASSERT_TRUE(FailpointRegistry::Global().ArmFromSpec("t.e1=every:1").ok());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(CheckFailpoint("t.e1").ok());
  EXPECT_EQ(FailpointRegistry::Global().fires("t.e1"), 5);
}

// An unknown parameter is a parse error surfaced as InvalidArgument — the
// process must not abort, and nothing gets armed.
TEST_F(FailpointTest, UnknownParamIsParseErrorNotAbort) {
  FailpointRegistry::Global().DisarmAll();
  Status s = FailpointRegistry::Global().ArmFromSpec("t.bad=once:retries=3");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(CheckFailpoint("t.bad").ok());
}

TEST_F(FailpointTest, ArmFromSpecParsesMultipleEntries) {
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("t.one=once;t.two=every:2")
                  .ok());
  EXPECT_FALSE(CheckFailpoint("t.one").ok());
  EXPECT_TRUE(CheckFailpoint("t.two").ok());
  EXPECT_FALSE(CheckFailpoint("t.two").ok());
}

TEST_F(FailpointTest, ArmFromSpecRejectsBadEntries) {
  EXPECT_FALSE(FailpointRegistry::Global().ArmFromSpec("justaname").ok());
  EXPECT_FALSE(FailpointRegistry::Global().ArmFromSpec("x=never").ok());
}

TEST_F(FailpointTest, DisarmAllResetsAnyArmed) {
  ASSERT_TRUE(FailpointRegistry::Global().ArmFromSpec("t.reset=always").ok());
  EXPECT_TRUE(FailpointRegistry::AnyArmed());
  EXPECT_FALSE(FailpointRegistry::Global().Summary().empty());
  FailpointRegistry::Global().DisarmAll();
  EXPECT_FALSE(FailpointRegistry::AnyArmed());
  EXPECT_TRUE(CheckFailpoint("t.reset").ok());
  EXPECT_TRUE(FailpointRegistry::Global().Summary().empty());
}

TEST_F(FailpointTest, SnapshotReportsHitsAndFires) {
  ASSERT_TRUE(FailpointRegistry::Global().ArmFromSpec("t.snap=every:2").ok());
  for (int i = 0; i < 4; ++i) CheckFailpoint("t.snap");
  auto snapshot = FailpointRegistry::Global().Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "t.snap");
  EXPECT_EQ(snapshot[0].hits, 4);
  EXPECT_EQ(snapshot[0].fires, 2);
}

TEST(RngTest, CategoricalRespectsZeroWeight) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

}  // namespace
}  // namespace disc
