#include <gtest/gtest.h>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/string_util.h"

namespace disc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Double(Result<int> in) {
  DISC_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_FALSE(Double(Status::Internal("boom")).ok());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  DISC_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<int>{}, ", "), "");
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(Strip("  hi \n"), "hi");
  EXPECT_EQ(Strip(""), "");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("reduce_sum", "reduce"));
  EXPECT_FALSE(StartsWith("re", "reduce"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 3), 0);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(8, 4), 8);
}

TEST(MathUtilTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(64), 64);
  EXPECT_EQ(NextPowerOfTwo(65), 128);
}

TEST(MathUtilTest, Product) {
  EXPECT_EQ(Product({}), 1);
  EXPECT_EQ(Product({2, 3, 4}), 24);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(LoggingTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  // Anything unrecognized — including no env var at all — falls back to
  // the quiet default.
  EXPECT_EQ(ParseLogLevel("verbose"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(nullptr), LogLevel::kWarning);
}

TEST(LoggingTest, SetLogLevelRoundTrip) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(saved);
}

TEST(LoggingDeathTest, CheckNePrintsBothValues) {
  EXPECT_DEATH({ DISC_CHECK_NE(3, 3) << "extra"; }, "\\(3 vs 3\\)");
}

TEST(LoggingDeathTest, CheckEqPrintsBothValues) {
  EXPECT_DEATH({ DISC_CHECK_EQ(2, 5); }, "\\(2 vs 5\\)");
}

TEST(RngTest, CategoricalRespectsZeroWeight) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

}  // namespace
}  // namespace disc
