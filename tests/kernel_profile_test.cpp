#include "support/kernel_profile.h"

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/blame.h"
#include "support/json.h"

namespace disc {
namespace {

// 1-D elementwise chain: one loop-fusion kernel whose vec4 variant is
// guarded (divisibility unprovable for a bare dynamic N).
std::unique_ptr<Graph> BuildExpChain() {
  auto g = std::make_unique<Graph>("exp_chain");
  GraphBuilder b(g.get());
  Value* x = b.Input("x", DType::kF32, {kDynamicDim});
  b.Output({b.Relu(b.Exp(b.Add(x, x)))});
  return g;
}

class KernelProfileTest : public ::testing::Test {
 protected:
  // The ledger is process-global: isolate every test and fence kernel
  // pointers before the Executables of this test die.
  void SetUp() override {
    KernelProfileLedger::Global().Clear();
    KernelProfileLedger::Global().Configure({});
    KernelProfileLedger::Global().Enable();
  }
  void TearDown() override {
    KernelProfileLedger::Global().Clear();
    KernelProfileLedger::Global().Disable();
  }
};

TEST_F(KernelProfileTest, DisabledLedgerObservesNothing) {
  KernelProfileLedger::Global().Disable();
  auto g = BuildExpChain();
  auto exe = DiscCompiler::Compile(*g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());
  auto stats = KernelProfileLedger::Global().stats();
  EXPECT_EQ(stats.launches_observed, 0);
  EXPECT_EQ(stats.runs_observed, 0);
  EXPECT_TRUE(KernelProfileLedger::Global().Snapshot().empty());
}

TEST_F(KernelProfileTest, AggregatesPerVariantAndSignature) {
  auto g = BuildExpChain();
  auto exe = DiscCompiler::Compile(*g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  // 3 runs admit vec4 (256), 2 fall back to generic (255), under two
  // distinct signatures.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE((*exe)->RunWithShapes({{255}}).ok());

  auto entries = KernelProfileLedger::Global().Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  const KernelProfileEntry* vec = nullptr;
  const KernelProfileEntry* gen = nullptr;
  for (const auto& e : entries) {
    if (e.variant == "vec4") vec = &e;
    if (e.variant == "generic") gen = &e;
  }
  ASSERT_NE(vec, nullptr);
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(vec->launches, 3);
  EXPECT_EQ(gen->launches, 2);
  EXPECT_NE(vec->signature, gen->signature);
  EXPECT_EQ(vec->fusion_kind, FusionKindName(FusionKind::kLoop));
  EXPECT_GE(vec->group, 0);
  EXPECT_GT(vec->total_time_us, 0.0);
  EXPECT_GT(vec->total_body_us, 0.0);
  EXPECT_LT(vec->total_body_us, vec->total_time_us);  // launch overhead > 0
  EXPECT_DOUBLE_EQ(vec->avg_time_us(), vec->total_time_us / 3.0);
  // Identical shapes every launch: min == max == avg.
  EXPECT_DOUBLE_EQ(vec->min_time_us, vec->max_time_us);
  EXPECT_GT(vec->total_bytes, 0);
  EXPECT_GT(vec->total_flops, 0);
  // Fused elementwise at these sizes is memory bound on the modeled A10.
  EXPECT_EQ(vec->memory_bound_launches, vec->launches);
  EXPECT_GT(vec->mean_utilization(), 0.0);

  auto stats = KernelProfileLedger::Global().stats();
  EXPECT_EQ(stats.launches_observed, 5);
  EXPECT_EQ(stats.runs_observed, 5);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.entries_dropped, 0);
}

TEST_F(KernelProfileTest, EntryBoundDropsNewKeysAndCounts) {
  KernelProfileLedger::Global().Configure({/*max_entries=*/1,
                                           /*run_capacity=*/256});
  auto g = BuildExpChain();
  auto exe = DiscCompiler::Compile(*g, {{"N"}});
  ASSERT_TRUE(exe.ok());
  ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());  // first key: retained
  ASSERT_TRUE((*exe)->RunWithShapes({{255}}).ok());  // second key: dropped
  ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());  // existing key: fine

  auto entries = KernelProfileLedger::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].launches, 2);
  auto stats = KernelProfileLedger::Global().stats();
  EXPECT_EQ(stats.entries_dropped, 1);
  EXPECT_EQ(stats.launches_observed, 3);  // observed, even when dropped
}

TEST_F(KernelProfileTest, DyingExecutableForgetsItsEntriesButKeepsRuns) {
  auto g = BuildExpChain();
  auto survivor = DiscCompiler::Compile(*g, {{"N"}});
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE((*survivor)->RunWithShapes({{256}}).ok());

  RequestContext context(RequestContext::MintTraceId());
  {
    auto doomed = DiscCompiler::Compile(*g, {{"N"}});
    ASSERT_TRUE(doomed.ok());
    RequestContextScope scope(&context);
    ASSERT_TRUE((*doomed)->RunWithShapes({{255}}).ok());
    EXPECT_EQ(KernelProfileLedger::Global().Snapshot().size(), 2u);
  }  // ~Executable: the ledger Forgets the doomed executable's entries

  auto entries = KernelProfileLedger::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].variant, "vec4");  // the survivor's 256-run
  // Run records hold no kernel pointers and outlive their executable —
  // the trace-id join keeps working after a hot swap.
  EXPECT_EQ(KernelProfileLedger::Global().RunsForTrace(context.trace_id)
                .size(),
            1u);
  // The audit walks only live kernels: it must not touch the dead one.
  auto regrets = KernelProfileLedger::Global().AuditRegret(DeviceSpec::A10());
  ASSERT_EQ(regrets.size(), 1u);
  EXPECT_EQ(regrets[0].signature, entries[0].signature);
}

TEST_F(KernelProfileTest, RunRecordsJoinByTraceIdAndAreBounded) {
  KernelProfileLedger::Global().Configure({/*max_entries=*/1024,
                                           /*run_capacity=*/2});
  auto g = BuildExpChain();
  auto exe = DiscCompiler::Compile(*g, {{"N"}});
  ASSERT_TRUE(exe.ok());

  // No request context: nothing retained in the run ring.
  ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());
  EXPECT_EQ(KernelProfileLedger::Global().stats().runs_retained, 0);

  RequestContext context(RequestContext::MintTraceId());
  {
    RequestContextScope scope(&context);
    ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());
  }
  auto runs = KernelProfileLedger::Global().RunsForTrace(context.trace_id);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].trace_id, context.trace_id);
  EXPECT_EQ(runs[0].kernel_launches, 1);
  ASSERT_EQ(runs[0].kernels.size(), 1u);
  EXPECT_EQ(runs[0].kernels[0].variant, "vec4");
  EXPECT_GT(runs[0].device_time_us, 0.0);

  // Ring capacity 2: two more traced runs evict the first record.
  for (int i = 0; i < 2; ++i) {
    RequestContext later(RequestContext::MintTraceId());
    RequestContextScope scope(&later);
    ASSERT_TRUE((*exe)->RunWithShapes({{256}}).ok());
  }
  EXPECT_TRUE(KernelProfileLedger::Global().RunsForTrace(context.trace_id)
                  .empty());
  auto stats = KernelProfileLedger::Global().stats();
  EXPECT_EQ(stats.runs_retained, 2);
  EXPECT_EQ(stats.runs_dropped, 1);
}

TEST_F(KernelProfileTest, RegretAuditNamesTheDeniedVectorizedVariant) {
  auto g = BuildExpChain();
  auto nospec =
      DiscCompiler::Compile(*g, {{"N"}}, CompileOptions::NoSpecialization());
  ASSERT_TRUE(nospec.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*nospec)->RunWithShapes({{1 << 18}}).ok());
  }

  auto regrets = KernelProfileLedger::Global().AuditRegret(DeviceSpec::A10());
  ASSERT_EQ(regrets.size(), 1u);
  const KernelRegret& r = regrets[0];
  EXPECT_EQ(r.selected_variant, "generic");
  EXPECT_EQ(r.best_variant, "vec4");
  EXPECT_FALSE(r.best_compiled);  // denied at compile time — the blame
  EXPECT_GT(r.regret_us, 0.0);
  EXPECT_DOUBLE_EQ(r.total_regret_us, r.regret_us * 4);
  EXPECT_GT(r.regret_share, 0.0);
  EXPECT_LE(r.regret_share, 1.0);
  EXPECT_EQ(r.launches, 4);
  // The candidate table covers the counterfactual in preference order.
  ASSERT_EQ(r.candidates.size(), 2u);
  EXPECT_EQ(r.candidates[0].variant, "vec4");
  EXPECT_TRUE(r.candidates[0].admissible);
  EXPECT_FALSE(r.candidates[0].compiled);
  EXPECT_TRUE(r.candidates[1].selected);
  EXPECT_TRUE(r.candidates[1].compiled);
  EXPECT_LT(r.candidates[0].modeled_us, r.candidates[1].modeled_us);

  // Same workload fully specialized: the selection IS the best admissible
  // variant, regret collapses to zero.
  KernelProfileLedger::Global().Clear();
  auto spec = DiscCompiler::Compile(*g, {{"N"}});
  ASSERT_TRUE(spec.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*spec)->RunWithShapes({{1 << 18}}).ok());
  }
  auto specialized = KernelProfileLedger::Global().AuditRegret(
      DeviceSpec::A10());
  ASSERT_EQ(specialized.size(), 1u);
  EXPECT_EQ(specialized[0].selected_variant, "vec4");
  EXPECT_DOUBLE_EQ(specialized[0].regret_us, 0.0);
  EXPECT_TRUE(specialized[0].best_compiled);
  KernelProfileLedger::Global().Clear();  // fence before exes die
}

TEST_F(KernelProfileTest, JsonRoundTripsAndRegretSharesAreNonNegative) {
  auto g = BuildExpChain();
  auto exe =
      DiscCompiler::Compile(*g, {{"N"}}, CompileOptions::NoSpecialization());
  ASSERT_TRUE(exe.ok());
  ASSERT_TRUE((*exe)->RunWithShapes({{4096}}).ok());

  auto& ledger = KernelProfileLedger::Global();
  JsonValue doc = KernelProfileJson(
      ledger.Snapshot(), ledger.AuditRegret(DeviceSpec::A10()),
      ledger.stats());
  auto parsed = ParseJson(doc.Serialize());
  ASSERT_TRUE(parsed.ok());
  const JsonValue::Object& obj = parsed->as_object();
  EXPECT_EQ(obj.at("schema_version").as_number(), 1.0);
  const auto& entries = obj.at("entries").as_array();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].as_object().at("variant").as_string(), "generic");
  EXPECT_GT(entries[0].as_object().at("total_time_us").as_number(), 0.0);
  const auto& regret = obj.at("regret").as_array();
  ASSERT_EQ(regret.size(), 1u);
  EXPECT_GE(regret[0].as_object().at("regret_share").as_number(), 0.0);
  EXPECT_EQ(regret[0].as_object().at("best_variant").as_string(), "vec4");
  EXPECT_EQ(obj.at("stats").as_object().at("launches_observed").as_number(),
            1.0);
  KernelProfileLedger::Global().Clear();
}

}  // namespace
}  // namespace disc
