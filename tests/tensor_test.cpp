#include "ir/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace disc {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(DType::kF32, {2, 3});
  EXPECT_EQ(t.num_elements(), 6);
  EXPECT_EQ(t.byte_size(), 24);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.f32_data()[i], 0.0f);
}

TEST(TensorTest, F32Factory) {
  Tensor t = Tensor::F32({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.dtype(), DType::kF32);
  EXPECT_EQ(t.ElementAsDouble(3), 4.0);
}

TEST(TensorTest, I64Factory) {
  Tensor t = Tensor::I64({3}, {10, 20, 30});
  EXPECT_EQ(t.i64_data()[1], 20);
  EXPECT_EQ(t.byte_size(), 24);
}

TEST(TensorTest, I1NormalizesToZeroOne) {
  Tensor t = Tensor::I1({3}, {5, 0, -2});
  EXPECT_EQ(t.i64_data()[0], 1);
  EXPECT_EQ(t.i64_data()[1], 0);
  EXPECT_EQ(t.i64_data()[2], 1);
  EXPECT_EQ(t.byte_size(), 3);  // i1 is 1 byte per element logically
}

TEST(TensorTest, Scalars) {
  EXPECT_EQ(Tensor::ScalarF32(2.5f).rank(), 0);
  EXPECT_EQ(Tensor::ScalarF32(2.5f).num_elements(), 1);
  EXPECT_EQ(Tensor::ScalarI64(7).i64_data()[0], 7);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::F32({2}, {1, 2});
  Tensor b = a.Clone();
  b.f32_data()[0] = 99;
  EXPECT_EQ(a.f32_data()[0], 1.0f);
}

TEST(TensorTest, CopyIsAliasing) {
  Tensor a = Tensor::F32({2}, {1, 2});
  Tensor b = a;
  b.f32_data()[0] = 99;
  EXPECT_EQ(a.f32_data()[0], 99.0f);
}

TEST(TensorTest, Strides) {
  Tensor t(DType::kF32, {2, 3, 4});
  auto s = t.Strides();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 12);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 1);
}

TEST(TensorTest, TypeString) {
  EXPECT_EQ(Tensor(DType::kF32, {2, 3}).TypeString(), "f32[2x3]");
  EXPECT_EQ(Tensor::ScalarI64(1).TypeString(), "i64[]");
}

TEST(TensorTest, SetElementFromDoubleClampsI1) {
  Tensor t(DType::kI1, {2});
  t.SetElementFromDouble(0, 3.5);
  t.SetElementFromDouble(1, 0.0);
  EXPECT_EQ(t.i64_data()[0], 1);
  EXPECT_EQ(t.i64_data()[1], 0);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::F32({2}, {1, 2});
  Tensor b = Tensor::F32({2}, {1.5, 2});
  EXPECT_DOUBLE_EQ(Tensor::MaxAbsDiff(a, b), 0.5);
}

TEST(TensorTest, AllCloseExactAndTolerance) {
  Tensor a = Tensor::F32({2}, {1.0f, 100.0f});
  Tensor b = Tensor::F32({2}, {1.0f, 100.001f});
  EXPECT_TRUE(Tensor::AllClose(a, b));
  Tensor c = Tensor::F32({2}, {1.0f, 110.0f});
  EXPECT_FALSE(Tensor::AllClose(a, c));
}

TEST(TensorTest, AllCloseShapeMismatch) {
  EXPECT_FALSE(Tensor::AllClose(Tensor::F32({2}, {1, 2}),
                                Tensor::F32({2, 1}, {1, 2})));
}

TEST(TensorTest, AllCloseNaNAgreement) {
  float nan = std::nanf("");
  EXPECT_TRUE(Tensor::AllClose(Tensor::F32({1}, {nan}),
                               Tensor::F32({1}, {nan})));
  EXPECT_FALSE(
      Tensor::AllClose(Tensor::F32({1}, {nan}), Tensor::F32({1}, {1.0f})));
}

}  // namespace
}  // namespace disc
