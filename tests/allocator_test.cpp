#include "runtime/allocator.h"

#include <gtest/gtest.h>

#include "support/failpoint.h"

namespace disc {
namespace {

// Allocate's Result is checked in every test; this unwraps or fails the
// test at the call site.
int64_t MustAllocate(CachingAllocator& allocator, int64_t bytes) {
  Result<int64_t> block = allocator.Allocate(bytes);
  EXPECT_TRUE(block.ok()) << block.status().ToString();
  return block.ok() ? *block : -1;
}

TEST(AllocatorTest, RoundsToSizeClass) {
  CachingAllocator allocator;
  MustAllocate(allocator, 1);
  EXPECT_EQ(allocator.stats().bytes_in_use, 256);
  MustAllocate(allocator, 257);
  EXPECT_EQ(allocator.stats().bytes_in_use, 256 + 512);
}

TEST(AllocatorTest, FreeReturnsToCacheAndHits) {
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 1000);
  ASSERT_TRUE(allocator.Free(a).ok());
  EXPECT_EQ(allocator.stats().bytes_in_use, 0);
  int64_t b = MustAllocate(allocator, 1000);
  EXPECT_EQ(a, b);  // same block reused
  EXPECT_EQ(allocator.stats().cache_hits, 1);
  // Reserved memory does not grow on a cache hit.
  EXPECT_EQ(allocator.stats().bytes_reserved, 1024);
}

TEST(AllocatorTest, DifferentSizeClassMisses) {
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 256);
  ASSERT_TRUE(allocator.Free(a).ok());
  MustAllocate(allocator, 512);
  EXPECT_EQ(allocator.stats().cache_hits, 0);
  EXPECT_EQ(allocator.stats().bytes_reserved, 256 + 512);
}

TEST(AllocatorTest, PeakTracksHighWaterMark) {
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 1024);
  int64_t b = MustAllocate(allocator, 1024);
  ASSERT_TRUE(allocator.Free(a).ok());
  ASSERT_TRUE(allocator.Free(b).ok());
  MustAllocate(allocator, 1024);
  EXPECT_EQ(allocator.stats().peak_bytes_in_use, 2048);
  EXPECT_EQ(allocator.stats().bytes_in_use, 1024);
}

TEST(AllocatorTest, TrimCacheReleasesFreeBlocks) {
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 4096);
  ASSERT_TRUE(allocator.Free(a).ok());
  EXPECT_EQ(allocator.stats().bytes_reserved, 4096);
  allocator.TrimCache();
  EXPECT_EQ(allocator.stats().bytes_reserved, 0);
}

TEST(AllocatorTest, ZeroByteAllocationIsValid) {
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 0);
  EXPECT_EQ(allocator.stats().bytes_in_use, 256);  // minimum class
  EXPECT_TRUE(allocator.Free(a).ok());
}

TEST(AllocatorTest, NegativeSizeIsInvalidArgument) {
  CachingAllocator allocator;
  Result<int64_t> block = allocator.Allocate(-1);
  ASSERT_FALSE(block.ok());
  EXPECT_EQ(block.status().code(), StatusCode::kInvalidArgument);
}

TEST(AllocatorTest, DoubleFreeIsInvalidArgument) {
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 64);
  ASSERT_TRUE(allocator.Free(a).ok());
  Status second = allocator.Free(a);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kInvalidArgument);
}

TEST(AllocatorTest, UnknownBlockIdIsInvalidArgument) {
  CachingAllocator allocator;
  Status status = allocator.Free(12345);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(AllocatorTest, MemoryLimitExhaustsAndRecovers) {
  CachingAllocator allocator(/*memory_limit_bytes=*/1024);
  int64_t a = MustAllocate(allocator, 1024);
  // The device is full: the next allocation must fail with a retryable
  // code, not abort.
  Result<int64_t> over = allocator.Allocate(1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(over.status().IsRetryable());
  EXPECT_EQ(allocator.stats().failed_allocs, 1);
  // Pressure subsides when in-flight blocks are freed.
  ASSERT_TRUE(allocator.Free(a).ok());
  MustAllocate(allocator, 1);
}

TEST(AllocatorTest, RoundingWasteTracksSizeClassLoss) {
  CachingAllocator allocator;
  MustAllocate(allocator, 1);  // rounds to 256: 255 wasted
  EXPECT_EQ(allocator.stats().bytes_rounding_waste, 255);
  MustAllocate(allocator, 257);  // rounds to 512: 255 more
  EXPECT_EQ(allocator.stats().bytes_rounding_waste, 510);
}

TEST(AllocatorTest, QuantumMultiplesWasteNothing) {
  // Arena allocations are pre-aligned to the 256-byte quantum, so the
  // planner's single allocation contributes zero rounding waste.
  CachingAllocator allocator;
  MustAllocate(allocator, 256);
  MustAllocate(allocator, 256 * 17);
  MustAllocate(allocator, 256 * 1024);
  EXPECT_EQ(allocator.stats().bytes_rounding_waste, 0);
}

TEST(AllocatorTest, RoundingWasteAccumulatesAcrossCacheHits) {
  // The waste is per-allocation (the caller asked for N, got the class
  // size), whether the block came from the cache or a fresh reservation.
  CachingAllocator allocator;
  int64_t a = MustAllocate(allocator, 1000);  // class 1024: 24 wasted
  ASSERT_TRUE(allocator.Free(a).ok());
  MustAllocate(allocator, 1000);  // cache hit, another 24
  EXPECT_EQ(allocator.stats().cache_hits, 1);
  EXPECT_EQ(allocator.stats().bytes_rounding_waste, 48);
}

TEST(AllocatorTest, FailpointInjectsResourceExhausted) {
  FailpointRegistry& registry = FailpointRegistry::Global();
  ASSERT_TRUE(
      registry.ArmFromSpec("runtime.alloc=once:code=resource-exhausted").ok());
  CachingAllocator allocator;
  Result<int64_t> faulted = allocator.Allocate(64);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(allocator.stats().failed_allocs, 1);
  // `once` fired; the allocator works again.
  MustAllocate(allocator, 64);
  registry.DisarmAll();
}

}  // namespace
}  // namespace disc
