#include "runtime/allocator.h"

#include <gtest/gtest.h>

namespace disc {
namespace {

TEST(AllocatorTest, RoundsToSizeClass) {
  CachingAllocator allocator;
  allocator.Allocate(1);
  EXPECT_EQ(allocator.stats().bytes_in_use, 256);
  allocator.Allocate(257);
  EXPECT_EQ(allocator.stats().bytes_in_use, 256 + 512);
}

TEST(AllocatorTest, FreeReturnsToCacheAndHits) {
  CachingAllocator allocator;
  int64_t a = allocator.Allocate(1000);
  allocator.Free(a);
  EXPECT_EQ(allocator.stats().bytes_in_use, 0);
  int64_t b = allocator.Allocate(1000);
  EXPECT_EQ(a, b);  // same block reused
  EXPECT_EQ(allocator.stats().cache_hits, 1);
  // Reserved memory does not grow on a cache hit.
  EXPECT_EQ(allocator.stats().bytes_reserved, 1024);
}

TEST(AllocatorTest, DifferentSizeClassMisses) {
  CachingAllocator allocator;
  int64_t a = allocator.Allocate(256);
  allocator.Free(a);
  allocator.Allocate(512);
  EXPECT_EQ(allocator.stats().cache_hits, 0);
  EXPECT_EQ(allocator.stats().bytes_reserved, 256 + 512);
}

TEST(AllocatorTest, PeakTracksHighWaterMark) {
  CachingAllocator allocator;
  int64_t a = allocator.Allocate(1024);
  int64_t b = allocator.Allocate(1024);
  allocator.Free(a);
  allocator.Free(b);
  allocator.Allocate(1024);
  EXPECT_EQ(allocator.stats().peak_bytes_in_use, 2048);
  EXPECT_EQ(allocator.stats().bytes_in_use, 1024);
}

TEST(AllocatorTest, TrimCacheReleasesFreeBlocks) {
  CachingAllocator allocator;
  int64_t a = allocator.Allocate(4096);
  allocator.Free(a);
  EXPECT_EQ(allocator.stats().bytes_reserved, 4096);
  allocator.TrimCache();
  EXPECT_EQ(allocator.stats().bytes_reserved, 0);
}

TEST(AllocatorTest, ZeroByteAllocationIsValid) {
  CachingAllocator allocator;
  int64_t a = allocator.Allocate(0);
  EXPECT_EQ(allocator.stats().bytes_in_use, 256);  // minimum class
  allocator.Free(a);
}

TEST(AllocatorDeathTest, DoubleFreeAborts) {
  CachingAllocator allocator;
  int64_t a = allocator.Allocate(64);
  allocator.Free(a);
  EXPECT_DEATH(allocator.Free(a), "double free");
}

}  // namespace
}  // namespace disc
