// Chaos harness: replays serving traffic through the DISC->interpreter
// fallback chain while seeded failpoint schedules break compilation,
// allocation and kernel execution. The assertions are the robustness
// contract:
//   * no crash — every schedule runs to completion;
//   * no silently dropped request — submitted == completed + shed +
//     deadline_missed + failed, always;
//   * the circuit breaker opens under sustained compile failure and
//     re-closes once the fault clears (on the simulated clock);
//   * outputs on the degraded path are bit-identical to the fallback
//     engine run alone — faults change the route, never the numerics.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/dynamic_engine.h"
#include "baselines/fallback_chain.h"
#include "baselines/interpreter_engine.h"
#include "ir/builder.h"
#include "serving/serving.h"
#include "support/failpoint.h"

namespace disc {
namespace {

constexpr int64_t kHidden = 32;

void BuildModel(Graph* g) {
  GraphBuilder b(g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, kHidden});
  b.Output({b.Softmax(b.Relu(x))});
}

std::unique_ptr<EngineFallbackChain> MakeChain(
    const Graph& graph, FallbackChainOptions options = {}) {
  auto primary =
      std::make_unique<DynamicCompilerEngine>(DynamicProfile::Disc());
  auto fallback =
      std::make_unique<InterpreterEngine>(InterpreterProfile::PyTorch());
  auto chain = std::make_unique<EngineFallbackChain>(
      std::move(primary), std::move(fallback), options);
  DISC_CHECK_OK(chain->Prepare(graph, {{"B", "S", ""}}));
  return chain;
}

std::vector<std::vector<int64_t>> ShapeFor(int64_t batch, int64_t seq) {
  return {{batch, seq, kHidden}};
}

Tensor DeterministicInput(int64_t batch, int64_t seq) {
  std::vector<float> values;
  values.reserve(batch * seq * kHidden);
  for (int64_t i = 0; i < batch * seq * kHidden; ++i) {
    values.push_back(static_cast<float>((i * 37) % 101) / 50.0f - 1.0f);
  }
  return Tensor::F32({batch, seq, kHidden}, values);
}

void ExpectFullAccounting(const ServingStats& stats) {
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed +
                                 stats.deadline_missed + stats.failed)
      << stats.ToString();
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Global().DisarmAll(); }

  ServingStats Replay(Engine* engine, uint64_t stream_seed,
                      BatcherOptions options = {}) {
    auto requests = SyntheticRequestStream(96, 100.0, stream_seed);
    auto stats = SimulateServing(engine, ShapeFor, requests, options,
                                 DeviceSpec::T4());
    DISC_CHECK_OK(stats.status());
    return *stats;
  }
};

TEST_F(ChaosTest, FaultFreeChainMatchesPlainDisc) {
  Graph g("chaos");
  BuildModel(&g);
  FallbackChainOptions options;
  options.compile_stall_us = 200.0;
  auto chain = MakeChain(g, options);
  ServingStats chained = Replay(chain.get(), 21);

  DynamicCompilerEngine plain(DynamicProfile::Disc());
  DISC_CHECK_OK(plain.Prepare(g, {{"B", "S", ""}}));
  ServingStats direct = Replay(&plain, 21);

  // Without faults the chain is a pass-through: same completions, no
  // degraded traffic, untouched breaker, identical latency profile.
  ExpectFullAccounting(chained);
  EXPECT_EQ(chained.completed, chained.submitted);
  EXPECT_EQ(chained.degraded, 0);
  EXPECT_TRUE(chain->breaker_transitions().empty());
  EXPECT_EQ(chain->breaker_state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(chained.p99_us, direct.p99_us);
  EXPECT_DOUBLE_EQ(chained.mean_us, direct.mean_us);
}

TEST_F(ChaosTest, CompileFaultScheduleDegradesAndRecovers) {
  // The compiler fails its first 5 attempts, then heals. Threshold 3 opens
  // the breaker during the outage; half-open probes keep re-opening it
  // until a probe compile finally succeeds.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("compiler.compile=always:max=5")
                  .ok());
  Graph g("chaos");
  BuildModel(&g);
  FallbackChainOptions options;
  options.failure_threshold = 3;
  options.cooldown_us = 2000.0;
  options.compile_stall_us = 200.0;
  auto chain = MakeChain(g, options);
  ServingStats stats = Replay(chain.get(), 33);

  // Every request was served (by the fallback during the outage) — the
  // compile fault never surfaces as a failed or dropped request.
  ExpectFullAccounting(stats);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_GT(stats.degraded, 0);
  EXPECT_LT(stats.degraded, stats.submitted);  // recovery happened mid-run

  // Breaker lifecycle: opened under sustained failure, re-closed after the
  // fault cleared, and finished the run closed on the primary.
  const auto& transitions = chain->breaker_transitions();
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.front().from, BreakerState::kClosed);
  EXPECT_EQ(transitions.front().to, BreakerState::kOpen);
  EXPECT_EQ(transitions.back().to, BreakerState::kClosed);
  EXPECT_EQ(chain->breaker_state(), BreakerState::kClosed);
  EXPECT_TRUE(chain->primary_prepared());
  EXPECT_EQ(FailpointRegistry::Global().fires("compiler.compile"), 5);
  // Simulated transition times are monotone (the breaker lives on the
  // serving clock, not the wall clock).
  for (size_t i = 1; i < transitions.size(); ++i) {
    EXPECT_GE(transitions[i].sim_time_us, transitions[i - 1].sim_time_us);
  }
}

TEST_F(ChaosTest, AllocFaultScheduleRetriesAndAccountsEveryRequest) {
  Graph g("chaos");
  BuildModel(&g);
  FallbackChainOptions options;
  options.compile_stall_us = 200.0;
  auto chain = MakeChain(g, options);
  // Arm after Prepare: allocation faults hit the query path of both legs
  // with a seeded 15% schedule.
  ASSERT_TRUE(
      FailpointRegistry::Global()
          .ArmFromSpec("runtime.alloc=prob:0.15:seed=11:code=resource-exhausted")
          .ok());
  BatcherOptions batcher;
  batcher.max_retries = 3;
  ServingStats stats = Replay(chain.get(), 45, batcher);

  ExpectFullAccounting(stats);
  EXPECT_GT(stats.completed, 0);
  // The schedule is dense enough that some queries needed the retry path
  // or the fallback leg.
  EXPECT_GT(stats.retries + stats.degraded, 0);
  EXPECT_GT(FailpointRegistry::Global().fires("runtime.alloc"), 0);
  for (const auto& [code, count] : stats.error_counts) {
    EXPECT_EQ(code, "ResourceExhausted");
    EXPECT_GT(count, 0);
  }
}

TEST_F(ChaosTest, KernelFaultScheduleDegradesWithoutDrops) {
  Graph g("chaos");
  BuildModel(&g);
  FallbackChainOptions options;
  options.failure_threshold = 4;
  options.cooldown_us = 3000.0;
  options.compile_stall_us = 200.0;
  auto chain = MakeChain(g, options);
  // Every 6th kernel launch dies (sticky-device-error model). Only the
  // compiled leg launches kernels, so the interpreter absorbs the faults.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("runtime.kernel=every:6:code=unavailable")
                  .ok());
  BatcherOptions batcher;
  batcher.max_retries = 2;
  ServingStats stats = Replay(chain.get(), 57, batcher);

  ExpectFullAccounting(stats);
  EXPECT_GT(stats.completed, 0);
  EXPECT_GT(stats.degraded + stats.retries, 0);
  EXPECT_GT(FailpointRegistry::Global().fires("runtime.kernel"), 0);
}

TEST_F(ChaosTest, DegradedExecuteIsBitIdenticalToFallbackAlone) {
  // With compilation permanently broken the chain serves Execute from its
  // interpreter leg; the result must be bit-identical to running that
  // interpreter standalone — degradation changes the route, not the math.
  ASSERT_TRUE(
      FailpointRegistry::Global().ArmFromSpec("compiler.compile=always").ok());
  Graph g("chaos");
  BuildModel(&g);
  auto chain = MakeChain(g);
  EXPECT_FALSE(chain->primary_prepared());

  InterpreterEngine alone(InterpreterProfile::PyTorch());
  DISC_CHECK_OK(alone.Prepare(g, {{"B", "S", ""}}));

  const Tensor input = DeterministicInput(2, 5);
  auto degraded = chain->Execute({input});
  auto reference = alone.Execute({input});
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(degraded->size(), reference->size());
  for (size_t t = 0; t < degraded->size(); ++t) {
    const Tensor& a = (*degraded)[t];
    const Tensor& b = (*reference)[t];
    ASSERT_EQ(a.dims(), b.dims());
    const int64_t n = a.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      // Bitwise, not approximate: memcmp-strength equality per element.
      EXPECT_EQ(a.f32_data()[i], b.f32_data()[i]) << "element " << i;
    }
  }

  // The healthy primary path computes the same function (approximately —
  // the compiled kernels reassociate).
  FailpointRegistry::Global().DisarmAll();
  auto healthy_chain = MakeChain(g);
  ASSERT_TRUE(healthy_chain->primary_prepared());
  auto healthy = healthy_chain->Execute({input});
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(Tensor::AllClose((*healthy)[0], (*reference)[0]));
}

TEST_F(ChaosTest, DataLossFailuresOpenBreakerAndDegradeCleanly) {
  // kDataLoss (miscompile/guard-violation detection) is never retried —
  // replaying the same corrupt artifact cannot help — but it DOES count
  // toward the circuit breaker like any other primary failure: a primary
  // that keeps producing data loss must stop being tried.
  ASSERT_FALSE(Status::DataLoss("x").IsRetryable());
  Graph g("chaos");
  BuildModel(&g);
  FallbackChainOptions options;
  options.failure_threshold = 3;
  options.cooldown_us = 1e9;  // stays open for the whole test
  options.compile_stall_us = 0.0;
  auto chain = MakeChain(g, options);
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("runtime.kernel=always:code=data-loss")
                  .ok());

  const auto shapes = ShapeFor(2, 8);
  const DeviceSpec device = DeviceSpec::T4();
  chain->SetSimulatedTimeUs(0.0);
  for (int i = 0; i < 5; ++i) {
    // Every query completes on the fallback leg — data loss never
    // reaches the caller.
    ASSERT_TRUE(chain->Query(shapes, device).ok());
  }
  EXPECT_EQ(chain->breaker_state(), BreakerState::kOpen);
  EXPECT_GE(chain->consecutive_failures(), 3);

  // Degraded math is still correct: the interpreter leg serves Execute.
  FailpointRegistry::Global().DisarmAll();
  InterpreterEngine reference(InterpreterProfile::PyTorch());
  ASSERT_TRUE(reference.Prepare(g, {{"B", "S", ""}}).ok());
  Tensor input = DeterministicInput(2, 8);
  auto want = reference.Execute({input});
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("runtime.kernel=always:code=data-loss")
                  .ok());
  auto got = chain->Execute({input});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(Tensor::AllClose((*got)[0], (*want)[0], 0.0, 0.0));
}

TEST_F(ChaosTest, BreakerFollowsOpenHalfOpenClosedSchedule) {
  // Deterministic lifecycle walk on a manually advanced simulated clock:
  // 3 failures open the breaker at t=0; probes at t=1000 and t=2000 fail
  // and re-open it; the probe at t=3000 succeeds and closes it.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .ArmFromSpec("compiler.compile=always:max=5")
                  .ok());
  Graph g("chaos");
  BuildModel(&g);
  FallbackChainOptions options;
  options.failure_threshold = 3;
  options.cooldown_us = 1000.0;
  options.compile_stall_us = 0.0;
  auto chain = MakeChain(g, options);  // fire #1 (Prepare)
  EXPECT_EQ(chain->consecutive_failures(), 1);

  const auto shapes = ShapeFor(2, 8);
  const DeviceSpec device = DeviceSpec::T4();
  chain->SetSimulatedTimeUs(0.0);
  ASSERT_TRUE(chain->Query(shapes, device).ok());  // fire #2
  EXPECT_EQ(chain->breaker_state(), BreakerState::kClosed);
  ASSERT_TRUE(chain->Query(shapes, device).ok());  // fire #3 -> opens
  EXPECT_EQ(chain->breaker_state(), BreakerState::kOpen);

  // While open, queries go straight to the fallback: no compile attempts.
  ASSERT_TRUE(chain->Query(shapes, device).ok());
  EXPECT_EQ(FailpointRegistry::Global().fires("compiler.compile"), 3);

  chain->SetSimulatedTimeUs(1000.0);
  EXPECT_EQ(chain->breaker_state(), BreakerState::kHalfOpen);
  ASSERT_TRUE(chain->Query(shapes, device).ok());  // probe, fire #4
  EXPECT_EQ(chain->breaker_state(), BreakerState::kOpen);

  chain->SetSimulatedTimeUs(2000.0);
  ASSERT_TRUE(chain->Query(shapes, device).ok());  // probe, fire #5
  EXPECT_EQ(chain->breaker_state(), BreakerState::kOpen);

  chain->SetSimulatedTimeUs(3000.0);
  ASSERT_TRUE(chain->Query(shapes, device).ok());  // probe succeeds
  EXPECT_EQ(chain->breaker_state(), BreakerState::kClosed);
  EXPECT_TRUE(chain->primary_prepared());
  EXPECT_EQ(chain->consecutive_failures(), 0);

  const auto& transitions = chain->breaker_transitions();
  ASSERT_EQ(transitions.size(), 7u);
  EXPECT_EQ(transitions[0].to, BreakerState::kOpen);
  EXPECT_EQ(transitions[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(transitions[2].to, BreakerState::kOpen);
  EXPECT_EQ(transitions[6].to, BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(transitions[0].sim_time_us, 0.0);
  EXPECT_DOUBLE_EQ(transitions[1].sim_time_us, 1000.0);
  EXPECT_DOUBLE_EQ(transitions[6].sim_time_us, 3000.0);
}

}  // namespace
}  // namespace disc
