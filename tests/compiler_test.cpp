#include "compiler/compiler.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/eval.h"
#include "support/rng.h"

namespace disc {
namespace {

Tensor RandomF32(Rng* rng, std::vector<int64_t> dims) {
  Tensor t(DType::kF32, std::move(dims));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.f32_data()[i] = rng->Normal();
  }
  return t;
}

// Compiles, runs on concrete inputs and checks against the reference
// evaluator.
void ExpectMatchesReference(const Graph& g,
                            std::vector<std::vector<std::string>> labels,
                            const std::vector<Tensor>& inputs,
                            const CompileOptions& options = {}) {
  auto exe = DiscCompiler::Compile(g, labels, options);
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  auto got = (*exe)->Run(inputs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = EvaluateGraph(g, inputs);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_EQ(got->outputs.size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_TRUE(Tensor::AllClose(got->outputs[i], (*want)[i]))
        << "output " << i << ":\n got: " << got->outputs[i].ToString()
        << "\nwant: " << (*want)[i].ToString();
  }
}

TEST(CompilerTest, ElementwiseChainMatchesReference) {
  Graph g("chain");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Exp(b.Mul(x, b.ScalarF32(0.5f))))});
  Rng rng(1);
  ExpectMatchesReference(g, {{"B", "S"}}, {RandomF32(&rng, {3, 7})});
}

TEST(CompilerTest, SoftmaxMatchesReferenceAcrossShapes) {
  Graph g("softmax");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  Rng rng(2);
  for (auto dims : std::vector<std::vector<int64_t>>{
           {1, 1}, {2, 5}, {7, 32}, {16, 3}}) {
    ExpectMatchesReference(g, {{"B", "S"}}, {RandomF32(&rng, dims)});
  }
}

TEST(CompilerTest, LayerNormMatchesReference) {
  Graph g("ln");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 16});
  Value* scale = b.Input("scale", DType::kF32, {16});
  Value* bias = b.Input("bias", DType::kF32, {16});
  b.Output({b.LayerNorm(x, scale, bias)});
  Rng rng(3);
  ExpectMatchesReference(
      g, {{"B", ""}, {}, {}},
      {RandomF32(&rng, {5, 16}), RandomF32(&rng, {16}), RandomF32(&rng, {16})});
}

TEST(CompilerTest, MatMulWithEpilogueMatchesReference) {
  Graph g("mm");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* w = b.Input("w", DType::kF32, {8, 12});
  Value* bias = b.Input("bias", DType::kF32, {12});
  b.Output({b.Gelu(b.Add(b.MatMul(x, w), bias))});
  Rng rng(4);
  ExpectMatchesReference(g, {{"B", ""}},
                         {RandomF32(&rng, {6, 8}), RandomF32(&rng, {8, 12}),
                          RandomF32(&rng, {12})});
}

TEST(CompilerTest, DynamicReshapeRoundTripMatchesReference) {
  Graph g("reshape");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim, 4});
  Value* flat = b.Reshape(x, {-1, 4});
  Value* act = b.Tanh(flat);
  Value* back = b.ReshapeDynamic(act, b.ShapeOf(x));
  b.Output({back});
  Rng rng(5);
  ExpectMatchesReference(g, {{"B", "S", ""}}, {RandomF32(&rng, {2, 3, 4})});
}

TEST(CompilerTest, TransposeGatherConcatMatchesReference) {
  Graph g("mix");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 6});
  Value* t = b.Transpose(x, {1, 0});
  Value* ids = b.Input("ids", DType::kI64, {kDynamicDim});
  Value* gathered = b.Gather(x, ids, 0);
  Value* padded = b.Pad(gathered, {0, 1}, {0, 1});
  b.Output({t, padded});
  Rng rng(6);
  ExpectMatchesReference(
      g, {{"B", ""}, {"N"}},
      {RandomF32(&rng, {5, 6}), Tensor::I64({3}, {0, 4, 2})});
}

TEST(CompilerTest, MultiOutputFusionMatchesReference) {
  Graph g("multi");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* e = b.Exp(x);
  Value* r = b.Relu(b.Sub(e, b.ScalarF32(1.0f)));
  b.Output({e, r});
  Rng rng(7);
  ExpectMatchesReference(g, {{"B", ""}}, {RandomF32(&rng, {4, 8})});
}

TEST(CompilerTest, AllAblationConfigsAgree) {
  Graph g("abl");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  Value* sm = b.Softmax(b.Mul(x, x));
  b.Output({b.Add(sm, b.ScalarF32(1.0f))});
  Rng rng(8);
  std::vector<Tensor> inputs = {RandomF32(&rng, {3, 9})};
  for (const CompileOptions& options :
       {CompileOptions::Default(), CompileOptions::NoFusion(),
        CompileOptions::NoSpecialization(),
        CompileOptions::NoSymbolicShapes()}) {
    ExpectMatchesReference(g, {{"B", "S"}}, inputs, options);
  }
}

TEST(CompilerTest, CompileOnceRunManyShapes) {
  Graph g("poly");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(b.Relu(x))});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());

  Rng rng(9);
  auto want_for = [&](const Tensor& t) {
    auto r = EvaluateGraph(g, {t});
    EXPECT_TRUE(r.ok());
    return (*r)[0];
  };
  // One compilation handles every shape — no recompile, different variants.
  for (auto dims : std::vector<std::vector<int64_t>>{
           {1, 4}, {8, 8}, {3, 128}, {2, 1000}, {5, 17}}) {
    Tensor in = RandomF32(&rng, dims);
    auto got = (*exe)->Run({in});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(Tensor::AllClose(got->outputs[0], want_for(in)));
  }
}

TEST(CompilerTest, ProfileCountsKernelsAndLibraryCalls) {
  Graph g("prof");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* w = b.Input("w", DType::kF32, {8, 8});
  b.Output({b.Relu(b.MatMul(b.Exp(x), w))});
  auto exe = DiscCompiler::Compile(g, {{"B", ""}});
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->RunWithShapes({{16, 8}, {8, 8}});
  ASSERT_TRUE(r.ok());
  // exp -> kernel, matmul -> library, relu -> kernel.
  EXPECT_EQ(r->profile.kernel_launches, 2);
  EXPECT_EQ(r->profile.library_calls, 1);
  EXPECT_GT(r->profile.device_time_us, 0.0);
  EXPECT_GT(r->profile.bytes_read, 0);
  EXPECT_GT(r->profile.peak_memory_bytes, 0);
}

TEST(CompilerTest, FusionReducesLaunchesAndTraffic) {
  Graph g("fuse");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 256});
  Value* v = x;
  for (int i = 0; i < 6; ++i) v = b.Tanh(b.Add(v, b.ScalarF32(0.1f)));
  b.Output({v});

  auto fused = DiscCompiler::Compile(g, {{"B", ""}});
  auto unfused = DiscCompiler::Compile(g, {{"B", ""}},
                                       CompileOptions::NoFusion());
  ASSERT_TRUE(fused.ok() && unfused.ok());
  auto rf = (*fused)->RunWithShapes({{64, 256}});
  auto ru = (*unfused)->RunWithShapes({{64, 256}});
  ASSERT_TRUE(rf.ok() && ru.ok());
  EXPECT_LT(rf->profile.kernel_launches, ru->profile.kernel_launches);
  EXPECT_LT(rf->profile.bytes_read + rf->profile.bytes_written,
            ru->profile.bytes_read + ru->profile.bytes_written);
  EXPECT_LT(rf->profile.device_time_us, ru->profile.device_time_us);
}

TEST(CompilerTest, VariantDispatchFollowsGuards) {
  Graph g("variants");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Relu(b.Add(x, x))});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());

  // 16x16 = 256 elements, divisible by 4 -> vectorized variant.
  auto vec = (*exe)->RunWithShapes({{16, 16}});
  ASSERT_TRUE(vec.ok());
  bool saw_vec = false;
  for (const auto& [name, count] : vec->profile.variant_counts) {
    if (name.find("vec4") != std::string::npos && count > 0) saw_vec = true;
  }
  EXPECT_TRUE(saw_vec) << vec->profile.ToString();

  // 3x3 = 9 elements -> generic fallback.
  auto gen = (*exe)->RunWithShapes({{3, 3}});
  ASSERT_TRUE(gen.ok());
  bool saw_generic = false;
  for (const auto& [name, count] : gen->profile.variant_counts) {
    if (name.find("generic") != std::string::npos && count > 0) {
      saw_generic = true;
    }
  }
  EXPECT_TRUE(saw_generic) << gen->profile.ToString();
}

TEST(CompilerTest, ReduceScheduleSwitchesOnRowLength) {
  Graph g("rows");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.ReduceSum(b.Mul(x, x), {1})});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());

  auto short_rows = (*exe)->RunWithShapes({{4096, 128}});
  auto long_rows = (*exe)->RunWithShapes({{4096, 4096}});
  ASSERT_TRUE(short_rows.ok() && long_rows.ok());
  auto has = [](const RunProfile& profile, const std::string& key) {
    for (const auto& [name, count] : profile.variant_counts) {
      if (name.find(key) != std::string::npos && count > 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(short_rows->profile, "warp_per_row"));
  EXPECT_TRUE(has(long_rows->profile, "block_per_row"));
}

TEST(CompilerTest, RejectsInconsistentRuntimeShapes) {
  Graph g("check");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, 8});
  Value* y = b.Input("y", DType::kF32, {kDynamicDim, 8});
  b.Output({b.Add(x, y)});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  // Batch dims must agree (the add unified them).
  EXPECT_FALSE((*exe)->RunWithShapes({{4, 8}, {5, 8}}).ok());
  EXPECT_TRUE((*exe)->RunWithShapes({{4, 8}, {4, 8}}).ok());
}

TEST(CompilerTest, ReportIsPopulated) {
  Graph g("report");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {kDynamicDim, kDynamicDim});
  b.Output({b.Softmax(x)});
  auto exe = DiscCompiler::Compile(g, {{"B", "S"}});
  ASSERT_TRUE(exe.ok());
  const CompileReport& report = (*exe)->report();
  EXPECT_GT(report.compile_ms, 0.0);
  EXPECT_EQ(report.num_kernels, 1);
  EXPECT_GE(report.num_variants, 2);
  EXPECT_EQ(report.fusion.num_stitch_groups, 1);
  EXPECT_GT(report.shapes.num_symbols, 0);
}

TEST(CompilerTest, GraphOutputsThatAreConstantsOrInputs) {
  Graph g("edge");
  GraphBuilder b(&g);
  Value* x = b.Input("x", DType::kF32, {2});
  Value* c = b.Constant(Tensor::F32({2}, {5, 6}));
  b.Output({x, c});
  auto exe = DiscCompiler::Compile(g);
  ASSERT_TRUE(exe.ok());
  auto r = (*exe)->Run({Tensor::F32({2}, {1, 2})});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Tensor::AllClose(r->outputs[0], Tensor::F32({2}, {1, 2})));
  EXPECT_TRUE(Tensor::AllClose(r->outputs[1], Tensor::F32({2}, {5, 6})));
}

}  // namespace
}  // namespace disc
